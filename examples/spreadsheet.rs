//! The paper's running example (Figures 1–3): the spreadsheet application
//! whose `createColIter` receives *conflicting* constraints — `testParseCSV`
//! wants its result in `HASNEXT`, every other use implies `ALIVE` — and how
//! ANEK's probabilistic constraints resolve the conflict instead of giving
//! up (§1).
//!
//! Run with `cargo run --example spreadsheet`.

use anek::analysis::MethodId;
use anek::spec_lang::SpecTarget;
use anek::Pipeline;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pipeline = Pipeline::from_sources(&[corpus::FIGURE3])?;
    let report = pipeline.run();

    let id = MethodId::new("Row", "createColIter");
    println!("== The conflicting evidence on {id} ==");
    let summary = &report.inference.summaries[&id];
    let result = summary.result.as_ref().expect("createColIter returns an iterator");
    println!("  p(result is unique)  = {:.3}", result.kind(spec_lang::PermissionKind::Unique));
    for state in ["ALIVE", "HASNEXT", "END"] {
        println!("  p(result in {state:8}) = {:.3}", result.state(state));
    }
    println!(
        "  -> ALIVE outweighs HASNEXT: the lone bad call site in testParseCSV \
         loses to the well-behaved uses (paper §1)."
    );

    let spec = &report.inference.specs[&id];
    let atom = spec.ensures.for_target(&SpecTarget::Result).expect("result spec");
    println!("\n== Extracted specification ==");
    println!("  {id} ensures: {atom}");
    assert_eq!(atom.kind, spec_lang::PermissionKind::Unique, "H3: create* => unique");

    println!("\n== PLURAL verdict ==");
    println!("  warnings before inference: {}", report.warnings_before.warnings.len());
    println!("  warnings after inference:  {}", report.warnings_after.warnings.len());
    for w in &report.warnings_after.warnings {
        println!("    {w}");
    }
    println!(
        "\nThe remaining warnings point at testParseCSV's bare next() calls — \
         exactly the false-positive pattern the paper describes, caught by the \
         sound checker while the rest of the program verifies."
    );
    Ok(())
}
