//! Reviewing inferred annotations by confidence.
//!
//! ANEK's probabilistic summaries come with marginals, so every extracted
//! specification carries a confidence score (the weakest chosen atom's
//! marginal). A reviewer can start from the least certain specs — exactly
//! where conflicting evidence (i.e. likely bugs) lives.
//!
//! Run with `cargo run --release --example annotation_review`.

use anek::Pipeline;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Figure 3's spreadsheet: the conflicting testParseCSV drags down
    // confidence on the specs its evidence touches.
    let pipeline = Pipeline::from_sources(&[corpus::FIGURE3])?;
    let inference = pipeline.infer();

    let mut ranked: Vec<_> = inference
        .specs
        .iter()
        .filter(|(_, s)| !s.is_empty())
        .map(|(id, s)| (inference.confidence.get(id).copied().unwrap_or(1.0), id, s))
        .collect();
    ranked.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite confidence"));

    println!("Inferred specifications, least confident first:\n");
    for (conf, id, spec) in &ranked {
        println!("  [{conf:.2}] {id}");
        if !spec.requires.is_empty() {
            println!("         requires {}", spec.requires);
        }
        if !spec.ensures.is_empty() {
            println!("         ensures  {}", spec.ensures);
        }
    }

    let (least, most) = (ranked.first().expect("specs"), ranked.last().expect("specs"));
    println!(
        "\nLeast certain: {} ({:.2}); most certain: {} ({:.2}).",
        least.1, least.0, most.1, most.0
    );
    assert!(least.0 <= most.0);
    Ok(())
}
