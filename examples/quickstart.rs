//! Quickstart: infer access-permission specifications for a small program
//! and verify it with PLURAL — the paper's §2.1 workflow in ~30 lines.
//!
//! Run with `cargo run --example quickstart`.

use anek::Pipeline;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A client of the annotated iterator API (paper Figures 1–2): the
    // library side ships with specs, the client has none.
    let client = r#"
        class Totals {
            int sumAll(Collection<Integer> values) {
                int total = 0;
                Iterator<Integer> it = values.iterator();
                while (it.hasNext()) {
                    total = total + it.next();
                }
                return total;
            }

            int sumVia(Iterator<Integer> it) {
                int total = 0;
                while (it.hasNext()) {
                    total = total + it.next();
                }
                return total;
            }
        }
    "#;

    let pipeline = Pipeline::from_sources(&[client])?;
    let report = pipeline.run();

    println!("== Inferred specifications ==");
    for (method, spec) in &report.inference.specs {
        if spec.is_empty() {
            continue;
        }
        println!("  {method}:");
        if !spec.requires.is_empty() {
            println!("    requires: {}", spec.requires);
        }
        if !spec.ensures.is_empty() {
            println!("    ensures:  {}", spec.ensures);
        }
    }

    println!("\n== PLURAL verification ==");
    println!("  warnings without annotations: {}", report.warnings_before.warnings.len());
    println!("  warnings after inference:     {}", report.warnings_after.warnings.len());
    println!(
        "  inference: {} model solves in {:?}",
        report.inference.solves, report.inference.elapsed
    );

    println!("\n== Annotated program ==\n{}", report.annotated_source);

    assert!(
        report.warnings_after.warnings.is_empty(),
        "a correct client should verify cleanly after inference"
    );
    Ok(())
}
