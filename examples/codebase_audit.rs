//! A miniature of the paper's PMD experiment (§4.2): generate a small
//! PMD-shaped codebase, run the whole pipeline, and print a Table 2-style
//! comparison of the Original / Gold / ANEK configurations.
//!
//! Run with `cargo run --release --example codebase_audit`.

use anek::corpus::generator::{generate, PmdConfig};
use anek::plural::{check, SpecTable};
use anek::spec_lang::standard_api;
use anek::Pipeline;

fn main() {
    let cfg = PmdConfig::small();
    let corpus = generate(&cfg);
    let api = standard_api();

    println!("== Corpus (Table 1 shape) ==");
    println!("  lines of source:  {}", corpus.stats.lines);
    println!("  classes:          {}", corpus.stats.classes);
    println!("  methods:          {}", corpus.stats.methods);
    println!("  next() calls:     {}", corpus.stats.next_calls);

    // Original: no annotations at all.
    let original = check(&corpus.units, &api, &SpecTable::unannotated(&corpus.units));

    // Gold: the generator's hand-annotation stand-in.
    let mut gold_table = SpecTable::unannotated(&corpus.units);
    for (id, spec) in &corpus.gold {
        gold_table.insert(id.clone(), spec.clone());
    }
    let gold = check(&corpus.units, &api, &gold_table);

    // ANEK: infer, apply, check.
    let mut pipeline = Pipeline::new(corpus.units.clone());
    pipeline.config.max_iters = 4 * corpus.stats.methods;
    let inference = pipeline.infer();
    let merged = SpecTable::unannotated(&corpus.units).overlay_inferred(&inference.specs);
    let anek = check(&corpus.units, &api, &merged);

    println!("\n== Table 2 (miniature) ==");
    println!("  {:<10} {:>12} {:>10} {:>12}", "Method", "Annotations", "Warnings", "Time");
    println!("  {:<10} {:>12} {:>10} {:>12}", "Original", 0, original.warnings.len(), "-");
    println!(
        "  {:<10} {:>12} {:>10} {:>12}",
        "Gold",
        corpus.gold.len(),
        gold.warnings.len(),
        "(by hand)"
    );
    println!(
        "  {:<10} {:>12} {:>10} {:>12}",
        "Anek",
        inference.annotation_count(),
        anek.warnings.len(),
        format!("{:.1?}", inference.elapsed)
    );

    assert!(original.warnings.len() > gold.warnings.len());
    assert!(anek.warnings.len() <= original.warnings.len());
    println!(
        "\nShape matches the paper: inference removes the boundary warnings, \
         the genuinely buggy sites keep warning under the sound checker."
    );
}
