//! Resource management with try/finally — the classic typestate idiom.
//!
//! Streams must be closed exactly once on every path; the pipeline infers
//! the open/close protocol specs for helper methods and PLURAL verifies the
//! close-in-finally pattern while catching a double-close.
//!
//! Run with `cargo run --release --example resource_pipeline`.

use anek::Pipeline;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let client = r#"
        class Etl {
            int records;

            void ingest(StreamFactory f) {
                Stream s = f.open();
                try {
                    s.read();
                    s.read();
                } finally {
                    s.close();
                }
            }

            void ingestAll(StreamFactory f, int n) {
                for (int i = 0; i < n; i++) {
                    Stream s = f.open();
                    try {
                        s.read();
                    } finally {
                        s.close();
                    }
                }
            }

            void doubleClose(StreamFactory f) {
                Stream s = f.open();
                try {
                    s.read();
                } finally {
                    s.close();
                }
                s.close();
            }
        }
    "#;

    let pipeline = Pipeline::from_sources(&[client])?;
    let report = pipeline.run();

    println!("== Verification of the try/finally resource pattern ==");
    println!("  warnings: {}", report.warnings_after.warnings.len());
    for w in &report.warnings_after.warnings {
        println!("    {w}");
    }

    let ok = |m: &str| report.warnings_after.warnings.iter().all(|w| w.method.method != m);
    assert!(ok("ingest"), "close-in-finally should verify");
    assert!(ok("ingestAll"), "per-iteration open/close should verify");
    assert!(!ok("doubleClose"), "the double close must be reported");
    println!(
        "\ningest and ingestAll verify; doubleClose's second close() is caught \
         (CLOSED does not satisfy `full(this) in OPEN`)."
    );
    Ok(())
}
