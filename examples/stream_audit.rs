//! Auditing a second protocol: streams with an OPEN/CLOSED typestate.
//!
//! Nothing in the pipeline is iterator-specific — this example runs the same
//! inference and checking over the `Stream` protocol from the API model
//! (open → read* → close) and demonstrates that a use-after-close bug
//! survives inference and is reported by PLURAL.
//!
//! Run with `cargo run --example stream_audit`.

use anek::Pipeline;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let client = r#"
        class LogShipper {
            int shipped;

            void shipAll(StreamFactory f) {
                Stream s = f.open();
                s.read();
                s.read();
                s.close();
            }

            void pump(Stream s) {
                s.read();
                s.read();
            }

            void shipTwice(StreamFactory f) {
                Stream s = f.open();
                pump(s);
                s.close();
                s.read();
            }
        }
    "#;

    let pipeline = Pipeline::from_sources(&[client])?;
    let report = pipeline.run();

    println!("== Inferred stream specifications ==");
    for (method, spec) in &report.inference.specs {
        if !spec.is_empty() {
            println!("  {method}: requires [{}] ensures [{}]", spec.requires, spec.ensures);
        }
    }

    println!("\n== PLURAL audit ==");
    for w in &report.warnings_after.warnings {
        println!("  {w}");
    }

    // pump() should have inherited "full(s) in OPEN" from its reads…
    let pump = &report.inference.specs[&analysis::MethodId::new("LogShipper", "pump")];
    assert!(!pump.requires.is_empty(), "pump should require an open stream, got nothing");
    // …and the read-after-close in shipTwice must be reported.
    assert!(
        report.warnings_after.warnings.iter().any(|w| w.method.method == "shipTwice"),
        "use-after-close must be caught: {:?}",
        report.warnings_after.warnings
    );
    println!("\nuse-after-close in shipTwice detected; shipAll verifies cleanly.");
    Ok(())
}
