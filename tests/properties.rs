//! Cross-crate property-based tests (proptest).

use anek::factor_graph::{BpOptions, Factor, FactorGraph};
use anek::spec_lang::Permission;
use anek::java_syntax::{parse, print_unit};
use anek::spec_lang::{parse_clause, Fraction, PermissionKind};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fraction arithmetic: (a + b) - b == a for in-range rationals.
    #[test]
    fn fraction_add_sub_round_trip(an in 0i64..500, ad in 1i64..500, bn in 0i64..500, bd in 1i64..500) {
        let a = Fraction::new(an, ad).unwrap();
        let b = Fraction::new(bn, bd).unwrap();
        let sum = a.checked_add(b).unwrap();
        prop_assert_eq!(sum.checked_sub(b).unwrap(), a);
    }

    /// Splitting a fraction into n parts and re-merging restores it.
    #[test]
    fn fraction_split_merge(n in 1u32..12, num in 1i64..100, den in 1i64..100) {
        let f = Fraction::new(num, den).unwrap();
        let part = f.split(n).unwrap();
        let mut acc = Fraction::ZERO;
        for _ in 0..n {
            acc = acc.checked_add(part).unwrap();
        }
        prop_assert_eq!(acc, f);
    }

    /// Permission splitting is downward-closed: any legal split's parts are
    /// individually satisfied by the parent.
    #[test]
    fn split_parts_are_satisfied(parent in 0usize..5, a in 0usize..5, b in 0usize..5) {
        let parent = PermissionKind::ALL[parent];
        let a = PermissionKind::ALL[a];
        let b = PermissionKind::ALL[b];
        if parent.can_split_into(&[a, b]) {
            prop_assert!(parent.satisfies(a));
            prop_assert!(parent.satisfies(b));
            // And never two exclusive writers.
            let writers = [a, b]
                .iter()
                .filter(|k| matches!(k, PermissionKind::Unique | PermissionKind::Full))
                .count();
            prop_assert!(writers <= 1);
        }
    }

    /// Spec clauses survive a print/parse round trip.
    #[test]
    fn clause_round_trip(kind in 0usize..5, target in prop::sample::select(vec!["this", "result", "x", "other"]),
                         state in prop::sample::select(vec![None, Some("HASNEXT"), Some("OPEN"), Some("ALIVE")])) {
        let k = PermissionKind::ALL[kind];
        let text = match state {
            Some(s) => format!("{k}({target}) in {s}"),
            None => format!("{k}({target})"),
        };
        let clause = parse_clause(&text).unwrap();
        let reparsed = parse_clause(&clause.to_string()).unwrap();
        prop_assert_eq!(clause, reparsed);
    }

    /// BP marginals agree with exact enumeration on random small tree-ish
    /// factor graphs.
    #[test]
    fn bp_close_to_exact_on_random_chains(
        priors in prop::collection::vec(0.05f64..0.95, 2..6),
        strengths in prop::collection::vec(0.55f64..0.95, 1..5),
    ) {
        let mut g = FactorGraph::new();
        let vars: Vec<_> = (0..priors.len()).map(|i| g.add_var(format!("v{i}"))).collect();
        for (v, p) in vars.iter().zip(&priors) {
            g.add_factor(Factor::unary(*v, *p));
        }
        // Chain couplings (tree structure => BP is exact at convergence).
        for (w, h) in vars.windows(2).zip(strengths.iter().cycle()) {
            g.add_factor(Factor::soft(vec![w[0], w[1]], *h, |a| a[0] == a[1]));
        }
        let exact = g.solve_exact();
        let bp = g.solve(&BpOptions { max_iterations: 200, tolerance: 1e-9, damping: 0.0 });
        for &v in &vars {
            prop_assert!((bp.prob(v) - exact.prob(v)).abs() < 1e-4,
                "var {v}: bp={} exact={}", bp.prob(v), exact.prob(v));
        }
    }

    /// Random legal split sequences re-merge to the original permission.
    #[test]
    fn permission_split_merge_round_trip(choices in prop::collection::vec(0usize..5, 1..6)) {
        let original = Permission::fresh();
        let mut held = original;
        let mut lent = Vec::new();
        for c in choices {
            let to = PermissionKind::ALL[c];
            if let Ok((retained, l)) = held.split(to) {
                held = retained;
                lent.push(l);
            }
        }
        // Merge everything back, in reverse order.
        for l in lent.into_iter().rev() {
            held = held.merge(l).expect("re-merging lent halves stays within the whole");
        }
        prop_assert_eq!(held.kind, original.kind, "unique is reconstituted");
        prop_assert!(held.fraction.is_one());
    }

    /// Splitting never manufactures strength: the lent part is always
    /// satisfied by the original kind, and the retained part coexists.
    #[test]
    fn split_is_sound(kind in 0usize..5, to in 0usize..5) {
        let k = PermissionKind::ALL[kind];
        let to = PermissionKind::ALL[to];
        if let Ok(p) = Permission::new(k, anek::spec_lang::Fraction::ONE) {
            if let Ok((retained, lent)) = p.split(to) {
                prop_assert!(k.satisfies(lent.kind));
                prop_assert!(k.can_split_into(&[lent.kind, retained.kind]),
                    "{k} -> [{}, {}]", lent.kind, retained.kind);
            }
        }
    }

    /// Printed programs re-parse (generator-shaped random programs).
    #[test]
    fn printer_parser_round_trip(n_methods in 1usize..5, consts in prop::collection::vec(1i64..100, 5)) {
        let mut src = String::from("class P {\n    int field;\n");
        for i in 0..n_methods {
            let c = consts[i % consts.len()];
            src.push_str(&format!(
                "    int m{i}(int x) {{\n        int r = x * {c};\n        if (r > {c}) {{ r = r - 1; }}\n        return r;\n    }}\n"
            ));
        }
        src.push('}');
        let unit = parse(&src).unwrap();
        let printed = print_unit(&unit);
        let reparsed = parse(&printed).unwrap();
        // Printing the reparsed AST is a fixpoint.
        prop_assert_eq!(print_unit(&reparsed), printed);
    }
}

#[test]
fn corpus_generation_is_a_function_of_seed() {
    use anek::corpus::generator::{generate, PmdConfig};
    let a = generate(&PmdConfig::small());
    let b = generate(&PmdConfig::small());
    assert_eq!(a.source, b.source);
}
