//! Cross-crate randomized property tests.
//!
//! These used to be `proptest` suites; the offline build has no crates.io
//! access, so they now run on the in-tree [`prng::forall`] harness (64
//! deterministic cases per property, failing seeds printed for replay).

use anek::factor_graph::{BpOptions, Factor, FactorGraph};
use anek::java_syntax::{parse, print_unit};
use anek::spec_lang::Permission;
use anek::spec_lang::{parse_clause, Fraction, PermissionKind};
use prng::forall;

const CASES: u32 = 64;

/// Fraction arithmetic: (a + b) - b == a for in-range rationals.
#[test]
fn fraction_add_sub_round_trip() {
    forall("fraction_add_sub_round_trip", CASES, |rng| {
        let a = Fraction::new(rng.gen_range(0..500), rng.gen_range(1..500)).unwrap();
        let b = Fraction::new(rng.gen_range(0..500), rng.gen_range(1..500)).unwrap();
        let sum = a.checked_add(b).unwrap();
        assert_eq!(sum.checked_sub(b).unwrap(), a);
    });
}

/// Splitting a fraction into n parts and re-merging restores it.
#[test]
fn fraction_split_merge() {
    forall("fraction_split_merge", CASES, |rng| {
        let n = rng.gen_range(1..12) as u32;
        let f = Fraction::new(rng.gen_range(1..100), rng.gen_range(1..100)).unwrap();
        let part = f.split(n).unwrap();
        let mut acc = Fraction::ZERO;
        for _ in 0..n {
            acc = acc.checked_add(part).unwrap();
        }
        assert_eq!(acc, f);
    });
}

/// Permission splitting is downward-closed: any legal split's parts are
/// individually satisfied by the parent.
#[test]
fn split_parts_are_satisfied() {
    forall("split_parts_are_satisfied", CASES, |rng| {
        let parent = *rng.pick(&PermissionKind::ALL);
        let a = *rng.pick(&PermissionKind::ALL);
        let b = *rng.pick(&PermissionKind::ALL);
        if parent.can_split_into(&[a, b]) {
            assert!(parent.satisfies(a));
            assert!(parent.satisfies(b));
            // And never two exclusive writers.
            let writers = [a, b]
                .iter()
                .filter(|k| matches!(k, PermissionKind::Unique | PermissionKind::Full))
                .count();
            assert!(writers <= 1);
        }
    });
}

/// Spec clauses survive a print/parse round trip.
#[test]
fn clause_round_trip() {
    forall("clause_round_trip", CASES, |rng| {
        let k = *rng.pick(&PermissionKind::ALL);
        let target = *rng.pick(&["this", "result", "x", "other"]);
        let state = *rng.pick(&[None, Some("HASNEXT"), Some("OPEN"), Some("ALIVE")]);
        let text = match state {
            Some(s) => format!("{k}({target}) in {s}"),
            None => format!("{k}({target})"),
        };
        let clause = parse_clause(&text).unwrap();
        let reparsed = parse_clause(&clause.to_string()).unwrap();
        assert_eq!(clause, reparsed);
    });
}

/// BP marginals agree with exact enumeration on random small tree-ish
/// factor graphs.
#[test]
fn bp_close_to_exact_on_random_chains() {
    forall("bp_close_to_exact_on_random_chains", CASES, |rng| {
        let n_vars = rng.gen_index(2..6);
        let priors: Vec<f64> = (0..n_vars).map(|_| 0.05 + rng.gen_f64() * 0.90).collect();
        let n_strengths = rng.gen_index(1..5);
        let strengths: Vec<f64> = (0..n_strengths).map(|_| 0.55 + rng.gen_f64() * 0.40).collect();
        let mut g = FactorGraph::new();
        let vars: Vec<_> = (0..priors.len()).map(|i| g.add_var(format!("v{i}"))).collect();
        for (v, p) in vars.iter().zip(&priors) {
            g.add_factor(Factor::unary(*v, *p));
        }
        // Chain couplings (tree structure => BP is exact at convergence).
        for (w, h) in vars.windows(2).zip(strengths.iter().cycle()) {
            g.add_factor(Factor::soft(vec![w[0], w[1]], *h, |a| a[0] == a[1]));
        }
        let exact = g.solve_exact();
        let bp = g.solve(&BpOptions {
            max_iterations: 200,
            tolerance: 1e-9,
            damping: 0.0,
            ..BpOptions::default()
        });
        for &v in &vars {
            assert!(
                (bp.prob(v) - exact.prob(v)).abs() < 1e-4,
                "var {v}: bp={} exact={}",
                bp.prob(v),
                exact.prob(v)
            );
        }
    });
}

/// Random legal split sequences re-merge to the original permission.
#[test]
fn permission_split_merge_round_trip() {
    forall("permission_split_merge_round_trip", CASES, |rng| {
        let original = Permission::fresh();
        let mut held = original;
        let mut lent = Vec::new();
        for _ in 0..rng.gen_index(1..6) {
            let to = *rng.pick(&PermissionKind::ALL);
            if let Ok((retained, l)) = held.split(to) {
                held = retained;
                lent.push(l);
            }
        }
        // Merge everything back, in reverse order.
        for l in lent.into_iter().rev() {
            held = held.merge(l).expect("re-merging lent halves stays within the whole");
        }
        assert_eq!(held.kind, original.kind, "unique is reconstituted");
        assert!(held.fraction.is_one());
    });
}

/// Splitting never manufactures strength: the lent part is always
/// satisfied by the original kind, and the retained part coexists.
#[test]
fn split_is_sound() {
    forall("split_is_sound", CASES, |rng| {
        let k = *rng.pick(&PermissionKind::ALL);
        let to = *rng.pick(&PermissionKind::ALL);
        if let Ok(p) = Permission::new(k, Fraction::ONE) {
            if let Ok((retained, lent)) = p.split(to) {
                assert!(k.satisfies(lent.kind));
                assert!(
                    k.can_split_into(&[lent.kind, retained.kind]),
                    "{k} -> [{}, {}]",
                    lent.kind,
                    retained.kind
                );
            }
        }
    });
}

/// Printed programs re-parse (generator-shaped random programs).
#[test]
fn printer_parser_round_trip() {
    forall("printer_parser_round_trip", CASES, |rng| {
        let n_methods = rng.gen_index(1..5);
        let consts: Vec<i64> = (0..5).map(|_| rng.gen_range(1..100)).collect();
        let mut src = String::from("class P {\n    int field;\n");
        for i in 0..n_methods {
            let c = consts[i % consts.len()];
            src.push_str(&format!(
                "    int m{i}(int x) {{\n        int r = x * {c};\n        if (r > {c}) {{ r = r - 1; }}\n        return r;\n    }}\n"
            ));
        }
        src.push('}');
        let unit = parse(&src).unwrap();
        let printed = print_unit(&unit);
        let reparsed = parse(&printed).unwrap();
        // Printing the reparsed AST is a fixpoint.
        assert_eq!(print_unit(&reparsed), printed);
    });
}

#[test]
fn corpus_generation_is_a_function_of_seed() {
    use anek::corpus::generator::{generate, PmdConfig};
    let a = generate(&PmdConfig::small());
    let b = generate(&PmdConfig::small());
    assert_eq!(a.source, b.source);
}
