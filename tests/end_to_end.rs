//! Integration tests: the full parse → PFG → infer → apply → check pipeline
//! on the paper's figures and the regression suite.

use anek::analysis::MethodId;
use anek::corpus::{suite, Expectation};
use anek::plural::SpecTable;
use anek::spec_lang::{PermissionKind, SpecTarget, ALIVE};
use anek::Pipeline;

#[test]
fn figure3_full_pipeline() {
    let pipeline = Pipeline::from_sources(&[corpus::FIGURE3]).expect("figure 3 parses");
    let report = pipeline.run();

    // The conflicting-constraint resolution of §1: createColIter returns a
    // unique iterator, and ALIVE beats HASNEXT.
    let id = MethodId::new("Row", "createColIter");
    let spec = &report.inference.specs[&id];
    let atom = spec.ensures.for_target(&SpecTarget::Result).expect("result spec inferred");
    assert_eq!(atom.kind, PermissionKind::Unique);
    assert_eq!(atom.state.as_deref().unwrap_or(ALIVE), ALIVE);

    // Inference must reduce warnings; what remains points at testParseCSV.
    assert!(report.warnings_after.warnings.len() < report.warnings_before.warnings.len());
    assert!(report.warnings_after.warnings.iter().all(|w| w.method.method == "testParseCSV"));
    // Exactly the two bare next() calls.
    assert_eq!(report.warnings_after.warnings.len(), 2, "{:?}", report.warnings_after.warnings);

    // The annotated source is valid Java that reparses with the same spec.
    let reparsed = java_syntax::parse(&report.annotated_source).expect("annotated reparses");
    let row = reparsed.type_named("Row").expect("Row survives");
    let m = row.method_named("createColIter").expect("method survives");
    let round = spec_lang::spec_of_method(m).expect("annotation parses");
    assert!(!round.ensures.is_empty());
}

#[test]
fn figure7_field_pipeline_runs() {
    let pipeline = Pipeline::from_sources(&[corpus::FIGURE7]).expect("figure 7 parses");
    let report = pipeline.run();
    // accessFields writes o.f — the receiver must not be inferred read-only.
    let spec = &report.inference.specs[&MethodId::new("C", "accessFields")];
    if let Some(atom) = spec.requires.for_target(&SpecTarget::Param("o".into())) {
        assert!(atom.kind.allows_write(), "L3 demands a writer, got {}", atom.kind);
    }
}

#[test]
fn regression_suite_expectations_hold() {
    for case in suite() {
        let pipeline = Pipeline::from_sources(&[case.source])
            .unwrap_or_else(|e| panic!("case {}: {e}", case.name));
        let report = pipeline.run();
        for exp in &case.expectations {
            match exp {
                Expectation::RequiresKind { method, target, kind } => {
                    let (atom, id) = find_atom(&report, method, target, true);
                    let got = atom.unwrap_or_else(|| {
                        panic!("case {}: no requires atom for {target} on {id}", case.name)
                    });
                    assert!(
                        got.kind.satisfies(PermissionKind::from_str_opt(kind).unwrap()),
                        "case {}: {id} requires {target}: expected >= {kind}, got {}",
                        case.name,
                        got.kind
                    );
                }
                Expectation::EnsuresKind { method, target, kind } => {
                    let (atom, id) = find_atom(&report, method, target, false);
                    let got = atom.unwrap_or_else(|| {
                        panic!("case {}: no ensures atom for {target} on {id}", case.name)
                    });
                    assert!(
                        got.kind.satisfies(PermissionKind::from_str_opt(kind).unwrap()),
                        "case {}: {id} ensures {target}: expected >= {kind}, got {}",
                        case.name,
                        got.kind
                    );
                }
                Expectation::RequiresState { method, target, state } => {
                    let (atom, id) = find_atom(&report, method, target, true);
                    let got = atom.unwrap_or_else(|| {
                        panic!("case {}: no requires atom for {target} on {id}", case.name)
                    });
                    assert_eq!(
                        got.state.as_deref().unwrap_or(ALIVE),
                        *state,
                        "case {}: {id} requires {target} in wrong state",
                        case.name
                    );
                }
                Expectation::WarningsAfterInference(n) => {
                    assert_eq!(
                        report.warnings_after.warnings.len(),
                        *n,
                        "case {}: {:?}",
                        case.name,
                        report.warnings_after.warnings
                    );
                }
                Expectation::ReceiverNotReadOnly { method } => {
                    let (class, name) = method.split_once('.').expect("Class.method");
                    let id = MethodId::new(class, name);
                    let summary = &report.inference.summaries[&id];
                    let (pre, _) = summary.param("this").expect("receiver slot");
                    let read_only =
                        pre.kind(PermissionKind::Pure).max(pre.kind(PermissionKind::Immutable));
                    let writer = pre
                        .kind(PermissionKind::Unique)
                        .max(pre.kind(PermissionKind::Full))
                        .max(pre.kind(PermissionKind::Share));
                    assert!(
                        writer > read_only && read_only < 0.35,
                        "case {}: read-only kinds should be ruled out: writer={writer:.3} read_only={read_only:.3}",
                        case.name
                    );
                }
            }
        }
    }
}

fn find_atom<'a>(
    report: &'a anek::PipelineReport,
    method: &str,
    target: &str,
    requires: bool,
) -> (Option<&'a spec_lang::PermAtom>, MethodId) {
    let (class, name) = method.split_once('.').expect("Class.method");
    let id = MethodId::new(class, name);
    let spec = report.inference.specs.get(&id).unwrap_or_else(|| panic!("no spec for {id}"));
    let t = match target {
        "this" => SpecTarget::This,
        "result" => SpecTarget::Result,
        p => SpecTarget::Param(p.to_string()),
    };
    let clause = if requires { &spec.requires } else { &spec.ensures };
    (clause.for_target(&t), id)
}

#[test]
fn overlaying_gold_specs_checks_clean_on_helpers() {
    // Gold annotations on Figure 3's createColIter make the good uses
    // verify while testParseCSV still warns (the Bierhoff configuration).
    let unit = java_syntax::parse(corpus::FIGURE3).unwrap();
    let api = spec_lang::standard_api();
    let mut specs = SpecTable::unannotated(std::slice::from_ref(&unit));
    specs.insert(
        MethodId::new("Row", "createColIter"),
        spec_lang::MethodSpec {
            ensures: spec_lang::parse_clause("unique(result) in ALIVE").unwrap(),
            ..Default::default()
        },
    );
    let result = plural::check(std::slice::from_ref(&unit), &api, &specs);
    assert_eq!(result.warnings.len(), 2, "{:?}", result.warnings);
    assert!(result.warnings.iter().all(|w| w.method.method == "testParseCSV"));
}

#[test]
fn inference_then_check_is_deterministic() {
    let run = || {
        let pipeline = Pipeline::from_sources(&[corpus::FIGURE3]).unwrap();
        let report = pipeline.run();
        (
            report.inference.specs.clone(),
            report.warnings_after.warnings.len(),
            report.annotated_source,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
}
