//! Multi-tenant serve invariants: session isolation under faults, eviction
//! byte-identity through the shared store, deadline handling via the `slow`
//! fault, and graceful refusal under a zero admission cap.

use anek::anek_core::InferConfig;
use anek::store::Store;
use anek::{SendStatus, Server, ServerOptions, ShedPolicy};
use std::path::PathBuf;
use std::sync::Arc;

const TWO_METHODS: &str = "class App { void copy(Iterator<Integer> it) { it.next(); } \
                           void other(Iterator<Integer> it) { it.hasNext(); } }";

fn temp_store(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("anek-serve-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn load_line(id: usize, session: &str) -> String {
    let text = TWO_METHODS.replace('"', "\\\"");
    format!(
        r#"{{"id":{id},"method":"load_sources","params":{{"session":"{session}","sources":[{{"name":"App.java","text":"{text}"}}]}}}}"#
    )
}

/// Runs a scripted trace through one server client and returns the
/// responses in request order.
fn run_trace(server: &Server, lines: &[String]) -> Vec<String> {
    let mut client = server.connect();
    for line in lines {
        client.send(line);
    }
    client.close();
    let mut got = Vec::new();
    while let Some((line, _)) = client.recv() {
        got.push(line);
    }
    got
}

/// A fault injected into session A (a panic plus a `slow` delay) must not
/// change a single byte of session B's transcript.
#[test]
fn faults_in_one_session_leave_others_byte_identical() {
    let b_trace = [
        load_line(1, "b"),
        r#"{"id":2,"method":"query_spec","params":{"session":"b","method":"App.copy"}}"#.into(),
        r#"{"id":3,"method":"query_outcomes","params":{"session":"b"}}"#.into(),
    ];
    // Reference: session b alone on a quiet server.
    let quiet = Server::start(InferConfig::default(), None, ServerOptions::default());
    let expected = run_trace(&quiet, &b_trace);

    // Same trace while session a is panicking and slowed.
    let noisy = Server::start(InferConfig::default(), None, ServerOptions::default());
    let a_fault = [
        load_line(1, "a"),
        r#"{"id":2,"method":"inject_faults","params":{"session":"a","plan":"panic App.copy\nslow App.other 50"}}"#
            .into(),
        r#"{"id":3,"method":"query_outcomes","params":{"session":"a"}}"#.into(),
    ];
    let a_responses = run_trace(&noisy, &a_fault);
    assert!(
        a_responses[2].contains("\"status\":\"failed\""),
        "the fault must land in a: {}",
        a_responses[2]
    );
    let b_responses = run_trace(&noisy, &b_trace);
    assert_eq!(b_responses, expected, "session b must not observe a's faults");
}

/// Evicting a session's heavyweight state under a tiny memory budget must
/// be invisible to queries: the re-solve replays the shared store and
/// reproduces byte-identical specs.
#[test]
fn eviction_is_byte_identical_through_the_shared_store() {
    let dir = temp_store("evict");
    let store = Arc::new(Store::open(&dir).expect("open store"));
    let spec_query = |id: usize, session: &str| {
        format!(
            r#"{{"id":{id},"method":"query_spec","params":{{"session":"{session}","method":"App.copy"}}}}"#
        )
    };
    // Reference response with no budget pressure.
    let roomy =
        Server::start(InferConfig::default(), Some(Arc::clone(&store)), ServerOptions::default());
    let expected = run_trace(&roomy, &[load_line(1, "a"), spec_query(2, "a")]);

    // One-byte budget: loading b evicts a; a's next query re-solves warm.
    let tight = Server::start(
        InferConfig::default(),
        Some(Arc::clone(&store)),
        ServerOptions { memory_budget_bytes: 1, ..ServerOptions::default() },
    );
    let got = run_trace(&tight, &[load_line(1, "a"), load_line(10, "b"), spec_query(2, "a")]);
    assert!(tight.registry().evictions.load(std::sync::atomic::Ordering::Relaxed) >= 1);
    // Load responses carry memo counters that legitimately differ between
    // the cold and warm run; the spec answer is the byte-stable claim.
    assert_eq!(got[2], expected[1], "post-eviction spec is byte-identical");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A `slow` fault pushes the solve past `deadline_ms`: the request still
/// answers, flags the deadline, and the outcome table reports
/// `deadline-expired` — while a later full run clears it.
#[test]
fn slow_fault_with_deadline_degrades_then_recovers() {
    let server = Server::start(InferConfig::default(), None, ServerOptions::default());
    // Arm the delay first and let that re-solve finish, so the deadline in
    // the next trace is spent inside the solve, not waiting in the queue.
    let arm = [
        load_line(1, "d"),
        r#"{"id":2,"method":"inject_faults","params":{"session":"d","plan":"slow App.* 120"}}"#
            .into(),
    ];
    run_trace(&server, &arm);

    let trace = [
        format!(
            r#"{{"id":3,"method":"update_source","params":{{"session":"d","name":"App.java","text":"{}","deadline_ms":60}}}}"#,
            TWO_METHODS.replace('"', "\\\"")
        ),
        r#"{"id":4,"method":"query_outcomes","params":{"session":"d"}}"#.into(),
    ];
    let got = run_trace(&server, &trace);
    assert!(got[0].contains("\"deadline\":true"), "mutator flags the deadline: {}", got[0]);
    assert!(
        got[1].contains("deadline-expired"),
        "outcomes keep the deadline degradation observable: {}",
        got[1]
    );
    assert!(!got[1].contains("\"status\":\"failed\""), "a deadline is degradation, not failure");

    // Recovery in a second trace (a single trace would coalesce the two
    // update_source requests): the same edit with no deadline completes.
    let recovery = [
        format!(
            r#"{{"id":5,"method":"update_source","params":{{"session":"d","name":"App.java","text":"{}"}}}}"#,
            TWO_METHODS.replace('"', "\\\"")
        ),
        r#"{"id":6,"method":"query_outcomes","params":{"session":"d"}}"#.into(),
    ];
    let got = run_trace(&server, &recovery);
    assert!(!got[0].contains("\"deadline\":true"), "undeadlined run completes: {}", got[0]);
    assert!(!got[1].contains("deadline-expired"), "full run clears the degradation: {}", got[1]);
}

/// A request whose deadline passed while it waited in the queue is
/// cancelled with a structured `deadline` error, never silently dropped.
#[test]
fn queued_request_past_its_deadline_is_cancelled() {
    let server = Server::start(InferConfig::default(), None, ServerOptions::default());
    let mut client = server.connect();
    server.scheduler().hold(true);
    client.send(&load_line(1, "x"));
    let line = r#"{"id":2,"method":"update_source","params":{"session":"x","name":"App.java","text":"class App {}","deadline_ms":0}}"#;
    assert_eq!(client.send(line), SendStatus::Queued);
    server.scheduler().hold(false);
    client.close();
    let responses: Vec<String> = std::iter::from_fn(|| client.recv().map(|(l, _)| l)).collect();
    assert!(responses[1].contains("\"code\":\"deadline\""), "{}", responses[1]);
    let cancelled =
        server.scheduler().counters.deadline_cancelled.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(cancelled, 1);
}

/// `--admission-cap 0` (reject_depth 0) refuses every solving request with
/// `retry_after_ms` but keeps control and query requests answering.
#[test]
fn zero_admission_cap_rejects_solves_but_stays_observable() {
    let server = Server::start(
        InferConfig::default(),
        None,
        ServerOptions {
            policy: ShedPolicy { screen_depth: 0, reject_depth: 0, retry_after_ms: 25 },
            ..ServerOptions::default()
        },
    );
    let mut client = server.connect();
    assert!(matches!(client.send(&load_line(1, "z")), SendStatus::Rejected { retry_after_ms: 25 }));
    client.send(r#"{"id":2,"method":"server_stats"}"#);
    client.send(r#"{"id":3,"method":"shutdown"}"#);
    client.close();
    let responses: Vec<String> = std::iter::from_fn(|| client.recv().map(|(l, _)| l)).collect();
    assert!(responses[0].contains("\"code\":\"overloaded\""), "{}", responses[0]);
    assert!(responses[0].contains("\"retry_after_ms\":25"), "{}", responses[0]);
    assert!(responses[1].contains("\"rejected\":1"), "{}", responses[1]);
    assert!(responses[2].contains("\"ok\":true"), "{}", responses[2]);
    server.join();
}

/// Stacked edits to one source coalesce: the superseded requests answer
/// `{"superseded":true}` and only the newest edit's state is observable.
#[test]
fn stacked_edits_coalesce_and_final_state_wins() {
    let server = Server::start(InferConfig::default(), None, ServerOptions::default());
    let mut client = server.connect();
    client.send(&load_line(1, "c"));
    server.scheduler().hold(true);
    let edit = |id: usize, body: &str| {
        format!(
            r#"{{"id":{id},"method":"update_source","params":{{"session":"c","name":"App.java","text":"class App {{ void copy(Iterator<Integer> it) {{ {body} }} }}"}}}}"#
        )
    };
    client.send(&edit(2, "it.hasNext();"));
    client.send(&edit(3, "it.next();"));
    client.send(r#"{"id":4,"method":"query_spec","params":{"session":"c","method":"App.copy"}}"#);
    server.scheduler().hold(false);
    client.close();
    let responses: Vec<String> = std::iter::from_fn(|| client.recv().map(|(l, _)| l)).collect();
    assert!(responses[1].contains("\"superseded\":true"), "{}", responses[1]);
    let coalesced =
        server.scheduler().counters.coalesced.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(coalesced, 1);
    // The surviving edit calls next(): the spec must require a write-capable
    // permission, proving the newest edit (not the superseded one) ran.
    assert!(responses[3].contains("\"requires\""), "{}", responses[3]);
    assert!(!responses[3].contains("error"), "{}", responses[3]);
}
