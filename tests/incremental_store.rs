//! End-to-end incremental-equivalence gate: against a PMD-shaped corpus,
//! edit one method body, and verify that a warm incremental run through the
//! persistent store is **byte-identical** to a cold full run on the edited
//! program — at `--threads 1` and `--threads 4` — while re-solving strictly
//! fewer methods.

use anek::anek_core::InferResult;
use anek::store::Store;
use anek::Pipeline;
use std::path::PathBuf;
use std::sync::Arc;

fn temp_store(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("anek-incr-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Every byte of observable output: specs, summaries (full f64 bit
/// precision via Debug's shortest-round-trip formatting), confidence and
/// the outcome table.
fn rendering(result: &InferResult) -> String {
    format!(
        "{:?}\n{:?}\n{:?}\n{}",
        result.specs,
        result.summaries,
        result.confidence,
        result.outcome_table()
    )
}

fn run(sources: &[String], threads: usize, store: Option<&Arc<Store>>) -> InferResult {
    let mut pipeline =
        Pipeline::from_sources(sources).expect("corpus parses").with_threads(threads);
    if let Some(store) = store {
        pipeline = pipeline.with_store(Arc::clone(store));
    }
    pipeline.infer()
}

#[test]
fn warm_incremental_is_byte_identical_to_cold_at_both_thread_counts() {
    let corpus = corpus::generate(&corpus::PmdConfig::small());
    let original: Vec<String> = corpus.units.iter().map(java_syntax::print_unit).collect();

    // Edit exactly one method body: append a statement after the first
    // `.next();` in the first source that has one. Body-only, so only the
    // edited unit's fingerprint changes.
    let mut edited = original.clone();
    let target =
        edited.iter().position(|s| s.contains(".next();")).expect("corpus contains a next() call");
    edited[target] = edited[target].replacen(".next();", ".next();\nint __edited = 1;", 1);
    assert_ne!(edited[target], original[target]);

    for threads in [1usize, 4] {
        // Cold baseline on the edited program, with a fresh store so its
        // memo counters give the full-solve count.
        let cold_dir = temp_store(&format!("cold-{threads}"));
        let cold_store = Arc::new(Store::open(&cold_dir).expect("open cold store"));
        let cold = run(&edited, threads, Some(&cold_store));
        assert_eq!(cold.memo_hits + cold.memo_misses, cold.solves);

        // Warm store: a full run on the *original* program. (A cold run may
        // still record a few memo hits: the worklist can revisit a method
        // whose dynamic inputs converged back to an identical key.)
        let warm_dir = temp_store(&format!("warm-{threads}"));
        let warm_store = Arc::new(Store::open(&warm_dir).expect("open warm store"));
        let warmup = run(&original, threads, Some(&warm_store));
        assert!(warmup.memo_misses > 0, "first run of a fresh store must solve");

        // The incremental run: edited program against the warm store.
        let warm = run(&edited, threads, Some(&warm_store));

        assert_eq!(
            rendering(&warm),
            rendering(&cold),
            "threads={threads}: warm incremental output must be byte-identical to a cold run"
        );
        assert!(warm.memo_hits > 0, "threads={threads}: warm run must reuse cached solves");
        assert!(warm.memo_misses > 0, "threads={threads}: the edited method must re-solve");
        assert!(
            warm.memo_misses < cold.memo_misses,
            "threads={threads}: warm run must re-solve strictly fewer methods \
             (warm {} vs cold {})",
            warm.memo_misses,
            cold.memo_misses
        );

        let _ = std::fs::remove_dir_all(&cold_dir);
        let _ = std::fs::remove_dir_all(&warm_dir);
    }
}

#[test]
fn unchanged_rerun_is_fully_memoized() {
    let sources = vec![
        "class App { void drain(Iterator<Integer> it) { while (it.hasNext()) { it.next(); } } }"
            .to_string(),
        "class Row { Collection<Integer> entries; Iterator<Integer> iter() { return entries.iterator(); } }"
            .to_string(),
    ];
    let dir = temp_store("norerun");
    let store = Arc::new(Store::open(&dir).expect("open"));
    let first = run(&sources, 1, Some(&store));
    assert!(first.memo_misses > 0);
    let second = run(&sources, 1, Some(&store));
    assert_eq!(second.memo_misses, 0, "nothing changed, nothing re-solves");
    assert_eq!(second.memo_hits, second.solves);
    assert_eq!(rendering(&first), rendering(&second));
    // And across processes: a fresh Store reading the same directory.
    let reopened = Arc::new(Store::open(&dir).expect("reopen"));
    let third = run(&sources, 1, Some(&reopened));
    assert_eq!(third.memo_misses, 0, "warmth persists on disk");
    assert_eq!(rendering(&first), rendering(&third));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn interface_edit_invalidates_conservatively() {
    let base = vec![
        "class A { void use(Iterator<Integer> it) { it.next(); } }".to_string(),
        "class B { int f; }".to_string(),
    ];
    let dir = temp_store("iface");
    let store = Arc::new(Store::open(&dir).expect("open"));
    let first = run(&base, 1, Some(&store));
    assert!(first.memo_misses > 0);
    // Adding a field to B changes the program interface: every method's
    // static key changes, so nothing recorded by the first run is reusable.
    // The warm-store run must match a cold fresh-store run solve for solve
    // (within-run revisit hits are fine — they happen cold too).
    let mut edited = base.clone();
    edited[1] = "class B { int f; int g; }".to_string();
    let second = run(&edited, 1, Some(&store));
    let cold_dir = temp_store("iface-cold");
    let cold_store = Arc::new(Store::open(&cold_dir).expect("open"));
    let cold = run(&edited, 1, Some(&cold_store));
    assert_eq!(
        (second.memo_hits, second.memo_misses),
        (cold.memo_hits, cold.memo_misses),
        "interface edits must leave no cross-run reuse"
    );
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&cold_dir);
}
