//! CLI contract tests for the `anek` binary: the documented exit codes
//! (0 success, 1 runtime failure, 2 usage error, 3 partial result), the
//! `--store` flag, and a scripted `serve --stdio` session.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::{Command, Output, Stdio};

fn anek() -> Command {
    Command::new(env!("CARGO_BIN_EXE_anek"))
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("anek-cli-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn write(dir: &Path, name: &str, text: &str) -> PathBuf {
    let path = dir.join(name);
    std::fs::write(&path, text).expect("write source");
    path
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("no signal")
}

const DRAIN: &str =
    "class App { void drain(Iterator<Integer> it) { while (it.hasNext()) { it.next(); } } }";

#[test]
fn exit_zero_on_clean_infer() {
    let dir = temp_dir("ok");
    let src = write(&dir, "App.java", DRAIN);
    let out = anek().arg("infer").arg(&src).output().expect("run");
    assert_eq!(code(&out), 0, "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("App.drain"), "specs printed: {stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn exit_two_on_usage_errors() {
    // No subcommand at all.
    let out = anek().output().expect("run");
    assert_eq!(code(&out), 2);
    assert!(String::from_utf8_lossy(&out.stderr).contains("exit codes"));
    // Unknown subcommand.
    let out = anek().arg("transmogrify").output().expect("run");
    assert_eq!(code(&out), 2);
    // Unknown flag.
    let out = anek().args(["infer", "--frobnicate", "x.java"]).output().expect("run");
    assert_eq!(code(&out), 2);
    // Flag missing its argument.
    let out = anek().args(["infer", "--threads"]).output().expect("run");
    assert_eq!(code(&out), 2);
    // No input files.
    let out = anek().arg("infer").output().expect("run");
    assert_eq!(code(&out), 2);
    // serve needs a transport.
    let out = anek().arg("serve").output().expect("run");
    assert_eq!(code(&out), 2);
    // --help is not an error.
    let out = anek().arg("--help").output().expect("run");
    assert_eq!(code(&out), 0);
    assert!(String::from_utf8_lossy(&out.stdout).contains("exit codes"));
}

#[test]
fn exit_one_on_runtime_failure() {
    let out = anek().args(["infer", "/nonexistent/Nope.java"]).output().expect("run");
    assert_eq!(code(&out), 1);
}

#[test]
fn exit_three_on_partial_result() {
    let dir = temp_dir("partial");
    let src = write(&dir, "App.java", DRAIN);
    let plan = write(&dir, "plan.txt", "panic App.drain\n");
    let out = anek()
        .args(["infer", "--inject"])
        .arg(&plan)
        .arg("--outcomes")
        .arg(&src)
        .output()
        .expect("run");
    assert_eq!(code(&out), 3, "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("App.drain\tfailed"), "outcome table shows the failure: {stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_flag_makes_second_run_warm_and_identical() {
    let dir = temp_dir("store");
    let src = write(&dir, "App.java", DRAIN);
    let store = dir.join("store");
    let run = || {
        anek().args(["infer", "--outcomes", "--store"]).arg(&store).arg(&src).output().expect("run")
    };
    let first = run();
    assert_eq!(code(&first), 0, "stderr: {}", String::from_utf8_lossy(&first.stderr));
    assert!(store.join("manifest.bin").exists(), "store materialized on disk");
    let second = run();
    assert_eq!(code(&second), 0);
    assert_eq!(first.stdout, second.stdout, "warm stdout is byte-identical to cold");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_stdio_runs_a_full_session() {
    let dir = temp_dir("serve");
    let store = dir.join("store");
    let source_json = DRAIN.replace('"', "\\\"");
    let session = [
        format!(
            r#"{{"id":1,"method":"load_sources","params":{{"sources":[{{"name":"App.java","text":"{source_json}"}}]}}}}"#
        ),
        r#"{"id":2,"method":"query_spec","params":{"method":"App.drain"}}"#.to_string(),
        r#"{"id":3,"method":"inject_faults","params":{"plan":"panic App.drain"}}"#.to_string(),
        r#"{"id":4,"method":"query_outcomes"}"#.to_string(),
        r#"{"id":5,"method":"stats"}"#.to_string(),
        r#"{"id":6,"method":"shutdown"}"#.to_string(),
    ]
    .join("\n")
        + "\n";

    let mut child = anek()
        .args(["serve", "--stdio", "--store"])
        .arg(&store)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");
    child.stdin.as_mut().expect("stdin").write_all(session.as_bytes()).expect("write");
    let out = child.wait_with_output().expect("wait");
    assert_eq!(code(&out), 0, "stderr: {}", String::from_utf8_lossy(&out.stderr));

    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 6, "one response per request: {stdout}");
    assert!(lines[0].contains(r#""id":1"#) && lines[0].contains(r#""loaded":1"#));
    assert!(lines[1].contains(r#""requires""#) && lines[1].contains("it"), "{}", lines[1]);
    assert!(lines[2].contains(r#""failed":["App.drain"]"#), "{}", lines[2]);
    assert!(
        lines[3].contains(r#""status":"failed""#),
        "outcomes report the injected failure: {}",
        lines[3]
    );
    assert!(lines[4].contains(r#""corrupt_entries":0"#), "{}", lines[4]);
    assert!(
        lines[4].contains(r#""discarded_solves""#) && lines[4].contains(r#""screened_methods""#),
        "stats surfaces the worklist and screening counters: {}",
        lines[4]
    );
    assert!(lines[5].contains(r#""ok":true"#), "{}", lines[5]);
    assert!(store.join("manifest.bin").exists(), "shutdown flushed the store");
    let _ = std::fs::remove_dir_all(&dir);
}
