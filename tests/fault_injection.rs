//! Golden degraded-mode run: the full pipeline over a corpus with injected
//! faults still infers, applies, and PLURAL-checks everything healthy.
//!
//! This is the end-to-end contract of the fault-isolation work: one
//! poisoned method (or one corrupted source file) costs exactly itself —
//! the Table-2-shaped results for the healthy subset are byte-identical to
//! a clean run, and the report records precisely what was lost.

use anek::analysis::MethodId;
use anek::Pipeline;
use anek_core::{FaultInjection, InferConfig};
use corpus::FaultPlan;

/// A class with no call edge into or out of Figure 3.
const ISLAND: &str = "class Island { void roam(Collection<Integer> c) { \
     Iterator<Integer> it = c.iterator(); \
     while (it.hasNext()) { it.next(); } } }";

#[test]
fn poisoned_method_costs_exactly_itself() {
    let sources = [corpus::FIGURE3, ISLAND];
    let clean = Pipeline::from_sources(&sources).expect("corpus parses").run();

    let mut pipeline = Pipeline::from_sources(&sources).expect("corpus parses");
    pipeline.config.faults.panic_methods.push("Island.roam".into());
    let faulted = pipeline.run();

    // The poisoned method is recorded as failed; the run itself completed.
    assert!(faulted.inference.outcomes[&MethodId::new("Island", "roam")].is_failed());
    assert_eq!(faulted.inference.failed_count(), 1, "{}", faulted.outcome_table());
    assert!(!faulted.fully_ok());

    // Table-2 shape for the healthy subset: same specs, same warning set,
    // same annotation count contribution — bit for bit.
    for (method, spec) in &clean.inference.specs {
        if method.class == "Island" {
            continue;
        }
        assert_eq!(
            faulted.inference.specs.get(method),
            Some(spec),
            "{method}: healthy spec changed under the fault"
        );
    }
    assert_eq!(
        faulted.warnings_after.warnings, clean.warnings_after.warnings,
        "PLURAL verdicts on the healthy subset must not move"
    );
    assert!(
        faulted.warnings_after.warnings.iter().all(|w| w.method.method == "testParseCSV"),
        "remaining warnings still point at the genuine bug: {:?}",
        faulted.warnings_after.warnings
    );
    assert!(faulted.annotations_applied > 0);
}

#[test]
fn corrupted_source_is_skipped_and_the_rest_still_checked() {
    // Truncating the island file mid-class makes it unparseable; the
    // lenient pipeline must drop it, record why, and still run Figure 3
    // end to end with identical results.
    let mut plan = FaultPlan::parse("seed 7\ntruncate 1 40\n").expect("plan parses");
    let mut sources: Vec<String> = vec![corpus::FIGURE3.to_string(), ISLAND.to_string()];
    plan.apply_sources(&mut sources);
    assert!(sources[1].len() < ISLAND.len(), "truncation applied");

    let pipeline = Pipeline::from_sources_lenient(&sources);
    assert_eq!(pipeline.skipped_sources.len(), 1, "island must fail to parse");
    assert_eq!(pipeline.skipped_sources[0].index, 1);
    let report = pipeline.run();
    assert_eq!(report.skipped_sources.len(), 1);
    assert!(!report.fully_ok());

    let clean = Pipeline::from_sources(&[corpus::FIGURE3]).unwrap().run();
    assert_eq!(report.inference.specs, clean.inference.specs);
    assert_eq!(report.warnings_after.warnings, clean.warnings_after.warnings);

    // Replayability: the rendered plan parses back to the same plan.
    plan = FaultPlan::parse(&plan.to_string()).expect("roundtrip");
    let mut again: Vec<String> = vec![corpus::FIGURE3.to_string(), ISLAND.to_string()];
    plan.apply_sources(&mut again);
    assert_eq!(again, sources, "replayed plan reproduces the corruption byte-for-byte");
}

#[test]
fn fault_plan_configures_the_pipeline() {
    let plan = FaultPlan::parse(
        "seed 1\npanic Spreadsheet.copy\nnan Row.*\noversize Island.roam 4096\n\
         slow Spreadsheet.copy 50\nbp-max-iters 12\nmax-model-vars 2048\n",
    )
    .expect("plan parses");
    let mut config = InferConfig::default();
    plan.apply_config(&mut config);
    assert_eq!(
        config.faults,
        FaultInjection {
            panic_methods: vec!["Spreadsheet.copy".into()],
            nan_methods: vec!["Row.*".into()],
            oversize_methods: vec![("Island.roam".into(), 4096)],
            slow_methods: vec![("Spreadsheet.copy".into(), 50)],
        }
    );
    assert_eq!(config.bp.max_iterations, 12);
    assert_eq!(config.max_model_vars, 2048);
}

#[test]
fn faulted_pipeline_is_deterministic_across_thread_counts() {
    let sources = [corpus::FIGURE3, ISLAND];
    let run = |threads: usize| {
        let mut pipeline = Pipeline::from_sources(&sources).unwrap().with_threads(threads);
        pipeline.config.faults.panic_methods.push("Spreadsheet.copy".into());
        pipeline.config.faults.nan_methods.push("Island.*".into());
        let report = pipeline.run();
        (report.outcome_table(), format!("{:?}", report.inference.specs))
    };
    let base = run(1);
    for threads in [2, 4] {
        assert_eq!(run(threads), base, "threads={threads} diverged under faults");
    }
}
