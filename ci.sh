#!/usr/bin/env bash
# CI gate for the workspace. Run from the repo root:
#
#   ./ci.sh            # full gate
#   ./ci.sh --fast     # skip the release build + corpus self-check
#
# Steps: formatting, clippy (warnings are errors), release build, the full
# test suite, and an `anek lint` self-check that regenerates the seeded
# PMD-shaped corpus and verifies the linter reports exactly the 3 planted
# protocol bugs (and nothing else).

set -euo pipefail
cd "$(dirname "$0")"

# The inference worklist clamps worker counts to the available cores (an
# oversubscribed speculative solve is pure waste). CI runners are often
# single-core, which would silently turn every `--threads 4` gate below into
# a sequential run; lifting the clamp keeps the speculative commit pipeline
# exercised. Results are byte-identical either way — that is what the gates
# verify.
export ANEK_OVERSUBSCRIBE=1

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

step() { printf '\n==> %s\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all -- --check

step "cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

if [[ $fast -eq 0 ]]; then
  step "cargo build --release"
  cargo build --release --workspace
fi

step "cargo test"
cargo test -q --workspace

if [[ $fast -eq 0 ]]; then
  step "inference determinism gate (threads 1 vs 4)"
  tmp="$(mktemp -d)"
  trap 'rm -rf "$tmp"' EXIT
  ./target/release/anek corpus "$tmp/det" --small 2>/dev/null
  ./target/release/anek infer --threads 1 "$tmp"/det/*.java 2>/dev/null >"$tmp/specs.t1"
  ./target/release/anek infer --threads 4 "$tmp"/det/*.java 2>/dev/null >"$tmp/specs.t4"
  if ! diff -u "$tmp/specs.t1" "$tmp/specs.t4"; then
    echo "determinism gate failed: --threads 1 and --threads 4 inferred different specs" >&2
    exit 1
  fi
  echo "determinism gate ok: identical specs for threads 1 and 4"

  step "fault-injection gate (partial results, exit 3, threads 1 vs 4)"
  mkdir -p "$tmp/faults"
  cat >"$tmp/faults/Row.java" <<'EOF'
class Row {
    Collection<Integer> entries;
    Iterator<Integer> createColIter() { return entries.iterator(); }
    void add(int val) { }
}
EOF
  cat >"$tmp/faults/App.java" <<'EOF'
class App {
    Row copy(Row original) {
        Iterator<Integer> iter = original.createColIter();
        Row result = new Row();
        while (iter.hasNext()) { result.add(iter.next()); }
        return result;
    }
}
EOF
  cat >"$tmp/faults/plan.txt" <<'EOF'
seed 42
panic App.copy
nan Row.add
EOF
  # A poisoned method must cost exactly itself: the run completes, prints a
  # partial report, and signals partial results with the documented exit 3.
  set +e
  ./target/release/anek infer --threads 1 --inject "$tmp/faults/plan.txt" --outcomes \
    "$tmp/faults/Row.java" "$tmp/faults/App.java" 2>/dev/null >"$tmp/faults/out.t1"
  rc1=$?
  ./target/release/anek infer --threads 4 --inject "$tmp/faults/plan.txt" --outcomes \
    "$tmp/faults/Row.java" "$tmp/faults/App.java" 2>/dev/null >"$tmp/faults/out.t4"
  rc4=$?
  set -e
  if [[ "$rc1" != 3 || "$rc4" != 3 ]]; then
    echo "fault gate failed: expected exit 3 (partial results), got $rc1 / $rc4" >&2
    exit 1
  fi
  if ! diff -u "$tmp/faults/out.t1" "$tmp/faults/out.t4"; then
    echo "fault gate failed: faulted outcome tables differ between threads 1 and 4" >&2
    exit 1
  fi
  if ! grep -q 'App.copy	failed	solve panicked: injected fault' "$tmp/faults/out.t1"; then
    echo "fault gate failed: injected panic not reported in the outcome table" >&2
    cat "$tmp/faults/out.t1" >&2
    exit 1
  fi
  if ! grep -q 'Row.createColIter' "$tmp/faults/out.t1"; then
    echo "fault gate failed: healthy methods missing from the partial report" >&2
    cat "$tmp/faults/out.t1" >&2
    exit 1
  fi
  echo "fault gate ok: partial report, exit 3, byte-identical across thread counts"

  step "serve gate (scripted stdio session vs golden transcript)"
  ./target/release/anek serve --stdio --store "$tmp/serve-store" \
    <tests/golden/serve_session.jsonl 2>/dev/null >"$tmp/serve.out"
  if ! diff -u tests/golden/serve_transcript.golden "$tmp/serve.out"; then
    echo "serve gate failed: transcript drifted from tests/golden/serve_transcript.golden" >&2
    echo "(if the drift is intentional, regenerate the golden with the command above)" >&2
    exit 1
  fi
  echo "serve gate ok: byte-identical transcript"

  step "serve overload gate (admission-cap 0 rejects with retry hints, vs golden)"
  ./target/release/anek serve --stdio --admission-cap 0 --store "$tmp/serve-overload-store" \
    <tests/golden/serve_overload_session.jsonl 2>/dev/null >"$tmp/serve-overload.out"
  if ! diff -u tests/golden/serve_overload_transcript.golden "$tmp/serve-overload.out"; then
    echo "serve overload gate failed: reject path drifted from tests/golden/serve_overload_transcript.golden" >&2
    exit 1
  fi
  echo "serve overload gate ok: structured overloaded/retry_after_ms rejections"

  step "store warm-vs-cold determinism gate (threads 1 and 4)"
  mkdir -p "$tmp/incr"
  cp "$tmp"/det/*.java "$tmp/incr/"
  # Body-only edit of one method in one unit.
  edit_target="$(grep -l 'next();' "$tmp"/incr/*.java | head -1)"
  sed -i '0,/next();/s//next();\n        int __ci_edit = 1;/' "$edit_target"
  for threads in 1 4; do
    ./target/release/anek infer --threads "$threads" --outcomes \
      "$tmp"/incr/*.java 2>/dev/null >"$tmp/incr.cold.t$threads"
    # Warm the store on the *original* sources, then run the edited ones.
    rm -rf "$tmp/incr-store"
    ./target/release/anek infer --threads "$threads" --store "$tmp/incr-store" \
      "$tmp"/det/*.java 2>/dev/null >/dev/null
    ./target/release/anek infer --threads "$threads" --outcomes --store "$tmp/incr-store" \
      "$tmp"/incr/*.java 2>/dev/null >"$tmp/incr.warm.t$threads"
    if ! diff -u "$tmp/incr.cold.t$threads" "$tmp/incr.warm.t$threads"; then
      echo "store gate failed: warm incremental output differs from cold at --threads $threads" >&2
      exit 1
    fi
  done
  echo "store gate ok: warm incremental byte-identical to cold at threads 1 and 4"

  step "bench smoke (table2 --small + BENCH_infer.json)"
  (cd "$tmp" && "$OLDPWD/target/release/table2" --small >/dev/null)
  if ! grep -q '"bench": "infer"' "$tmp/BENCH_infer.json"; then
    echo "bench smoke failed: BENCH_infer.json missing or malformed" >&2
    exit 1
  fi
  echo "bench smoke ok: BENCH_infer.json written"

  step "bench regression gate (residual updates <= sweep, wall within 20% of baseline)"
  ./target/release/bench_gate "$tmp/BENCH_infer.json" tests/golden/bench_baseline_small.json

  step "check-engine bench smoke (check_bench --small + BENCH_check.json)"
  (cd "$tmp" && "$OLDPWD/target/release/check_bench" --small >/dev/null)
  if ! grep -q '"bench": "check"' "$tmp/BENCH_check.json"; then
    echo "check bench smoke failed: BENCH_check.json missing or malformed" >&2
    exit 1
  fi
  echo "check bench smoke ok: BENCH_check.json written (100x criterion enforced at paper scale)"

  step "--screen determinism gate (small corpus, threads 1 vs 4)"
  # The screening pre-pass must (a) produce byte-identical output at any
  # thread count, and (b) leave every non-screened method's spec and
  # outcome row byte-identical to the full (unscreened) run. Screened
  # methods print no spec blocks and report `screened` outcomes, so both
  # sides are filtered down to the non-screened set before comparing.
  ./target/release/anek infer --outcomes --max-iters 2000 --threads 1 \
    "$tmp"/det/*.java 2>"$tmp/screen.full.err" >"$tmp/screen.full"
  ./target/release/anek infer --outcomes --screen --max-iters 2000 --threads 1 \
    "$tmp"/det/*.java 2>"$tmp/screen.t1.err" >"$tmp/screen.t1"
  ./target/release/anek infer --outcomes --screen --max-iters 2000 --threads 4 \
    "$tmp"/det/*.java 2>/dev/null >"$tmp/screen.t4"
  if ! cmp -s "$tmp/screen.t1" "$tmp/screen.t4"; then
    echo "screen gate failed: --screen output differs between threads 1 and 4" >&2
    diff -u "$tmp/screen.t1" "$tmp/screen.t4" >&2 || true
    exit 1
  fi
  cat >"$tmp/screen-filter.awk" <<'EOF'
BEGIN { FS="\t" }
NR==FNR { if ($2=="screened") skip[$1]=1; next }
{
  line=$0
  if (match(line, /^[^ \t:]+:  \(confidence/)) {
    m=substr(line,1,index(line,":")-1)
    inspec=(m in skip)
    if (!inspec) print
    next
  }
  if (line ~ /^    /) { if (!inspec) print; next }
  inspec=0
  if (!($1 in skip)) print
}
EOF
  awk -f "$tmp/screen-filter.awk" "$tmp/screen.t1" "$tmp/screen.full" >"$tmp/screen.full.filtered"
  awk -f "$tmp/screen-filter.awk" "$tmp/screen.t1" "$tmp/screen.t1" >"$tmp/screen.t1.filtered"
  if ! cmp -s "$tmp/screen.t1.filtered" "$tmp/screen.full.filtered"; then
    echo "screen gate failed: non-screened specs/outcomes differ from the full run" >&2
    diff -u "$tmp/screen.full.filtered" "$tmp/screen.t1.filtered" >&2 || true
    exit 1
  fi
  full_solves="$(sed -n 's/.*with \([0-9]*\) model solves.*/\1/p' "$tmp/screen.full.err")"
  screen_solves="$(sed -n 's/.*with \([0-9]*\) model solves.*/\1/p' "$tmp/screen.t1.err")"
  if (( screen_solves * 5 > full_solves * 4 )); then
    echo "screen gate failed: --screen skipped < 20% of BP solves ($screen_solves of $full_solves)" >&2
    exit 1
  fi
  echo "screen gate ok: deterministic across threads, non-screened output identical," \
    "solves $full_solves -> $screen_solves"

  step "serve-latency bench (warm query_spec p50 >= 10x below cold)"
  (cd "$tmp" && "$OLDPWD/target/release/serve_latency" --small >/dev/null)
  if ! grep -q '"bench": "serve"' "$tmp/BENCH_serve.json"; then
    echo "serve-latency bench failed: BENCH_serve.json missing or malformed" >&2
    exit 1
  fi
  echo "serve-latency ok: BENCH_serve.json written (10x criterion enforced by the binary)"

  step "serve-load bench (multi-session overload: coalescing, shedding, byte-identity)"
  # The binary enforces its own invariants via exit status: zero failed
  # outcomes, exact coalesced/rejected/cancelled counts, byte-identical
  # replay against a serial session, and the query p99 bound.
  (cd "$tmp" && "$OLDPWD/target/release/serve_load" --small >/dev/null)
  if ! grep -q '"bench": "serve_load"' "$tmp/BENCH_serve_load.json"; then
    echo "serve-load bench failed: BENCH_serve_load.json missing or malformed" >&2
    exit 1
  fi
  echo "serve-load ok: BENCH_serve_load.json written (invariants enforced by the binary)"

  step "anek lint self-check on the seeded corpus"
  ./target/release/anek corpus "$tmp" 2>/dev/null
  # The seed-42 paper corpus plants exactly 3 next()-without-hasNext() bugs;
  # the deterministic lint must find exactly those, as errors, and no more.
  if out="$(./target/release/anek lint "$tmp"/*.java 2>&1)"; then
    echo "expected anek lint to exit non-zero on the planted bugs" >&2
    exit 1
  fi
  errors="$(grep -c '^error\[PROT001\]' <<<"$out" || true)"
  total="$(grep -c '^error\|^warning' <<<"$out" || true)"
  if [[ "$errors" != 3 || "$total" != 3 ]]; then
    echo "lint self-check failed: expected exactly 3 PROT001 errors, got $errors (total findings: $total)" >&2
    echo "$out" >&2
    exit 1
  fi
  echo "lint self-check ok: exactly 3 PROT001 errors on the planted sites"

  step "anek check gate (golden verdicts + differential oracle on the seeded corpus)"
  # Golden bit-vector verdicts: with branch-sensitive inferred specs, the
  # bitstate engine must flag exactly the 3 planted protocol bugs — as
  # may-violations (CHK001), with the documented exit code 1.
  set +e
  ./target/release/anek check --infer --branch-sensitive --threads 8 --max-iters 9360 \
    --json "$tmp"/*.java 2>/dev/null >"$tmp/check.json"
  rc=$?
  set -e
  if [[ "$rc" != 1 ]]; then
    echo "check gate failed: expected exit 1 on the planted bugs, got $rc" >&2
    exit 1
  fi
  # `|| true` keeps a zero-match grep from tripping pipefail+errexit.
  chk1="$({ grep -o '"rule":"CHK001"' "$tmp/check.json" || true; } | wc -l)"
  chk2="$({ grep -o '"rule":"CHK002"' "$tmp/check.json" || true; } | wc -l)"
  if [[ "$chk1" != 3 || "$chk2" != 0 ]]; then
    echo "check gate failed: expected exactly 3 CHK001 findings, got CHK001=$chk1 CHK002=$chk2" >&2
    cat "$tmp/check.json" >&2
    exit 1
  fi
  # Differential verdict oracle: bitstate vs plural::check vs lint. Every
  # disagreement must be a documented precision gap; an undocumented
  # bitstate/plural split is a bug (both consume the same spec table).
  if ! ./target/release/anek check --infer --cross-validate --threads 8 --max-iters 9360 \
    "$tmp"/*.java 2>/dev/null >"$tmp/cross.out"; then
    echo "check gate failed: cross-validate reported undocumented disagreements" >&2
    cat "$tmp/cross.out" >&2
    exit 1
  fi
  if ! grep -q 'undocumented disagreements: 0' "$tmp/cross.out"; then
    echo "check gate failed: cross-validate summary missing or non-zero" >&2
    cat "$tmp/cross.out" >&2
    exit 1
  fi
  echo "check gate ok: 3/3 planted bugs flagged, zero undocumented verdict disagreements"
fi

step "all green"
