#!/usr/bin/env bash
# CI gate for the workspace. Run from the repo root:
#
#   ./ci.sh            # full gate
#   ./ci.sh --fast     # skip the release build + corpus self-check
#
# Steps: formatting, clippy (warnings are errors), release build, the full
# test suite, and an `anek lint` self-check that regenerates the seeded
# PMD-shaped corpus and verifies the linter reports exactly the 3 planted
# protocol bugs (and nothing else).

set -euo pipefail
cd "$(dirname "$0")"

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

step() { printf '\n==> %s\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all -- --check

step "cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

if [[ $fast -eq 0 ]]; then
  step "cargo build --release"
  cargo build --release --workspace
fi

step "cargo test"
cargo test -q --workspace

if [[ $fast -eq 0 ]]; then
  step "inference determinism gate (threads 1 vs 4)"
  tmp="$(mktemp -d)"
  trap 'rm -rf "$tmp"' EXIT
  ./target/release/anek corpus "$tmp/det" --small 2>/dev/null
  ./target/release/anek infer --threads 1 "$tmp"/det/*.java 2>/dev/null >"$tmp/specs.t1"
  ./target/release/anek infer --threads 4 "$tmp"/det/*.java 2>/dev/null >"$tmp/specs.t4"
  if ! diff -u "$tmp/specs.t1" "$tmp/specs.t4"; then
    echo "determinism gate failed: --threads 1 and --threads 4 inferred different specs" >&2
    exit 1
  fi
  echo "determinism gate ok: identical specs for threads 1 and 4"

  step "fault-injection gate (partial results, exit 3, threads 1 vs 4)"
  mkdir -p "$tmp/faults"
  cat >"$tmp/faults/Row.java" <<'EOF'
class Row {
    Collection<Integer> entries;
    Iterator<Integer> createColIter() { return entries.iterator(); }
    void add(int val) { }
}
EOF
  cat >"$tmp/faults/App.java" <<'EOF'
class App {
    Row copy(Row original) {
        Iterator<Integer> iter = original.createColIter();
        Row result = new Row();
        while (iter.hasNext()) { result.add(iter.next()); }
        return result;
    }
}
EOF
  cat >"$tmp/faults/plan.txt" <<'EOF'
seed 42
panic App.copy
nan Row.add
EOF
  # A poisoned method must cost exactly itself: the run completes, prints a
  # partial report, and signals partial results with the documented exit 3.
  set +e
  ./target/release/anek infer --threads 1 --inject "$tmp/faults/plan.txt" --outcomes \
    "$tmp/faults/Row.java" "$tmp/faults/App.java" 2>/dev/null >"$tmp/faults/out.t1"
  rc1=$?
  ./target/release/anek infer --threads 4 --inject "$tmp/faults/plan.txt" --outcomes \
    "$tmp/faults/Row.java" "$tmp/faults/App.java" 2>/dev/null >"$tmp/faults/out.t4"
  rc4=$?
  set -e
  if [[ "$rc1" != 3 || "$rc4" != 3 ]]; then
    echo "fault gate failed: expected exit 3 (partial results), got $rc1 / $rc4" >&2
    exit 1
  fi
  if ! diff -u "$tmp/faults/out.t1" "$tmp/faults/out.t4"; then
    echo "fault gate failed: faulted outcome tables differ between threads 1 and 4" >&2
    exit 1
  fi
  if ! grep -q 'App.copy	failed	solve panicked: injected fault' "$tmp/faults/out.t1"; then
    echo "fault gate failed: injected panic not reported in the outcome table" >&2
    cat "$tmp/faults/out.t1" >&2
    exit 1
  fi
  if ! grep -q 'Row.createColIter' "$tmp/faults/out.t1"; then
    echo "fault gate failed: healthy methods missing from the partial report" >&2
    cat "$tmp/faults/out.t1" >&2
    exit 1
  fi
  echo "fault gate ok: partial report, exit 3, byte-identical across thread counts"

  step "serve gate (scripted stdio session vs golden transcript)"
  ./target/release/anek serve --stdio --store "$tmp/serve-store" \
    <tests/golden/serve_session.jsonl 2>/dev/null >"$tmp/serve.out"
  if ! diff -u tests/golden/serve_transcript.golden "$tmp/serve.out"; then
    echo "serve gate failed: transcript drifted from tests/golden/serve_transcript.golden" >&2
    echo "(if the drift is intentional, regenerate the golden with the command above)" >&2
    exit 1
  fi
  echo "serve gate ok: byte-identical transcript"

  step "store warm-vs-cold determinism gate (threads 1 and 4)"
  mkdir -p "$tmp/incr"
  cp "$tmp"/det/*.java "$tmp/incr/"
  # Body-only edit of one method in one unit.
  edit_target="$(grep -l 'next();' "$tmp"/incr/*.java | head -1)"
  sed -i '0,/next();/s//next();\n        int __ci_edit = 1;/' "$edit_target"
  for threads in 1 4; do
    ./target/release/anek infer --threads "$threads" --outcomes \
      "$tmp"/incr/*.java 2>/dev/null >"$tmp/incr.cold.t$threads"
    # Warm the store on the *original* sources, then run the edited ones.
    rm -rf "$tmp/incr-store"
    ./target/release/anek infer --threads "$threads" --store "$tmp/incr-store" \
      "$tmp"/det/*.java 2>/dev/null >/dev/null
    ./target/release/anek infer --threads "$threads" --outcomes --store "$tmp/incr-store" \
      "$tmp"/incr/*.java 2>/dev/null >"$tmp/incr.warm.t$threads"
    if ! diff -u "$tmp/incr.cold.t$threads" "$tmp/incr.warm.t$threads"; then
      echo "store gate failed: warm incremental output differs from cold at --threads $threads" >&2
      exit 1
    fi
  done
  echo "store gate ok: warm incremental byte-identical to cold at threads 1 and 4"

  step "bench smoke (table2 --small + BENCH_infer.json)"
  (cd "$tmp" && "$OLDPWD/target/release/table2" --small >/dev/null)
  if ! grep -q '"bench": "infer"' "$tmp/BENCH_infer.json"; then
    echo "bench smoke failed: BENCH_infer.json missing or malformed" >&2
    exit 1
  fi
  echo "bench smoke ok: BENCH_infer.json written"

  step "serve-latency bench (warm query_spec p50 >= 10x below cold)"
  (cd "$tmp" && "$OLDPWD/target/release/serve_latency" --small >/dev/null)
  if ! grep -q '"bench": "serve"' "$tmp/BENCH_serve.json"; then
    echo "serve-latency bench failed: BENCH_serve.json missing or malformed" >&2
    exit 1
  fi
  echo "serve-latency ok: BENCH_serve.json written (10x criterion enforced by the binary)"

  step "anek lint self-check on the seeded corpus"
  ./target/release/anek corpus "$tmp" 2>/dev/null
  # The seed-42 paper corpus plants exactly 3 next()-without-hasNext() bugs;
  # the deterministic lint must find exactly those, as errors, and no more.
  if out="$(./target/release/anek lint "$tmp"/*.java 2>&1)"; then
    echo "expected anek lint to exit non-zero on the planted bugs" >&2
    exit 1
  fi
  errors="$(grep -c '^error\[PROT001\]' <<<"$out" || true)"
  total="$(grep -c '^error\|^warning' <<<"$out" || true)"
  if [[ "$errors" != 3 || "$total" != 3 ]]; then
    echo "lint self-check failed: expected exactly 3 PROT001 errors, got $errors (total findings: $total)" >&2
    echo "$out" >&2
    exit 1
  fi
  echo "lint self-check ok: exactly 3 PROT001 errors on the planted sites"
fi

step "all green"
