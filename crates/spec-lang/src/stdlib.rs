//! Built-in annotated API models.
//!
//! The paper's workflow assumes "developers of libraries and frameworks
//! provide PLURAL annotations along with their APIs" (§2.1). This module
//! provides those API-side artifacts: the iterator protocol of Figures 1–2,
//! a stream protocol used by the extra examples, and an [`ApiRegistry`]
//! the analyses consult when a call site resolves to library code.

use crate::spec::{parse_clause, MethodSpec};
use crate::state::{StateRegistry, StateSpace};
use std::collections::BTreeMap;

/// A specification-carrying library method.
#[derive(Debug, Clone, PartialEq)]
pub struct ApiMethod {
    /// Declaring type (simple name).
    pub type_name: String,
    /// Method name.
    pub method_name: String,
    /// Simple name of the return type, `None` for `void`/primitives.
    pub return_type: Option<String>,
    /// The developer-provided specification.
    pub spec: MethodSpec,
}

/// Registry of annotated library APIs plus their state spaces.
#[derive(Debug, Clone, Default)]
pub struct ApiRegistry {
    methods: BTreeMap<(String, String), ApiMethod>,
    /// State spaces declared by the APIs.
    pub states: StateRegistry,
}

impl ApiRegistry {
    /// An empty registry.
    pub fn new() -> ApiRegistry {
        ApiRegistry::default()
    }

    /// Adds a method model.
    pub fn insert(&mut self, method: ApiMethod) {
        self.methods.insert((method.type_name.clone(), method.method_name.clone()), method);
    }

    /// Looks up a method by declaring type and name.
    pub fn get(&self, type_name: &str, method_name: &str) -> Option<&ApiMethod> {
        self.methods.get(&(type_name.to_string(), method_name.to_string()))
    }

    /// Looks up by method name alone, if unambiguous across all types.
    /// (Used as a fallback when receiver types cannot be resolved.)
    pub fn get_by_name(&self, method_name: &str) -> Option<&ApiMethod> {
        let mut found = None;
        for ((_, m), api) in &self.methods {
            if m == method_name {
                if found.is_some() {
                    return None; // ambiguous
                }
                found = Some(api);
            }
        }
        found
    }

    /// Iterates over all registered methods.
    pub fn iter(&self) -> impl Iterator<Item = &ApiMethod> {
        self.methods.values()
    }
}

fn must(clause: &str) -> crate::spec::PermClause {
    parse_clause(clause).expect("stdlib clauses are well-formed")
}

/// The standard registry used throughout the reproduction: the iterator
/// protocol (paper Figures 1–2) and a stream protocol for the extra
/// examples.
pub fn standard_api() -> ApiRegistry {
    let mut reg = ApiRegistry::new();

    // Figure 1: the iterator protocol — states HASNEXT and END under ALIVE.
    reg.states.insert(StateSpace::flat("Iterator", ["HASNEXT", "END"]));

    // Figure 2: interface Iterator<T>.
    reg.insert(ApiMethod {
        type_name: "Iterator".into(),
        method_name: "next".into(),
        return_type: Some("Object".into()),
        spec: MethodSpec {
            requires: must("full(this) in HASNEXT"),
            ensures: must("full(this) in ALIVE"),
            true_indicates: None,
            false_indicates: None,
        },
    });
    reg.insert(ApiMethod {
        type_name: "Iterator".into(),
        method_name: "hasNext".into(),
        return_type: None,
        spec: MethodSpec {
            requires: must("pure(this) in ALIVE"),
            ensures: must("pure(this)"),
            true_indicates: Some("HASNEXT".into()),
            false_indicates: Some("END".into()),
        },
    });

    // Figure 2: interface Collection<T> — iterator() returns a unique ALIVE
    // iterator.
    reg.insert(ApiMethod {
        type_name: "Collection".into(),
        method_name: "iterator".into(),
        return_type: Some("Iterator".into()),
        spec: MethodSpec {
            requires: must("pure(this)"),
            ensures: must("pure(this), unique(result) in ALIVE"),
            true_indicates: None,
            false_indicates: None,
        },
    });
    reg.insert(ApiMethod {
        type_name: "Collection".into(),
        method_name: "add".into(),
        return_type: None,
        spec: MethodSpec {
            requires: must("share(this)"),
            ensures: must("share(this)"),
            true_indicates: None,
            false_indicates: None,
        },
    });
    reg.insert(ApiMethod {
        type_name: "Collection".into(),
        method_name: "size".into(),
        return_type: None,
        spec: MethodSpec {
            requires: must("pure(this)"),
            ensures: must("pure(this)"),
            true_indicates: None,
            false_indicates: None,
        },
    });

    // A stream protocol (open/closed) for the domain examples: exercising a
    // second protocol ensures nothing in the pipeline is iterator-specific.
    reg.states.insert(StateSpace::flat("Stream", ["OPEN", "CLOSED"]));
    reg.insert(ApiMethod {
        type_name: "Stream".into(),
        method_name: "read".into(),
        return_type: None,
        spec: MethodSpec {
            requires: must("full(this) in OPEN"),
            ensures: must("full(this) in OPEN"),
            true_indicates: None,
            false_indicates: None,
        },
    });
    reg.insert(ApiMethod {
        type_name: "Stream".into(),
        method_name: "close".into(),
        return_type: None,
        spec: MethodSpec {
            requires: must("full(this) in OPEN"),
            ensures: must("full(this) in CLOSED"),
            true_indicates: None,
            false_indicates: None,
        },
    });
    reg.insert(ApiMethod {
        type_name: "StreamFactory".into(),
        method_name: "open".into(),
        return_type: Some("Stream".into()),
        spec: MethodSpec {
            requires: must(""),
            ensures: must("unique(result) in OPEN"),
            true_indicates: None,
            false_indicates: None,
        },
    });

    reg
}

/// Java source for the annotated iterator API (paper Figure 2), parseable by
/// `java-syntax`. Examples and tests embed this to demonstrate the full
/// pipeline on the paper's own running example.
pub fn figure2_java_source() -> &'static str {
    r#"interface Iterator<T> {
    @Spec(requires = "full(this) in HASNEXT", ensures = "full(this) in ALIVE")
    T next();

    @Spec(requires = "pure(this) in ALIVE", ensures = "pure(this)")
    @TrueIndicates("HASNEXT")
    @FalseIndicates("END")
    boolean hasNext();
}

interface Collection<T> {
    @Spec(requires = "pure(this)", ensures = "pure(this), unique(result) in ALIVE")
    Iterator<T> iterator();

    @Spec(requires = "share(this)", ensures = "share(this)")
    void add(T item);
}
"#
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::permission::PermissionKind;
    use crate::spec::SpecTarget;

    #[test]
    fn standard_api_has_iterator_protocol() {
        let api = standard_api();
        let next = api.get("Iterator", "next").unwrap();
        let req = next.spec.requires.for_target(&SpecTarget::This).unwrap();
        assert_eq!(req.kind, PermissionKind::Full);
        assert_eq!(req.state.as_deref(), Some("HASNEXT"));

        let has_next = api.get("Iterator", "hasNext").unwrap();
        assert_eq!(has_next.spec.true_indicates.as_deref(), Some("HASNEXT"));

        let iter = api.get("Collection", "iterator").unwrap();
        let ens = iter.spec.ensures.for_target(&SpecTarget::Result).unwrap();
        assert_eq!(ens.kind, PermissionKind::Unique);
        assert_eq!(iter.return_type.as_deref(), Some("Iterator"));
    }

    #[test]
    fn iterator_state_space_registered() {
        let api = standard_api();
        let space = api.states.get("Iterator").unwrap();
        assert!(space.contains("HASNEXT"));
        assert!(space.contains("END"));
    }

    #[test]
    fn get_by_name_disambiguates() {
        let api = standard_api();
        assert!(api.get_by_name("next").is_some());
        assert!(api.get_by_name("iterator").is_some());
        assert!(api.get_by_name("nonexistent").is_none());
    }

    #[test]
    fn figure2_source_parses_and_matches_registry() {
        let unit = java_syntax::parse(figure2_java_source()).unwrap();
        let it = unit.type_named("Iterator").unwrap();
        let parsed = crate::spec::spec_of_method(it.method_named("next").unwrap()).unwrap();
        let api = standard_api();
        assert_eq!(parsed.requires, api.get("Iterator", "next").unwrap().spec.requires);
        assert_eq!(parsed.ensures, api.get("Iterator", "next").unwrap().spec.ensures);
    }

    #[test]
    fn stream_protocol_present() {
        let api = standard_api();
        let close = api.get("Stream", "close").unwrap();
        assert_eq!(
            close.spec.ensures.for_target(&SpecTarget::This).unwrap().state.as_deref(),
            Some("CLOSED")
        );
    }
}
