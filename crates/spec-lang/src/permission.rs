//! The five access-permission kinds and their algebra (paper Figure 4).
//!
//! | kind        | this ref   | other aliases |
//! |-------------|------------|---------------|
//! | `unique`    | read/write | none exist    |
//! | `full`      | read/write | read-only     |
//! | `share`     | read/write | read/write    |
//! | `immutable` | read-only  | read-only     |
//! | `pure`      | read-only  | read/write    |
//!
//! Splitting (paper constraint L1, Eq. 2): a permission at a node may be
//! split across outgoing edges into weaker permissions; at most one of the
//! resulting permissions may be `unique` or `full` (the exclusive-writer
//! rule).

use std::fmt;

/// One of the five PLURAL access-permission kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PermissionKind {
    /// Exclusive read/write; no other aliases exist.
    Unique,
    /// Exclusive write; other aliases may read.
    Full,
    /// Read/write shared with other read/write aliases.
    Share,
    /// Read-only, and all other aliases are read-only too.
    Immutable,
    /// Read-only; other aliases may read and write.
    Pure,
}

impl PermissionKind {
    /// All five kinds, strongest first (the order used when extracting the
    /// most desirable specification from marginals).
    pub const ALL: [PermissionKind; 5] = [
        PermissionKind::Unique,
        PermissionKind::Full,
        PermissionKind::Immutable,
        PermissionKind::Share,
        PermissionKind::Pure,
    ];

    /// Whether a holder of this permission may write through it.
    pub fn allows_write(self) -> bool {
        matches!(self, PermissionKind::Unique | PermissionKind::Full | PermissionKind::Share)
    }

    /// Whether other aliases may exist while this permission is held.
    pub fn allows_other_aliases(self) -> bool {
        self != PermissionKind::Unique
    }

    /// Whether other aliases may *write* while this permission is held.
    pub fn allows_other_writers(self) -> bool {
        matches!(self, PermissionKind::Share | PermissionKind::Pure)
    }

    /// Whether this kind may indicate a thread-shared object (heuristic H5:
    /// targets of `synchronized` blocks are `full`, `share` or `pure`).
    pub fn is_thread_shareable(self) -> bool {
        matches!(self, PermissionKind::Full | PermissionKind::Share | PermissionKind::Pure)
    }

    /// The set of kinds each outgoing edge may carry when a node holding
    /// `self` is split (paper Eq. 2, per-edge clause):
    ///
    /// * `unique → {unique, full, immutable, share, pure}`
    /// * `full → {full, immutable, share, pure}`
    /// * `immutable → {immutable, pure}` — an immutable permission can never
    ///   give rise to a writing alias (`share` would), so the subset here is
    ///   deliberately tighter than the OCR'd formula and matches Fig. 4.
    /// * `share → {share, pure}`
    /// * `pure → {pure}`
    pub fn splittable_into(self) -> &'static [PermissionKind] {
        use PermissionKind::*;
        match self {
            Unique => &[Unique, Full, Immutable, Share, Pure],
            Full => &[Full, Immutable, Share, Pure],
            Immutable => &[Immutable, Pure],
            Share => &[Share, Pure],
            Pure => &[Pure],
        }
    }

    /// Whether a single edge carrying `to` is a legal weakening of `self`.
    pub fn can_weaken_to(self, to: PermissionKind) -> bool {
        self.splittable_into().contains(&to)
    }

    /// Whether a permission of kind `self` satisfies a requirement of kind
    /// `required` (a stronger permission satisfies a weaker requirement):
    /// `unique` satisfies everything it can weaken to, etc.
    pub fn satisfies(self, required: PermissionKind) -> bool {
        self == required || self.can_weaken_to(required)
    }

    /// Validates a complete split of one permission into several (paper
    /// Eq. 2): every part must be a legal weakening, and at most one part may
    /// be an exclusive-writer (`unique`/`full`) permission — and if any part
    /// is `unique`, it must be the *only* part.
    pub fn can_split_into(self, parts: &[PermissionKind]) -> bool {
        use PermissionKind::*;
        if parts.is_empty() {
            return false;
        }
        if !parts.iter().all(|p| self.satisfies(*p)) {
            return false;
        }
        let uniques = parts.iter().filter(|p| **p == Unique).count();
        let fulls = parts.iter().filter(|p| **p == Full).count();
        if uniques > 0 {
            // unique asserts no other aliases at all.
            return parts.len() == 1;
        }
        if fulls > 1 {
            return false;
        }
        if fulls == 1 {
            // full coexists only with read-only aliases.
            return parts.iter().all(|p| matches!(p, Full | Pure | Immutable));
        }
        // immutable cannot coexist with writers.
        let imms = parts.iter().filter(|p| **p == Immutable).count();
        let writers = parts.iter().filter(|p| p.allows_write()).count();
        if imms > 0 && writers > 0 {
            return false;
        }
        true
    }

    /// The kind spelled the way the annotation language spells it.
    pub fn as_str(self) -> &'static str {
        match self {
            PermissionKind::Unique => "unique",
            PermissionKind::Full => "full",
            PermissionKind::Share => "share",
            PermissionKind::Immutable => "immutable",
            PermissionKind::Pure => "pure",
        }
    }

    /// Parses a kind from annotation text.
    pub fn from_str_opt(s: &str) -> Option<PermissionKind> {
        Some(match s {
            "unique" => PermissionKind::Unique,
            "full" => PermissionKind::Full,
            "share" => PermissionKind::Share,
            "immutable" => PermissionKind::Immutable,
            "pure" => PermissionKind::Pure,
            _ => return None,
        })
    }

    /// Strength rank, lower is stronger (`unique` = 0 ... `pure` = 4). The
    /// extraction step prefers lower ranks: "`unique` is the best choice
    /// whenever possible because it gives the strongest guarantees" (§1).
    pub fn strength_rank(self) -> u8 {
        match self {
            PermissionKind::Unique => 0,
            PermissionKind::Full => 1,
            PermissionKind::Immutable => 2,
            PermissionKind::Share => 3,
            PermissionKind::Pure => 4,
        }
    }
}

impl fmt::Display for PermissionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use PermissionKind::*;

    #[test]
    fn figure4_capability_table() {
        // (kind, this-writes, others-exist, others-write)
        let table = [
            (Unique, true, false, false),
            (Full, true, true, false),
            (Share, true, true, true),
            (Immutable, false, true, false),
            (Pure, false, true, true),
        ];
        for (k, w, oe, ow) in table {
            assert_eq!(k.allows_write(), w, "{k} write");
            assert_eq!(k.allows_other_aliases(), oe, "{k} aliases");
            assert_eq!(k.allows_other_writers(), ow, "{k} other writers");
        }
    }

    #[test]
    fn unique_splits_into_two_shares() {
        assert!(Unique.can_split_into(&[Share, Share]));
        assert!(Unique.can_split_into(&[Immutable, Immutable]));
        assert!(Unique.can_split_into(&[Pure, Pure, Pure]));
    }

    #[test]
    fn unique_splits_into_full_plus_pures() {
        assert!(Unique.can_split_into(&[Full, Pure]));
        assert!(Unique.can_split_into(&[Full, Pure, Pure, Pure]));
        assert!(Unique.can_split_into(&[Full, Immutable]));
    }

    #[test]
    fn unique_cannot_split_into_two_exclusives() {
        assert!(!Unique.can_split_into(&[Full, Full]));
        assert!(!Unique.can_split_into(&[Unique, Unique]));
        assert!(!Unique.can_split_into(&[Unique, Pure]));
    }

    #[test]
    fn full_cannot_produce_unique() {
        assert!(!Full.can_split_into(&[Unique]));
        assert!(Full.can_split_into(&[Full, Pure]));
        assert!(Full.can_split_into(&[Share, Share]));
    }

    #[test]
    fn immutable_never_yields_writers() {
        assert!(!Immutable.can_split_into(&[Share, Pure]));
        assert!(Immutable.can_split_into(&[Immutable, Immutable]));
        assert!(Immutable.can_split_into(&[Pure]));
        assert!(!Immutable.can_split_into(&[Full]));
    }

    #[test]
    fn share_and_pure_bottom_out() {
        assert!(Share.can_split_into(&[Share, Pure]));
        assert!(!Share.can_split_into(&[Full]));
        assert!(Pure.can_split_into(&[Pure, Pure]));
        assert!(!Pure.can_split_into(&[Share]));
    }

    #[test]
    fn immutable_and_writer_conflict() {
        assert!(!Unique.can_split_into(&[Immutable, Share]));
        assert!(!Unique.can_split_into(&[Share, Immutable]));
    }

    #[test]
    fn satisfies_is_reflexive_and_downward() {
        for k in PermissionKind::ALL {
            assert!(k.satisfies(k), "{k}");
            assert!(k.satisfies(Pure), "{k} should satisfy pure");
        }
        assert!(Unique.satisfies(Full));
        assert!(!Full.satisfies(Unique));
        assert!(!Pure.satisfies(Share));
    }

    #[test]
    fn empty_split_is_illegal() {
        assert!(!Unique.can_split_into(&[]));
    }

    #[test]
    fn round_trip_names() {
        for k in PermissionKind::ALL {
            assert_eq!(PermissionKind::from_str_opt(k.as_str()), Some(k));
        }
        assert_eq!(PermissionKind::from_str_opt("none"), None);
    }

    #[test]
    fn strength_order_matches_paper_preference() {
        assert!(Unique.strength_rank() < Full.strength_rank());
        assert!(Full.strength_rank() < Immutable.strength_rank());
        assert!(Immutable.strength_rank() < Share.strength_rank());
        assert!(Share.strength_rank() < Pure.strength_rank());
    }

    #[test]
    fn thread_shareable_kinds_are_h5_set() {
        let shareable: Vec<_> =
            PermissionKind::ALL.into_iter().filter(|k| k.is_thread_shareable()).collect();
        assert_eq!(shareable, vec![Full, Share, Pure]);
    }
}
