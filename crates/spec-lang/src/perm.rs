//! Concrete permission values: a kind paired with a Boyland fraction.
//!
//! PLURAL tracks not just which *kind* of permission a reference holds but
//! how much of it, so that weaker permissions can later be merged back into
//! stronger ones ("permissions are associated with fractional values which
//! allow multiple weaker permissions to be combined into stronger ones in a
//! process known as merging", paper §2, citing Boyland \[7\]).
//!
//! The laws implemented here:
//!
//! * a fresh object carries `unique` with fraction 1;
//! * splitting divides the fraction between the retained and lent parts and
//!   weakens kinds along the legal-split relation (Figure 4 / Eq. 2);
//! * merging two permissions of the same kind adds their fractions;
//! * a `full`/`share`/`immutable`/`pure` permission whose fraction reaches 1
//!   can be *promoted* back to `unique` — all aliases have been collected.

use crate::fraction::{Fraction, FractionError};
use crate::permission::PermissionKind;
use std::fmt;

/// A concrete permission value held by one reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Permission {
    /// The aliasing kind.
    pub kind: PermissionKind,
    /// How much of the object's permission this reference holds, in `(0, 1]`.
    pub fraction: Fraction,
}

/// Errors from permission algebra.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PermError {
    /// The requested split is not in the legal-split relation.
    IllegalSplit {
        /// Holder's kind.
        from: PermissionKind,
        /// Requested kind.
        to: PermissionKind,
    },
    /// Merging permissions of different kinds.
    KindMismatch {
        /// First kind.
        a: PermissionKind,
        /// Second kind.
        b: PermissionKind,
    },
    /// Fraction arithmetic failed (overflow, or total exceeding one).
    Fraction(FractionError),
    /// The merged fraction exceeded the whole.
    OverUnity,
}

impl fmt::Display for PermError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PermError::IllegalSplit { from, to } => {
                write!(f, "cannot split `{from}` into `{to}`")
            }
            PermError::KindMismatch { a, b } => {
                write!(f, "cannot merge `{a}` with `{b}`")
            }
            PermError::Fraction(e) => write!(f, "fraction error: {e}"),
            PermError::OverUnity => f.write_str("merged permission exceeds the whole object"),
        }
    }
}

impl std::error::Error for PermError {}

impl From<FractionError> for PermError {
    fn from(e: FractionError) -> PermError {
        PermError::Fraction(e)
    }
}

impl Permission {
    /// The permission of a freshly constructed object.
    pub fn fresh() -> Permission {
        Permission { kind: PermissionKind::Unique, fraction: Fraction::ONE }
    }

    /// Creates a permission value.
    ///
    /// # Errors
    ///
    /// Returns [`PermError::OverUnity`] if the fraction exceeds one, and
    /// [`PermError::Fraction`] if it is zero.
    pub fn new(kind: PermissionKind, fraction: Fraction) -> Result<Permission, PermError> {
        if fraction > Fraction::ONE {
            return Err(PermError::OverUnity);
        }
        if fraction.is_zero() {
            return Err(PermError::Fraction(FractionError::ZeroDenominator));
        }
        Ok(Permission { kind, fraction })
    }

    /// Splits off a permission of kind `to`, halving the held fraction:
    /// the lent half carries kind `to`, the retained half keeps the
    /// strongest kind that may legally coexist with `to`.
    ///
    /// Returns `(retained, lent)`.
    ///
    /// # Errors
    ///
    /// [`PermError::IllegalSplit`] when `to` is not a legal weakening of the
    /// held kind, or when nothing can be retained alongside it — `unique`
    /// asserts the absence of other aliases, so it can only be *transferred*
    /// whole, never split off.
    pub fn split(self, to: PermissionKind) -> Result<(Permission, Permission), PermError> {
        if !self.kind.can_weaken_to(to) {
            return Err(PermError::IllegalSplit { from: self.kind, to });
        }
        // The retained kind must coexist with the lent one: keep the
        // strongest kind that forms a legal split pair.
        let Some(retained_kind) =
            PermissionKind::ALL.into_iter().find(|k| self.kind.can_split_into(&[to, *k]))
        else {
            return Err(PermError::IllegalSplit { from: self.kind, to });
        };
        let half = self.fraction.halve();
        let lent = Permission { kind: to, fraction: half };
        let retained = Permission { kind: retained_kind, fraction: half };
        Ok((retained, lent))
    }

    /// Merges a permission back in (the post-call merge): fractions add and
    /// the stronger kind of the two survives when one side's aliases are
    /// thereby collected.
    ///
    /// # Errors
    ///
    /// [`PermError::OverUnity`] if the fractions sum above one,
    /// [`PermError::Fraction`] on arithmetic failure.
    pub fn merge(self, other: Permission) -> Result<Permission, PermError> {
        let total = self.fraction.checked_add(other.fraction)?;
        if total > Fraction::ONE {
            return Err(PermError::OverUnity);
        }
        // The stronger kind wins the merge (the weaker was split from it).
        let kind = if self.kind.strength_rank() <= other.kind.strength_rank() {
            self.kind
        } else {
            other.kind
        };
        let merged = Permission { kind, fraction: total };
        Ok(merged.promote())
    }

    /// Promotion: holding the *whole* fraction means no other aliases
    /// remain, so the permission strengthens to `unique`.
    pub fn promote(self) -> Permission {
        if self.fraction.is_one() {
            Permission { kind: PermissionKind::Unique, fraction: self.fraction }
        } else {
            self
        }
    }

    /// Whether this permission satisfies a callee requirement of `required`.
    pub fn satisfies(self, required: PermissionKind) -> bool {
        self.kind.satisfies(required)
    }
}

impl fmt::Display for Permission {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.kind, self.fraction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use PermissionKind::*;

    #[test]
    fn fresh_is_whole_unique() {
        let p = Permission::fresh();
        assert_eq!(p.kind, Unique);
        assert!(p.fraction.is_one());
        assert_eq!(p.to_string(), "unique(1)");
    }

    #[test]
    fn split_unique_into_full_keeps_coexisting_remainder() {
        let (retained, lent) = Permission::fresh().split(Full).unwrap();
        assert_eq!(lent.kind, Full);
        assert_eq!(lent.fraction, Fraction::HALF);
        // full coexists only with read-only aliases.
        assert!(!retained.kind.allows_write(), "retained {retained}");
        assert_eq!(retained.fraction, Fraction::HALF);
    }

    #[test]
    fn split_unique_into_share_retains_share() {
        let (retained, lent) = Permission::fresh().split(Share).unwrap();
        assert_eq!(lent.kind, Share);
        // unique -> share + share is legal, so the strongest coexisting
        // retained kind that can pair with share is share itself... per the
        // strongest-first scan it may also legally be `full`? full+share is
        // not a legal pair, so share must be chosen.
        assert!(Unique.can_split_into(&[Share, retained.kind]));
    }

    #[test]
    fn unique_cannot_be_split_off() {
        // unique asserts no other aliases: lending it while retaining
        // anything would contradict it.
        let whole = Permission::fresh();
        assert_eq!(whole.split(Unique), Err(PermError::IllegalSplit { from: Unique, to: Unique }));
    }

    #[test]
    fn illegal_splits_are_rejected() {
        let pure = Permission::new(Pure, Fraction::HALF).unwrap();
        assert_eq!(pure.split(Full), Err(PermError::IllegalSplit { from: Pure, to: Full }));
        let imm = Permission::new(Immutable, Fraction::HALF).unwrap();
        assert!(imm.split(Share).is_err());
    }

    #[test]
    fn split_then_merge_restores_unique() {
        let whole = Permission::fresh();
        let (retained, lent) = whole.split(Pure).unwrap();
        let back = retained.merge(lent).unwrap();
        assert_eq!(back.kind, Unique, "promotion on whole fraction");
        assert!(back.fraction.is_one());
    }

    #[test]
    fn deep_split_chain_round_trips() {
        let whole = Permission::fresh();
        let (r1, l1) = whole.split(Pure).unwrap();
        let (r2, l2) = r1.split(Pure).unwrap();
        let merged = r2.merge(l2).unwrap().merge(l1).unwrap();
        assert_eq!(merged.kind, Unique);
        assert!(merged.fraction.is_one());
    }

    #[test]
    fn merge_rejects_over_unity() {
        let a = Permission::new(Share, Fraction::ONE).unwrap();
        let b = Permission::new(Share, Fraction::HALF).unwrap();
        assert_eq!(a.merge(b), Err(PermError::OverUnity));
    }

    #[test]
    fn partial_merge_does_not_promote() {
        let quarter = Fraction::new(1, 4).unwrap();
        let a = Permission::new(Pure, quarter).unwrap();
        let b = Permission::new(Pure, quarter).unwrap();
        let m = a.merge(b).unwrap();
        assert_eq!(m.kind, Pure);
        assert_eq!(m.fraction, Fraction::HALF);
    }

    #[test]
    fn zero_and_over_unity_constructions_rejected() {
        assert!(Permission::new(Pure, Fraction::ZERO).is_err());
        let excess = Fraction::new(3, 2).unwrap();
        assert_eq!(Permission::new(Pure, excess), Err(PermError::OverUnity));
    }

    #[test]
    fn satisfies_uses_kind_lattice() {
        let full = Permission::new(Full, Fraction::HALF).unwrap();
        assert!(full.satisfies(Pure));
        assert!(full.satisfies(Full));
        assert!(!full.satisfies(Unique));
    }
}
