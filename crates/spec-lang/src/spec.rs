//! The access-permission specification language.
//!
//! Specifications are written in method annotations (paper Figures 2 and 8):
//!
//! ```java
//! @Perm(requires = "full(this) in HASNEXT", ensures = "full(this) in ALIVE")
//! T next();
//!
//! @Perm(requires = "pure(this) in ALIVE", ensures = "pure(this)")
//! @TrueIndicates("HASNEXT")
//! @FalseIndicates("END")
//! boolean hasNext();
//! ```
//!
//! `@Spec` is accepted as a synonym for `@Perm` (the paper uses both
//! spellings). A clause is a `,`- or `*`-separated conjunction of atoms
//! `kind(target) [in STATE]` where `target` is `this`, `result`, or a
//! parameter name.

use crate::permission::PermissionKind;
use crate::state::ALIVE;
use java_syntax::ast::{Annotation, AnnotationArgs, Lit, MethodDecl};
use java_syntax::Span;
use std::fmt;

/// What a permission atom refers to.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SpecTarget {
    /// The method receiver.
    This,
    /// The return value (only meaningful in `ensures`).
    Result,
    /// A named formal parameter.
    Param(String),
}

impl fmt::Display for SpecTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecTarget::This => f.write_str("this"),
            SpecTarget::Result => f.write_str("result"),
            SpecTarget::Param(name) => f.write_str(name),
        }
    }
}

/// One permission atom: `full(this) in HASNEXT`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PermAtom {
    /// The permission kind.
    pub kind: PermissionKind,
    /// What it applies to.
    pub target: SpecTarget,
    /// Required/ensured abstract state; `None` means no state constraint
    /// (equivalent to `ALIVE`).
    pub state: Option<String>,
}

impl PermAtom {
    /// Creates an atom with no state constraint.
    pub fn new(kind: PermissionKind, target: SpecTarget) -> PermAtom {
        PermAtom { kind, target, state: None }
    }

    /// Creates an atom with a state constraint.
    pub fn in_state(
        kind: PermissionKind,
        target: SpecTarget,
        state: impl Into<String>,
    ) -> PermAtom {
        PermAtom { kind, target, state: Some(state.into()) }
    }

    /// The effective state: the explicit one, or [`ALIVE`].
    pub fn effective_state(&self) -> &str {
        self.state.as_deref().unwrap_or(ALIVE)
    }
}

impl fmt::Display for PermAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.kind, self.target)?;
        if let Some(s) = &self.state {
            write!(f, " in {s}")?;
        }
        Ok(())
    }
}

/// A conjunction of permission atoms.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PermClause {
    /// Atoms in declaration order.
    pub atoms: Vec<PermAtom>,
}

impl PermClause {
    /// The empty clause (no permissions mentioned).
    pub fn empty() -> PermClause {
        PermClause::default()
    }

    /// A clause with a single atom.
    pub fn single(atom: PermAtom) -> PermClause {
        PermClause { atoms: vec![atom] }
    }

    /// Looks up the atom for a target, if present.
    pub fn for_target(&self, target: &SpecTarget) -> Option<&PermAtom> {
        self.atoms.iter().find(|a| &a.target == target)
    }

    /// Whether no atoms are present.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }
}

impl fmt::Display for PermClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

/// A complete method specification.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MethodSpec {
    /// Precondition permissions.
    pub requires: PermClause,
    /// Postcondition permissions.
    pub ensures: PermClause,
    /// Dynamic state test: state indicated when the boolean result is true.
    pub true_indicates: Option<String>,
    /// Dynamic state test: state indicated when the boolean result is false.
    pub false_indicates: Option<String>,
}

impl MethodSpec {
    /// Whether the spec carries any information at all.
    pub fn is_empty(&self) -> bool {
        self.requires.is_empty()
            && self.ensures.is_empty()
            && self.true_indicates.is_none()
            && self.false_indicates.is_none()
    }

    /// Whether this is a dynamic state-test spec (`@TrueIndicates` /
    /// `@FalseIndicates` present).
    pub fn is_state_test(&self) -> bool {
        self.true_indicates.is_some() || self.false_indicates.is_some()
    }
}

/// An error from parsing the specification mini-language.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecParseError {
    /// What went wrong.
    pub message: String,
}

impl SpecParseError {
    fn new(msg: impl Into<String>) -> SpecParseError {
        SpecParseError { message: msg.into() }
    }
}

impl fmt::Display for SpecParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid permission spec: {}", self.message)
    }
}

impl std::error::Error for SpecParseError {}

/// Parses a clause string such as `"full(this) in HASNEXT, pure(other)"`.
///
/// # Errors
///
/// Returns [`SpecParseError`] on unknown permission kinds or malformed atoms.
pub fn parse_clause(text: &str) -> Result<PermClause, SpecParseError> {
    let mut atoms = Vec::new();
    let trimmed = text.trim();
    if trimmed.is_empty() {
        return Ok(PermClause::empty());
    }
    for part in split_atoms(trimmed) {
        atoms.push(parse_atom(part.trim())?);
    }
    Ok(PermClause { atoms })
}

/// Splits on `,` and `*` at top level (no nesting in this mini-language).
fn split_atoms(text: &str) -> impl Iterator<Item = &str> {
    text.split([',', '*']).filter(|s| !s.trim().is_empty())
}

fn parse_atom(text: &str) -> Result<PermAtom, SpecParseError> {
    let open =
        text.find('(').ok_or_else(|| SpecParseError::new(format!("missing `(` in `{text}`")))?;
    let close =
        text.find(')').ok_or_else(|| SpecParseError::new(format!("missing `)` in `{text}`")))?;
    if close < open {
        return Err(SpecParseError::new(format!("mismatched parentheses in `{text}`")));
    }
    let kind_txt = text[..open].trim();
    let kind = PermissionKind::from_str_opt(kind_txt)
        .ok_or_else(|| SpecParseError::new(format!("unknown permission kind `{kind_txt}`")))?;
    let target_txt = text[open + 1..close].trim();
    if target_txt.is_empty() {
        return Err(SpecParseError::new(format!("empty target in `{text}`")));
    }
    let target = match target_txt {
        "this" => SpecTarget::This,
        "result" => SpecTarget::Result,
        name => SpecTarget::Param(name.to_string()),
    };
    let rest = text[close + 1..].trim();
    let state = if rest.is_empty() {
        None
    } else if let Some(state) = rest.strip_prefix("in ") {
        let state = state.trim();
        if state.is_empty() {
            return Err(SpecParseError::new(format!("empty state in `{text}`")));
        }
        Some(state.to_string())
    } else {
        return Err(SpecParseError::new(format!("expected `in STATE`, found `{rest}`")));
    };
    Ok(PermAtom { kind, target, state })
}

/// Extracts the [`MethodSpec`] from a method's annotations.
///
/// Looks for `@Perm`/`@Spec` with `requires`/`ensures` string elements and
/// `@TrueIndicates`/`@FalseIndicates` marker annotations.
///
/// # Errors
///
/// Returns [`SpecParseError`] if a clause string fails to parse.
pub fn spec_of_method(method: &MethodDecl) -> Result<MethodSpec, SpecParseError> {
    let mut spec = MethodSpec::default();
    for ann in &method.annotations {
        match ann.name.simple() {
            "Perm" | "Spec" => {
                if let Some(req) = ann.string_element("requires") {
                    spec.requires = parse_clause(req)?;
                }
                if let Some(ens) = ann.string_element("ensures") {
                    spec.ensures = parse_clause(ens)?;
                }
            }
            "TrueIndicates" => {
                spec.true_indicates = ann.single_string().map(str::to_string);
            }
            "FalseIndicates" => {
                spec.false_indicates = ann.single_string().map(str::to_string);
            }
            _ => {}
        }
    }
    Ok(spec)
}

/// Renders a [`MethodSpec`] back into annotation AST nodes, ready to be
/// attached to a [`MethodDecl`] by the spec applier.
pub fn spec_to_annotations(spec: &MethodSpec) -> Vec<Annotation> {
    let mut anns = Vec::new();
    if !spec.requires.is_empty() || !spec.ensures.is_empty() {
        let mut pairs = Vec::new();
        if !spec.requires.is_empty() {
            pairs.push(("requires".to_string(), Lit::Str(spec.requires.to_string())));
        }
        if !spec.ensures.is_empty() {
            pairs.push(("ensures".to_string(), Lit::Str(spec.ensures.to_string())));
        }
        anns.push(Annotation {
            name: "Perm".into(),
            args: AnnotationArgs::Pairs(pairs),
            span: Span::DUMMY,
        });
    }
    if let Some(s) = &spec.true_indicates {
        anns.push(Annotation {
            name: "TrueIndicates".into(),
            args: AnnotationArgs::Single(Lit::Str(s.clone())),
            span: Span::DUMMY,
        });
    }
    if let Some(s) = &spec.false_indicates {
        anns.push(Annotation {
            name: "FalseIndicates".into(),
            args: AnnotationArgs::Single(Lit::Str(s.clone())),
            span: Span::DUMMY,
        });
    }
    anns
}

#[cfg(test)]
mod tests {
    use super::*;
    use java_syntax::parse;

    #[test]
    fn parses_single_atom_with_state() {
        let c = parse_clause("full(this) in HASNEXT").unwrap();
        assert_eq!(c.atoms.len(), 1);
        let a = &c.atoms[0];
        assert_eq!(a.kind, PermissionKind::Full);
        assert_eq!(a.target, SpecTarget::This);
        assert_eq!(a.state.as_deref(), Some("HASNEXT"));
        assert_eq!(a.effective_state(), "HASNEXT");
    }

    #[test]
    fn parses_atom_without_state() {
        let c = parse_clause("pure(this)").unwrap();
        assert_eq!(c.atoms[0].state, None);
        assert_eq!(c.atoms[0].effective_state(), ALIVE);
    }

    #[test]
    fn parses_result_and_param_targets() {
        let c = parse_clause("unique(result) in ALIVE, share(other)").unwrap();
        assert_eq!(c.atoms[0].target, SpecTarget::Result);
        assert_eq!(c.atoms[1].target, SpecTarget::Param("other".into()));
    }

    #[test]
    fn star_separator_accepted() {
        let c = parse_clause("full(this) * pure(that)").unwrap();
        assert_eq!(c.atoms.len(), 2);
    }

    #[test]
    fn empty_clause_is_ok() {
        assert!(parse_clause("").unwrap().is_empty());
        assert!(parse_clause("   ").unwrap().is_empty());
    }

    #[test]
    fn rejects_unknown_kind_and_malformed() {
        assert!(parse_clause("total(this)").is_err());
        assert!(parse_clause("full this").is_err());
        assert!(parse_clause("full()").is_err());
        assert!(parse_clause("full(this) at HASNEXT").is_err());
        assert!(parse_clause("full(this) in ").is_err());
    }

    #[test]
    fn clause_round_trips_through_display() {
        for text in ["full(this) in HASNEXT", "pure(this)", "unique(result) in ALIVE, share(x)"] {
            let c = parse_clause(text).unwrap();
            let reparsed = parse_clause(&c.to_string()).unwrap();
            assert_eq!(c, reparsed);
        }
    }

    #[test]
    fn extracts_spec_from_figure2_method() {
        let unit = parse(
            r#"interface Iterator<T> {
                @Spec(requires="full(this) in HASNEXT", ensures="full(this) in ALIVE")
                T next();
                @Perm(requires="pure(this) in ALIVE", ensures="pure(this)")
                @TrueIndicates("HASNEXT")
                @FalseIndicates("END")
                boolean hasNext();
            }"#,
        )
        .unwrap();
        let it = unit.type_named("Iterator").unwrap();
        let next = spec_of_method(it.method_named("next").unwrap()).unwrap();
        assert_eq!(next.requires.for_target(&SpecTarget::This).unwrap().kind, PermissionKind::Full);
        assert_eq!(
            next.requires.for_target(&SpecTarget::This).unwrap().state.as_deref(),
            Some("HASNEXT")
        );
        assert!(!next.is_state_test());

        let has_next = spec_of_method(it.method_named("hasNext").unwrap()).unwrap();
        assert_eq!(has_next.true_indicates.as_deref(), Some("HASNEXT"));
        assert_eq!(has_next.false_indicates.as_deref(), Some("END"));
        assert!(has_next.is_state_test());
    }

    #[test]
    fn unannotated_method_gives_empty_spec() {
        let unit = parse("class C { void m() {} }").unwrap();
        let m = unit.type_named("C").unwrap().method_named("m").unwrap();
        assert!(spec_of_method(m).unwrap().is_empty());
    }

    #[test]
    fn annotations_round_trip() {
        let spec = MethodSpec {
            requires: parse_clause("full(this) in HASNEXT").unwrap(),
            ensures: parse_clause("full(this) in ALIVE").unwrap(),
            true_indicates: Some("HASNEXT".into()),
            false_indicates: None,
        };
        let anns = spec_to_annotations(&spec);
        assert_eq!(anns.len(), 2);
        assert_eq!(anns[0].string_element("requires"), Some("full(this) in HASNEXT"));
        assert_eq!(anns[1].single_string(), Some("HASNEXT"));
    }
}
