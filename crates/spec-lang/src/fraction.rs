//! Exact rational arithmetic for fractional permissions.
//!
//! Boyland-style fractional permissions \[7\] associate each permission with a
//! rational fraction of the whole object so that weaker permissions can later
//! be merged back into stronger ones. `num-rational` is not in the approved
//! offline dependency set, so this is a small exact implementation over
//! `i64` with overflow-checked operations.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Sub};

/// An exact non-negative rational number, always kept in lowest terms with a
/// positive denominator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fraction {
    num: i64,
    den: i64,
}

/// Error produced by fraction arithmetic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FractionError {
    /// Denominator of zero.
    ZeroDenominator,
    /// Numerator/denominator exceeded `i64` range during normalization.
    Overflow,
    /// A subtraction went below zero (permissions cannot be negative).
    Negative,
}

impl fmt::Display for FractionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FractionError::ZeroDenominator => f.write_str("fraction denominator is zero"),
            FractionError::Overflow => f.write_str("fraction arithmetic overflowed"),
            FractionError::Negative => f.write_str("fraction result would be negative"),
        }
    }
}

impl std::error::Error for FractionError {}

fn gcd(mut a: i64, mut b: i64) -> i64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.abs()
}

impl Fraction {
    /// The zero fraction (no permission).
    pub const ZERO: Fraction = Fraction { num: 0, den: 1 };
    /// The whole permission.
    pub const ONE: Fraction = Fraction { num: 1, den: 1 };
    /// One half.
    pub const HALF: Fraction = Fraction { num: 1, den: 2 };

    /// Creates a fraction `num/den` reduced to lowest terms.
    ///
    /// # Errors
    ///
    /// Returns [`FractionError::ZeroDenominator`] if `den == 0` and
    /// [`FractionError::Negative`] if the value is below zero.
    pub fn new(num: i64, den: i64) -> Result<Fraction, FractionError> {
        if den == 0 {
            return Err(FractionError::ZeroDenominator);
        }
        let (mut num, mut den) = if den < 0 { (-num, -den) } else { (num, den) };
        if num < 0 {
            return Err(FractionError::Negative);
        }
        let g = gcd(num, den);
        if g > 1 {
            num /= g;
            den /= g;
        }
        Ok(Fraction { num, den })
    }

    /// The numerator (after reduction).
    pub fn numer(&self) -> i64 {
        self.num
    }

    /// The denominator (after reduction, always positive).
    pub fn denom(&self) -> i64 {
        self.den
    }

    /// Whether this fraction is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Whether this fraction is exactly one (a whole permission).
    pub fn is_one(&self) -> bool {
        self.num == self.den
    }

    /// Checked addition.
    ///
    /// # Errors
    ///
    /// Returns [`FractionError::Overflow`] when intermediate products exceed
    /// `i64`.
    pub fn checked_add(self, rhs: Fraction) -> Result<Fraction, FractionError> {
        let num = self
            .num
            .checked_mul(rhs.den)
            .and_then(|a| rhs.num.checked_mul(self.den).and_then(|b| a.checked_add(b)))
            .ok_or(FractionError::Overflow)?;
        let den = self.den.checked_mul(rhs.den).ok_or(FractionError::Overflow)?;
        Fraction::new(num, den)
    }

    /// Checked subtraction; errors if the result would be negative.
    ///
    /// # Errors
    ///
    /// [`FractionError::Negative`] if `rhs > self`, [`FractionError::Overflow`]
    /// on `i64` overflow.
    pub fn checked_sub(self, rhs: Fraction) -> Result<Fraction, FractionError> {
        let num = self
            .num
            .checked_mul(rhs.den)
            .and_then(|a| rhs.num.checked_mul(self.den).and_then(|b| a.checked_sub(b)))
            .ok_or(FractionError::Overflow)?;
        if num < 0 {
            return Err(FractionError::Negative);
        }
        let den = self.den.checked_mul(rhs.den).ok_or(FractionError::Overflow)?;
        Fraction::new(num, den)
    }

    /// Checked multiplication.
    ///
    /// # Errors
    ///
    /// [`FractionError::Overflow`] on `i64` overflow.
    pub fn checked_mul(self, rhs: Fraction) -> Result<Fraction, FractionError> {
        // Cross-reduce first to keep intermediates small.
        let g1 = gcd(self.num, rhs.den).max(1);
        let g2 = gcd(rhs.num, self.den).max(1);
        let num = (self.num / g1).checked_mul(rhs.num / g2).ok_or(FractionError::Overflow)?;
        let den = (self.den / g2).checked_mul(rhs.den / g1).ok_or(FractionError::Overflow)?;
        Fraction::new(num, den)
    }

    /// Checked division.
    ///
    /// # Errors
    ///
    /// [`FractionError::ZeroDenominator`] when dividing by zero,
    /// [`FractionError::Overflow`] on `i64` overflow.
    pub fn checked_div(self, rhs: Fraction) -> Result<Fraction, FractionError> {
        if rhs.is_zero() {
            return Err(FractionError::ZeroDenominator);
        }
        self.checked_mul(Fraction { num: rhs.den, den: rhs.num })
    }

    /// Splits this fraction evenly into `n` parts.
    ///
    /// # Errors
    ///
    /// [`FractionError::ZeroDenominator`] if `n == 0`,
    /// [`FractionError::Overflow`] on `i64` overflow.
    pub fn split(self, n: u32) -> Result<Fraction, FractionError> {
        if n == 0 {
            return Err(FractionError::ZeroDenominator);
        }
        self.checked_div(Fraction::new(n as i64, 1).expect("n >= 1"))
    }

    /// Half of this fraction.
    pub fn halve(self) -> Fraction {
        self.split(2).expect("halving cannot fail for reduced fractions")
    }
}

impl Default for Fraction {
    fn default() -> Fraction {
        Fraction::ZERO
    }
}

impl PartialOrd for Fraction {
    fn partial_cmp(&self, other: &Fraction) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Fraction {
    fn cmp(&self, other: &Fraction) -> Ordering {
        // Compare via i128 to avoid overflow.
        let lhs = self.num as i128 * other.den as i128;
        let rhs = other.num as i128 * self.den as i128;
        lhs.cmp(&rhs)
    }
}

impl fmt::Display for Fraction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

// Panicking operator impls for ergonomic use in tests and internal code that
// has already validated ranges. Checked variants above are the public
// contract for untrusted inputs.

impl Add for Fraction {
    type Output = Fraction;
    /// # Panics
    /// Panics on overflow; use [`Fraction::checked_add`] for fallible addition.
    fn add(self, rhs: Fraction) -> Fraction {
        self.checked_add(rhs).expect("fraction addition overflowed")
    }
}

impl Sub for Fraction {
    type Output = Fraction;
    /// # Panics
    /// Panics on overflow/negative; use [`Fraction::checked_sub`].
    fn sub(self, rhs: Fraction) -> Fraction {
        self.checked_sub(rhs).expect("fraction subtraction failed")
    }
}

impl Mul for Fraction {
    type Output = Fraction;
    /// # Panics
    /// Panics on overflow; use [`Fraction::checked_mul`].
    fn mul(self, rhs: Fraction) -> Fraction {
        self.checked_mul(rhs).expect("fraction multiplication overflowed")
    }
}

impl Div for Fraction {
    type Output = Fraction;
    /// # Panics
    /// Panics on division by zero or overflow; use [`Fraction::checked_div`].
    fn div(self, rhs: Fraction) -> Fraction {
        self.checked_div(rhs).expect("fraction division failed")
    }
}

impl From<u32> for Fraction {
    fn from(v: u32) -> Fraction {
        Fraction { num: v as i64, den: 1 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_reduces_and_fixes_sign() {
        let f = Fraction::new(2, 4).unwrap();
        assert_eq!((f.numer(), f.denom()), (1, 2));
        let g = Fraction::new(3, -6);
        assert_eq!(g, Err(FractionError::Negative));
        let z = Fraction::new(0, 5).unwrap();
        assert!(z.is_zero());
        assert_eq!(z.denom(), 1);
    }

    #[test]
    fn zero_denominator_rejected() {
        assert_eq!(Fraction::new(1, 0), Err(FractionError::ZeroDenominator));
    }

    #[test]
    fn arithmetic_laws() {
        let a = Fraction::new(1, 3).unwrap();
        let b = Fraction::new(1, 6).unwrap();
        assert_eq!(a + b, Fraction::HALF);
        assert_eq!(Fraction::ONE - Fraction::HALF, Fraction::HALF);
        assert_eq!(a * b, Fraction::new(1, 18).unwrap());
        assert_eq!(a / b, Fraction::new(2, 1).unwrap());
    }

    #[test]
    fn subtraction_below_zero_errors() {
        assert_eq!(Fraction::HALF.checked_sub(Fraction::ONE), Err(FractionError::Negative));
    }

    #[test]
    fn split_and_merge_round_trip() {
        let whole = Fraction::ONE;
        let part = whole.split(4).unwrap();
        assert_eq!(part, Fraction::new(1, 4).unwrap());
        let merged = part + part + part + part;
        assert!(merged.is_one());
    }

    #[test]
    fn halve_always_succeeds() {
        let mut f = Fraction::ONE;
        for _ in 0..20 {
            f = f.halve();
        }
        assert_eq!(f, Fraction::new(1, 1 << 20).unwrap());
    }

    #[test]
    fn ordering_is_exact() {
        let a = Fraction::new(1, 3).unwrap();
        let b = Fraction::new(2, 5).unwrap();
        assert!(a < b);
        assert!(Fraction::ZERO < a);
        assert!(b < Fraction::ONE);
    }

    #[test]
    fn overflow_detected() {
        let big = Fraction::new(i64::MAX - 1, 1).unwrap();
        assert_eq!(big.checked_add(big), Err(FractionError::Overflow));
        assert_eq!(big.checked_mul(big), Err(FractionError::Overflow));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Fraction::HALF.to_string(), "1/2");
        assert_eq!(Fraction::ONE.to_string(), "1");
        assert_eq!(Fraction::ZERO.to_string(), "0");
    }
}
