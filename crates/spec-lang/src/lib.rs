//! # spec-lang
//!
//! The access-permission specification language of the ANEK/PLURAL
//! reproduction (Beckman & Nori, PLDI 2011): the five permission kinds and
//! their splitting algebra (paper Figure 4), Boyland-style fractions,
//! abstract state spaces rooted at `ALIVE`, and the `@Perm`/`@Spec`
//! annotation mini-language with `@TrueIndicates`/`@FalseIndicates` state
//! tests (paper Figures 2 and 8).
//!
//! ## Example
//!
//! ```
//! use spec_lang::{parse_clause, PermissionKind, SpecTarget};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let clause = parse_clause("full(this) in HASNEXT")?;
//! let atom = clause.for_target(&SpecTarget::This).expect("has a `this` atom");
//! assert_eq!(atom.kind, PermissionKind::Full);
//!
//! // `unique` can be split into a writer plus readers, but never two writers:
//! assert!(PermissionKind::Unique.can_split_into(&[PermissionKind::Full, PermissionKind::Pure]));
//! assert!(!PermissionKind::Unique.can_split_into(&[PermissionKind::Full, PermissionKind::Full]));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod fraction;
pub mod perm;
pub mod permission;
pub mod spec;
pub mod state;
pub mod stdlib;

pub use fraction::{Fraction, FractionError};
pub use perm::{PermError, Permission};
pub use permission::PermissionKind;
pub use spec::{
    parse_clause, spec_of_method, spec_to_annotations, MethodSpec, PermAtom, PermClause,
    SpecParseError, SpecTarget,
};
pub use state::{StateRegistry, StateSpace, ALIVE};
pub use stdlib::{figure2_java_source, standard_api, ApiMethod, ApiRegistry};
