//! Abstract state spaces (typestates).
//!
//! Every reference type has a hierarchy of abstract states rooted at `ALIVE`
//! (paper §1: "The ALIVE state in the PLURAL methodology is the root of the
//! state hierarchy"). For the iterator protocol (paper Figure 1) the
//! hierarchy is `ALIVE ⊇ {HASNEXT, END}`.

use std::collections::BTreeMap;
use std::fmt;

/// The distinguished root state every object is always in.
pub const ALIVE: &str = "ALIVE";

/// The state hierarchy for one reference type: a tree of state names rooted
/// at [`ALIVE`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateSpace {
    /// Type this space belongs to (simple name).
    type_name: String,
    /// child state -> parent state; `ALIVE` has no entry.
    parents: BTreeMap<String, String>,
}

impl StateSpace {
    /// A space containing only `ALIVE` (types without a protocol).
    pub fn trivial(type_name: impl Into<String>) -> StateSpace {
        StateSpace { type_name: type_name.into(), parents: BTreeMap::new() }
    }

    /// Builds a flat space: every given state refines `ALIVE` directly.
    pub fn flat<S: Into<String>>(
        type_name: impl Into<String>,
        states: impl IntoIterator<Item = S>,
    ) -> StateSpace {
        let mut space = StateSpace::trivial(type_name);
        for s in states {
            space.add_state(s.into(), ALIVE.to_string());
        }
        space
    }

    /// Adds a state refining `parent`. Re-adding an existing state replaces
    /// its parent.
    pub fn add_state(&mut self, state: String, parent: String) {
        if state != ALIVE {
            self.parents.insert(state, parent);
        }
    }

    /// Parses a comma-separated state declaration as written in `@States`:
    /// plain names refine `ALIVE`; `PARENT > CHILD` entries declare nested
    /// refinements (e.g. `"OPEN, CLOSED, OPEN > EOF"`).
    pub fn parse_decl(type_name: impl Into<String>, decl: &str) -> StateSpace {
        let mut space = StateSpace::trivial(type_name);
        for entry in decl.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            match entry.split_once('>') {
                Some((parent, child)) => {
                    let parent = parent.trim().to_string();
                    let child = child.trim().to_string();
                    if !space.contains(&parent) {
                        space.add_state(parent.clone(), ALIVE.to_string());
                    }
                    space.add_state(child, parent);
                }
                None => space.add_state(entry.to_string(), ALIVE.to_string()),
            }
        }
        space
    }

    /// The type this space describes.
    pub fn type_name(&self) -> &str {
        &self.type_name
    }

    /// Whether `state` is declared in this space (including `ALIVE`).
    pub fn contains(&self, state: &str) -> bool {
        state == ALIVE || self.parents.contains_key(state)
    }

    /// All states, `ALIVE` first, then declared states in sorted order.
    pub fn states(&self) -> Vec<&str> {
        let mut v = vec![ALIVE];
        v.extend(self.parents.keys().map(String::as_str));
        v
    }

    /// Number of states including `ALIVE`.
    pub fn len(&self) -> usize {
        self.parents.len() + 1
    }

    /// Whether only `ALIVE` exists.
    pub fn is_empty(&self) -> bool {
        self.parents.is_empty()
    }

    /// Whether an object in `sub` is necessarily also in `sup`
    /// (reflexive-transitive refinement towards the root).
    pub fn refines(&self, sub: &str, sup: &str) -> bool {
        if sub == sup {
            return true;
        }
        let mut cur = sub;
        while let Some(p) = self.parents.get(cur) {
            if p == sup {
                return true;
            }
            cur = p;
        }
        // Every declared state refines ALIVE.
        sup == ALIVE && self.contains(sub)
    }

    /// The parent of a state, or `None` for `ALIVE`/unknown states.
    pub fn parent(&self, state: &str) -> Option<&str> {
        self.parents.get(state).map(String::as_str)
    }

    /// The *concrete* states an object "in `state`" may inhabit: every
    /// declared (non-`ALIVE`) state refining `state`, in sorted order.
    /// `concrete_states(ALIVE)` is all declared states; a leaf state expands
    /// to itself; the result is empty for trivial spaces or unknown states.
    pub fn concrete_states(&self, state: &str) -> Vec<&str> {
        self.states().into_iter().filter(|s| *s != ALIVE && self.refines(s, state)).collect()
    }
}

impl fmt::Display for StateSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{{{}}}", self.type_name, self.states().join(", "))
    }
}

/// A registry of state spaces for all reference types in a program.
///
/// Types that never declared a protocol get the trivial `{ALIVE}` space on
/// lookup, so analyses can treat every reference type uniformly.
#[derive(Debug, Clone, Default)]
pub struct StateRegistry {
    spaces: BTreeMap<String, StateSpace>,
}

impl StateRegistry {
    /// An empty registry.
    pub fn new() -> StateRegistry {
        StateRegistry::default()
    }

    /// Registers (or replaces) a space.
    pub fn insert(&mut self, space: StateSpace) {
        self.spaces.insert(space.type_name().to_string(), space);
    }

    /// Looks up the space for a type, if declared.
    pub fn get(&self, type_name: &str) -> Option<&StateSpace> {
        self.spaces.get(type_name)
    }

    /// The states a variable of `type_name` can inhabit; `[ALIVE]` when the
    /// type declared no protocol.
    pub fn states_of(&self, type_name: &str) -> Vec<String> {
        match self.spaces.get(type_name) {
            Some(s) => s.states().into_iter().map(str::to_string).collect(),
            None => vec![ALIVE.to_string()],
        }
    }

    /// Iterates over all registered spaces.
    pub fn iter(&self) -> impl Iterator<Item = &StateSpace> {
        self.spaces.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iterator_space() -> StateSpace {
        StateSpace::flat("Iterator", ["HASNEXT", "END"])
    }

    #[test]
    fn trivial_space_has_only_alive() {
        let s = StateSpace::trivial("Row");
        assert_eq!(s.states(), vec![ALIVE]);
        assert!(s.is_empty());
        assert!(s.contains(ALIVE));
        assert!(!s.contains("OPEN"));
    }

    #[test]
    fn iterator_protocol_space() {
        let s = iterator_space();
        assert_eq!(s.len(), 3);
        assert!(s.contains("HASNEXT"));
        assert!(s.contains("END"));
        assert!(s.refines("HASNEXT", ALIVE));
        assert!(s.refines("END", ALIVE));
        assert!(!s.refines("HASNEXT", "END"));
        assert!(s.refines("HASNEXT", "HASNEXT"));
    }

    #[test]
    fn nested_refinement() {
        let mut s = StateSpace::trivial("File");
        s.add_state("OPEN".into(), ALIVE.into());
        s.add_state("EOF".into(), "OPEN".into());
        assert!(s.refines("EOF", "OPEN"));
        assert!(s.refines("EOF", ALIVE));
        assert!(!s.refines("OPEN", "EOF"));
        assert_eq!(s.parent("EOF"), Some("OPEN"));
        assert_eq!(s.parent(ALIVE), None);
    }

    #[test]
    fn registry_defaults_to_alive() {
        let mut reg = StateRegistry::new();
        reg.insert(iterator_space());
        assert_eq!(reg.states_of("Iterator").len(), 3);
        assert_eq!(reg.states_of("Row"), vec![ALIVE.to_string()]);
        assert!(reg.get("Iterator").is_some());
        assert!(reg.get("Row").is_none());
    }

    #[test]
    fn parse_decl_supports_nesting() {
        let s = StateSpace::parse_decl("File", "OPEN, CLOSED, OPEN > EOF");
        assert!(s.contains("OPEN"));
        assert!(s.contains("CLOSED"));
        assert!(s.contains("EOF"));
        assert!(s.refines("EOF", "OPEN"));
        assert!(s.refines("EOF", ALIVE));
        assert!(!s.refines("CLOSED", "OPEN"));
        // Forward references create the parent on demand.
        let t = StateSpace::parse_decl("T", "A > B");
        assert!(t.refines("B", "A"));
    }

    #[test]
    fn concrete_states_expand_refinements() {
        let s = iterator_space();
        assert_eq!(s.concrete_states(ALIVE), vec!["END", "HASNEXT"]);
        assert_eq!(s.concrete_states("HASNEXT"), vec!["HASNEXT"]);
        assert!(s.concrete_states("UNKNOWN").is_empty());
        assert!(StateSpace::trivial("Row").concrete_states(ALIVE).is_empty());
        let nested = StateSpace::parse_decl("File", "OPEN, CLOSED, OPEN > EOF");
        assert_eq!(nested.concrete_states("OPEN"), vec!["EOF", "OPEN"]);
    }

    #[test]
    fn alive_cannot_be_reparented() {
        let mut s = StateSpace::trivial("X");
        s.add_state(ALIVE.into(), "Y".into());
        assert_eq!(s.states(), vec![ALIVE]);
    }
}
