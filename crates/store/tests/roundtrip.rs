//! Round-trip properties of the artifact codecs and the on-disk store:
//! serialize → deserialize must be value-equal and (re-serialized)
//! bit-equal for every artifact class, including artifacts produced by
//! real inference runs and adversarial float values like NaN.

use analysis::pfg::Pfg;
use analysis::types::{MethodId, ProgramIndex};
use anek_core::memo::{CacheKey, InferCache, SolvedRecord};
use anek_core::{infer_with_store, CallerEvidence, InferConfig, MethodSummary, SlotProbs};
use factor_graph::GuardEvents;
use java_syntax::ast::ExprId;
use prng::Rng;
use spec_lang::{parse_clause, standard_api, MethodSpec};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use store::{codec, Store};

fn temp_store(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("anek-store-rt-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn rand_slot(rng: &mut Rng) -> SlotProbs {
    let mut kinds = [0.0f64; 5];
    for k in &mut kinds {
        *k = rng.gen_f64();
    }
    let mut states = BTreeMap::new();
    for i in 0..rng.gen_index(0..4) {
        states.insert(format!("S{i}"), rng.gen_f64());
    }
    SlotProbs { kinds, states }
}

fn rand_summary(rng: &mut Rng) -> MethodSummary {
    let params = (0..rng.gen_index(0..4))
        .map(|i| (format!("p{i}"), rand_slot(rng), rand_slot(rng)))
        .collect();
    let result = rng.gen_bool(0.5).then(|| rand_slot(rng));
    MethodSummary { params, result }
}

fn rand_evidence(rng: &mut Rng) -> CallerEvidence {
    let mut pre = BTreeMap::new();
    let mut post = BTreeMap::new();
    for i in 0..rng.gen_index(0..3) {
        pre.insert(format!("a{i}"), rand_slot(rng));
        post.insert(format!("a{i}"), rand_slot(rng));
    }
    CallerEvidence {
        param_pre: pre,
        param_post: post,
        result: rng.gen_bool(0.3).then(|| rand_slot(rng)),
    }
}

fn rand_solved(rng: &mut Rng) -> SolvedRecord {
    let mut call_evidence = BTreeMap::new();
    for i in 0..rng.gen_index(0..3) {
        let mut sites = BTreeMap::new();
        for s in 0..rng.gen_index(1..3) {
            sites.insert(ExprId(s as u32 * 7), rand_evidence(rng));
        }
        call_evidence.insert(MethodId::new(format!("C{i}"), "m"), sites);
    }
    SolvedRecord {
        summary: rand_summary(rng),
        call_evidence,
        iterations: rng.gen_index(0..100),
        updates: rng.gen_index(0..10_000),
        converged: rng.gen_bool(0.8),
        guards: GuardEvents { non_finite: rng.gen_index(0..3), zero_sum: rng.gen_index(0..3) },
    }
}

#[test]
fn random_summaries_round_trip_bit_exactly() {
    prng::forall("summary round-trip", 200, |rng| {
        let summary = rand_summary(rng);
        let bytes = codec::to_bytes(|e| codec::enc_summary(e, &summary));
        let back = codec::from_bytes(&bytes, codec::dec_summary).expect("decodes");
        assert_eq!(back, summary);
        let again = codec::to_bytes(|e| codec::enc_summary(e, &back));
        assert_eq!(again, bytes, "re-serialization must be bit-identical");
    });
}

#[test]
fn random_solve_records_round_trip() {
    prng::forall("solve-record round-trip", 100, |rng| {
        let record = rand_solved(rng);
        let bytes = codec::to_bytes(|e| codec::enc_solved(e, &record));
        let back = codec::from_bytes(&bytes, codec::dec_solved).expect("decodes");
        assert_eq!(back, record);
        let again = codec::to_bytes(|e| codec::enc_solved(e, &back));
        assert_eq!(again, bytes);
    });
}

#[test]
fn non_finite_floats_survive_bit_exactly() {
    // NaN breaks value equality (NaN != NaN), so bit-level round-tripping
    // is the only meaningful contract — and the one determinism needs.
    let mut slot = SlotProbs {
        kinds: [f64::NAN, f64::INFINITY, -0.0, 1.0, f64::MIN_POSITIVE],
        states: BTreeMap::new(),
    };
    slot.states.insert("S".into(), f64::NEG_INFINITY);
    let summary = MethodSummary { params: vec![("p".into(), slot.clone(), slot)], result: None };
    let bytes = codec::to_bytes(|e| codec::enc_summary(e, &summary));
    let back = codec::from_bytes(&bytes, codec::dec_summary).expect("decodes");
    let again = codec::to_bytes(|e| codec::enc_summary(e, &back));
    assert_eq!(again, bytes);
    assert!(back.params[0].1.kinds[0].is_nan());
    assert_eq!(back.params[0].1.kinds[2].to_bits(), (-0.0f64).to_bits());
}

#[test]
fn specs_round_trip() {
    let requires = parse_clause("full(this) in HASNEXT, pure(it)").expect("parses");
    let ensures = parse_clause("unique(result) in ALIVE").expect("parses");
    let spec = MethodSpec {
        requires,
        ensures,
        true_indicates: Some("HASNEXT".into()),
        false_indicates: None,
    };
    let bytes = codec::to_bytes(|e| codec::enc_spec(e, &spec));
    let back = codec::from_bytes(&bytes, codec::dec_spec).expect("decodes");
    assert_eq!(back, spec);
    let empty = MethodSpec::default();
    let bytes = codec::to_bytes(|e| codec::enc_spec(e, &empty));
    assert_eq!(codec::from_bytes(&bytes, codec::dec_spec).expect("decodes"), empty);
}

#[test]
fn pfgs_from_real_programs_round_trip() {
    let unit = java_syntax::parse(
        r#"class Row {
            Collection<Integer> entries;
            Iterator<Integer> createColIter() { return entries.iterator(); }
            void drain(Iterator<Integer> it) { while (it.hasNext()) { it.next(); } }
            synchronized void locked(Iterator<Integer> it) { it.next(); }
        }"#,
    )
    .expect("parses");
    let index = ProgramIndex::build(std::iter::once(&unit));
    let api = standard_api();
    for t in &unit.types {
        for m in t.methods() {
            let pfg = Pfg::build(&index, &api, &t.name, m);
            let bytes = codec::to_bytes(|e| codec::enc_pfg(e, &pfg));
            let back = codec::from_bytes(&bytes, codec::dec_pfg).expect("decodes");
            // Pfg has no PartialEq; its Debug rendering covers every field
            // including the recomputed adjacency lists.
            assert_eq!(format!("{back:?}"), format!("{pfg:?}"), "{}.{}", t.name, m.name);
            let again = codec::to_bytes(|e| codec::enc_pfg(e, &back));
            assert_eq!(again, bytes);
        }
    }
}

/// An [`InferCache`] that records inserts so tests can round-trip the
/// records a real inference run commits.
#[derive(Default)]
struct Capture {
    solves: Mutex<Vec<(CacheKey, SolvedRecord)>>,
    pfgs: Mutex<Vec<(CacheKey, Arc<Pfg>)>>,
}

impl InferCache for Capture {
    fn solve_lookup(&self, _key: CacheKey) -> Option<SolvedRecord> {
        None
    }
    fn solve_insert(&self, key: CacheKey, record: &SolvedRecord) {
        self.solves.lock().unwrap().push((key, record.clone()));
    }
    fn pfg_lookup(&self, _key: CacheKey) -> Option<Arc<Pfg>> {
        None
    }
    fn pfg_insert(&self, key: CacheKey, pfg: &Arc<Pfg>) {
        self.pfgs.lock().unwrap().push((key, Arc::clone(pfg)));
    }
}

#[test]
fn inference_artifacts_round_trip() {
    let unit = java_syntax::parse(
        r#"class App {
            void level1(Iterator<Integer> it) { it.next(); }
            void level2(Iterator<Integer> it) { level1(it); }
        }"#,
    )
    .expect("parses");
    let api = standard_api();
    let capture = Capture::default();
    let result = infer_with_store(&[unit], &api, &InferConfig::default(), Some(&capture));
    assert!(result.memo_misses > 0, "cold run must commit misses");
    let solves = capture.solves.lock().unwrap();
    assert!(!solves.is_empty());
    for (_, record) in solves.iter() {
        let bytes = codec::to_bytes(|e| codec::enc_solved(e, record));
        let back = codec::from_bytes(&bytes, codec::dec_solved).expect("decodes");
        assert_eq!(&back, record);
    }
    let pfgs = capture.pfgs.lock().unwrap();
    assert!(!pfgs.is_empty());
    for (_, pfg) in pfgs.iter() {
        let bytes = codec::to_bytes(|e| codec::enc_pfg(e, pfg));
        let back = codec::from_bytes(&bytes, codec::dec_pfg).expect("decodes");
        assert_eq!(format!("{back:?}"), format!("{:?}", **pfg));
    }
    for (id, summary) in &result.summaries {
        let bytes = codec::to_bytes(|e| codec::enc_summary(e, summary));
        let back = codec::from_bytes(&bytes, codec::dec_summary).expect("decodes");
        assert_eq!(&back, summary, "{id}");
    }
    for (id, spec) in &result.specs {
        let bytes = codec::to_bytes(|e| codec::enc_spec(e, spec));
        let back = codec::from_bytes(&bytes, codec::dec_spec).expect("decodes");
        assert_eq!(&back, spec, "{id}");
    }
}

#[test]
fn store_round_trips_through_disk() {
    let dir = temp_store("disk");
    let mut rng = Rng::new(7);
    let record = rand_solved(&mut rng);
    let key: CacheKey = 0x0123_4567_89ab_cdef_fedc_ba98_7654_3210;
    {
        let s = Store::open(&dir).expect("open");
        s.solve_insert(key, &record);
        s.flush().expect("flush");
    }
    // A fresh Store has a cold memory cache, so this exercises the disk path.
    let s = Store::open(&dir).expect("reopen");
    assert_eq!(s.stats().entries, 1);
    let back = s.solve_lookup(key).expect("hit");
    assert_eq!(back, record);
    assert_eq!(s.stats().solve_hits, 1);
    assert_eq!(s.stats().corrupt_entries, 0);
    assert!(s.solve_lookup(key ^ 1).is_none(), "different key misses");
    assert_eq!(s.stats().solve_misses, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn record_run_persists_specs_summaries_and_asts() {
    let dir = temp_store("run");
    let unit = java_syntax::parse(
        "class App { void drain(Iterator<Integer> it) { while (it.hasNext()) { it.next(); } } }",
    )
    .expect("parses");
    let api = standard_api();
    let cfg = InferConfig::default();
    let units = vec![unit];
    let store = Store::open(&dir).expect("open");
    let result = infer_with_store(&units, &api, &cfg, Some(&store));
    let run = store.record_run(&units, &api, &cfg, &result).expect("record");
    assert_eq!(store.latest_run(), Some(run));

    let reopened = Store::open(&dir).expect("reopen");
    assert_eq!(reopened.latest_run(), Some(run), "manifest persists the run key");
    let id = MethodId::new("App", "drain");
    assert_eq!(reopened.load_spec(run, &id).as_ref(), result.specs.get(&id));
    assert_eq!(reopened.load_summary(run, &id).as_ref(), result.summaries.get(&id));
    let ast_key = anek_core::memo::unit_fingerprint(&units[0]);
    assert_eq!(
        reopened.load_ast_text(ast_key).expect("ast stored"),
        java_syntax::print_unit(&units[0])
    );
    let dep = reopened.dep_index();
    assert!(dep.class_methods["App"].contains("drain"));
    let _ = std::fs::remove_dir_all(&dir);
}
