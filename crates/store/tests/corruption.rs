//! Corruption tolerance: a truncated, bit-flipped or version-skewed entry
//! of *any* artifact class must degrade into a counted cache miss
//! (`StoreStats::corrupt_entries`) — never a panic, never a wrong value.

use analysis::types::MethodId;
use anek_core::memo::{CacheKey, InferCache};
use anek_core::{infer_with_store, InferConfig};
use spec_lang::standard_api;
use std::fs;
use std::path::{Path, PathBuf};
use store::{ArtifactKind, Store};

fn temp_store(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("anek-store-cx-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Builds a populated store (all five artifact classes present) and
/// returns its root, the run key, and a method id with a spec.
fn populated(name: &str) -> (PathBuf, CacheKey, MethodId) {
    let dir = temp_store(name);
    let unit = java_syntax::parse(
        "class App { void drain(Iterator<Integer> it) { while (it.hasNext()) { it.next(); } } }",
    )
    .expect("parses");
    let api = standard_api();
    let cfg = InferConfig::default();
    let units = vec![unit];
    let store = Store::open(&dir).expect("open");
    let result = infer_with_store(&units, &api, &cfg, Some(&store));
    let run = store.record_run(&units, &api, &cfg, &result).expect("record");
    for kind in ArtifactKind::ALL {
        assert!(
            blob_paths(&dir, kind).next().is_some(),
            "populated store must hold a {} blob",
            kind.label()
        );
    }
    (dir, run, MethodId::new("App", "drain"))
}

fn blob_paths(dir: &Path, kind: ArtifactKind) -> impl Iterator<Item = PathBuf> {
    let prefix = format!("{}-", kind.label());
    let mut paths: Vec<PathBuf> = fs::read_dir(dir.join("objects"))
        .expect("objects dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(move |p| {
            p.file_name().and_then(|n| n.to_str()).is_some_and(|n| n.starts_with(&prefix))
                && p.extension().is_some_and(|x| x == "blob")
        })
        .collect();
    paths.sort();
    paths.into_iter()
}

/// Key of a blob file, parsed back out of its `<kind>-<key>.blob` name.
fn key_of(path: &Path) -> CacheKey {
    let name = path.file_stem().and_then(|n| n.to_str()).expect("file name");
    let hex = name.split('-').next_back().expect("key part");
    CacheKey::from_str_radix(hex, 16).expect("hex key")
}

enum Corruption {
    Truncate,
    BitFlip,
    VersionBump,
}

fn corrupt(path: &Path, how: &Corruption) {
    let mut bytes = fs::read(path).expect("read blob");
    match how {
        Corruption::Truncate => bytes.truncate(bytes.len() / 2),
        Corruption::BitFlip => {
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x40;
        }
        Corruption::VersionBump => {
            // Format version lives at bytes 8..12 of every frame.
            let v = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) + 1;
            bytes[8..12].copy_from_slice(&v.to_le_bytes());
        }
    }
    fs::write(path, bytes).expect("write corrupted blob");
}

/// Looks one artifact of `kind` up through a *fresh* store (cold memory
/// cache, so the disk path runs) and returns whether it decoded.
fn lookup(store: &Store, dir: &Path, kind: ArtifactKind, run: CacheKey, id: &MethodId) -> bool {
    match kind {
        ArtifactKind::Solve => {
            let path = blob_paths(dir, kind).next();
            // The file may already have been removed by a prior corrupt
            // lookup; derive the key from any remaining file, else miss.
            match path {
                Some(p) => store.solve_lookup(key_of(&p)).is_some(),
                None => false,
            }
        }
        ArtifactKind::Pfg => match blob_paths(dir, kind).next() {
            Some(p) => store.pfg_lookup(key_of(&p)).is_some(),
            None => false,
        },
        ArtifactKind::Summary => store.load_summary(run, id).is_some(),
        ArtifactKind::Spec => store.load_spec(run, id).is_some(),
        ArtifactKind::Ast => match blob_paths(dir, kind).next() {
            Some(p) => store.load_ast_text(key_of(&p)).is_some(),
            None => false,
        },
    }
}

#[test]
fn every_artifact_class_tolerates_every_corruption() {
    for (cname, how) in [
        ("truncate", Corruption::Truncate),
        ("bitflip", Corruption::BitFlip),
        ("version", Corruption::VersionBump),
    ] {
        for kind in ArtifactKind::ALL {
            let (dir, run, id) = populated(&format!("{cname}-{}", kind.label()));
            let fresh = Store::open(&dir).expect("open");
            assert!(
                lookup(&fresh, &dir, kind, run, &id),
                "{} should load intact before {cname}",
                kind.label()
            );
            let victim = blob_paths(&dir, kind).next().expect("blob to corrupt");
            corrupt(&victim, &how);
            // Fresh store again: the previous one has the artifact cached
            // in memory and must not be fooled — but the disk path must
            // detect the damage.
            let damaged = Store::open(&dir).expect("open damaged");
            assert!(
                !lookup(&damaged, &dir, kind, run, &id),
                "{cname} {} blob must read as a miss",
                kind.label()
            );
            let stats = damaged.stats();
            assert_eq!(
                stats.corrupt_entries,
                1,
                "{cname} {} must count exactly one corrupt entry",
                kind.label()
            );
            assert!(!victim.exists(), "corrupt blob is removed after counting");
            // Degraded into a plain miss: the same lookup again is silent.
            assert!(!lookup(&damaged, &dir, kind, run, &id));
            assert_eq!(damaged.stats().corrupt_entries, 1, "no double counting");
            let _ = fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn wrong_kind_and_wrong_key_are_rejected() {
    let (dir, _run, _id) = populated("swap");
    let solve = blob_paths(&dir, ArtifactKind::Solve).next().expect("solve blob");
    let key = key_of(&solve);
    // Serve the solve blob's bytes under a PFG name: the embedded kind tag
    // must make the lookup fail even though the frame is intact.
    let fake = dir.join("objects").join(format!("pfg-{key:032x}.blob"));
    fs::copy(&solve, &fake).expect("copy");
    let store = Store::open(&dir).expect("open");
    assert!(store.pfg_lookup(key).is_none(), "kind mismatch is corruption");
    assert_eq!(store.stats().corrupt_entries, 1);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_manifest_opens_empty_but_counted() {
    let (dir, run, id) = populated("manifest");
    fs::write(dir.join("manifest.bin"), b"ANEKMANI garbage").expect("write");
    let store = Store::open(&dir).expect("open survives");
    assert_eq!(store.stats().corrupt_entries, 1);
    assert_eq!(store.latest_run(), None, "manifest state is gone");
    assert!(store.dep_index().class_methods.is_empty());
    // Artifacts are addressed by content, not by the manifest: still warm.
    assert!(store.load_spec(run, &id).is_some());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn truncated_to_zero_and_oversized_length_fields_are_safe() {
    let (dir, _run, _id) = populated("edge");
    let victim = blob_paths(&dir, ArtifactKind::Solve).next().expect("blob");
    let key = key_of(&victim);

    fs::write(&victim, b"").expect("write empty");
    let store = Store::open(&dir).expect("open");
    assert!(store.solve_lookup(key).is_none());

    // A length field claiming more bytes than the file holds must not
    // trigger a huge allocation or a panic.
    let (dir2, _run2, _id2) = populated("edge2");
    let victim2 = blob_paths(&dir2, ArtifactKind::Solve).next().expect("blob");
    let key2 = key_of(&victim2);
    let mut bytes = fs::read(&victim2).expect("read");
    bytes[29..37].copy_from_slice(&u64::MAX.to_le_bytes());
    fs::write(&victim2, bytes).expect("write");
    let store2 = Store::open(&dir2).expect("open");
    assert!(store2.solve_lookup(key2).is_none());
    assert_eq!(store2.stats().corrupt_entries, 1);

    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&dir2);
}
