//! Hand-rolled binary codecs for every persisted artifact class.
//!
//! The format is deliberately boring: little-endian fixed-width integers,
//! `f64`s by exact bit pattern (round-trips are bit-identical, which the
//! determinism contract requires), length-prefixed UTF-8 strings, and
//! one-byte tags for enums and `Option`s. There is no reflection and no
//! external dependency; every decoder validates lengths, tags and indices
//! and returns a structured [`CodecError`] instead of panicking — a
//! corrupted payload must always degrade into a counted cache miss.

use analysis::pfg::{CallRole, ParamNodes, Pfg, PfgNode, PfgNodeKind};
use analysis::types::{Callee, MethodId};
use anek_core::memo::SolvedRecord;
use anek_core::{CallerEvidence, MethodSummary, SlotProbs};
use factor_graph::GuardEvents;
use java_syntax::ast::ExprId;
use java_syntax::span::{Pos, Span};
use spec_lang::{MethodSpec, PermAtom, PermClause, PermissionKind, SpecTarget};
use std::collections::BTreeMap;
use std::fmt;

/// A decoding failure (any structural problem with a payload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// What was being decoded and what went wrong.
    pub message: String,
}

impl CodecError {
    fn new(message: impl Into<String>) -> CodecError {
        CodecError { message: message.into() }
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codec error: {}", self.message)
    }
}

impl std::error::Error for CodecError {}

/// Encoder: appends fields to a growing byte buffer.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// A fresh encoder.
    pub fn new() -> Enc {
        Enc::default()
    }

    /// Finishes, yielding the payload bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends an `f64` by bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Decoder: reads fields back out of a byte slice, validating as it goes.
#[derive(Debug)]
pub struct Dec<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A decoder over `data`.
    pub fn new(data: &'a [u8]) -> Dec<'a> {
        Dec { data, pos: 0 }
    }

    /// Fails unless every byte was consumed (trailing garbage is corruption).
    pub fn finish(self) -> Result<(), CodecError> {
        if self.pos == self.data.len() {
            Ok(())
        } else {
            Err(CodecError::new(format!(
                "{} trailing bytes after payload",
                self.data.len() - self.pos
            )))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.data.len())
            .ok_or_else(|| CodecError::new("payload truncated"))?;
        let slice = &self.data[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads a `usize`, rejecting values that cannot fit.
    pub fn usize(&mut self) -> Result<usize, CodecError> {
        usize::try_from(self.u64()?).map_err(|_| CodecError::new("usize overflow"))
    }

    /// Reads a length that must also be plausible given the bytes left —
    /// catches truncation/corruption before any huge allocation.
    // Not a container: `len` decodes a length prefix, `is_empty` has no analogue.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&mut self) -> Result<usize, CodecError> {
        let n = self.usize()?;
        if n > self.data.len().saturating_sub(self.pos) {
            return Err(CodecError::new(format!("length {n} exceeds remaining payload")));
        }
        Ok(n)
    }

    /// Reads an `f64` by bit pattern.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a bool, rejecting non-0/1 bytes.
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(CodecError::new(format!("invalid bool byte {b}"))),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, CodecError> {
        let n = self.len()?;
        String::from_utf8(self.take(n)?.to_vec())
            .map_err(|_| CodecError::new("invalid UTF-8 in string"))
    }
}

// ---- Slot probabilities / summaries / evidence ----

fn enc_slot(e: &mut Enc, slot: &SlotProbs) {
    for k in slot.kinds {
        e.f64(k);
    }
    e.usize(slot.states.len());
    for (name, p) in &slot.states {
        e.str(name);
        e.f64(*p);
    }
}

fn dec_slot(d: &mut Dec<'_>) -> Result<SlotProbs, CodecError> {
    let mut kinds = [0.0f64; 5];
    for k in &mut kinds {
        *k = d.f64()?;
    }
    let n = d.len()?;
    let mut states = BTreeMap::new();
    for _ in 0..n {
        let name = d.str()?;
        let p = d.f64()?;
        states.insert(name, p);
    }
    Ok(SlotProbs { kinds, states })
}

fn enc_opt_slot(e: &mut Enc, slot: &Option<SlotProbs>) {
    match slot {
        Some(s) => {
            e.bool(true);
            enc_slot(e, s);
        }
        None => e.bool(false),
    }
}

fn dec_opt_slot(d: &mut Dec<'_>) -> Result<Option<SlotProbs>, CodecError> {
    Ok(if d.bool()? { Some(dec_slot(d)?) } else { None })
}

/// Encodes a method summary.
pub fn enc_summary(e: &mut Enc, s: &MethodSummary) {
    e.usize(s.params.len());
    for (name, pre, post) in &s.params {
        e.str(name);
        enc_slot(e, pre);
        enc_slot(e, post);
    }
    enc_opt_slot(e, &s.result);
}

/// Decodes a method summary.
pub fn dec_summary(d: &mut Dec<'_>) -> Result<MethodSummary, CodecError> {
    let n = d.len()?;
    let mut params = Vec::with_capacity(n);
    for _ in 0..n {
        let name = d.str()?;
        let pre = dec_slot(d)?;
        let post = dec_slot(d)?;
        params.push((name, pre, post));
    }
    Ok(MethodSummary { params, result: dec_opt_slot(d)? })
}

fn enc_evidence(e: &mut Enc, ev: &CallerEvidence) {
    for map in [&ev.param_pre, &ev.param_post] {
        e.usize(map.len());
        for (name, slot) in map {
            e.str(name);
            enc_slot(e, slot);
        }
    }
    enc_opt_slot(e, &ev.result);
}

fn dec_evidence(d: &mut Dec<'_>) -> Result<CallerEvidence, CodecError> {
    let mut maps = [BTreeMap::new(), BTreeMap::new()];
    for map in &mut maps {
        let n = d.len()?;
        for _ in 0..n {
            let name = d.str()?;
            let slot = dec_slot(d)?;
            map.insert(name, slot);
        }
    }
    let [param_pre, param_post] = maps;
    Ok(CallerEvidence { param_pre, param_post, result: dec_opt_slot(d)? })
}

fn enc_method_id(e: &mut Enc, id: &MethodId) {
    e.str(&id.class);
    e.str(&id.method);
}

fn dec_method_id(d: &mut Dec<'_>) -> Result<MethodId, CodecError> {
    let class = d.str()?;
    let method = d.str()?;
    Ok(MethodId { class, method })
}

/// Encodes a committed solve record (the memoization unit).
pub fn enc_solved(e: &mut Enc, s: &SolvedRecord) {
    enc_summary(e, &s.summary);
    e.usize(s.call_evidence.len());
    for (callee, sites) in &s.call_evidence {
        enc_method_id(e, callee);
        e.usize(sites.len());
        for (site, ev) in sites {
            e.u32(site.0);
            enc_evidence(e, ev);
        }
    }
    e.usize(s.iterations);
    e.usize(s.updates);
    e.bool(s.converged);
    e.usize(s.guards.non_finite);
    e.usize(s.guards.zero_sum);
}

/// Decodes a committed solve record.
pub fn dec_solved(d: &mut Dec<'_>) -> Result<SolvedRecord, CodecError> {
    let summary = dec_summary(d)?;
    let n = d.len()?;
    let mut call_evidence = BTreeMap::new();
    for _ in 0..n {
        let callee = dec_method_id(d)?;
        let sites_n = d.len()?;
        let mut sites = BTreeMap::new();
        for _ in 0..sites_n {
            let site = ExprId(d.u32()?);
            let ev = dec_evidence(d)?;
            sites.insert(site, ev);
        }
        call_evidence.insert(callee, sites);
    }
    let iterations = d.usize()?;
    let updates = d.usize()?;
    let converged = d.bool()?;
    let guards = GuardEvents { non_finite: d.usize()?, zero_sum: d.usize()? };
    Ok(SolvedRecord { summary, call_evidence, iterations, updates, converged, guards })
}

// ---- Specifications ----

fn kind_index(kind: PermissionKind) -> u8 {
    PermissionKind::ALL.iter().position(|k| *k == kind).expect("all kinds indexed") as u8
}

fn kind_from_index(idx: u8) -> Result<PermissionKind, CodecError> {
    PermissionKind::ALL
        .get(usize::from(idx))
        .copied()
        .ok_or_else(|| CodecError::new(format!("invalid permission-kind tag {idx}")))
}

fn enc_atom(e: &mut Enc, atom: &PermAtom) {
    e.u8(kind_index(atom.kind));
    match &atom.target {
        SpecTarget::This => e.u8(0),
        SpecTarget::Result => e.u8(1),
        SpecTarget::Param(name) => {
            e.u8(2);
            e.str(name);
        }
    }
    enc_opt_str(e, &atom.state);
}

fn dec_atom(d: &mut Dec<'_>) -> Result<PermAtom, CodecError> {
    let kind = kind_from_index(d.u8()?)?;
    let target = match d.u8()? {
        0 => SpecTarget::This,
        1 => SpecTarget::Result,
        2 => SpecTarget::Param(d.str()?),
        t => return Err(CodecError::new(format!("invalid spec-target tag {t}"))),
    };
    Ok(PermAtom { kind, target, state: dec_opt_str(d)? })
}

fn enc_opt_str(e: &mut Enc, s: &Option<String>) {
    match s {
        Some(s) => {
            e.bool(true);
            e.str(s);
        }
        None => e.bool(false),
    }
}

fn dec_opt_str(d: &mut Dec<'_>) -> Result<Option<String>, CodecError> {
    Ok(if d.bool()? { Some(d.str()?) } else { None })
}

/// Encodes an extracted method specification.
pub fn enc_spec(e: &mut Enc, spec: &MethodSpec) {
    for clause in [&spec.requires, &spec.ensures] {
        e.usize(clause.atoms.len());
        for atom in &clause.atoms {
            enc_atom(e, atom);
        }
    }
    enc_opt_str(e, &spec.true_indicates);
    enc_opt_str(e, &spec.false_indicates);
}

/// Decodes an extracted method specification.
pub fn dec_spec(d: &mut Dec<'_>) -> Result<MethodSpec, CodecError> {
    let mut clauses = [PermClause::empty(), PermClause::empty()];
    for clause in &mut clauses {
        let n = d.len()?;
        for _ in 0..n {
            clause.atoms.push(dec_atom(d)?);
        }
    }
    let [requires, ensures] = clauses;
    Ok(MethodSpec {
        requires,
        ensures,
        true_indicates: dec_opt_str(d)?,
        false_indicates: dec_opt_str(d)?,
    })
}

// ---- Permissions Flow Graphs ----

fn enc_pos(e: &mut Enc, p: Pos) {
    e.usize(p.offset);
    e.u32(p.line);
    e.u32(p.col);
}

fn dec_pos(d: &mut Dec<'_>) -> Result<Pos, CodecError> {
    Ok(Pos { offset: d.usize()?, line: d.u32()?, col: d.u32()? })
}

fn enc_callee(e: &mut Enc, c: &Callee) {
    match c {
        Callee::Program(id) => {
            e.u8(0);
            enc_method_id(e, id);
        }
        Callee::Api { type_name, method } => {
            e.u8(1);
            e.str(type_name);
            e.str(method);
        }
        Callee::Unknown { method } => {
            e.u8(2);
            e.str(method);
        }
    }
}

fn dec_callee(d: &mut Dec<'_>) -> Result<Callee, CodecError> {
    match d.u8()? {
        0 => Ok(Callee::Program(dec_method_id(d)?)),
        1 => Ok(Callee::Api { type_name: d.str()?, method: d.str()? }),
        2 => Ok(Callee::Unknown { method: d.str()? }),
        t => Err(CodecError::new(format!("invalid callee tag {t}"))),
    }
}

fn enc_role(e: &mut Enc, role: CallRole) {
    match role {
        CallRole::Receiver => e.u8(0),
        CallRole::Arg(i) => {
            e.u8(1);
            e.usize(i);
        }
    }
}

fn dec_role(d: &mut Dec<'_>) -> Result<CallRole, CodecError> {
    match d.u8()? {
        0 => Ok(CallRole::Receiver),
        1 => Ok(CallRole::Arg(d.usize()?)),
        t => Err(CodecError::new(format!("invalid call-role tag {t}"))),
    }
}

fn enc_node_kind(e: &mut Enc, kind: &PfgNodeKind) {
    match kind {
        PfgNodeKind::ParamPre { name } => {
            e.u8(0);
            e.str(name);
        }
        PfgNodeKind::ParamPost { name } => {
            e.u8(1);
            e.str(name);
        }
        PfgNodeKind::ResultPost => e.u8(2),
        PfgNodeKind::Split => e.u8(3),
        PfgNodeKind::Merge => e.u8(4),
        PfgNodeKind::CallPre { callee, role, site } => {
            e.u8(5);
            enc_callee(e, callee);
            enc_role(e, *role);
            e.u32(site.0);
        }
        PfgNodeKind::CallPost { callee, role, site } => {
            e.u8(6);
            enc_callee(e, callee);
            enc_role(e, *role);
            e.u32(site.0);
        }
        PfgNodeKind::CallResult { callee, site } => {
            e.u8(7);
            enc_callee(e, callee);
            e.u32(site.0);
        }
        PfgNodeKind::New { callee } => {
            e.u8(8);
            enc_callee(e, callee);
        }
        PfgNodeKind::FieldRead { field } => {
            e.u8(9);
            e.str(field);
        }
        PfgNodeKind::FieldWrite { field } => {
            e.u8(10);
            e.str(field);
        }
        PfgNodeKind::Refine { state } => {
            e.u8(11);
            e.str(state);
        }
    }
}

fn dec_node_kind(d: &mut Dec<'_>) -> Result<PfgNodeKind, CodecError> {
    Ok(match d.u8()? {
        0 => PfgNodeKind::ParamPre { name: d.str()? },
        1 => PfgNodeKind::ParamPost { name: d.str()? },
        2 => PfgNodeKind::ResultPost,
        3 => PfgNodeKind::Split,
        4 => PfgNodeKind::Merge,
        5 => PfgNodeKind::CallPre {
            callee: dec_callee(d)?,
            role: dec_role(d)?,
            site: ExprId(d.u32()?),
        },
        6 => PfgNodeKind::CallPost {
            callee: dec_callee(d)?,
            role: dec_role(d)?,
            site: ExprId(d.u32()?),
        },
        7 => PfgNodeKind::CallResult { callee: dec_callee(d)?, site: ExprId(d.u32()?) },
        8 => PfgNodeKind::New { callee: dec_callee(d)? },
        9 => PfgNodeKind::FieldRead { field: d.str()? },
        10 => PfgNodeKind::FieldWrite { field: d.str()? },
        11 => PfgNodeKind::Refine { state: d.str()? },
        t => return Err(CodecError::new(format!("invalid pfg-node-kind tag {t}"))),
    })
}

/// Encodes a permissions flow graph (public fields; adjacency is
/// recomputed on decode by [`Pfg::from_parts`]).
pub fn enc_pfg(e: &mut Enc, pfg: &Pfg) {
    enc_method_id(e, &pfg.method);
    e.usize(pfg.nodes.len());
    for n in &pfg.nodes {
        e.usize(n.id);
        enc_node_kind(e, &n.kind);
        enc_opt_str(e, &n.type_name);
        enc_pos(e, n.span.start);
        enc_pos(e, n.span.end);
        match n.receiver_link {
            Some(link) => {
                e.bool(true);
                e.usize(link);
            }
            None => e.bool(false),
        }
    }
    e.usize(pfg.edges.len());
    for &(a, b) in &pfg.edges {
        e.usize(a);
        e.usize(b);
    }
    e.usize(pfg.params.len());
    for p in &pfg.params {
        e.str(&p.name);
        e.str(&p.type_name);
        e.usize(p.pre);
        e.usize(p.post);
    }
    match &pfg.result {
        Some((ty, node)) => {
            e.bool(true);
            e.str(ty);
            e.usize(*node);
        }
        None => e.bool(false),
    }
    e.usize(pfg.sync_targets.len());
    for &t in &pfg.sync_targets {
        e.usize(t);
    }
}

/// Decodes a permissions flow graph, validating every node reference.
pub fn dec_pfg(d: &mut Dec<'_>) -> Result<Pfg, CodecError> {
    let method = dec_method_id(d)?;
    let n_nodes = d.len()?;
    let check = |id: usize, what: &str| {
        if id < n_nodes {
            Ok(id)
        } else {
            Err(CodecError::new(format!("{what} {id} out of range ({n_nodes} nodes)")))
        }
    };
    let mut nodes = Vec::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        let id = check(d.usize()?, "node id")?;
        let kind = dec_node_kind(d)?;
        let type_name = dec_opt_str(d)?;
        let span = Span { start: dec_pos(d)?, end: dec_pos(d)? };
        let receiver_link =
            if d.bool()? { Some(check(d.usize()?, "receiver link")?) } else { None };
        nodes.push(PfgNode { id, kind, type_name, span, receiver_link });
    }
    let n_edges = d.len()?;
    let mut edges = Vec::with_capacity(n_edges);
    for _ in 0..n_edges {
        let a = check(d.usize()?, "edge source")?;
        let b = check(d.usize()?, "edge target")?;
        edges.push((a, b));
    }
    let n_params = d.len()?;
    let mut params = Vec::with_capacity(n_params);
    for _ in 0..n_params {
        let name = d.str()?;
        let type_name = d.str()?;
        let pre = check(d.usize()?, "param pre node")?;
        let post = check(d.usize()?, "param post node")?;
        params.push(ParamNodes { name, type_name, pre, post });
    }
    let result = if d.bool()? {
        let ty = d.str()?;
        let node = check(d.usize()?, "result node")?;
        Some((ty, node))
    } else {
        None
    };
    let n_sync = d.len()?;
    let mut sync_targets = Vec::with_capacity(n_sync);
    for _ in 0..n_sync {
        sync_targets.push(check(d.usize()?, "sync target")?);
    }
    Ok(Pfg::from_parts(method, nodes, edges, params, result, sync_targets))
}

// ---- Whole-payload helpers ----

/// Encodes any artifact with the matching encoder into payload bytes.
pub fn to_bytes(encode: impl FnOnce(&mut Enc)) -> Vec<u8> {
    let mut e = Enc::new();
    encode(&mut e);
    e.into_bytes()
}

/// Decodes a whole payload, requiring full consumption.
pub fn from_bytes<T>(
    data: &[u8],
    decode: impl FnOnce(&mut Dec<'_>) -> Result<T, CodecError>,
) -> Result<T, CodecError> {
    let mut d = Dec::new(data);
    let value = decode(&mut d)?;
    d.finish()?;
    Ok(value)
}
