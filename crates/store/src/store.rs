//! The persistent, content-addressed artifact store.
//!
//! Layout on disk:
//!
//! ```text
//! <root>/manifest.bin                 framed dep index + latest run key
//! <root>/objects/<kind>-<key>.blob    one framed artifact per file
//! ```
//!
//! Artifacts are addressed purely by their 128-bit content key — a lookup
//! probes the file derived from `(kind, key)`, so the manifest never gates
//! artifact visibility. Any structural problem with a file (truncation,
//! bit flips, version skew, checksum or payload failure) is counted in
//! [`StoreStats::corrupt_entries`], the offending file is removed, and the
//! lookup reports a miss; the store never panics on hostile bytes.

use crate::blob::{
    decode_payload, frame_blob, frame_manifest, unframe_blob, unframe_manifest, ArtifactKind,
};
use crate::codec::{self, Dec, Enc};
use analysis::pfg::Pfg;
use analysis::types::MethodId;
use anek_core::memo::{self, CacheKey, InferCache, KeyHasher, SolvedRecord, KEY_SCHEME_VERSION};
use anek_core::{InferConfig, InferResult, MethodSummary};
use java_syntax::ast::CompilationUnit;
use spec_lang::{ApiRegistry, MethodSpec};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Counters describing one store's session activity plus its persistent
/// size. Hit/miss counters here include speculative lookups from worker
/// threads, so they may exceed the deterministic `memo_hits`/`memo_misses`
/// committed by the worklist.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Solve-record lookups satisfied from memory or disk.
    pub solve_hits: usize,
    /// Solve-record lookups that found nothing usable.
    pub solve_misses: usize,
    /// PFG lookups satisfied from memory or disk.
    pub pfg_hits: usize,
    /// PFG lookups that found nothing usable.
    pub pfg_misses: usize,
    /// Files that existed but failed a frame or payload check; each is
    /// removed after counting so it degrades into a plain miss.
    pub corrupt_entries: usize,
    /// Blob files currently on disk.
    pub entries: usize,
    /// Blobs written during this session.
    pub inserted: usize,
}

/// The dependency index persisted in the manifest: which methods each
/// class declares, and the reverse call graph (callee → callers) needed to
/// report a source edit's transitive dirty cone.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DepIndex {
    /// Class name → method names it declares.
    pub class_methods: BTreeMap<String, BTreeSet<String>>,
    /// Callee → the program methods that call it.
    pub callers: BTreeMap<MethodId, BTreeSet<MethodId>>,
}

impl DepIndex {
    /// The transitive set of methods whose solves can change when any of
    /// `roots` changes: the roots plus everything reachable through the
    /// reverse call graph (the *dirty cone*).
    pub fn dirty_cone(&self, roots: impl IntoIterator<Item = MethodId>) -> BTreeSet<MethodId> {
        let mut cone: BTreeSet<MethodId> = roots.into_iter().collect();
        let mut frontier: Vec<MethodId> = cone.iter().cloned().collect();
        while let Some(id) = frontier.pop() {
            for caller in self.callers.get(&id).into_iter().flatten() {
                if cone.insert(caller.clone()) {
                    frontier.push(caller.clone());
                }
            }
        }
        cone
    }
}

struct Inner {
    stats: StoreStats,
    dep: DepIndex,
    latest_run: Option<CacheKey>,
    solve_mem: HashMap<CacheKey, SolvedRecord>,
    pfg_mem: HashMap<CacheKey, Arc<Pfg>>,
}

/// A versioned, content-addressed, on-disk store for analysis artifacts,
/// usable directly as the worklist's [`InferCache`].
pub struct Store {
    root: PathBuf,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store").field("root", &self.root).finish_non_exhaustive()
    }
}

impl Store {
    /// Opens (creating if needed) the store rooted at `root`. A corrupt or
    /// version-skewed manifest is counted and replaced by an empty one —
    /// artifacts remain individually addressable either way.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Store> {
        let root = root.into();
        fs::create_dir_all(root.join("objects"))?;
        let mut inner = Inner {
            stats: StoreStats::default(),
            dep: DepIndex::default(),
            latest_run: None,
            solve_mem: HashMap::new(),
            pfg_mem: HashMap::new(),
        };
        match fs::read(root.join("manifest.bin")) {
            Ok(bytes) => match unframe_manifest(&bytes)
                .map_err(|e| e.to_string())
                .and_then(|p| decode_manifest(p).map_err(|e| e.to_string()))
            {
                Ok((dep, latest_run)) => {
                    inner.dep = dep;
                    inner.latest_run = latest_run;
                }
                Err(_) => inner.stats.corrupt_entries += 1,
            },
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        inner.stats.entries = fs::read_dir(root.join("objects"))?
            .filter_map(Result::ok)
            .filter(|e| e.path().extension().is_some_and(|x| x == "blob"))
            .count();
        Ok(Store { root, inner: Mutex::new(inner) })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// A snapshot of the store's counters.
    pub fn stats(&self) -> StoreStats {
        self.lock().stats
    }

    /// A snapshot of the persistent dependency index.
    pub fn dep_index(&self) -> DepIndex {
        self.lock().dep.clone()
    }

    /// The run key of the most recently recorded inference run.
    pub fn latest_run(&self) -> Option<CacheKey> {
        self.lock().latest_run
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn blob_path(&self, kind: ArtifactKind, key: CacheKey) -> PathBuf {
        self.root.join("objects").join(format!("{}-{key:032x}.blob", kind.label()))
    }

    /// Reads, unframes and decodes one artifact. Missing file → `None`
    /// silently; any structural failure → counted corrupt entry, file
    /// removed, `None`.
    fn read_artifact<T>(
        &self,
        inner: &mut Inner,
        kind: ArtifactKind,
        key: CacheKey,
        decode: impl FnOnce(&mut Dec<'_>) -> Result<T, codec::CodecError>,
    ) -> Option<T> {
        let path = self.blob_path(kind, key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return None,
            Err(_) => {
                inner.stats.corrupt_entries += 1;
                return None;
            }
        };
        match unframe_blob(&bytes, kind, key).and_then(|p| decode_payload(p, decode)) {
            Ok(value) => Some(value),
            Err(_) => {
                inner.stats.corrupt_entries += 1;
                inner.stats.entries = inner.stats.entries.saturating_sub(1);
                let _ = fs::remove_file(&path);
                None
            }
        }
    }

    /// Frames and writes one artifact atomically (tmp + rename), updating
    /// the entry counters. Write failures are swallowed: the store is a
    /// cache, and a failed insert only costs a future miss.
    fn write_artifact(&self, inner: &mut Inner, kind: ArtifactKind, key: CacheKey, payload: &[u8]) {
        let path = self.blob_path(kind, key);
        let fresh = !path.exists();
        let tmp = path.with_extension("tmp");
        let framed = frame_blob(kind, key, payload);
        if fs::write(&tmp, &framed).and_then(|()| fs::rename(&tmp, &path)).is_ok() {
            inner.stats.inserted += 1;
            if fresh {
                inner.stats.entries += 1;
            }
        }
    }

    /// Persists the manifest (dep index + latest run key) atomically.
    pub fn flush(&self) -> io::Result<()> {
        let inner = self.lock();
        let payload = encode_manifest(&inner.dep, inner.latest_run);
        drop(inner);
        let framed = frame_manifest(&payload);
        let tmp = self.root.join("manifest.tmp");
        fs::write(&tmp, &framed)?;
        fs::rename(&tmp, self.root.join("manifest.bin"))
    }

    /// The content key addressing one whole inference run: scheme version,
    /// configuration, program interface, and every unit's canonical source.
    pub fn run_key(units: &[CompilationUnit], api: &ApiRegistry, cfg: &InferConfig) -> CacheKey {
        let mut h = KeyHasher::new();
        h.write_str("run");
        h.write_u32(KEY_SCHEME_VERSION);
        let config_fp = memo::config_fingerprint(cfg);
        h.write_u64((config_fp >> 64) as u64);
        h.write_u64(config_fp as u64);
        let interface_fp = memo::interface_fingerprint(units, api);
        h.write_u64((interface_fp >> 64) as u64);
        h.write_u64(interface_fp as u64);
        h.write_u64(units.len() as u64);
        for unit in units {
            let fp = memo::unit_fingerprint(unit);
            h.write_u64((fp >> 64) as u64);
            h.write_u64(fp as u64);
        }
        h.finish()
    }

    fn method_key(run: CacheKey, kind: ArtifactKind, id: &MethodId) -> CacheKey {
        let mut h = KeyHasher::new();
        h.write_str(kind.label());
        h.write_u64((run >> 64) as u64);
        h.write_u64(run as u64);
        h.write_str(&id.class);
        h.write_str(&id.method);
        h.finish()
    }

    /// Records a completed inference run: canonical ASTs, every method's
    /// summary and extracted spec (keyed under the run key), the refreshed
    /// dependency index, and the manifest.
    pub fn record_run(
        &self,
        units: &[CompilationUnit],
        api: &ApiRegistry,
        cfg: &InferConfig,
        result: &InferResult,
    ) -> io::Result<CacheKey> {
        let run = Store::run_key(units, api, cfg);
        {
            let mut inner = self.lock();
            for unit in units {
                let key = memo::unit_fingerprint(unit);
                let text = java_syntax::print_unit(unit);
                let payload = codec::to_bytes(|e| e.str(&text));
                self.write_artifact(&mut inner, ArtifactKind::Ast, key, &payload);
            }
            for (id, summary) in &result.summaries {
                let key = Store::method_key(run, ArtifactKind::Summary, id);
                let payload = codec::to_bytes(|e| codec::enc_summary(e, summary));
                self.write_artifact(&mut inner, ArtifactKind::Summary, key, &payload);
            }
            for (id, spec) in &result.specs {
                let key = Store::method_key(run, ArtifactKind::Spec, id);
                let payload = codec::to_bytes(|e| codec::enc_spec(e, spec));
                self.write_artifact(&mut inner, ArtifactKind::Spec, key, &payload);
            }
            for id in result.summaries.keys() {
                inner
                    .dep
                    .class_methods
                    .entry(id.class.clone())
                    .or_default()
                    .insert(id.method.clone());
            }
            for (callee, callers) in &result.callers {
                inner
                    .dep
                    .callers
                    .entry(callee.clone())
                    .or_default()
                    .extend(callers.iter().cloned());
            }
            inner.latest_run = Some(run);
        }
        self.flush()?;
        Ok(run)
    }

    /// Loads the spec recorded for `id` under run `run`, if intact.
    pub fn load_spec(&self, run: CacheKey, id: &MethodId) -> Option<MethodSpec> {
        let mut inner = self.lock();
        let key = Store::method_key(run, ArtifactKind::Spec, id);
        self.read_artifact(&mut inner, ArtifactKind::Spec, key, codec::dec_spec)
    }

    /// Loads the summary recorded for `id` under run `run`, if intact.
    pub fn load_summary(&self, run: CacheKey, id: &MethodId) -> Option<MethodSummary> {
        let mut inner = self.lock();
        let key = Store::method_key(run, ArtifactKind::Summary, id);
        self.read_artifact(&mut inner, ArtifactKind::Summary, key, codec::dec_summary)
    }

    /// Loads the canonical printed source of the unit fingerprinted `key`.
    pub fn load_ast_text(&self, key: CacheKey) -> Option<String> {
        let mut inner = self.lock();
        // `Dec::str` as a method path is not lifetime-general enough here.
        #[allow(clippy::redundant_closure_for_method_calls)]
        self.read_artifact(&mut inner, ArtifactKind::Ast, key, |d| d.str())
    }
}

impl InferCache for Store {
    fn solve_lookup(&self, key: CacheKey) -> Option<SolvedRecord> {
        let mut inner = self.lock();
        if let Some(record) = inner.solve_mem.get(&key) {
            let record = record.clone();
            inner.stats.solve_hits += 1;
            return Some(record);
        }
        match self.read_artifact(&mut inner, ArtifactKind::Solve, key, codec::dec_solved) {
            Some(record) => {
                inner.stats.solve_hits += 1;
                inner.solve_mem.insert(key, record.clone());
                Some(record)
            }
            None => {
                inner.stats.solve_misses += 1;
                None
            }
        }
    }

    fn solve_insert(&self, key: CacheKey, record: &SolvedRecord) {
        let mut inner = self.lock();
        let payload = codec::to_bytes(|e| codec::enc_solved(e, record));
        self.write_artifact(&mut inner, ArtifactKind::Solve, key, &payload);
        inner.solve_mem.insert(key, record.clone());
    }

    fn pfg_lookup(&self, key: CacheKey) -> Option<Arc<Pfg>> {
        let mut inner = self.lock();
        if let Some(pfg) = inner.pfg_mem.get(&key) {
            let pfg = Arc::clone(pfg);
            inner.stats.pfg_hits += 1;
            return Some(pfg);
        }
        match self.read_artifact(&mut inner, ArtifactKind::Pfg, key, codec::dec_pfg) {
            Some(pfg) => {
                let pfg = Arc::new(pfg);
                inner.stats.pfg_hits += 1;
                inner.pfg_mem.insert(key, Arc::clone(&pfg));
                Some(pfg)
            }
            None => {
                inner.stats.pfg_misses += 1;
                None
            }
        }
    }

    fn pfg_insert(&self, key: CacheKey, pfg: &Arc<Pfg>) {
        let mut inner = self.lock();
        let payload = codec::to_bytes(|e| codec::enc_pfg(e, pfg));
        self.write_artifact(&mut inner, ArtifactKind::Pfg, key, &payload);
        inner.pfg_mem.insert(key, Arc::clone(pfg));
    }
}

fn encode_manifest(dep: &DepIndex, latest_run: Option<CacheKey>) -> Vec<u8> {
    let mut e = Enc::new();
    match latest_run {
        Some(run) => {
            e.bool(true);
            e.u64((run >> 64) as u64);
            e.u64(run as u64);
        }
        None => e.bool(false),
    }
    e.usize(dep.class_methods.len());
    for (class, methods) in &dep.class_methods {
        e.str(class);
        e.usize(methods.len());
        for m in methods {
            e.str(m);
        }
    }
    e.usize(dep.callers.len());
    for (callee, callers) in &dep.callers {
        e.str(&callee.class);
        e.str(&callee.method);
        e.usize(callers.len());
        for c in callers {
            e.str(&c.class);
            e.str(&c.method);
        }
    }
    e.into_bytes()
}

fn decode_manifest(payload: &[u8]) -> Result<(DepIndex, Option<CacheKey>), codec::CodecError> {
    codec::from_bytes(payload, |d| {
        let latest_run = if d.bool()? {
            let hi = d.u64()?;
            let lo = d.u64()?;
            Some((u128::from(hi) << 64) | u128::from(lo))
        } else {
            None
        };
        let mut dep = DepIndex::default();
        let n = d.len()?;
        for _ in 0..n {
            let class = d.str()?;
            let m = d.len()?;
            let mut methods = BTreeSet::new();
            for _ in 0..m {
                methods.insert(d.str()?);
            }
            dep.class_methods.insert(class, methods);
        }
        let n = d.len()?;
        for _ in 0..n {
            let callee = MethodId { class: d.str()?, method: d.str()? };
            let m = d.len()?;
            let mut callers = BTreeSet::new();
            for _ in 0..m {
                callers.insert(MethodId { class: d.str()?, method: d.str()? });
            }
            dep.callers.insert(callee, callers);
        }
        Ok((dep, latest_run))
    })
}
