//! On-disk framing for individual artifacts and the store manifest.
//!
//! Every artifact lives in its own blob file:
//!
//! ```text
//! +----------+---------+------+-----------+-------------+---------+-----------+
//! | ANEKBLOB | version | kind | key (u128)| payload len | payload | checksum  |
//! |  8 bytes |   u32   |  u8  |  16 bytes |     u64     |  bytes  | u128 FNV  |
//! +----------+---------+------+-----------+-------------+---------+-----------+
//! ```
//!
//! The checksum covers every preceding byte, so truncation, bit flips and
//! header tampering are all detected uniformly. A blob that fails *any*
//! frame check decodes to [`BlobError`] and must be treated by callers as a
//! counted corrupt entry — never a panic.

use crate::codec::{CodecError, Dec};
use anek_core::memo::{hash_bytes, CacheKey};
use std::fmt;

/// Magic prefix of every artifact blob.
pub const BLOB_MAGIC: &[u8; 8] = b"ANEKBLOB";
/// Magic prefix of the store manifest.
pub const MANIFEST_MAGIC: &[u8; 8] = b"ANEKMANI";
/// On-disk format version. Bumping it makes every existing blob and
/// manifest a clean miss.
pub const FORMAT_VERSION: u32 = 1;

/// Which artifact class a blob holds. The tag is part of the frame, so a
/// blob can never be decoded as the wrong class even if keys collide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ArtifactKind {
    /// A parsed compilation unit, persisted as its canonical printed source.
    Ast = 1,
    /// A permissions flow graph.
    Pfg = 2,
    /// A probabilistic method summary.
    Summary = 3,
    /// An extracted access-permission specification.
    Spec = 4,
    /// A committed per-method solve record (the memoization unit).
    Solve = 5,
}

impl ArtifactKind {
    /// All kinds, for iteration in stats and tests.
    pub const ALL: [ArtifactKind; 5] = [
        ArtifactKind::Ast,
        ArtifactKind::Pfg,
        ArtifactKind::Summary,
        ArtifactKind::Spec,
        ArtifactKind::Solve,
    ];

    fn from_u8(b: u8) -> Option<ArtifactKind> {
        ArtifactKind::ALL.into_iter().find(|k| *k as u8 == b)
    }

    /// Short lower-case label used in file names and stats.
    pub fn label(self) -> &'static str {
        match self {
            ArtifactKind::Ast => "ast",
            ArtifactKind::Pfg => "pfg",
            ArtifactKind::Summary => "summary",
            ArtifactKind::Spec => "spec",
            ArtifactKind::Solve => "solve",
        }
    }
}

/// Why a blob or manifest failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlobError {
    /// The file is shorter than its fixed header.
    Truncated,
    /// The magic prefix is wrong.
    BadMagic,
    /// The format version does not match [`FORMAT_VERSION`].
    VersionSkew {
        /// Version found in the file.
        found: u32,
    },
    /// The kind tag is unknown or does not match the expected class.
    WrongKind,
    /// The embedded key does not match the requested key.
    WrongKey,
    /// The declared payload length disagrees with the file size.
    BadLength,
    /// The trailing checksum does not match the content.
    BadChecksum,
    /// The frame was intact but the payload failed structural decoding.
    Payload(CodecError),
}

impl fmt::Display for BlobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlobError::Truncated => f.write_str("blob truncated"),
            BlobError::BadMagic => f.write_str("bad blob magic"),
            BlobError::VersionSkew { found } => {
                write!(f, "format version skew (found {found}, want {FORMAT_VERSION})")
            }
            BlobError::WrongKind => f.write_str("wrong artifact kind"),
            BlobError::WrongKey => f.write_str("embedded key mismatch"),
            BlobError::BadLength => f.write_str("payload length mismatch"),
            BlobError::BadChecksum => f.write_str("checksum mismatch"),
            BlobError::Payload(e) => write!(f, "payload: {e}"),
        }
    }
}

impl std::error::Error for BlobError {}

fn checksum(bytes: &[u8]) -> CacheKey {
    hash_bytes(bytes)
}

/// Frames `payload` as a blob file for (`kind`, `key`).
pub fn frame_blob(kind: ArtifactKind, key: CacheKey, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(8 + 4 + 1 + 16 + 8 + payload.len() + 16);
    buf.extend_from_slice(BLOB_MAGIC);
    buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    buf.push(kind as u8);
    buf.extend_from_slice(&key.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    buf.extend_from_slice(payload);
    let sum = checksum(&buf);
    buf.extend_from_slice(&sum.to_le_bytes());
    buf
}

/// Unframes a blob file, verifying magic, version, kind, key, length and
/// checksum, and returns the payload slice.
pub fn unframe_blob(data: &[u8], kind: ArtifactKind, key: CacheKey) -> Result<&[u8], BlobError> {
    const HEADER: usize = 8 + 4 + 1 + 16 + 8;
    if data.len() < HEADER + 16 {
        return Err(BlobError::Truncated);
    }
    if &data[0..8] != BLOB_MAGIC {
        return Err(BlobError::BadMagic);
    }
    let version = u32::from_le_bytes(data[8..12].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(BlobError::VersionSkew { found: version });
    }
    if ArtifactKind::from_u8(data[12]) != Some(kind) {
        return Err(BlobError::WrongKind);
    }
    let embedded = u128::from_le_bytes(data[13..29].try_into().expect("16 bytes"));
    if embedded != key {
        return Err(BlobError::WrongKey);
    }
    let len = u64::from_le_bytes(data[29..37].try_into().expect("8 bytes"));
    // Checked: a hostile length field must not overflow the comparison.
    let expected = usize::try_from(len)
        .ok()
        .and_then(|l| l.checked_add(HEADER + 16))
        .ok_or(BlobError::BadLength)?;
    if data.len() != expected {
        return Err(BlobError::BadLength);
    }
    let len = expected - HEADER - 16;
    let body = &data[..HEADER + len];
    let stored = u128::from_le_bytes(data[HEADER + len..].try_into().expect("16 bytes"));
    if checksum(body) != stored {
        return Err(BlobError::BadChecksum);
    }
    Ok(&data[HEADER..HEADER + len])
}

/// Frames a manifest payload (dep index etc.) with magic, version, length
/// and trailing checksum.
pub fn frame_manifest(payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(8 + 4 + 8 + payload.len() + 16);
    buf.extend_from_slice(MANIFEST_MAGIC);
    buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    buf.extend_from_slice(payload);
    let sum = checksum(&buf);
    buf.extend_from_slice(&sum.to_le_bytes());
    buf
}

/// Unframes the manifest, verifying its frame checks.
pub fn unframe_manifest(data: &[u8]) -> Result<&[u8], BlobError> {
    const HEADER: usize = 8 + 4 + 8;
    if data.len() < HEADER + 16 {
        return Err(BlobError::Truncated);
    }
    if &data[0..8] != MANIFEST_MAGIC {
        return Err(BlobError::BadMagic);
    }
    let version = u32::from_le_bytes(data[8..12].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(BlobError::VersionSkew { found: version });
    }
    let len = u64::from_le_bytes(data[12..20].try_into().expect("8 bytes"));
    let expected = usize::try_from(len)
        .ok()
        .and_then(|l| l.checked_add(HEADER + 16))
        .ok_or(BlobError::BadLength)?;
    if data.len() != expected {
        return Err(BlobError::BadLength);
    }
    let len = expected - HEADER - 16;
    let body = &data[..HEADER + len];
    let stored = u128::from_le_bytes(data[HEADER + len..].try_into().expect("16 bytes"));
    if checksum(body) != stored {
        return Err(BlobError::BadChecksum);
    }
    Ok(&data[HEADER..HEADER + len])
}

/// Decodes a framed payload with `decode`, mapping codec failures into
/// [`BlobError::Payload`].
pub fn decode_payload<T>(
    payload: &[u8],
    decode: impl FnOnce(&mut Dec<'_>) -> Result<T, CodecError>,
) -> Result<T, BlobError> {
    crate::codec::from_bytes(payload, decode).map_err(BlobError::Payload)
}
