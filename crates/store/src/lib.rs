//! # store
//!
//! Persistent, versioned, content-addressed storage for ANEK analysis
//! artifacts — parsed ASTs (as canonical source), permissions flow graphs,
//! per-method solve records, probabilistic summaries and extracted specs.
//!
//! The store implements [`anek_core::InferCache`], so attaching it to
//! [`anek_core::infer_with_store`] turns a cold full run into a warm
//! incremental one: every committed solve whose content key is already
//! present replays the cached record instead of rebuilding a skeleton and
//! running belief propagation. Because the worklist replays its full
//! deterministic schedule either way, warm results are byte-identical to a
//! cold run at any thread count (see `anek_core::memo` for the argument).
//!
//! Robustness contract: a truncated, bit-flipped, version-skewed or
//! otherwise mangled entry is a *counted cache miss*
//! ([`StoreStats::corrupt_entries`]), never a panic or an error.

#![warn(missing_docs)]

pub mod blob;
pub mod codec;
mod store;

pub use blob::{ArtifactKind, BlobError, BLOB_MAGIC, FORMAT_VERSION, MANIFEST_MAGIC};
pub use codec::{CodecError, Dec, Enc};
pub use store::{DepIndex, Store, StoreStats};
