//! A small AST pre-pass over one method body collecting facts about its
//! local variables that the event CFG alone cannot provide: which locals
//! were declared without an initializer, which are `for (T x : ...)`
//! variables (implicitly assigned by the loop), and how many reads/writes of
//! each name appear *syntactically*.
//!
//! The syntactic counts matter because the event CFG only records
//! reference-relevant operations: a read like `v > 0` or a write like
//! `b = null` produces no event. The dataflow lints compare syntactic and
//! event-level counts and silently drop any local whose accesses are not
//! fully visible at the event level — trading recall for a zero
//! false-positive rate.

use java_syntax::ast::{Expr, ExprKind, MethodDecl, Stmt, StmtKind};
use java_syntax::visit::{walk_expr, walk_stmt, Visitor};
use std::collections::{BTreeMap, BTreeSet};

/// Per-method syntactic facts about locals.
#[derive(Debug, Default)]
pub(crate) struct LocalTable {
    /// Locals declared `T x;` with no initializer.
    pub decl_no_init: BTreeSet<String>,
    /// `for (T x : e)` loop variables (assigned implicitly each iteration).
    pub foreach_vars: BTreeSet<String>,
    /// Syntactic reads per name (any `Name` use that is not an assignment
    /// target).
    pub ast_reads: BTreeMap<String, usize>,
    /// Syntactic writes per name (assignment targets and initialized
    /// declarations).
    pub ast_writes: BTreeMap<String, usize>,
}

impl LocalTable {
    pub fn build(method: &MethodDecl) -> LocalTable {
        let mut v = Collector { table: LocalTable::default() };
        if let Some(body) = &method.body {
            for s in &body.stmts {
                v.visit_stmt(s);
            }
        }
        v.table
    }

    pub fn reads(&self, name: &str) -> usize {
        self.ast_reads.get(name).copied().unwrap_or(0)
    }

    pub fn writes(&self, name: &str) -> usize {
        self.ast_writes.get(name).copied().unwrap_or(0)
    }
}

struct Collector {
    table: LocalTable,
}

impl Collector {
    fn read(&mut self, name: &str) {
        *self.table.ast_reads.entry(name.to_string()).or_insert(0) += 1;
    }

    fn write(&mut self, name: &str) {
        *self.table.ast_writes.entry(name.to_string()).or_insert(0) += 1;
    }
}

impl Visitor for Collector {
    fn visit_stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::LocalVar { name, init, .. } => {
                if init.is_none() {
                    self.table.decl_no_init.insert(name.clone());
                } else {
                    self.write(name);
                }
            }
            StmtKind::ForEach { name, .. } => {
                self.table.foreach_vars.insert(name.clone());
                self.write(name);
            }
            _ => {}
        }
        walk_stmt(self, s);
    }

    fn visit_expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Name(n) => self.read(n),
            ExprKind::Assign { lhs, rhs, .. } => {
                if let ExprKind::Name(n) = &lhs.kind {
                    self.write(n);
                    // Compound assignments (`x += e`) also read the target.
                    // The parser models them with an op; reads via the plain
                    // `=` path are writes only. Either way the event CFG
                    // emits no read, so counting the write alone keeps the
                    // comparison conservative.
                    self.visit_expr(rhs);
                    return;
                }
                walk_expr(self, e);
                return;
            }
            _ => {}
        }
        walk_expr(self, e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use java_syntax::parse;

    fn table_of(body: &str) -> LocalTable {
        let src = format!("class T {{ void m(Iterator<Integer> p) {{ {body} }} }}");
        let unit = parse(&src).unwrap();
        let m = unit.types[0].methods().next().unwrap();
        LocalTable::build(m)
    }

    #[test]
    fn uninitialized_declarations_are_recorded() {
        let t = table_of("Iterator<Integer> it; int k = 0; it = p; it.hasNext();");
        assert!(t.decl_no_init.contains("it"));
        assert!(!t.decl_no_init.contains("k"));
        assert_eq!(t.writes("it"), 1);
        assert_eq!(t.writes("k"), 1);
        assert_eq!(t.reads("it"), 1); // the receiver of hasNext()
        assert_eq!(t.reads("p"), 1);
    }

    #[test]
    fn foreach_variables_are_implicitly_assigned() {
        let t = table_of("for (Integer x : c) { int y = x + 1; }");
        assert!(t.foreach_vars.contains("x"));
        assert_eq!(t.writes("x"), 1);
        assert_eq!(t.reads("x"), 1);
    }

    #[test]
    fn assignment_targets_are_writes_not_reads() {
        let t = table_of("int v = 0; v = v + 1;");
        assert_eq!(t.writes("v"), 2);
        assert_eq!(t.reads("v"), 1);
    }
}
