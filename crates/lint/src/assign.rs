//! `DF001` — definite assignment: flags uses of a local declared without an
//! initializer on some path where it was never assigned.
//!
//! Forward must-analysis: the fact is the set of *tracked* locals definitely
//! assigned on every path; the join is set intersection.

use crate::dataflow::{solve, Analysis, Direction};
use crate::diag::{rules, Diagnostic, Severity};
use crate::locals::LocalTable;
use crate::uses::{read_operands, written_place};
use analysis::cfg::{Cfg, Terminator};
use analysis::events::{Event, Place};
use std::collections::BTreeSet;

pub(crate) struct DefiniteAssignment {
    /// Locals subject to the check: declared without an initializer, not a
    /// foreach variable, and with every syntactic write visible as an event.
    tracked: BTreeSet<String>,
}

/// `None` = unreachable (bottom); `Some(s)` = tracked locals definitely
/// assigned.
type Fact = Option<BTreeSet<String>>;

impl DefiniteAssignment {
    pub fn new(locals: &LocalTable, cfg: &Cfg) -> DefiniteAssignment {
        // Event-visible writes per name (only `Copy` targets named locals).
        let mut event_writes: std::collections::BTreeMap<&str, usize> = Default::default();
        for b in cfg.reachable() {
            for e in &cfg.blocks[b].events {
                if let Some(Place::Local(n)) = written_place(e) {
                    *event_writes.entry(n.as_str()).or_insert(0) += 1;
                }
            }
        }
        let tracked = locals
            .decl_no_init
            .iter()
            .filter(|n| !locals.foreach_vars.contains(*n))
            .filter(|n| locals.writes(n) == event_writes.get(n.as_str()).copied().unwrap_or(0))
            .cloned()
            .collect();
        DefiniteAssignment { tracked }
    }

    /// Runs the analysis and reports each first use-before-assignment.
    pub fn report(&self, cfg: &Cfg, method: &str) -> Vec<Diagnostic> {
        if self.tracked.is_empty() {
            return Vec::new();
        }
        let sol = solve(self, cfg);
        let mut diags = Vec::new();
        let mut reported: BTreeSet<(String, usize)> = BTreeSet::new();
        for b in cfg.reachable() {
            let Some(mut assigned) = sol.entry[b].clone() else { continue };
            for e in &cfg.blocks[b].events {
                for op in read_operands(e) {
                    self.check_use(
                        op.place.clone(),
                        e.span,
                        &assigned,
                        method,
                        &mut reported,
                        &mut diags,
                    );
                }
                if let Some(Place::Local(n)) = written_place(e) {
                    if self.tracked.contains(n) {
                        assigned.insert(n.clone());
                    }
                }
            }
            if let Some(Terminator::Return(Some(op))) = &cfg.blocks[b].term {
                self.check_use(
                    op.place.clone(),
                    cfg.blocks[b].span,
                    &assigned,
                    method,
                    &mut reported,
                    &mut diags,
                );
            }
        }
        diags
    }

    fn check_use(
        &self,
        place: Place,
        span: java_syntax::Span,
        assigned: &BTreeSet<String>,
        method: &str,
        reported: &mut BTreeSet<(String, usize)>,
        diags: &mut Vec<Diagnostic>,
    ) {
        let Place::Local(n) = place else { return };
        if self.tracked.contains(&n)
            && !assigned.contains(&n)
            && reported.insert((n.clone(), span.start.offset))
        {
            diags.push(
                Diagnostic::new(
                    rules::USE_BEFORE_ASSIGN,
                    Severity::Error,
                    format!("`{n}` is used before it is definitely assigned"),
                    span,
                )
                .in_method(method)
                .with_note(format!("`{n}` was declared without an initializer")),
            );
        }
    }
}

impl Analysis for DefiniteAssignment {
    type Fact = Fact;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn bottom(&self, _cfg: &Cfg) -> Fact {
        None
    }

    fn boundary(&self, _cfg: &Cfg) -> Fact {
        Some(BTreeSet::new())
    }

    fn join(&self, into: &mut Fact, other: &Fact) -> bool {
        match (into.as_mut(), other) {
            (_, None) => false,
            (None, Some(_)) => {
                *into = other.clone();
                true
            }
            (Some(a), Some(b)) => {
                // Must-analysis: intersect.
                let before = a.len();
                a.retain(|n| b.contains(n));
                a.len() != before
            }
        }
    }

    fn transfer_event(&self, fact: &mut Fact, event: &Event) {
        let Some(assigned) = fact.as_mut() else { return };
        // Reads do not change the fact; they are checked in the report pass.
        if let Some(Place::Local(n)) = written_place(event) {
            if self.tracked.contains(n) {
                assigned.insert(n.clone());
            }
        }
    }
}
