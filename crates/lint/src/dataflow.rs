//! A generic monotone dataflow framework over the event CFG.
//!
//! Analyses implement [`Analysis`]: a lattice of facts with a join, plus
//! transfer functions over [`Event`]s and [`Terminator`]s. [`solve`] runs a
//! worklist to the least fixpoint in either direction, with an iteration cap
//! acting as a widening guard against non-monotone (buggy) transfer
//! functions. The solver's result is independent of worklist order for
//! monotone transfers — [`solve_with_seed`] exposes a knob the property
//! tests use to demonstrate exactly that.

use analysis::cfg::{BlockId, BranchTest, Cfg, Terminator};
use analysis::events::Event;

/// Which way facts propagate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from entry towards exit.
    Forward,
    /// Facts flow from exit towards entry.
    Backward,
}

/// A monotone dataflow problem over a [`Cfg`].
pub trait Analysis {
    /// The lattice element computed per program point.
    type Fact: Clone + PartialEq;

    /// Whether the analysis runs forward or backward.
    fn direction(&self) -> Direction;

    /// The least element (identity of [`Analysis::join`]); the initial value
    /// of every non-boundary program point. Conventionally "unreachable".
    fn bottom(&self, cfg: &Cfg) -> Self::Fact;

    /// The fact holding at the boundary (entry block for forward analyses,
    /// exit block for backward ones).
    fn boundary(&self, cfg: &Cfg) -> Self::Fact;

    /// Joins `other` into `into`, returning whether `into` changed.
    fn join(&self, into: &mut Self::Fact, other: &Self::Fact) -> bool;

    /// Transfers one event (in execution order for forward analyses, reverse
    /// order for backward ones).
    fn transfer_event(&self, fact: &mut Self::Fact, event: &Event);

    /// Transfers a block terminator (e.g. the operand use of `return x;`).
    fn transfer_term(&self, _fact: &mut Self::Fact, _term: &Terminator) {}

    /// Refines the fact flowing along a branch edge. `taken` is true on the
    /// then-edge. Only consulted by forward analyses. Defaults to a clone
    /// (no refinement).
    fn flow_branch(&self, fact: &Self::Fact, _test: &BranchTest, _taken: bool) -> Self::Fact {
        fact.clone()
    }
}

/// Solver bookkeeping, reported alongside the facts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveStats {
    /// Number of block transfers performed.
    pub transfers: usize,
    /// Whether the widening guard tripped (the fixpoint was *not* reached —
    /// a transfer function is non-monotone or the lattice has an infinite
    /// ascending chain).
    pub widened: bool,
}

/// Per-block fixpoint facts (always in *program* order: `entry[b]` holds at
/// the start of block `b`, `exit[b]` at its end, for both directions).
#[derive(Debug, Clone)]
pub struct Solution<F> {
    /// Fact at each block's start.
    pub entry: Vec<F>,
    /// Fact at each block's end.
    pub exit: Vec<F>,
    /// Solver statistics.
    pub stats: SolveStats,
}

/// Widening guard: each block may be re-transferred at most this many times
/// before the solver gives up (finite lattices converge far earlier).
const MAX_VISITS_PER_BLOCK: usize = 64;

/// Runs `analysis` to fixpoint over `cfg` with a deterministic (FIFO)
/// worklist.
pub fn solve<A: Analysis>(analysis: &A, cfg: &Cfg) -> Solution<A::Fact> {
    solve_with_seed(analysis, cfg, None)
}

/// Like [`solve`], but when `seed` is `Some` the worklist pops in a
/// pseudo-random order derived from it. Monotone analyses produce the same
/// fixpoint for every seed; the property tests exploit this.
pub fn solve_with_seed<A: Analysis>(
    analysis: &A,
    cfg: &Cfg,
    seed: Option<u64>,
) -> Solution<A::Fact> {
    let n = cfg.blocks.len();
    let reachable = cfg.reachable();
    let preds = predecessors(cfg, &reachable);
    let forward = analysis.direction() == Direction::Forward;

    let mut start: Vec<A::Fact> = (0..n).map(|_| analysis.bottom(cfg)).collect();
    let mut end: Vec<A::Fact> = (0..n).map(|_| analysis.bottom(cfg)).collect();
    let boundary_block = if forward { cfg.entry } else { cfg.exit };
    {
        let b = analysis.boundary(cfg);
        if forward {
            analysis.join(&mut start[boundary_block], &b);
        } else {
            analysis.join(&mut end[boundary_block], &b);
        }
    }

    let mut worklist: Vec<BlockId> = reachable.clone();
    if !forward {
        worklist.reverse();
    }
    let mut queued = vec![false; n];
    for &b in &worklist {
        queued[b] = true;
    }
    let mut rng_state = seed.unwrap_or(0);
    let mut visits = vec![0usize; n];
    let mut stats = SolveStats { transfers: 0, widened: false };

    while !worklist.is_empty() {
        let idx = match seed {
            None => 0,
            Some(_) => {
                // SplitMix64 step — any deterministic scramble works here.
                rng_state = rng_state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = rng_state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                (z ^ (z >> 31)) as usize % worklist.len()
            }
        };
        let b = worklist.swap_remove(idx);
        queued[b] = false;
        visits[b] += 1;
        if visits[b] > MAX_VISITS_PER_BLOCK {
            stats.widened = true;
            continue;
        }
        stats.transfers += 1;

        if forward {
            let mut fact = start[b].clone();
            for e in &cfg.blocks[b].events {
                analysis.transfer_event(&mut fact, e);
            }
            if let Some(t) = &cfg.blocks[b].term {
                analysis.transfer_term(&mut fact, t);
            }
            end[b] = fact;
            for (succ, refined) in forward_edges(analysis, cfg, b, &end[b]) {
                if analysis.join(&mut start[succ], &refined) && !queued[succ] {
                    queued[succ] = true;
                    worklist.push(succ);
                }
            }
        } else {
            let mut fact = end[b].clone();
            if let Some(t) = &cfg.blocks[b].term {
                analysis.transfer_term(&mut fact, t);
            }
            for e in cfg.blocks[b].events.iter().rev() {
                analysis.transfer_event(&mut fact, e);
            }
            start[b] = fact;
            for &p in &preds[b] {
                if analysis.join(&mut end[p], &start[b]) && !queued[p] {
                    queued[p] = true;
                    worklist.push(p);
                }
            }
        }
    }

    Solution { entry: start, exit: end, stats }
}

/// The facts flowing out of `b` along each successor edge, branch-refined.
fn forward_edges<A: Analysis>(
    analysis: &A,
    cfg: &Cfg,
    b: BlockId,
    out: &A::Fact,
) -> Vec<(BlockId, A::Fact)> {
    match cfg.blocks[b].term.as_ref() {
        Some(Terminator::Branch { test: Some(t), then_blk, else_blk }) => vec![
            (*then_blk, analysis.flow_branch(out, t, true)),
            (*else_blk, analysis.flow_branch(out, t, false)),
        ],
        _ => cfg.successors(b).into_iter().map(|s| (s, out.clone())).collect(),
    }
}

/// Predecessor lists restricted to reachable blocks.
fn predecessors(cfg: &Cfg, reachable: &[BlockId]) -> Vec<Vec<BlockId>> {
    let mut preds = vec![Vec::new(); cfg.blocks.len()];
    for &b in reachable {
        for s in cfg.successors(b) {
            preds[s].push(b);
        }
    }
    preds
}

#[cfg(test)]
mod tests {
    use super::*;
    use analysis::cfg::Block;
    use std::collections::BTreeSet;

    /// A toy forward "reaching blocks" analysis: the fact is the set of block
    /// ids on some path from entry (exclusive of the current block's own
    /// transfer, which adds its id).
    struct ReachingBlocks;

    impl Analysis for ReachingBlocks {
        type Fact = Option<BTreeSet<usize>>; // None = unreachable (bottom)

        fn direction(&self) -> Direction {
            Direction::Forward
        }
        fn bottom(&self, _cfg: &Cfg) -> Self::Fact {
            None
        }
        fn boundary(&self, _cfg: &Cfg) -> Self::Fact {
            Some(BTreeSet::new())
        }
        fn join(&self, into: &mut Self::Fact, other: &Self::Fact) -> bool {
            match (into.as_mut(), other) {
                (_, None) => false,
                (None, Some(_)) => {
                    *into = other.clone();
                    true
                }
                (Some(a), Some(b)) => {
                    let before = a.len();
                    a.extend(b.iter().copied());
                    a.len() != before
                }
            }
        }
        fn transfer_event(&self, _fact: &mut Self::Fact, _event: &Event) {}
    }

    fn diamond() -> Cfg {
        // 0 -> {2, 3} -> 4 -> exit(1)
        let mk = |term| Block { events: vec![], term: Some(term), span: java_syntax::Span::DUMMY };
        Cfg {
            blocks: vec![
                mk(Terminator::Branch { test: None, then_blk: 2, else_blk: 3 }),
                mk(Terminator::Exit),
                mk(Terminator::Goto(4)),
                mk(Terminator::Goto(4)),
                mk(Terminator::Return(None)),
            ],
            entry: 0,
            exit: 1,
        }
    }

    #[test]
    fn forward_join_merges_paths() {
        let cfg = diamond();
        let sol = solve(&ReachingBlocks, &cfg);
        assert!(!sol.stats.widened);
        // Block 4 is entered from both arms of the diamond.
        assert_eq!(sol.entry[4], Some(BTreeSet::new()));
        // The exit sees the boundary fact propagated all the way through.
        assert!(sol.entry[1].is_some());
    }

    #[test]
    fn seeded_orders_agree() {
        let cfg = diamond();
        let base = solve(&ReachingBlocks, &cfg);
        for seed in 1..20u64 {
            let s = solve_with_seed(&ReachingBlocks, &cfg, Some(seed));
            assert_eq!(s.entry, base.entry, "seed {seed}");
            assert_eq!(s.exit, base.exit, "seed {seed}");
        }
    }
}
