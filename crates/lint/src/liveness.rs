//! `DF002` — live variables / dead stores: flags an assignment to a
//! reference-typed local whose value is never read afterwards.
//!
//! Backward may-analysis: the fact is the set of locals live (read before
//! redefinition) at a program point; the join is set union.

use crate::dataflow::{solve, Analysis, Direction};
use crate::diag::{rules, Diagnostic, Severity};
use crate::locals::LocalTable;
use crate::uses::{local_name, read_operands, written_place};
use analysis::cfg::{Cfg, Terminator};
use analysis::events::{Event, EventKind, Place};
use std::collections::{BTreeMap, BTreeSet};

pub(crate) struct Liveness {
    /// Locals subject to the check: every syntactic read is visible as an
    /// event operand, so event-level liveness is exact for them.
    tracked: BTreeSet<String>,
}

type Fact = BTreeSet<String>;

impl Liveness {
    pub fn new(locals: &LocalTable, cfg: &Cfg) -> Liveness {
        let mut event_reads: BTreeMap<&str, usize> = BTreeMap::new();
        for b in cfg.reachable() {
            for e in &cfg.blocks[b].events {
                for op in read_operands(e) {
                    if let Some(n) = local_name(op) {
                        *event_reads.entry(n).or_insert(0) += 1;
                    }
                }
            }
            // `return x;` reads x with no event; a `Branch` test does NOT
            // count — its operand is a copy of the receiver of a call event
            // already tallied above.
            if let Some(Terminator::Return(Some(op))) = &cfg.blocks[b].term {
                if let Some(n) = local_name(op) {
                    *event_reads.entry(n).or_insert(0) += 1;
                }
            }
        }
        let tracked = locals
            .ast_reads
            .keys()
            .chain(locals.ast_writes.keys())
            .filter(|n| locals.reads(n) == event_reads.get(n.as_str()).copied().unwrap_or(0))
            .cloned()
            .collect();
        Liveness { tracked }
    }

    /// Runs the analysis and reports dead stores.
    pub fn report(&self, cfg: &Cfg, method: &str) -> Vec<Diagnostic> {
        if self.tracked.is_empty() {
            return Vec::new();
        }
        let sol = solve(self, cfg);
        let mut diags = Vec::new();
        for b in cfg.reachable() {
            // Walk the block backwards from its end-of-block fact so the
            // fact in hand is always "live *after* this event".
            let mut live = sol.exit[b].clone();
            if let Some(t) = &cfg.blocks[b].term {
                self.transfer_term(&mut live, t);
            }
            for e in cfg.blocks[b].events.iter().rev() {
                if let EventKind::Copy { dest: Place::Local(n), .. } = &e.kind {
                    if self.tracked.contains(n) && !live.contains(n) {
                        diags.push(
                            Diagnostic::new(
                                rules::DEAD_STORE,
                                Severity::Warning,
                                format!("value assigned to `{n}` is never read"),
                                e.span,
                            )
                            .in_method(method),
                        );
                    }
                }
                self.transfer_event(&mut live, e);
            }
        }
        diags
    }
}

impl Analysis for Liveness {
    type Fact = Fact;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn bottom(&self, _cfg: &Cfg) -> Fact {
        BTreeSet::new()
    }

    fn boundary(&self, _cfg: &Cfg) -> Fact {
        BTreeSet::new()
    }

    fn join(&self, into: &mut Fact, other: &Fact) -> bool {
        let before = into.len();
        into.extend(other.iter().cloned());
        into.len() != before
    }

    fn transfer_event(&self, live: &mut Fact, event: &Event) {
        // live_before = (live_after \ def) ∪ use
        if let Some(Place::Local(n)) = written_place(event) {
            live.remove(n);
        }
        for op in read_operands(event) {
            if let Some(n) = local_name(op) {
                if self.tracked.contains(n) {
                    live.insert(n.to_string());
                }
            }
        }
    }

    fn transfer_term(&self, live: &mut Fact, term: &Terminator) {
        match term {
            Terminator::Return(Some(op)) => {
                if let Some(n) = local_name(op) {
                    live.insert(n.to_string());
                }
            }
            Terminator::Branch { test: Some(t), .. } => {
                if let Some(n) = local_name(&t.operand) {
                    live.insert(n.to_string());
                }
            }
            _ => {}
        }
    }
}
