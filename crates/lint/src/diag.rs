//! Structured lint diagnostics: stable rule identifiers, severities, source
//! spans, human-readable rendering with caret snippets, and a JSON encoding
//! for tooling.

use java_syntax::{render_snippet, Span};
use std::fmt;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational remark attached to another diagnostic.
    Note,
    /// Suspicious but not certainly wrong.
    Warning,
    /// A definite defect (or a broken internal invariant).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => write!(f, "note"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable rule identifiers.
///
/// * `DF00x` — dataflow lints over the event CFG.
/// * `PROT00x` — deterministic protocol-usage lints.
/// * `SPEC00x` — spec-consistency lints (declared `@Perm` vs. dataflow facts).
/// * `IR00x` — internal-representation verifier failures.
pub mod rules {
    /// Use of a local variable before it is definitely assigned.
    pub const USE_BEFORE_ASSIGN: &str = "DF001";
    /// A store into a local that is never read afterwards.
    pub const DEAD_STORE: &str = "DF002";
    /// A protocol violation: a call whose receiver may be in a state the
    /// callee's precondition excludes (e.g. `next()` without `hasNext()`).
    pub const PROTOCOL_VIOLATION: &str = "PROT001";
    /// A method declared read-only (`pure`/`immutable` receiver) writes a
    /// field of `this`.
    pub const READONLY_WRITES: &str = "SPEC001";
    /// A method ensures `unique(result)` but returns a value that provably
    /// is not freshly created.
    pub const STALE_UNIQUE_RESULT: &str = "SPEC002";
    /// A method declares a `unique` object and then synchronizes on it.
    pub const UNIQUE_SYNC: &str = "SPEC003";
    /// A `@Perm` annotation that does not parse.
    pub const MALFORMED_SPEC: &str = "SPEC004";
    /// A malformed control-flow graph.
    pub const BAD_CFG: &str = "IR001";
    /// A malformed permissions-flow graph.
    pub const BAD_PFG: &str = "IR002";
    /// A malformed constraint system (factor graph).
    pub const BAD_CONSTRAINTS: &str = "IR003";
    /// A `anek check` may-violation: the bit-vector checker found a path on
    /// which the receiver may be in a state the callee's precondition
    /// excludes.
    pub const CHECK_MAY_VIOLATION: &str = "CHK001";
    /// A `anek check` definite violation: the receiver is provably *never*
    /// in a state the callee's precondition admits at the call site.
    pub const CHECK_DEFINITE_VIOLATION: &str = "CHK002";
}

/// One structured diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule id (see [`rules`]).
    pub rule: &'static str,
    /// Severity.
    pub severity: Severity,
    /// Primary message.
    pub message: String,
    /// Source location (may be [`Span::DUMMY`] for whole-IR findings).
    pub span: Span,
    /// `Class.method` context, when known.
    pub method: String,
    /// Source file the span refers to, when known (empty otherwise).
    pub file: String,
    /// Secondary notes.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// A new diagnostic with no method context or notes.
    pub fn new(
        rule: &'static str,
        severity: Severity,
        message: impl Into<String>,
        span: Span,
    ) -> Diagnostic {
        Diagnostic {
            rule,
            severity,
            message: message.into(),
            span,
            method: String::new(),
            file: String::new(),
            notes: Vec::new(),
        }
    }

    /// Attaches the `Class.method` context.
    #[must_use]
    pub fn in_method(mut self, method: impl Into<String>) -> Diagnostic {
        self.method = method.into();
        self
    }

    /// Attaches the source-file context.
    #[must_use]
    pub fn in_file(mut self, file: impl Into<String>) -> Diagnostic {
        self.file = file.into();
        self
    }

    /// The lint family: the rule id with its trailing digits stripped
    /// (`PROT001` -> `PROT`, `CHK002` -> `CHK`). Families group rules for
    /// filtering and for the machine-readable output.
    pub fn family(&self) -> &'static str {
        self.rule.trim_end_matches(|c: char| c.is_ascii_digit())
    }

    /// Appends a secondary note.
    #[must_use]
    pub fn with_note(mut self, note: impl Into<String>) -> Diagnostic {
        self.notes.push(note.into());
        self
    }

    /// Renders the diagnostic for a terminal, with a caret snippet when the
    /// defining source is available.
    pub fn render(&self, source: Option<&str>) -> String {
        let mut out = format!("{}[{}]: {}\n", self.severity, self.rule, self.message);
        if !self.span.is_dummy() || !self.method.is_empty() {
            out.push_str("  --> ");
            out.push_str(&self.span.to_string());
            if !self.method.is_empty() {
                out.push_str(&format!(" ({})", self.method));
            }
            out.push('\n');
        }
        if let Some(src) = source {
            out.push_str(&render_snippet(src, self.span));
        }
        for n in &self.notes {
            out.push_str(&format!("  note: {n}\n"));
        }
        out
    }

    /// Encodes the diagnostic as a JSON object (no external dependencies;
    /// strings are escaped by hand).
    pub fn to_json(&self) -> String {
        let notes = self
            .notes
            .iter()
            .map(|n| format!("\"{}\"", json_escape(n)))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"rule\":\"{}\",\"family\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\",\"file\":\"{}\",\"line\":{},\"col\":{},\"end_line\":{},\"end_col\":{},\"method\":\"{}\",\"notes\":[{}]}}",
            self.rule,
            self.family(),
            self.severity,
            json_escape(&self.message),
            json_escape(&self.file),
            self.span.start.line,
            self.span.start.col,
            self.span.end.line,
            self.span.end.col,
            json_escape(&self.method),
            notes,
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render(None).trim_end())
    }
}

/// Encodes a batch of diagnostics as a JSON array.
pub fn to_json_array(diags: &[Diagnostic]) -> String {
    let items = diags.iter().map(Diagnostic::to_json).collect::<Vec<_>>().join(",");
    format!("[{items}]")
}

/// Sorts diagnostics into reporting order: by file, then source position,
/// then rule id. Total and input-order-independent (the method and message
/// break any remaining ties), so `--json` output is deterministic.
pub fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (&a.file, a.span.start.offset, a.rule, &a.method, &a.message).cmp(&(
            &b.file,
            b.span.start.offset,
            b.rule,
            &b.method,
            &b.message,
        ))
    });
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use java_syntax::Pos;

    fn sample() -> Diagnostic {
        let span = Span::new(Pos::new(23, 2, 16), Pos::new(32, 2, 25));
        Diagnostic::new(
            rules::PROTOCOL_VIOLATION,
            Severity::Warning,
            "call to next() may fire in state END",
            span,
        )
        .in_method("W.first")
        .with_note("receiver came from createIter0()")
    }

    #[test]
    fn render_contains_rule_span_and_notes() {
        let d = sample();
        let r = d.render(None);
        assert!(r.starts_with("warning[PROT001]:"), "{r}");
        assert!(r.contains("--> 2:16 (W.first)"), "{r}");
        assert!(r.contains("note: receiver"), "{r}");
    }

    #[test]
    fn render_with_source_shows_caret() {
        let src = "class W {\n    int f() { return it.next(); }\n}";
        let off = src.find("it.next()").unwrap();
        let d = Diagnostic::new(
            rules::PROTOCOL_VIOLATION,
            Severity::Warning,
            "m",
            Span::new(Pos::new(off, 2, 22), Pos::new(off + 9, 2, 31)),
        );
        let r = d.render(Some(src));
        assert!(r.contains("^^^^^^^^^"), "{r}");
    }

    #[test]
    fn json_is_escaped_and_well_shaped() {
        let mut d = sample();
        d.message = "quote \" backslash \\ newline \n done".into();
        let j = d.to_json();
        assert!(j.contains("\\\""));
        assert!(j.contains("\\\\"));
        assert!(j.contains("\\n"));
        assert!(j.starts_with('{') && j.ends_with('}'));
        let arr = to_json_array(&[d.clone(), d]);
        assert!(arr.starts_with('[') && arr.ends_with(']'));
        assert_eq!(arr.matches("\"rule\"").count(), 2);
    }

    #[test]
    fn family_strips_trailing_digits() {
        assert_eq!(sample().family(), "PROT");
        let span = Span::DUMMY;
        let chk = Diagnostic::new(rules::CHECK_MAY_VIOLATION, Severity::Error, "m", span);
        assert_eq!(chk.family(), "CHK");
        let ir = Diagnostic::new(rules::BAD_CFG, Severity::Error, "m", span);
        assert_eq!(ir.family(), "IR");
    }

    #[test]
    fn json_carries_family_and_file() {
        let d = sample().in_file("W.java");
        let j = d.to_json();
        assert!(j.contains("\"family\":\"PROT\""), "{j}");
        assert!(j.contains("\"file\":\"W.java\""), "{j}");
    }

    #[test]
    fn sorting_is_by_file_first() {
        let early = Span::new(Pos::new(1, 1, 2), Pos::new(2, 1, 3));
        let late = Span::new(Pos::new(9, 2, 1), Pos::new(10, 2, 2));
        let mut v = vec![
            Diagnostic::new(rules::DEAD_STORE, Severity::Warning, "b", early).in_file("z.java"),
            Diagnostic::new(rules::PROTOCOL_VIOLATION, Severity::Warning, "c", late)
                .in_file("a.java"),
        ];
        sort_diagnostics(&mut v);
        assert_eq!(v[0].file, "a.java");
        assert_eq!(v[1].file, "z.java");
    }

    #[test]
    fn sorting_is_by_position_then_rule() {
        let early = Span::new(Pos::new(1, 1, 2), Pos::new(2, 1, 3));
        let late = Span::new(Pos::new(9, 2, 1), Pos::new(10, 2, 2));
        let mut v = vec![
            Diagnostic::new(rules::DEAD_STORE, Severity::Warning, "b", late),
            Diagnostic::new(rules::PROTOCOL_VIOLATION, Severity::Warning, "c", early),
            Diagnostic::new(rules::USE_BEFORE_ASSIGN, Severity::Warning, "a", early),
        ];
        sort_diagnostics(&mut v);
        assert_eq!(v[0].rule, rules::USE_BEFORE_ASSIGN);
        assert_eq!(v[1].rule, rules::PROTOCOL_VIOLATION);
        assert_eq!(v[2].rule, rules::DEAD_STORE);
    }
}
