//! `PROT001` — deterministic protocol-usage checking.
//!
//! A forward may-analysis tracking, for each place, the set of abstract
//! states its object may currently be in. A call whose receiver precondition
//! names a state (`full(this) in HASNEXT`) fires when some tracked state
//! does not refine the required one — the classic `next()` without
//! `hasNext()` pattern, caught *without* any probabilistic inference.
//!
//! The analysis is interprocedural in a modular way: a per-method *summary*
//! (the possible states of the returned object) is computed by a fixpoint
//! over all program methods, mirroring the paper's modular treatment of
//! per-procedure specifications. Dynamic state tests (`@TrueIndicates` /
//! `@FalseIndicates` on `hasNext`) refine the receiver's state set along the
//! branch edges of the event CFG.

use crate::dataflow::{solve, Analysis, Direction};
use crate::diag::{rules, Diagnostic, Severity};
use analysis::cfg::{BranchTest, Cfg, Terminator};
use analysis::events::{Event, EventKind, Place};
use analysis::types::{Callee, MethodId};
use spec_lang::spec::{MethodSpec, SpecTarget};
use spec_lang::state::ALIVE;
use spec_lang::stdlib::ApiRegistry;
use std::collections::{BTreeMap, BTreeSet};

/// Expands an abstract state into the set of *leaf-ish* states an object
/// "in `state`" may concretely be in: the non-ALIVE states of the type's
/// space refining `state`, or `{state}` when the space is unknown or has
/// no refinements. `expand(Iterator, ALIVE) = {HASNEXT, END}`.
fn expand_state(api: &ApiRegistry, type_name: Option<&str>, state: &str) -> BTreeSet<String> {
    if let Some(space) = type_name.and_then(|t| api.states.get(t)) {
        let refined: BTreeSet<String> =
            space.concrete_states(state).into_iter().map(str::to_string).collect();
        if !refined.is_empty() {
            return refined;
        }
    }
    std::iter::once(state.to_string()).collect()
}

/// `None` = unreachable (bottom). In the map, an *absent* place is "state
/// unknown" (top for that place); a present place maps to the set of states
/// the object may be in.
type Fact = Option<BTreeMap<Place, BTreeSet<String>>>;

/// Possible return states per program method: `None` = unknown (top).
pub(crate) type Summaries = BTreeMap<MethodId, Option<BTreeSet<String>>>;

pub(crate) struct ProtocolAnalysis<'a> {
    api: &'a ApiRegistry,
    program_specs: &'a BTreeMap<MethodId, MethodSpec>,
    summaries: &'a Summaries,
}

impl<'a> ProtocolAnalysis<'a> {
    pub fn new(
        api: &'a ApiRegistry,
        program_specs: &'a BTreeMap<MethodId, MethodSpec>,
        summaries: &'a Summaries,
    ) -> ProtocolAnalysis<'a> {
        ProtocolAnalysis { api, program_specs, summaries }
    }

    /// The spec and declaring-type of a callee, when known.
    fn callee_spec<'b>(&'b self, callee: &'b Callee) -> Option<(&'b MethodSpec, Option<&'b str>)> {
        match callee {
            Callee::Api { type_name, method } => {
                self.api.get(type_name, method).map(|m| (&m.spec, Some(type_name.as_str())))
            }
            Callee::Program(id) => self.program_specs.get(id).map(|s| (s, Some(id.class.as_str()))),
            Callee::Unknown { .. } => None,
        }
    }

    fn expand(&self, type_name: Option<&str>, state: &str) -> BTreeSet<String> {
        expand_state(self.api, type_name, state)
    }

    /// Applies a call's effect on its receiver entry, given the callee spec.
    fn apply_receiver(
        &self,
        map: &mut BTreeMap<Place, BTreeSet<String>>,
        place: &Place,
        callee: &Callee,
    ) {
        let Some((spec, ty)) = self.callee_spec(callee) else {
            // Unknown callee: it may do anything to the receiver.
            map.remove(place);
            return;
        };
        let Some(req) = spec.requires.for_target(&SpecTarget::This) else {
            // The callee does not touch the receiver's protocol.
            return;
        };
        let ens = spec.ensures.for_target(&SpecTarget::This);
        let state_changing = req.effective_state() != ALIVE
            || ens.is_some_and(|e| e.state.as_deref().is_some_and(|s| s != ALIVE));
        if !state_changing {
            // A stateless observer (`hasNext`): the receiver keeps its state.
            return;
        }
        match ens {
            Some(e) => {
                map.insert(place.clone(), self.expand(ty, e.effective_state()));
            }
            None => {
                map.remove(place);
            }
        }
    }

    /// The possible states of a call's result, per the callee's postcondition
    /// (APIs) or its computed summary (program methods).
    fn result_states(&self, callee: &Callee) -> Option<BTreeSet<String>> {
        match callee {
            Callee::Api { type_name, method } => {
                let m = self.api.get(type_name, method)?;
                let atom = m.spec.ensures.for_target(&SpecTarget::Result)?;
                Some(self.expand(m.return_type.as_deref(), atom.effective_state()))
            }
            Callee::Program(id) => self.summaries.get(id).cloned().flatten(),
            Callee::Unknown { .. } => None,
        }
    }
}

impl Analysis for ProtocolAnalysis<'_> {
    type Fact = Fact;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn bottom(&self, _cfg: &Cfg) -> Fact {
        None
    }

    fn boundary(&self, _cfg: &Cfg) -> Fact {
        Some(BTreeMap::new())
    }

    fn join(&self, into: &mut Fact, other: &Fact) -> bool {
        match (into.as_mut(), other) {
            (_, None) => false,
            (None, Some(_)) => {
                *into = other.clone();
                true
            }
            (Some(a), Some(b)) => {
                let mut changed = false;
                // Keys only in `a` go to "unknown" (top): drop them.
                let stale: Vec<Place> = a.keys().filter(|p| !b.contains_key(*p)).cloned().collect();
                for p in stale {
                    a.remove(&p);
                    changed = true;
                }
                // Shared keys: union the state sets (may-analysis).
                for (p, states) in b {
                    if let Some(cur) = a.get_mut(p) {
                        let before = cur.len();
                        cur.extend(states.iter().cloned());
                        changed |= cur.len() != before;
                    }
                }
                changed
            }
        }
    }

    fn transfer_event(&self, fact: &mut Fact, event: &Event) {
        let Some(map) = fact.as_mut() else { return };
        match &event.kind {
            EventKind::Call { callee, receiver, args, dest } => {
                if let Some(r) = receiver {
                    self.apply_receiver(map, &r.place, callee);
                }
                for a in args.iter().flatten() {
                    // The argument escapes into the callee.
                    map.remove(&a.place);
                }
                if let Some(d) = dest {
                    match self.result_states(callee) {
                        Some(states) => {
                            map.insert(d.place.clone(), states);
                        }
                        None => {
                            map.remove(&d.place);
                        }
                    }
                }
            }
            EventKind::New { dest, args, .. } => {
                for a in args.iter().flatten() {
                    map.remove(&a.place);
                }
                map.remove(dest);
            }
            EventKind::FieldRead { dest, .. } => {
                map.remove(&dest.place);
            }
            EventKind::FieldWrite { src, .. } => {
                if let Some(s) = src {
                    map.remove(&s.place);
                }
            }
            EventKind::Copy { dest, src } => match map.get(&src.place).cloned() {
                Some(states) => {
                    map.insert(dest.clone(), states);
                }
                None => {
                    map.remove(dest);
                }
            },
            EventKind::Sync { .. } => {}
        }
    }

    fn flow_branch(&self, fact: &Fact, test: &BranchTest, taken: bool) -> Fact {
        let Some(map) = fact else { return None };
        let Some((spec, ty)) = self.callee_spec(&test.callee) else { return fact.clone() };
        // `taken != negated` means the test's boolean result was true.
        let indicated =
            if taken != test.negated { &spec.true_indicates } else { &spec.false_indicates };
        let Some(state) = indicated else { return fact.clone() };
        let mut map = map.clone();
        let expanded = self.expand(ty, state);
        let refined = match map.get(&test.operand.place) {
            Some(cur) => cur.intersection(&expanded).cloned().collect(),
            None => expanded,
        };
        map.insert(test.operand.place.clone(), refined);
        Some(map)
    }
}

/// A method whose body participates in the protocol fixpoint.
pub(crate) struct ProtocolMethod<'a> {
    pub id: &'a MethodId,
    pub cfg: &'a Cfg,
    pub return_type: Option<&'a str>,
}

/// Iteration cap for the summary fixpoint (summaries only grow towards top,
/// so convergence is fast; the cap guards recursion through `Unknown`s).
const MAX_SUMMARY_ROUNDS: usize = 20;

/// Computes the possible-return-states summary for every program method by
/// fixpoint iteration, seeding from explicit `ensures ...(result) in S`
/// specifications where present.
pub(crate) fn compute_summaries(
    methods: &[ProtocolMethod<'_>],
    api: &ApiRegistry,
    program_specs: &BTreeMap<MethodId, MethodSpec>,
) -> Summaries {
    let mut summaries: Summaries = BTreeMap::new();
    let mut fixed: BTreeSet<MethodId> = BTreeSet::new();
    for m in methods {
        if m.return_type.is_none() {
            continue;
        }
        let declared = program_specs
            .get(m.id)
            .and_then(|s| s.ensures.for_target(&SpecTarget::Result))
            .and_then(|a| a.state.as_deref());
        match declared {
            Some(state) => {
                summaries.insert(m.id.clone(), Some(expand_state(api, m.return_type, state)));
                fixed.insert(m.id.clone());
            }
            None => {
                // Optimistic start: ascend towards top during the fixpoint.
                summaries.insert(m.id.clone(), Some(BTreeSet::new()));
            }
        }
    }

    for _round in 0..MAX_SUMMARY_ROUNDS {
        let mut changed = false;
        for m in methods {
            if m.return_type.is_none() || fixed.contains(m.id) {
                continue;
            }
            let analysis = ProtocolAnalysis::new(api, program_specs, &summaries);
            let computed = summarize_returns(&analysis, m.cfg);
            let old = summaries.get(m.id).cloned().unwrap_or(None);
            let joined = join_summary(old.clone(), computed);
            if joined != old {
                summaries.insert(m.id.clone(), joined);
                changed = true;
            }
        }
        if !changed {
            return summaries;
        }
    }
    // Did not converge (deep recursion): give up on the still-moving ones.
    for m in methods {
        if m.return_type.is_some() && !fixed.contains(m.id) {
            summaries.insert(m.id.clone(), None);
        }
    }
    summaries
}

/// The union of possible states of every `return x;` in `cfg`, or `None`
/// (top) when some returned value has unknown state.
fn summarize_returns(analysis: &ProtocolAnalysis<'_>, cfg: &Cfg) -> Option<BTreeSet<String>> {
    let sol = solve(analysis, cfg);
    let mut states = BTreeSet::new();
    for b in cfg.reachable() {
        let Some(Terminator::Return(Some(op))) = &cfg.blocks[b].term else { continue };
        let Some(map) = &sol.exit[b] else { continue };
        match map.get(&op.place) {
            Some(s) => states.extend(s.iter().cloned()),
            None => return None,
        }
    }
    Some(states)
}

/// Join in the summary lattice (`None` = top).
fn join_summary(
    a: Option<BTreeSet<String>>,
    b: Option<BTreeSet<String>>,
) -> Option<BTreeSet<String>> {
    match (a, b) {
        (Some(mut x), Some(y)) => {
            x.extend(y);
            Some(x)
        }
        _ => None,
    }
}

/// Runs the protocol analysis over one method and reports violations.
pub(crate) fn report(analysis: &ProtocolAnalysis<'_>, cfg: &Cfg, method: &str) -> Vec<Diagnostic> {
    let sol = solve(analysis, cfg);
    let mut diags = Vec::new();
    for b in cfg.reachable() {
        let mut fact = sol.entry[b].clone();
        for e in &cfg.blocks[b].events {
            if let (Some(map), EventKind::Call { callee, receiver: Some(r), .. }) = (&fact, &e.kind)
            {
                check_call(analysis, map, callee, &r.place, e, method, &mut diags);
            }
            analysis.transfer_event(&mut fact, e);
        }
    }
    diags
}

/// Checks one call's receiver precondition against the current fact.
fn check_call(
    analysis: &ProtocolAnalysis<'_>,
    fact: &BTreeMap<Place, BTreeSet<String>>,
    callee: &Callee,
    receiver: &Place,
    event: &Event,
    method: &str,
    diags: &mut Vec<Diagnostic>,
) {
    let Some((spec, ty)) = analysis.callee_spec(callee) else { return };
    let Some(req) = spec.requires.for_target(&SpecTarget::This) else { return };
    let required = req.effective_state();
    if required == ALIVE {
        return;
    }
    let Some(states) = fact.get(receiver) else { return };
    let space = ty.and_then(|t| analysis.api.states.get(t));
    let bad: Vec<&String> = states
        .iter()
        .filter(|s| match space {
            Some(sp) => !sp.refines(s, required),
            None => s.as_str() != required,
        })
        .collect();
    if bad.is_empty() || states.is_empty() {
        return;
    }
    let callee_name = match callee {
        Callee::Api { type_name, method } => format!("{type_name}.{method}()"),
        Callee::Program(id) => format!("{id}()"),
        Callee::Unknown { method } => format!("{method}()"),
    };
    let possible = states.iter().cloned().collect::<Vec<_>>().join(", ");
    diags.push(
        Diagnostic::new(
            rules::PROTOCOL_VIOLATION,
            Severity::Error,
            format!(
                "call to {callee_name} requires its receiver in state {required}, \
                 but it may be in {{{possible}}}"
            ),
            event.span,
        )
        .in_method(method)
        .with_note(format!("required by `{req}` on {callee_name}")),
    );
}
