//! Shared read/write extraction over permission events.

use analysis::events::{Event, EventKind, Operand, Place};

/// The operands an event *reads*.
pub(crate) fn read_operands(event: &Event) -> Vec<&Operand> {
    let mut out = Vec::new();
    match &event.kind {
        EventKind::New { args, .. } => out.extend(args.iter().flatten()),
        EventKind::Call { receiver, args, .. } => {
            out.extend(receiver.iter());
            out.extend(args.iter().flatten());
        }
        EventKind::FieldRead { receiver, .. } => out.push(receiver),
        EventKind::FieldWrite { receiver, src, .. } => {
            out.push(receiver);
            out.extend(src.iter());
        }
        EventKind::Copy { src, .. } => out.push(src),
        EventKind::Sync { target } => out.push(target),
    }
    out
}

/// The place an event *writes*, if any.
pub(crate) fn written_place(event: &Event) -> Option<&Place> {
    match &event.kind {
        EventKind::New { dest, .. } => Some(dest),
        EventKind::Call { dest, .. } => dest.as_ref().map(|o| &o.place),
        EventKind::FieldRead { dest, .. } => Some(&dest.place),
        EventKind::Copy { dest, .. } => Some(dest),
        EventKind::FieldWrite { .. } | EventKind::Sync { .. } => None,
    }
}

/// The name read by an operand when it is a named local.
pub(crate) fn local_name(op: &Operand) -> Option<&str> {
    match &op.place {
        Place::Local(n) => Some(n),
        _ => None,
    }
}
