//! `SPEC001`–`SPEC003` — consistency between a method's declared `@Perm`
//! specification and the dataflow facts of its body.
//!
//! * `SPEC001` — a receiver declared read-only (`pure(this)` or
//!   `immutable(this)`) must not write fields of `this`.
//! * `SPEC002` — `ensures unique(result)` should return a *freshly created*
//!   object; returning a parameter or a field read is provably stale.
//! * `SPEC003` — synchronizing on an object declared `unique` is suspicious:
//!   a unique object is unshared, so the lock is pointless (paper H5 treats
//!   sync targets as thread-shared).

use crate::dataflow::{solve, Analysis, Direction};
use crate::diag::{rules, Diagnostic, Severity};
use analysis::cfg::{Cfg, Terminator};
use analysis::events::{Event, EventKind, Place};
use analysis::types::{Callee, MethodId};
use spec_lang::permission::PermissionKind;
use spec_lang::spec::{MethodSpec, SpecTarget};
use spec_lang::stdlib::ApiRegistry;
use std::collections::BTreeMap;

/// Runs all spec-consistency checks for one method. `params` are the
/// method's formal parameter names.
pub(crate) fn check_method(
    spec: &MethodSpec,
    cfg: &Cfg,
    method: &str,
    params: &[String],
    api: &ApiRegistry,
    program_specs: &BTreeMap<MethodId, MethodSpec>,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    check_readonly_receiver(spec, cfg, method, &mut diags);
    check_unique_sync(spec, cfg, method, &mut diags);
    check_unique_result(spec, cfg, method, params, api, program_specs, &mut diags);
    diags
}

/// `SPEC001`: `pure(this)`/`immutable(this)` in requires vs. field writes.
fn check_readonly_receiver(
    spec: &MethodSpec,
    cfg: &Cfg,
    method: &str,
    diags: &mut Vec<Diagnostic>,
) {
    let Some(atom) = spec.requires.for_target(&SpecTarget::This) else { return };
    if !matches!(atom.kind, PermissionKind::Pure | PermissionKind::Immutable) {
        return;
    }
    for b in cfg.reachable() {
        for e in &cfg.blocks[b].events {
            if let EventKind::FieldWrite { receiver, field, .. } = &e.kind {
                if receiver.place == Place::This {
                    diags.push(
                        Diagnostic::new(
                            rules::READONLY_WRITES,
                            Severity::Error,
                            format!(
                                "method requires `{atom}` (read-only receiver) \
                                 but writes field `{field}` of `this`"
                            ),
                            e.span,
                        )
                        .in_method(method),
                    );
                }
            }
        }
    }
}

/// `SPEC003`: `unique(this)`/`unique(param)` vs. `synchronized` on it.
fn check_unique_sync(spec: &MethodSpec, cfg: &Cfg, method: &str, diags: &mut Vec<Diagnostic>) {
    let unique_places: Vec<(Place, String)> = spec
        .requires
        .atoms
        .iter()
        .filter(|a| a.kind == PermissionKind::Unique)
        .filter_map(|a| match &a.target {
            SpecTarget::This => Some((Place::This, a.to_string())),
            SpecTarget::Param(p) => Some((Place::Local(p.clone()), a.to_string())),
            SpecTarget::Result => None,
        })
        .collect();
    if unique_places.is_empty() {
        return;
    }
    for b in cfg.reachable() {
        for e in &cfg.blocks[b].events {
            if let EventKind::Sync { target } = &e.kind {
                for (place, atom) in &unique_places {
                    if &target.place == place {
                        diags.push(
                            Diagnostic::new(
                                rules::UNIQUE_SYNC,
                                Severity::Warning,
                                format!(
                                    "synchronizing on `{place}` which is declared \
                                     `{atom}`; a unique object needs no lock"
                                ),
                                e.span,
                            )
                            .in_method(method),
                        );
                    }
                }
            }
        }
    }
}

/// Freshness of a reference: definitely freshly created on all paths, or
/// definitely derived from pre-existing state on all paths. An absent place
/// means "mixed/unknown" (top).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fresh {
    Fresh,
    Stale,
}

type FreshFact = Option<BTreeMap<Place, Fresh>>;

struct Freshness<'a> {
    api: &'a ApiRegistry,
    program_specs: &'a BTreeMap<MethodId, MethodSpec>,
    params: Vec<String>,
}

impl Freshness<'_> {
    fn callee_makes_unique_result(&self, callee: &Callee) -> bool {
        let spec = match callee {
            Callee::Api { type_name, method } => self.api.get(type_name, method).map(|m| &m.spec),
            Callee::Program(id) => self.program_specs.get(id),
            Callee::Unknown { .. } => None,
        };
        spec.and_then(|s| s.ensures.for_target(&SpecTarget::Result))
            .is_some_and(|a| a.kind == PermissionKind::Unique)
    }
}

impl Analysis for Freshness<'_> {
    type Fact = FreshFact;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn bottom(&self, _cfg: &Cfg) -> FreshFact {
        None
    }

    fn boundary(&self, _cfg: &Cfg) -> FreshFact {
        let mut map = BTreeMap::new();
        map.insert(Place::This, Fresh::Stale);
        for p in &self.params {
            map.insert(Place::Local(p.clone()), Fresh::Stale);
        }
        Some(map)
    }

    fn join(&self, into: &mut FreshFact, other: &FreshFact) -> bool {
        match (into.as_mut(), other) {
            (_, None) => false,
            (None, Some(_)) => {
                *into = other.clone();
                true
            }
            (Some(a), Some(b)) => {
                // Keep only places on which both paths agree.
                let before = a.len();
                a.retain(|p, f| b.get(p) == Some(f));
                a.len() != before
            }
        }
    }

    fn transfer_event(&self, fact: &mut FreshFact, event: &Event) {
        let Some(map) = fact.as_mut() else { return };
        match &event.kind {
            EventKind::New { dest, .. } => {
                map.insert(dest.clone(), Fresh::Fresh);
            }
            EventKind::Call { callee, dest, args, .. } => {
                for a in args.iter().flatten() {
                    // Escaped into the callee: uniqueness no longer certain.
                    map.remove(&a.place);
                }
                if let Some(d) = dest {
                    if self.callee_makes_unique_result(callee) {
                        map.insert(d.place.clone(), Fresh::Fresh);
                    } else {
                        map.remove(&d.place);
                    }
                }
            }
            EventKind::FieldRead { dest, .. } => {
                map.insert(dest.place.clone(), Fresh::Stale);
            }
            EventKind::FieldWrite { src, .. } => {
                if let Some(s) = src {
                    // Stored into a field: now aliased.
                    map.insert(s.place.clone(), Fresh::Stale);
                }
            }
            EventKind::Copy { dest, src } => match map.get(&src.place).copied() {
                Some(f) => {
                    map.insert(dest.clone(), f);
                }
                None => {
                    map.remove(dest);
                }
            },
            EventKind::Sync { .. } => {}
        }
    }
}

/// `SPEC002`: `ensures unique(result)` vs. what `return` actually returns.
fn check_unique_result(
    spec: &MethodSpec,
    cfg: &Cfg,
    method: &str,
    params: &[String],
    api: &ApiRegistry,
    program_specs: &BTreeMap<MethodId, MethodSpec>,
    diags: &mut Vec<Diagnostic>,
) {
    let Some(atom) = spec.ensures.for_target(&SpecTarget::Result) else { return };
    if atom.kind != PermissionKind::Unique {
        return;
    }
    let analysis = Freshness { api, program_specs, params: params.to_vec() };
    let sol = solve(&analysis, cfg);
    for b in cfg.reachable() {
        let Some(Terminator::Return(Some(op))) = &cfg.blocks[b].term else { continue };
        let Some(map) = &sol.exit[b] else { continue };
        if map.get(&op.place) == Some(&Fresh::Stale) {
            diags.push(
                Diagnostic::new(
                    rules::STALE_UNIQUE_RESULT,
                    Severity::Warning,
                    format!(
                        "method ensures `{atom}` but returns `{}`, which is \
                         not freshly created",
                        op.place
                    ),
                    cfg.blocks[b].span,
                )
                .in_method(method),
            );
        }
    }
}
