//! anek-lint: deterministic companion analyses for the ANEK pipeline.
//!
//! Two halves, both reporting through the structured [`diag`] engine:
//!
//! 1. A generic **monotone dataflow framework** ([`dataflow`]) over the
//!    event CFG, instantiated with four lints: definite assignment
//!    (`DF001`), dead stores (`DF002`), deterministic protocol usage —
//!    `next()` without `hasNext()` — independent of the probabilistic
//!    inference (`PROT001`), and consistency between declared `@Perm`
//!    specifications and dataflow facts (`SPEC001`–`SPEC004`).
//! 2. An **IR verifier** ([`verify`]) in the style of LLVM's, checking the
//!    structural invariants of CFGs (`IR001`), PFGs (`IR002`) and emitted
//!    constraint systems (`IR003`) that the pipeline stages assume of each
//!    other.
//!
//! The entry point for source-level linting is [`lint_units`]; the verifier
//! functions are also called directly by `anek::pipeline` at stage
//! boundaries (always in debug builds, behind `--verify-ir` in release).

mod assign;
pub mod dataflow;
pub mod diag;
mod liveness;
mod locals;
mod protocol;
mod spec_check;
mod uses;
pub mod verify;

pub use dataflow::{solve, solve_with_seed, Analysis, Direction, Solution, SolveStats};
pub use diag::{rules, sort_diagnostics, to_json_array, Diagnostic, Severity};

use analysis::cfg::Cfg;
use analysis::pfg::Pfg;
use analysis::types::{MethodId, ProgramIndex, TypeEnv};
use java_syntax::ast::{CompilationUnit, MethodDecl};
use spec_lang::spec::{spec_of_method, MethodSpec};
use spec_lang::stdlib::ApiRegistry;
use std::collections::BTreeMap;

/// Knobs for [`lint_units`].
#[derive(Debug, Clone, Copy, Default)]
pub struct LintOptions {
    /// Also run the IR verifier over every method's CFG and PFG.
    pub verify_ir: bool,
}

struct MethodCtx<'a> {
    id: MethodId,
    decl: &'a MethodDecl,
    class: &'a str,
    cfg: Cfg,
    return_type: Option<String>,
}

/// Lints a program: runs every dataflow lint and spec-consistency check
/// over all method bodies, returning diagnostics in reporting order.
pub fn lint_units(
    units: &[CompilationUnit],
    api: &ApiRegistry,
    opts: &LintOptions,
) -> Vec<Diagnostic> {
    let index = ProgramIndex::build(units.iter());
    let mut diags = Vec::new();
    let mut program_specs: BTreeMap<MethodId, MethodSpec> = BTreeMap::new();
    let mut methods: Vec<MethodCtx<'_>> = Vec::new();

    for unit in units {
        for t in &unit.types {
            for m in t.methods() {
                let id = MethodId::new(&t.name, &m.name);
                match spec_of_method(m) {
                    Ok(spec) => {
                        program_specs.insert(id.clone(), spec);
                    }
                    Err(e) => {
                        diags.push(
                            Diagnostic::new(
                                rules::MALFORMED_SPEC,
                                Severity::Error,
                                e.to_string(),
                                m.span,
                            )
                            .in_method(id.to_string()),
                        );
                    }
                }
                if m.body.is_none() {
                    continue;
                }
                let mut env = TypeEnv::for_method(&index, api, &t.name, m);
                let cfg = Cfg::build(m, &mut env);
                let return_type = index.method(&id).and_then(|info| info.return_type.clone());
                methods.push(MethodCtx { id, decl: m, class: &t.name, cfg, return_type });
            }
        }
    }

    // Interprocedural protocol summaries: possible return states per method.
    let protocol_methods: Vec<protocol::ProtocolMethod<'_>> = methods
        .iter()
        .map(|m| protocol::ProtocolMethod {
            id: &m.id,
            cfg: &m.cfg,
            return_type: m.return_type.as_deref(),
        })
        .collect();
    let summaries = protocol::compute_summaries(&protocol_methods, api, &program_specs);
    let protocol_analysis = protocol::ProtocolAnalysis::new(api, &program_specs, &summaries);

    for m in &methods {
        let name = m.id.to_string();
        let locals = locals::LocalTable::build(m.decl);
        diags.extend(assign::DefiniteAssignment::new(&locals, &m.cfg).report(&m.cfg, &name));
        diags.extend(liveness::Liveness::new(&locals, &m.cfg).report(&m.cfg, &name));
        diags.extend(protocol::report(&protocol_analysis, &m.cfg, &name));
        if let Some(spec) = program_specs.get(&m.id) {
            if !spec.is_empty() {
                let params: Vec<String> = m.decl.params.iter().map(|p| p.name.clone()).collect();
                diags.extend(spec_check::check_method(
                    spec,
                    &m.cfg,
                    &name,
                    &params,
                    api,
                    &program_specs,
                ));
            }
        }
        if opts.verify_ir {
            diags.extend(verify::verify_cfg(&m.cfg, &name));
            diags.extend(verify::verify_pfg(&Pfg::build(&index, api, m.class, m.decl)));
        }
    }

    sort_diagnostics(&mut diags);
    diags
}
