//! `IR001`–`IR003` — an LLVM-verifier-style structural checker for the
//! pipeline's intermediate representations.
//!
//! Each stage of the ANEK pipeline produces an IR with invariants the next
//! stage silently relies on: sealed CFGs with in-bounds terminators, PFGs
//! whose split/merge arity and acyclicity (modulo merge back edges) the
//! constraint emitter assumes, and factor graphs whose tables match their
//! scopes. The verifier re-checks those invariants from first principles —
//! it recomputes adjacency from the raw edge list rather than trusting
//! cached neighbor arrays — and reports violations as structured
//! diagnostics. The pipeline runs it at stage boundaries in debug builds
//! and behind `--verify-ir` in release builds.

use crate::diag::{rules, Diagnostic, Severity};
use analysis::cfg::{Cfg, Terminator};
use analysis::pfg::{Pfg, PfgNodeKind};
use anek_core::model::MethodModel;
use factor_graph::FactorGraph;
use java_syntax::Span;

fn err(rule: &'static str, message: String, span: Span, method: &str) -> Diagnostic {
    Diagnostic::new(rule, Severity::Error, message, span).in_method(method)
}

/// Verifies a control-flow graph (`IR001`).
pub fn verify_cfg(cfg: &Cfg, method: &str) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let n = cfg.blocks.len();
    let mut fail = |msg: String, span: Span| {
        diags.push(err(rules::BAD_CFG, msg, span, method));
    };
    if n == 0 {
        fail("CFG has no blocks".into(), Span::DUMMY);
        return diags;
    }
    if cfg.entry >= n || cfg.exit >= n {
        fail(
            format!("entry ({}) or exit ({}) out of bounds ({n} blocks)", cfg.entry, cfg.exit),
            Span::DUMMY,
        );
        return diags;
    }
    if cfg.entry == cfg.exit {
        fail(format!("entry and exit are the same block ({})", cfg.entry), Span::DUMMY);
    }

    for (b, block) in cfg.blocks.iter().enumerate() {
        let span = block.span;
        match &block.term {
            None => {
                // Unsealed blocks are only legal when unreachable; checked
                // against the reachable set below (our own DFS, since
                // `Cfg::successors` panics on unsealed blocks).
            }
            Some(Terminator::Goto(t)) if *t >= n => {
                fail(format!("block {b}: goto target {t} out of bounds"), span);
            }
            Some(Terminator::Goto(_)) => {}
            Some(Terminator::Branch { then_blk, else_blk, .. }) => {
                for t in [then_blk, else_blk] {
                    if *t >= n {
                        fail(format!("block {b}: branch target {t} out of bounds"), span);
                    }
                }
            }
            Some(Terminator::Return(_)) => {}
            Some(Terminator::Exit) if b != cfg.exit => {
                fail(format!("block {b}: Exit terminator outside the exit block"), span);
            }
            Some(Terminator::Exit) => {}
        }
    }
    match &cfg.blocks[cfg.exit].term {
        Some(Terminator::Exit) => {}
        other => fail(
            format!("exit block {} must end in Exit, found {:?}", cfg.exit, other),
            cfg.blocks[cfg.exit].span,
        ),
    }
    if !cfg.blocks[cfg.exit].events.is_empty() {
        fail(format!("exit block {} has events", cfg.exit), cfg.blocks[cfg.exit].span);
    }

    // Reachability DFS that tolerates broken graphs (no successors() calls).
    let mut seen = vec![false; n];
    let mut stack = vec![cfg.entry];
    seen[cfg.entry] = true;
    while let Some(b) = stack.pop() {
        let succs: Vec<usize> = match &cfg.blocks[b].term {
            None => {
                fail(
                    format!("reachable block {b} is unsealed (no terminator)"),
                    cfg.blocks[b].span,
                );
                Vec::new()
            }
            Some(Terminator::Goto(t)) => vec![*t],
            Some(Terminator::Branch { then_blk, else_blk, .. }) => vec![*then_blk, *else_blk],
            Some(Terminator::Return(_)) => vec![cfg.exit],
            Some(Terminator::Exit) => Vec::new(),
        };
        for s in succs {
            if s < n && !seen[s] {
                seen[s] = true;
                stack.push(s);
            }
        }
    }
    diags
}

/// Verifies a permissions flow graph (`IR002`).
pub fn verify_pfg(pfg: &Pfg) -> Vec<Diagnostic> {
    let method = pfg.method.to_string();
    let mut diags = Vec::new();
    let n = pfg.nodes.len();
    let span_of = |id: usize| if id < n { pfg.nodes[id].span } else { Span::DUMMY };
    let mut fail = |msg: String, span: Span| {
        diags.push(err(rules::BAD_PFG, msg, span, &method));
    };

    for (i, node) in pfg.nodes.iter().enumerate() {
        if node.id != i {
            fail(format!("node at index {i} carries id {}", node.id), node.span);
        }
        match node.receiver_link {
            Some(r) if r >= n => {
                fail(format!("node {i}: receiver link {r} out of bounds"), node.span);
            }
            Some(_)
                if !matches!(
                    node.kind,
                    PfgNodeKind::FieldRead { .. } | PfgNodeKind::FieldWrite { .. }
                ) =>
            {
                fail(format!("node {i}: receiver link on non-field node"), node.span);
            }
            _ => {}
        }
    }

    // Adjacency recomputed from the raw edge list — the cached neighbor
    // arrays are exactly what a corrupted graph would have stale.
    let mut out_deg = vec![0usize; n];
    let mut in_deg = vec![0usize; n];
    let mut ok_edges = Vec::new();
    for &(a, b) in &pfg.edges {
        if a >= n || b >= n {
            fail(format!("edge ({a}, {b}) out of bounds ({n} nodes)"), Span::DUMMY);
            continue;
        }
        if a == b {
            fail(format!("self-loop on node {a}"), span_of(a));
            continue;
        }
        out_deg[a] += 1;
        in_deg[b] += 1;
        ok_edges.push((a, b));
    }

    for (i, node) in pfg.nodes.iter().enumerate() {
        match &node.kind {
            PfgNodeKind::Split => {
                if in_deg[i] != 1 {
                    fail(format!("split node {i} has fan-in {} (must be 1)", in_deg[i]), node.span);
                }
                if out_deg[i] == 0 {
                    fail(format!("split node {i} has no outgoing edges"), node.span);
                }
            }
            PfgNodeKind::ParamPre { .. }
            | PfgNodeKind::New { .. }
            | PfgNodeKind::CallResult { .. }
            | PfgNodeKind::CallPost { .. }
            | PfgNodeKind::FieldRead { .. }
                if in_deg[i] != 0 =>
            {
                fail(format!("source node {i} ({:?}) has incoming edges", node.kind), node.span);
            }
            PfgNodeKind::CallPre { .. } | PfgNodeKind::FieldWrite { .. } if out_deg[i] != 0 => {
                fail(format!("sink node {i} ({:?}) has outgoing edges", node.kind), node.span);
            }
            _ => {}
        }
    }

    for p in &pfg.params {
        for (what, id) in [("pre", p.pre), ("post", p.post)] {
            if id >= n {
                fail(
                    format!("parameter `{}`: {what} node {id} out of bounds", p.name),
                    Span::DUMMY,
                );
            }
        }
        if p.pre < n
            && !matches!(&pfg.nodes[p.pre].kind, PfgNodeKind::ParamPre { name } if *name == p.name)
        {
            fail(
                format!("parameter `{}`: pre node {} has wrong kind", p.name, p.pre),
                span_of(p.pre),
            );
        }
        if p.post < n
            && !matches!(&pfg.nodes[p.post].kind, PfgNodeKind::ParamPost { name } if *name == p.name)
        {
            fail(
                format!("parameter `{}`: post node {} has wrong kind", p.name, p.post),
                span_of(p.post),
            );
        }
        if p.pre == p.post {
            fail(format!("parameter `{}`: pre and post are the same node", p.name), span_of(p.pre));
        }
    }
    if let Some((_, r)) = &pfg.result {
        if *r >= n {
            fail(format!("result node {r} out of bounds"), Span::DUMMY);
        } else if !matches!(pfg.nodes[*r].kind, PfgNodeKind::ResultPost) {
            fail(format!("result node {r} has wrong kind"), span_of(*r));
        }
    }
    for &t in &pfg.sync_targets {
        if t >= n {
            fail(format!("sync target {t} out of bounds"), Span::DUMMY);
        }
    }

    // Permission flow must be acyclic apart from loop back edges, which by
    // construction always target a Merge node: dropping edges *into* merges
    // must leave a DAG (Kahn's algorithm on the remainder).
    let mut fwd_in = vec![0usize; n];
    let fwd_edges: Vec<(usize, usize)> = ok_edges
        .iter()
        .copied()
        .filter(|&(_, b)| !matches!(pfg.nodes[b].kind, PfgNodeKind::Merge))
        .collect();
    let mut adj = vec![Vec::new(); n];
    for &(a, b) in &fwd_edges {
        adj[a].push(b);
        fwd_in[b] += 1;
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| fwd_in[i] == 0).collect();
    let mut removed = 0usize;
    while let Some(v) = queue.pop() {
        removed += 1;
        for &w in &adj[v] {
            fwd_in[w] -= 1;
            if fwd_in[w] == 0 {
                queue.push(w);
            }
        }
    }
    if removed != n {
        fail(
            format!(
                "permission flow is cyclic: {} nodes sit on a cycle not broken by a merge",
                n - removed
            ),
            Span::DUMMY,
        );
    }
    diags
}

/// Verifies a constraint system / factor graph (`IR003`).
pub fn verify_factor_graph(g: &FactorGraph, method: &str) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let nvars = g.num_vars();
    let mut fail = |msg: String| {
        diags.push(err(rules::BAD_CONSTRAINTS, msg, Span::DUMMY, method));
    };
    for (fi, f) in g.factors().iter().enumerate() {
        let scope = f.scope();
        if scope.is_empty() {
            fail(format!("factor {fi}: empty scope"));
            continue;
        }
        if scope.len() > 16 {
            fail(format!("factor {fi}: scope of {} variables exceeds 16", scope.len()));
            continue;
        }
        let mut sorted: Vec<u32> = scope.iter().map(|v| v.0).collect();
        sorted.sort_unstable();
        if sorted.windows(2).any(|w| w[0] == w[1]) {
            fail(format!("factor {fi}: duplicate variable in scope"));
        }
        for v in scope {
            if v.0 as usize >= nvars {
                fail(format!("factor {fi}: variable {} out of bounds ({nvars} vars)", v.0));
            }
        }
        let want = 1usize << scope.len();
        if f.table().len() != want {
            fail(format!(
                "factor {fi}: table has {} entries, scope of {} needs {want}",
                f.table().len(),
                scope.len()
            ));
        }
        for (ti, &x) in f.table().iter().enumerate() {
            if !x.is_finite() || x < 0.0 {
                fail(format!("factor {fi}: table entry {ti} is {x} (must be finite and >= 0)"));
                break;
            }
        }
    }
    diags
}

/// Verifies a complete per-method probabilistic model: PFG structure, the
/// slot tables' parallelism with it, and the emitted constraint system.
pub fn verify_model(model: &MethodModel) -> Vec<Diagnostic> {
    let method = model.pfg.method.to_string();
    let mut diags = verify_pfg(&model.pfg);
    for problem in model.check_well_formed() {
        diags.push(err(rules::BAD_CONSTRAINTS, problem, Span::DUMMY, &method));
    }
    diags.extend(verify_factor_graph(&model.graph, &method));
    diags
}
