//! Golden-file tests for the PFG DOT dumps of the paper's Figure 6
//! (`Spreadsheet.copy` of Figure 3/5) and Figure 7 (`C.accessFields`).
//!
//! The DOT renderer must be byte-stable across runs (sorted edge emission,
//! deterministic node ids) or these files — and the paper-figure
//! regeneration binaries — would churn. To regenerate after an intentional
//! topology change:
//!
//! ```text
//! cargo run --release -p anek --bin anek -- pfg Figure3.java Spreadsheet.copy
//! ```

use analysis::pfg::Pfg;
use analysis::types::ProgramIndex;
use corpus::figures;
use java_syntax::parse;
use spec_lang::standard_api;

fn dot_of(source: &str, class: &str, method: &str) -> String {
    let unit = parse(source).expect("figure parses");
    let index = ProgramIndex::build(std::iter::once(&unit));
    let api = standard_api();
    let m = unit
        .type_named(class)
        .and_then(|t| t.method_named(method))
        .unwrap_or_else(|| panic!("{class}.{method} not found"));
    Pfg::build(&index, &api, class, m).to_dot()
}

#[test]
fn figure6_copy_pfg_matches_golden() {
    let dot = dot_of(figures::FIGURE3, "Spreadsheet", figures::FIGURE5_METHOD);
    let golden = include_str!("golden/figure6_copy.dot");
    assert_eq!(dot, golden, "Figure 6 PFG drifted from the checked-in golden dump");
}

#[test]
fn figure7_accessfields_pfg_matches_golden() {
    let dot = dot_of(figures::FIGURE7, "C", "accessFields");
    let golden = include_str!("golden/figure7_accessfields.dot");
    assert_eq!(dot, golden, "Figure 7 PFG drifted from the checked-in golden dump");
}

#[test]
fn dot_output_is_deterministic() {
    let a = dot_of(figures::FIGURE3, "Spreadsheet", "copyTwice");
    let b = dot_of(figures::FIGURE3, "Spreadsheet", "copyTwice");
    assert_eq!(a, b);
}

#[test]
fn dot_labels_are_escaped() {
    // Every label sits inside double quotes; embedded quotes/backslashes in
    // names must be escaped or graphviz chokes. The figure dumps contain
    // bracketed API markers that exercise the escaper's pass-through; the
    // structural property checked here is that quote characters inside
    // label strings are always preceded by a backslash.
    let dot = dot_of(figures::FIGURE3, "Spreadsheet", figures::FIGURE5_METHOD);
    for line in dot.lines() {
        let Some(start) = line.find("label=\"") else { continue };
        let rest = &line[start + 7..];
        let end = rest.find("\", shape").or_else(|| rest.rfind("\"]"));
        let inner = &rest[..end.unwrap_or(rest.len())];
        assert!(!inner.contains('"') || inner.contains("\\\""), "unescaped quote in label: {line}");
    }
}
