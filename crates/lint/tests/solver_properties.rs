//! Property tests for the monotone dataflow solver: on randomly generated
//! CFGs with randomly generated monotone (gen/kill) transfer functions, the
//! solver must (1) reach a genuine fixpoint, (2) compute the same solution
//! regardless of worklist order, and (3) never trip its widening guard on a
//! finite lattice.

use analysis::cfg::{Block, BlockId, Cfg, Terminator};
use analysis::events::Event;
use java_syntax::Span;
use lint::{solve, solve_with_seed, Analysis, Direction};
use prng::{forall, Rng};
use std::collections::BTreeSet;

/// A random gen/kill bit-vector analysis. The `Analysis` transfers see only
/// events and terminators (not block ids), so the gen/kill table is keyed
/// off the terminator's shape — deterministic per block, since a block's
/// terminator never changes during a solve.
struct GenKill {
    direction: Direction,
    /// (gen, kill) per terminator-shape bucket.
    tables: Vec<(BTreeSet<u8>, BTreeSet<u8>)>,
}

/// The trivial analysis whose facts mark reachability from the boundary.
struct Reachability;

impl Analysis for Reachability {
    type Fact = Option<BTreeSet<usize>>;

    fn direction(&self) -> Direction {
        Direction::Forward
    }
    fn bottom(&self, _cfg: &Cfg) -> Self::Fact {
        None
    }
    fn boundary(&self, _cfg: &Cfg) -> Self::Fact {
        Some(BTreeSet::new())
    }
    fn join(&self, into: &mut Self::Fact, other: &Self::Fact) -> bool {
        match (into.as_mut(), other) {
            (_, None) => false,
            (None, Some(_)) => {
                *into = other.clone();
                true
            }
            (Some(a), Some(b)) => {
                let before = a.len();
                a.extend(b.iter().copied());
                a.len() != before
            }
        }
    }
    fn transfer_event(&self, _fact: &mut Self::Fact, _event: &Event) {}
}

impl GenKill {
    fn new(rng: &mut Rng, blocks: usize, direction: Direction) -> GenKill {
        let tables = (0..blocks)
            .map(|_| {
                let mut gen = BTreeSet::new();
                let mut kill = BTreeSet::new();
                for f in 0..8u8 {
                    if rng.gen_bool(0.3) {
                        gen.insert(f);
                    }
                    if rng.gen_bool(0.3) {
                        kill.insert(f);
                    }
                }
                (gen, kill)
            })
            .collect();
        GenKill { direction, tables }
    }
}

impl Analysis for GenKill {
    type Fact = Option<BTreeSet<u8>>;

    fn direction(&self) -> Direction {
        self.direction
    }
    fn bottom(&self, _cfg: &Cfg) -> Self::Fact {
        None
    }
    fn boundary(&self, _cfg: &Cfg) -> Self::Fact {
        Some(BTreeSet::new())
    }
    fn join(&self, into: &mut Self::Fact, other: &Self::Fact) -> bool {
        match (into.as_mut(), other) {
            (_, None) => false,
            (None, Some(_)) => {
                *into = other.clone();
                true
            }
            (Some(a), Some(b)) => {
                let before = a.len();
                a.extend(b.iter().copied());
                a.len() != before
            }
        }
    }
    fn transfer_event(&self, _fact: &mut Self::Fact, _event: &Event) {}
    fn transfer_term(&self, fact: &mut Self::Fact, term: &Terminator) {
        // Key the gen/kill table off the terminator's shape: the first
        // target of the terminator indexes the table. Deterministic per
        // block (a block's terminator never changes), monotone (gen/kill
        // over a powerset), and independent of solve order.
        let key = match term {
            Terminator::Goto(t) => *t,
            Terminator::Branch { then_blk, .. } => *then_blk,
            Terminator::Return(_) => 0,
            Terminator::Exit => 1,
        } % self.tables.len();
        if let Some(set) = fact.as_mut() {
            let (gen, kill) = &self.tables[key];
            for k in kill {
                set.remove(k);
            }
            set.extend(gen.iter().copied());
        }
    }
}

/// A random CFG: entry 0, exit 1, plus `extra` inner blocks with random
/// Goto/Branch/Return terminators. All blocks sealed; events empty.
fn random_cfg(rng: &mut Rng, extra: usize) -> Cfg {
    let n = extra + 2;
    let mk = |term| Block { events: vec![], term: Some(term), span: Span::DUMMY };
    let inner = |rng: &mut Rng| 2 + rng.gen_index(0..extra.max(1)) % extra.max(1);
    let mut blocks = Vec::with_capacity(n);
    // Entry jumps somewhere (or straight to a return when there are no
    // inner blocks).
    blocks.push(if extra == 0 {
        mk(Terminator::Return(None))
    } else {
        mk(Terminator::Goto(inner(rng)))
    });
    blocks.push(mk(Terminator::Exit));
    for _ in 0..extra {
        let t = match rng.gen_index(0..4) {
            0 => Terminator::Goto(inner(rng)),
            1 => Terminator::Branch { test: None, then_blk: inner(rng), else_blk: inner(rng) },
            2 => Terminator::Return(None),
            _ => Terminator::Goto(inner(rng)),
        };
        blocks.push(mk(t));
    }
    Cfg { blocks, entry: 0, exit: 1 }
}

#[test]
fn solver_is_order_independent_on_random_cfgs() {
    forall("order-independence", 60, |rng| {
        let extra = rng.gen_index(0..12);
        let cfg = random_cfg(rng, extra);
        for direction in [Direction::Forward, Direction::Backward] {
            let analysis = GenKill::new(rng, cfg.blocks.len(), direction);
            let base = solve(&analysis, &cfg);
            assert!(!base.stats.widened, "finite lattice must converge");
            for _ in 0..4 {
                let seed = rng.next_u64();
                let alt = solve_with_seed(&analysis, &cfg, Some(seed));
                assert_eq!(alt.entry, base.entry, "entry facts differ for seed {seed}");
                assert_eq!(alt.exit, base.exit, "exit facts differ for seed {seed}");
            }
        }
    });
}

#[test]
fn solution_is_a_true_fixpoint() {
    forall("fixpoint", 60, |rng| {
        let extra = rng.gen_index(0..12);
        let cfg = random_cfg(rng, extra);
        let analysis = GenKill::new(rng, cfg.blocks.len(), Direction::Forward);
        let sol = solve(&analysis, &cfg);
        // Re-transferring every reachable block must reproduce its exit
        // fact, and every successor's entry must already absorb it.
        for b in cfg.reachable() {
            let mut fact = sol.entry[b].clone();
            if let Some(t) = &cfg.blocks[b].term {
                analysis.transfer_term(&mut fact, t);
            }
            assert_eq!(fact, sol.exit[b], "block {b} not at fixpoint");
            for s in cfg.successors(b) {
                let mut joined = sol.entry[s].clone();
                let changed = analysis.join(&mut joined, &fact);
                assert!(!changed, "edge {b}->{s} not absorbed");
            }
        }
    });
}

#[test]
fn reachability_facts_agree_with_cfg_reachability() {
    forall("reachability", 60, |rng| {
        let extra = rng.gen_index(0..12);
        let cfg = random_cfg(rng, extra);
        let sol = solve(&Reachability, &cfg);
        let reachable: BTreeSet<BlockId> = cfg.reachable().into_iter().collect();
        for b in 0..cfg.blocks.len() {
            assert_eq!(
                sol.entry[b].is_some(),
                reachable.contains(&b),
                "block {b}: dataflow reachability disagrees with DFS"
            );
        }
    });
}
