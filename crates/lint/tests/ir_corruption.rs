//! The IR verifier must catch injected corruptions across all three IR
//! levels: broken CFGs (`IR001`), broken PFGs (`IR002`), and broken
//! constraint systems (`IR003`) — and stay silent on the well-formed
//! originals.

use analysis::cfg::{Cfg, Terminator};
use analysis::pfg::Pfg;
use analysis::types::{ProgramIndex, TypeEnv};
use corpus::figures;
use factor_graph::{Factor, FactorGraph, VarId};
use java_syntax::parse;
use lint::rules;
use lint::verify::{verify_cfg, verify_factor_graph, verify_pfg};
use spec_lang::standard_api;

fn figure3_copy_irs() -> (Cfg, Pfg) {
    let unit = parse(figures::FIGURE3).unwrap();
    let api = standard_api();
    let index = ProgramIndex::build(std::iter::once(&unit));
    let t = unit.type_named("Spreadsheet").unwrap();
    let m = t.method_named("copy").unwrap();
    let mut env = TypeEnv::for_method(&index, &api, "Spreadsheet", m);
    let cfg = Cfg::build(m, &mut env);
    let pfg = Pfg::build(&index, &api, "Spreadsheet", m);
    (cfg, pfg)
}

#[test]
fn pristine_irs_verify_clean() {
    let (cfg, pfg) = figure3_copy_irs();
    assert!(verify_cfg(&cfg, "Spreadsheet.copy").is_empty());
    assert!(verify_pfg(&pfg).is_empty());
}

// ---- corruption class 1: control-flow graphs -------------------------------

#[test]
fn cfg_out_of_bounds_target_is_caught() {
    let (mut cfg, _) = figure3_copy_irs();
    let n = cfg.blocks.len();
    cfg.blocks[cfg.entry].term = Some(Terminator::Goto(n + 7));
    let diags = verify_cfg(&cfg, "m");
    assert!(diags.iter().any(|d| d.rule == rules::BAD_CFG), "{diags:?}");
}

#[test]
fn cfg_unsealed_reachable_block_is_caught() {
    let (mut cfg, _) = figure3_copy_irs();
    // Unseal some reachable non-exit block.
    let victim = (0..cfg.blocks.len())
        .find(|&b| b != cfg.exit && cfg.blocks[b].term.is_some() && b != cfg.entry)
        .unwrap();
    cfg.blocks[victim].term = None;
    let diags = verify_cfg(&cfg, "m");
    assert!(diags.iter().any(|d| d.message.contains("unsealed")), "{diags:?}");
}

#[test]
fn cfg_exit_with_events_or_wrong_terminator_is_caught() {
    let (mut cfg, _) = figure3_copy_irs();
    cfg.blocks[cfg.exit].term = Some(Terminator::Return(None));
    let diags = verify_cfg(&cfg, "m");
    assert!(diags.iter().any(|d| d.message.contains("must end in Exit")), "{diags:?}");
}

// ---- corruption class 2: permissions flow graphs ---------------------------

#[test]
fn pfg_dangling_edge_is_caught() {
    let (_, mut pfg) = figure3_copy_irs();
    let n = pfg.nodes.len();
    pfg.edges.push((0, n + 3));
    let diags = verify_pfg(&pfg);
    assert!(
        diags.iter().any(|d| d.rule == rules::BAD_PFG && d.message.contains("out of bounds")),
        "{diags:?}"
    );
}

#[test]
fn pfg_split_arity_violation_is_caught() {
    let (_, mut pfg) = figure3_copy_irs();
    let split = pfg.nodes.iter().position(|n| pfg.is_split(n.id)).expect("copy has splits");
    // A second edge *into* a split breaks the L1 fan-in-1 invariant.
    let other = (0..pfg.nodes.len()).find(|&i| i != split && !pfg.is_split(i)).unwrap();
    pfg.edges.push((other, split));
    let diags = verify_pfg(&pfg);
    assert!(diags.iter().any(|d| d.message.contains("fan-in")), "{diags:?}");
}

#[test]
fn pfg_cycle_not_through_merge_is_caught() {
    let (_, mut pfg) = figure3_copy_irs();
    // Find an existing edge (a, b) where b is not a merge, and close a
    // cycle b -> a. Self-loops and merge-targeted edges are separately
    // diagnosed, so build the cycle from non-merge endpoints.
    let (a, b) = pfg
        .edges
        .iter()
        .copied()
        .find(|&(a, b)| {
            a != b
                && !matches!(pfg.nodes[b].kind, analysis::pfg::PfgNodeKind::Merge)
                && !matches!(pfg.nodes[a].kind, analysis::pfg::PfgNodeKind::Merge)
        })
        .expect("copy has a non-merge edge");
    pfg.edges.push((b, a));
    let diags = verify_pfg(&pfg);
    assert!(diags.iter().any(|d| d.message.contains("cyclic")), "{diags:?}");
}

// ---- corruption class 3: constraint systems --------------------------------

#[test]
fn factor_table_length_mismatch_is_caught() {
    let mut g = FactorGraph::new();
    let a = g.add_var("a");
    let b = g.add_var("b");
    // A 2-variable factor needs 4 entries; hand it 3.
    g.push_factor_unchecked(Factor::from_raw_parts(vec![a, b], vec![0.5, 0.5, 0.5]));
    let diags = verify_factor_graph(&g, "m");
    assert!(
        diags.iter().any(|d| d.rule == rules::BAD_CONSTRAINTS && d.message.contains("table")),
        "{diags:?}"
    );
}

#[test]
fn factor_bad_entries_and_scopes_are_caught() {
    let mut g = FactorGraph::new();
    let a = g.add_var("a");
    // Negative potential.
    g.push_factor_unchecked(Factor::from_raw_parts(vec![a], vec![-1.0, 0.5]));
    // Duplicate variable in scope.
    g.push_factor_unchecked(Factor::from_raw_parts(vec![a, a], vec![0.1; 4]));
    // Out-of-bounds variable.
    g.push_factor_unchecked(Factor::from_raw_parts(vec![VarId(99)], vec![0.5, 0.5]));
    let diags = verify_factor_graph(&g, "m");
    assert!(diags.iter().any(|d| d.message.contains("finite")), "{diags:?}");
    assert!(diags.iter().any(|d| d.message.contains("duplicate")), "{diags:?}");
    assert!(diags.iter().any(|d| d.message.contains("out of bounds")), "{diags:?}");
}

#[test]
fn well_formed_factor_graph_is_clean() {
    let mut g = FactorGraph::new();
    let a = g.add_var("a");
    let b = g.add_var("b");
    g.add_factor(Factor::from_fn(vec![a, b], |vals| if vals[0] == vals[1] { 0.9 } else { 0.1 }));
    assert!(verify_factor_graph(&g, "m").is_empty());
}
