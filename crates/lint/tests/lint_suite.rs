//! Acceptance tests for `anek-lint`: the planted corpus bugs are found
//! exactly, the hand-written regression suite stays free of false
//! positives, and the IR verifier catches injected corruptions.

use corpus::generator::{generate, PmdConfig};
use corpus::{figures, regression};
use java_syntax::parse;
use lint::{lint_units, rules, LintOptions, Severity};
use spec_lang::standard_api;

fn lint_source(src: &str) -> Vec<lint::Diagnostic> {
    let unit = parse(src).expect("source parses");
    lint_units(&[unit], &standard_api(), &LintOptions::default())
}

#[test]
fn corpus_planted_bugs_found_exactly() {
    let corpus = generate(&PmdConfig::paper());
    let diags = lint_units(&corpus.units, &standard_api(), &LintOptions::default());
    let methods: Vec<&str> = diags.iter().map(|d| d.method.as_str()).collect();
    assert_eq!(
        diags.len(),
        3,
        "expected exactly the 3 planted next()-without-hasNext() sites, got: {methods:?}"
    );
    for (d, want) in diags.iter().zip(["first164", "first165", "first166"]) {
        assert_eq!(d.rule, rules::PROTOCOL_VIOLATION);
        assert_eq!(d.severity, Severity::Error);
        assert!(d.method.ends_with(want), "planted site {want} missing; found {}", d.method);
        assert!(d.span.start.line > 0, "diagnostic must carry a real span");
        assert!(d.message.contains("HASNEXT"), "{}", d.message);
    }
}

#[test]
fn regression_suite_has_no_false_positives() {
    for case in regression::suite() {
        let diags = lint_units(&[case.unit()], &standard_api(), &LintOptions::default());
        match case.name {
            // The one genuinely buggy method in the suite: `buggyUse`
            // calls next() on a freshly created iterator.
            "conflict-tolerance" => {
                assert_eq!(
                    diags.len(),
                    1,
                    "{}: want exactly the buggyUse finding, got {diags:?}",
                    case.name
                );
                assert_eq!(diags[0].rule, rules::PROTOCOL_VIOLATION);
                assert_eq!(diags[0].method, "Conflict.buggyUse");
            }
            _ => {
                assert!(diags.is_empty(), "{}: unexpected diagnostics {diags:?}", case.name);
            }
        }
    }
}

#[test]
fn figure3_testparsecsv_sites_are_true_positives() {
    let diags = lint_source(figures::FIGURE3);
    // testParseCSV calls next() twice on iterators that were never
    // hasNext()-checked; everything else in the figure is clean.
    assert_eq!(diags.len(), 2, "{diags:?}");
    for d in &diags {
        assert_eq!(d.rule, rules::PROTOCOL_VIOLATION);
        assert_eq!(d.method, "Spreadsheet.testParseCSV");
    }
}

#[test]
fn figure_programs_verify_clean() {
    for src in [figures::FIGURE3, figures::FIGURE7, figures::figure2()] {
        let unit = parse(src).expect("figure parses");
        let diags = lint_units(&[unit], &standard_api(), &LintOptions { verify_ir: true });
        let ir: Vec<_> = diags.iter().filter(|d| d.rule.starts_with("IR")).collect();
        assert!(ir.is_empty(), "IR verifier fired on a well-formed figure: {ir:?}");
    }
}

#[test]
fn definite_assignment_catches_maybe_unassigned() {
    let diags = lint_source(
        "class A { void m(Collection<Integer> c, boolean b) {
            Iterator<Integer> it;
            if (b) { it = c.iterator(); }
            while (it.hasNext()) { it.next(); }
        } }",
    );
    assert!(diags.iter().any(|d| d.rule == rules::USE_BEFORE_ASSIGN), "{diags:?}");
    // Assigned on both arms: clean.
    let diags = lint_source(
        "class A { void m(Collection<Integer> c, Collection<Integer> d, boolean b) {
            Iterator<Integer> it;
            if (b) { it = c.iterator(); } else { it = d.iterator(); }
            while (it.hasNext()) { it.next(); }
        } }",
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn dead_store_catches_overwritten_iterator() {
    let diags = lint_source(
        "class A { void m(Collection<Integer> c, Iterator<Integer> p) {
            Iterator<Integer> it = c.iterator();
            it = p;
            while (it.hasNext()) { it.next(); }
        } }",
    );
    let dead: Vec<_> = diags.iter().filter(|d| d.rule == rules::DEAD_STORE).collect();
    assert_eq!(dead.len(), 1, "{diags:?}");
    assert!(dead[0].message.contains("`it`"));
}

#[test]
fn spec_consistency_checks_fire() {
    // SPEC001: pure receiver writing a field of this.
    let diags = lint_source(
        "class A { Object f;
          @Perm(requires = \"pure(this)\", ensures = \"pure(this)\")
          void sneakyWrite(Object o) { this.f = o; } }",
    );
    assert!(diags.iter().any(|d| d.rule == rules::READONLY_WRITES), "{diags:?}");

    // SPEC002: ensures unique(result) but returns a parameter.
    let diags = lint_source(
        "class A {
          @Perm(ensures = \"unique(result)\")
          Iterator<Integer> identity(Iterator<Integer> it) { return it; } }",
    );
    assert!(diags.iter().any(|d| d.rule == rules::STALE_UNIQUE_RESULT), "{diags:?}");

    // ...but a genuinely fresh result is clean.
    let diags = lint_source(
        "class A {
          @Perm(ensures = \"unique(result)\")
          Row fresh() { return new Row(); } }
         class Row { }",
    );
    assert!(!diags.iter().any(|d| d.rule == rules::STALE_UNIQUE_RESULT), "{diags:?}");

    // SPEC003: synchronizing on a unique parameter.
    let diags = lint_source(
        "class A {
          @Perm(requires = \"unique(o)\")
          void lockIt(Object o) { synchronized (o) { } } }",
    );
    assert!(diags.iter().any(|d| d.rule == rules::UNIQUE_SYNC), "{diags:?}");

    // SPEC004: malformed clause text.
    let diags = lint_source(
        "class A {
          @Perm(requires = \"bogus(this\")
          void m() { } }",
    );
    assert!(diags.iter().any(|d| d.rule == rules::MALFORMED_SPEC), "{diags:?}");
}

#[test]
fn json_output_is_parseable_shape() {
    let diags = lint_source(figures::FIGURE3);
    let json = lint::to_json_array(&diags);
    assert!(json.starts_with('[') && json.ends_with(']'));
    assert_eq!(json.matches("\"rule\":\"PROT001\"").count(), 2);
}
