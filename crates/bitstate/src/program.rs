//! Compiled method programs: the dense, allocation-free interpreter.
//!
//! [`Machine::compile_method`] lowers a method's event CFG into a flat
//! instruction list over small integer *slots*: every [`Place`] becomes a
//! `u16` index, every alias token a bit position, and every callee's
//! transfer function is resolved to its masks **once**, at compile time.
//! [`Machine::run`] then interprets the program with nothing but array
//! reads and word operations, reusing one [`Scratch`] buffer across
//! methods — the steady-state cost the screening pre-pass pays per method.
//!
//! [`Machine::check_method`] is the front door: compile, run, and
//! materialize a [`MethodReport`] with rendered diagnostics. Methods whose
//! token universe does not fit the dense encoding (more than 64 creation
//! sites) fall back to the reference interpreter in [`crate::interp`],
//! which is also the differential-testing oracle for this module.

use crate::interp::{Finding, MethodReport, Verdict};
use crate::machine::{Machine, ReceiverEffect};
use analysis::cfg::{Cfg, Terminator};
use analysis::events::{EventKind, Operand, Place};
use analysis::types::{Callee, MethodId};
use java_syntax::ast::ExprId;
use java_syntax::span::Span;
use std::collections::BTreeMap;

/// One lowered instruction. Place and token operands are dense slots.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Bind `place` to `token`; set its word (`None` = unknown state).
    Produce { place: u16, token: u16, word: Option<u64> },
    /// Drop the state word of `place`'s token (the binding survives).
    /// `unproven` marks an obligation that can never be decided here
    /// (an unknown callee touching a protocol-typed value).
    Forget { place: u16, unproven: bool },
    /// `dest = src`: copy the binding (or unbind if `src` is untracked).
    Copy { dest: u16, src: u16 },
    /// A `requires` precondition on the call's receiver. `mask` is `None`
    /// when the required state is not declared in the receiver's space.
    Check { meta: u16, place: u16, mask: Option<u64> },
    /// A declared transition: the receiver's word becomes `mask`.
    SetWord { place: u16, mask: u64 },
}

/// Diagnostic strings for one [`Op::Check`], materialized only on demand.
#[derive(Debug, Clone)]
struct CheckMeta {
    span: Span,
    callee: String,
    required: String,
    clause: String,
    type_name: Option<String>,
}

/// A compiled branch test: intersect the operand's word with the
/// indicated mask; an empty intersection kills the edge.
#[derive(Debug, Clone, Copy)]
struct DenseTest {
    place: u16,
    negated: bool,
    true_mask: Option<u64>,
    false_mask: Option<u64>,
}

#[derive(Debug, Clone, Copy)]
enum Term {
    Goto(u32),
    Branch { test: Option<DenseTest>, then_blk: u32, else_blk: u32 },
    Stop,
}

/// A method lowered to dense instructions (see module docs).
#[derive(Debug, Clone)]
pub struct MethodProgram {
    n_places: usize,
    n_tokens: usize,
    entry: usize,
    entry_binds: Vec<(u16, u16)>,
    ops: Vec<Op>,
    /// Per block: range into `ops` plus the lowered terminator.
    blocks: Vec<(u32, u32, Term)>,
    /// Statically reachable blocks, in reporting order.
    reach: Vec<u32>,
    metas: Vec<CheckMeta>,
    /// No reachable op can produce a finding or an undecided obligation:
    /// the verdict is `ProvablyClean` without running anything.
    trivial: bool,
    /// Does not fit the dense encoding; use the reference interpreter.
    pub wide: bool,
}

/// The verdict-level result of [`Machine::run`]; findings stay in the
/// [`Scratch`] as dense records until materialized.
#[derive(Debug, Clone, Copy)]
pub struct RunSummary {
    pub verdict: Verdict,
    pub checked_calls: usize,
    pub unproven: usize,
}

/// A finding as the interpreter sees it: which check fired, on what word.
#[derive(Debug, Clone, Copy)]
pub struct DenseFinding {
    meta: u16,
    word: u64,
    definite: bool,
}

/// Reusable interpreter state. One instance serves any number of
/// [`Machine::run`] calls; steady-state runs allocate nothing.
#[derive(Debug, Default)]
pub struct Scratch {
    /// `blocks x places` entry bindings (`0` = unbound, else token + 1).
    alias: Vec<u16>,
    /// `blocks x tokens` entry state words (valid where `known` is set).
    words: Vec<u64>,
    /// Per block: bitmap of tokens with a known word.
    known: Vec<u64>,
    /// Per block: an entry fact exists / needs reprocessing.
    seen: Vec<bool>,
    dirty: Vec<bool>,
    /// In-flight fact while executing a block.
    cur_alias: Vec<u16>,
    cur_words: Vec<u64>,
    /// Findings of the most recent run.
    findings: Vec<DenseFinding>,
}

impl Scratch {
    pub fn new() -> Scratch {
        Scratch::default()
    }
}

#[derive(Default)]
struct Counts {
    checked_calls: usize,
    unproven: usize,
}

struct Compiler {
    places: BTreeMap<Place, u16>,
    n_tokens: usize,
    ops: Vec<Op>,
    metas: Vec<CheckMeta>,
    wide: bool,
}

impl Compiler {
    fn place(&mut self, p: &Place) -> u16 {
        if let Some(&i) = self.places.get(p) {
            return i;
        }
        let i = self.places.len();
        if i > u16::MAX as usize {
            self.wide = true;
            return u16::MAX;
        }
        self.places.insert(p.clone(), i as u16);
        i as u16
    }

    fn token(&mut self) -> u16 {
        let t = self.n_tokens;
        self.n_tokens += 1;
        if t >= 64 {
            self.wide = true;
        }
        (t.min(63)) as u16
    }

    fn protocol_typed(&self, machine: &Machine, op: &Operand) -> bool {
        op.type_name.as_deref().is_some_and(|t| machine.has_protocol(t))
    }
}

fn callee_name(callee: &Callee) -> String {
    match callee {
        Callee::Api { type_name, method } => format!("{type_name}.{method}()"),
        Callee::Program(id) => format!("{id}()"),
        Callee::Unknown { method } => format!("{method}()"),
    }
}

impl Machine {
    /// Lowers one method to a [`MethodProgram`] (see module docs). All
    /// callee-effect lookups happen here, once per call site.
    pub fn compile_method(&self, cfg: &Cfg, params: &[String], is_static: bool) -> MethodProgram {
        let mut c = Compiler {
            places: BTreeMap::new(),
            n_tokens: 0,
            ops: Vec::new(),
            metas: Vec::new(),
            wide: false,
        };
        let mut entry_binds = Vec::new();
        if !is_static {
            let p = c.place(&Place::This);
            let t = c.token();
            entry_binds.push((p, t));
        }
        for name in params {
            let p = c.place(&Place::Local(name.clone()));
            let t = c.token();
            entry_binds.push((p, t));
        }
        // Site-stable tokens, in the same order as the reference interp.
        let mut site_tokens: BTreeMap<ExprId, u16> = BTreeMap::new();
        for block in &cfg.blocks {
            for e in &block.events {
                let produces = matches!(
                    e.kind,
                    EventKind::New { .. }
                        | EventKind::Call { dest: Some(_), .. }
                        | EventKind::FieldRead { .. }
                );
                if produces {
                    let t = c.token();
                    site_tokens.insert(e.id, t);
                }
            }
        }

        let mut blocks = Vec::with_capacity(cfg.blocks.len());
        for block in &cfg.blocks {
            let start = c.ops.len() as u32;
            for e in &block.events {
                match &e.kind {
                    EventKind::New { dest, callee, args, .. } => {
                        for a in args.iter().flatten() {
                            let p = c.place(&a.place);
                            c.ops.push(Op::Forget { place: p, unproven: false });
                        }
                        let word = self.effect_of(callee).and_then(|ef| ef.ensures_this);
                        let place = c.place(dest);
                        c.ops.push(Op::Produce { place, token: site_tokens[&e.id], word });
                    }
                    EventKind::Call { callee, receiver, args, dest } => {
                        let effect = self.effect_of(callee);
                        if let Some(r) = receiver {
                            let place = c.place(&r.place);
                            match effect {
                                Some(ef) => {
                                    if let Some(req) = &ef.require {
                                        let meta = c.metas.len() as u16;
                                        c.metas.push(CheckMeta {
                                            span: e.span,
                                            callee: callee_name(callee),
                                            required: req.state.clone(),
                                            clause: req.clause.clone(),
                                            type_name: ef.type_name.clone(),
                                        });
                                        c.ops.push(Op::Check { meta, place, mask: req.mask });
                                    }
                                    match ef.receiver {
                                        ReceiverEffect::Keep => {}
                                        ReceiverEffect::Set(mask) => {
                                            c.ops.push(Op::SetWord { place, mask });
                                        }
                                        ReceiverEffect::Forget => {
                                            c.ops.push(Op::Forget { place, unproven: false });
                                        }
                                    }
                                }
                                None => {
                                    let unproven = c.protocol_typed(self, r);
                                    c.ops.push(Op::Forget { place, unproven });
                                }
                            }
                        }
                        for a in args.iter().flatten() {
                            let unproven = effect.is_none() && c.protocol_typed(self, a);
                            let p = c.place(&a.place);
                            c.ops.push(Op::Forget { place: p, unproven });
                        }
                        if let Some(d) = dest {
                            let word = effect.and_then(|ef| ef.result.as_ref()).map(|(_, m)| *m);
                            let place = c.place(&d.place);
                            c.ops.push(Op::Produce { place, token: site_tokens[&e.id], word });
                        }
                    }
                    EventKind::FieldRead { dest, .. } => {
                        let place = c.place(&dest.place);
                        c.ops.push(Op::Produce { place, token: site_tokens[&e.id], word: None });
                    }
                    EventKind::FieldWrite { src, .. } => {
                        if let Some(s) = src {
                            let p = c.place(&s.place);
                            c.ops.push(Op::Forget { place: p, unproven: false });
                        }
                    }
                    EventKind::Copy { dest, src } => {
                        let d = c.place(dest);
                        let s = c.place(&src.place);
                        c.ops.push(Op::Copy { dest: d, src: s });
                    }
                    EventKind::Sync { .. } => {}
                }
            }
            let term = match &block.term {
                Some(Terminator::Goto(t)) => Term::Goto(*t as u32),
                Some(Terminator::Branch { test, then_blk, else_blk }) => {
                    let test = test.as_ref().and_then(|t| {
                        let ef = self.effect_of(&t.callee)?;
                        if ef.true_mask.is_none() && ef.false_mask.is_none() {
                            return None;
                        }
                        Some(DenseTest {
                            place: c.place(&t.operand.place),
                            negated: t.negated,
                            true_mask: ef.true_mask,
                            false_mask: ef.false_mask,
                        })
                    });
                    Term::Branch { test, then_blk: *then_blk as u32, else_blk: *else_blk as u32 }
                }
                Some(Terminator::Return(_) | Terminator::Exit) | None => Term::Stop,
            };
            blocks.push((start, c.ops.len() as u32, term));
        }

        let reach: Vec<u32> = cfg.reachable().into_iter().map(|b| b as u32).collect();
        let trivial = reach.iter().all(|&b| {
            let (s, e, _) = blocks[b as usize];
            c.ops[s as usize..e as usize]
                .iter()
                .all(|op| !matches!(op, Op::Check { .. } | Op::Forget { unproven: true, .. }))
        });
        MethodProgram {
            n_places: c.places.len(),
            n_tokens: c.n_tokens.min(64),
            entry: cfg.entry,
            entry_binds,
            ops: c.ops,
            blocks,
            reach,
            metas: c.metas,
            trivial,
            wide: c.wide,
        }
    }

    /// Interprets a compiled program to a fixpoint and reports. Panics on
    /// `wide` programs — the caller routes those to the reference path.
    pub fn run(&self, prog: &MethodProgram, scratch: &mut Scratch) -> RunSummary {
        scratch.findings.clear();
        if prog.trivial {
            return RunSummary { verdict: Verdict::ProvablyClean, checked_calls: 0, unproven: 0 };
        }
        assert!(!prog.wide, "wide programs use the reference interpreter");
        let (np, nt, nb) = (prog.n_places, prog.n_tokens, prog.blocks.len());
        scratch.alias.clear();
        scratch.alias.resize(nb * np, 0);
        scratch.words.clear();
        scratch.words.resize(nb * nt, 0);
        scratch.known.clear();
        scratch.known.resize(nb, 0);
        scratch.seen.clear();
        scratch.seen.resize(nb, false);
        scratch.dirty.clear();
        scratch.dirty.resize(nb, false);
        scratch.cur_alias.clear();
        scratch.cur_alias.resize(np, 0);
        scratch.cur_words.clear();
        scratch.cur_words.resize(nt, 0);

        scratch.seen[prog.entry] = true;
        scratch.dirty[prog.entry] = true;
        for &(p, t) in &prog.entry_binds {
            scratch.alias[prog.entry * np + p as usize] = t + 1;
        }

        // ---- Fixpoint over block entry facts (RPO sweeps) ----
        let budget = nb * 65 + 64;
        let mut passes = 0usize;
        let mut bailed = false;
        let mut counts = Counts::default();
        'fixpoint: loop {
            let mut progressed = false;
            for b in 0..nb {
                if !scratch.dirty[b] {
                    continue;
                }
                scratch.dirty[b] = false;
                progressed = true;
                passes += 1;
                if passes > budget {
                    bailed = true;
                    break 'fixpoint;
                }
                let mut cur_alias = std::mem::take(&mut scratch.cur_alias);
                let mut cur_words = std::mem::take(&mut scratch.cur_words);
                cur_alias.copy_from_slice(&scratch.alias[b * np..(b + 1) * np]);
                cur_words.copy_from_slice(&scratch.words[b * nt..(b + 1) * nt]);
                let mut cur_known = scratch.known[b];
                exec_ops(
                    prog,
                    prog.blocks[b].0,
                    prog.blocks[b].1,
                    &mut cur_alias,
                    &mut cur_words,
                    &mut cur_known,
                    None,
                    &mut counts,
                    &mut scratch.findings,
                );
                for (succ, refine) in edges(prog, b, &cur_alias, &cur_words, cur_known) {
                    if join_into(scratch, succ, np, nt, &cur_alias, &cur_words, cur_known, refine) {
                        scratch.dirty[succ] = true;
                    }
                }
                scratch.cur_alias = cur_alias;
                scratch.cur_words = cur_words;
            }
            if !progressed {
                break;
            }
        }

        // ---- Reporting pass over the converged solution ----
        if !bailed {
            let mut cur_alias = std::mem::take(&mut scratch.cur_alias);
            let mut cur_words = std::mem::take(&mut scratch.cur_words);
            for &b in &prog.reach {
                let b = b as usize;
                if !scratch.seen[b] {
                    continue;
                }
                cur_alias.copy_from_slice(&scratch.alias[b * np..(b + 1) * np]);
                cur_words.copy_from_slice(&scratch.words[b * nt..(b + 1) * nt]);
                let mut cur_known = scratch.known[b];
                exec_ops(
                    prog,
                    prog.blocks[b].0,
                    prog.blocks[b].1,
                    &mut cur_alias,
                    &mut cur_words,
                    &mut cur_known,
                    Some(()),
                    &mut counts,
                    &mut scratch.findings,
                );
            }
            scratch.cur_alias = cur_alias;
            scratch.cur_words = cur_words;
        }

        let verdict = if scratch.findings.iter().any(|f| f.definite) {
            Verdict::DefiniteViolation
        } else if bailed || counts.unproven > 0 || !scratch.findings.is_empty() {
            Verdict::NeedsInference
        } else {
            Verdict::ProvablyClean
        };
        RunSummary { verdict, checked_calls: counts.checked_calls, unproven: counts.unproven }
    }

    /// Runs the bit-vector interpreter over one method: compile, run, and
    /// materialize the report (wide methods use the reference path).
    pub fn check_method(
        &self,
        id: &MethodId,
        cfg: &Cfg,
        params: &[String],
        is_static: bool,
    ) -> MethodReport {
        let prog = self.compile_method(cfg, params, is_static);
        if prog.wide {
            return self.check_method_ref(id, cfg, params, is_static);
        }
        let mut scratch = Scratch::new();
        let summary = self.run(&prog, &mut scratch);
        let findings = scratch
            .findings
            .iter()
            .map(|f| {
                let meta = &prog.metas[f.meta as usize];
                let dfa = meta.type_name.as_deref().and_then(|t| self.dfa(t));
                Finding {
                    method: id.clone(),
                    span: meta.span,
                    callee: meta.callee.clone(),
                    required: meta.required.clone(),
                    observed: dfa
                        .map(|d| d.names_of(f.word).into_iter().map(str::to_string).collect())
                        .unwrap_or_default(),
                    definite: f.definite,
                    clause: meta.clause.clone(),
                }
            })
            .collect();
        MethodReport {
            id: id.clone(),
            verdict: summary.verdict,
            findings,
            checked_calls: summary.checked_calls,
            unproven: summary.unproven,
        }
    }
}

/// A successor block plus an optional `(token, refined word)` overlay to
/// apply during the join.
type Edge = (usize, Option<(u16, u64)>);

/// Live successor edges of `b` with their branch refinements.
fn edges(
    prog: &MethodProgram,
    b: usize,
    alias: &[u16],
    words: &[u64],
    known: u64,
) -> impl Iterator<Item = Edge> {
    let mut out: [Option<Edge>; 2] = [None, None];
    match prog.blocks[b].2 {
        Term::Goto(t) => out[0] = Some((t as usize, None)),
        Term::Branch { test, then_blk, else_blk } => {
            let side = |taken: bool| -> Option<Edge> {
                let succ = if taken { then_blk } else { else_blk } as usize;
                let Some(t) = test else { return Some((succ, None)) };
                let mask = if taken != t.negated { t.true_mask } else { t.false_mask };
                let Some(mask) = mask else { return Some((succ, None)) };
                let tok = alias[t.place as usize];
                if tok == 0 {
                    return Some((succ, None));
                }
                let tok = tok - 1;
                let refined =
                    if known & (1 << tok) != 0 { words[tok as usize] & mask } else { mask };
                if refined == 0 {
                    return None; // Infeasible edge.
                }
                Some((succ, Some((tok, refined))))
            };
            out[0] = side(true);
            out[1] = side(false);
        }
        Term::Stop => {}
    }
    out.into_iter().flatten()
}

/// Joins an out-fact (with an optional refined word overlay) into the
/// entry fact of `succ`. Returns whether the entry fact changed.
#[allow(clippy::too_many_arguments)]
fn join_into(
    scratch: &mut Scratch,
    succ: usize,
    np: usize,
    nt: usize,
    alias: &[u16],
    words: &[u64],
    known: u64,
    refine: Option<(u16, u64)>,
) -> bool {
    let src_known = match refine {
        Some((t, _)) => known | (1 << t),
        None => known,
    };
    let word_of = |t: usize| match refine {
        Some((rt, rw)) if rt as usize == t => rw,
        _ => words[t],
    };
    let dst_alias = &mut scratch.alias[succ * np..(succ + 1) * np];
    if !scratch.seen[succ] {
        scratch.seen[succ] = true;
        dst_alias.copy_from_slice(alias);
        let dst_words = &mut scratch.words[succ * nt..(succ + 1) * nt];
        for (t, w) in dst_words.iter_mut().enumerate() {
            *w = word_of(t);
        }
        scratch.known[succ] = src_known;
        return true;
    }
    let mut changed = false;
    for (d, &s) in dst_alias.iter_mut().zip(alias) {
        // Keep only bindings both sides agree on.
        if *d != 0 && *d != s {
            *d = 0;
            changed = true;
        }
    }
    let new_known = scratch.known[succ] & src_known;
    if new_known != scratch.known[succ] {
        scratch.known[succ] = new_known;
        changed = true;
    }
    let dst_words = &mut scratch.words[succ * nt..(succ + 1) * nt];
    let mut bits = new_known;
    while bits != 0 {
        let t = bits.trailing_zeros() as usize;
        bits &= bits - 1;
        let joined = dst_words[t] | word_of(t);
        if joined != dst_words[t] {
            dst_words[t] = joined;
            changed = true;
        }
    }
    changed
}

/// Executes one block's instructions over an in-flight fact. `collect` is
/// `Some` only during the reporting pass, where obligations are counted
/// and findings recorded.
#[allow(clippy::too_many_arguments)]
fn exec_ops(
    prog: &MethodProgram,
    start: u32,
    end: u32,
    alias: &mut [u16],
    words: &mut [u64],
    known: &mut u64,
    collect: Option<()>,
    counts: &mut Counts,
    findings: &mut Vec<DenseFinding>,
) {
    let collecting = collect.is_some();
    for op in &prog.ops[start as usize..end as usize] {
        match *op {
            Op::Produce { place, token, word } => {
                alias[place as usize] = token + 1;
                match word {
                    Some(w) => {
                        words[token as usize] = w;
                        *known |= 1 << token;
                    }
                    None => *known &= !(1 << token),
                }
            }
            Op::Forget { place, unproven } => {
                if collecting && unproven {
                    counts.unproven += 1;
                }
                let t = alias[place as usize];
                if t != 0 {
                    *known &= !(1 << (t - 1));
                }
            }
            Op::Copy { dest, src } => {
                alias[dest as usize] = alias[src as usize];
            }
            Op::Check { meta, place, mask } => {
                if collecting {
                    counts.checked_calls += 1;
                }
                let t = alias[place as usize];
                let word = if t != 0 && *known & (1 << (t - 1)) != 0 {
                    Some(words[(t - 1) as usize])
                } else {
                    None
                };
                match (word, mask) {
                    (Some(w), Some(m)) => {
                        if w & m != w && collecting {
                            findings.push(DenseFinding { meta, word: w, definite: w & m == 0 });
                        }
                    }
                    // Untracked receiver or undeclared state: undecidable.
                    _ => {
                        if collecting {
                            counts.unproven += 1;
                        }
                    }
                }
            }
            Op::SetWord { place, mask } => {
                let t = alias[place as usize];
                if t != 0 {
                    words[(t - 1) as usize] = mask;
                    *known |= 1 << (t - 1);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use analysis::types::{ProgramIndex, TypeEnv};
    use java_syntax::parse;
    use spec_lang::stdlib::standard_api;

    /// Every method of every source: the dense interpreter must agree with
    /// the reference interpreter field for field.
    fn assert_differential(sources: &[&str]) {
        let api = standard_api();
        let units: Vec<_> = sources.iter().map(|s| parse(s).unwrap()).collect();
        let index = ProgramIndex::build(units.iter());
        let machine = Machine::compile(&api, &BTreeMap::new());
        let mut compared = 0usize;
        for unit in &units {
            for (t, m) in unit.methods() {
                if m.body.is_none() {
                    continue;
                }
                let id = MethodId::new(&t.name, &m.name);
                let mut env = TypeEnv::for_method(&index, &api, &t.name, m);
                let cfg = Cfg::build(m, &mut env);
                let params: Vec<String> = m.params.iter().map(|p| p.name.clone()).collect();
                let dense = machine.check_method(&id, &cfg, &params, m.modifiers.is_static);
                let reference = machine.check_method_ref(&id, &cfg, &params, m.modifiers.is_static);
                assert_eq!(dense.verdict, reference.verdict, "verdict of {id}");
                assert_eq!(dense.checked_calls, reference.checked_calls, "checked_calls of {id}");
                assert_eq!(dense.unproven, reference.unproven, "unproven of {id}");
                assert_eq!(dense.findings.len(), reference.findings.len(), "findings of {id}");
                for (a, b) in dense.findings.iter().zip(&reference.findings) {
                    assert_eq!(a.span, b.span, "finding span in {id}");
                    assert_eq!(a.callee, b.callee, "finding callee in {id}");
                    assert_eq!(a.required, b.required, "finding required in {id}");
                    assert_eq!(a.observed, b.observed, "finding observed in {id}");
                    assert_eq!(a.definite, b.definite, "finding definite in {id}");
                    assert_eq!(a.clause, b.clause, "finding clause in {id}");
                }
                compared += 1;
            }
        }
        assert!(compared > 0, "differential suite compared nothing");
    }

    #[test]
    fn dense_interpreter_matches_reference_on_protocol_shapes() {
        assert_differential(&[
            // Guarded loop, post-loop definite violation, aliasing.
            "class A { void drain(Collection<Integer> c) {\n\
               Iterator<Integer> it = c.iterator();\n\
               while (it.hasNext()) { it.next(); }\n\
               it.next(); } }",
            "class B { void go(Collection<Integer> c) {\n\
               Iterator<Integer> it = c.iterator();\n\
               Iterator<Integer> jt = it;\n\
               if (jt.hasNext()) { it.next(); } } }",
            // Unknown receiver, unguarded next, stream protocol.
            "class C { Object peek(Iterator<Integer> it) { return it.next(); }\n\
               Object first(Collection<Integer> c) { return c.iterator().next(); }\n\
               void stream(StreamFactory f) { Stream s = f.open(); s.close(); s.read(); } }",
            // Escapes: unknown callees, field traffic, negated tests.
            "class D { Collection<Integer> items;\n\
               void f(Collection<Integer> c) {\n\
                 Iterator<Integer> it = c.iterator();\n\
                 mystery(it);\n\
                 it.next(); }\n\
               void g() {\n\
                 Iterator<Integer> it = items.iterator();\n\
                 if (!it.hasNext()) { return; }\n\
                 it.next(); }\n\
               int h(int x) { int a = 0; for (int i = 0; i < x; i++) { a = a + i; } return a; } }",
        ]);
    }

    #[test]
    fn dense_interpreter_matches_reference_on_the_small_corpus() {
        let corpus = corpus::generator::generate(&corpus::generator::PmdConfig::small());
        let api = standard_api();
        let index = ProgramIndex::build(corpus.units.iter());
        let machine = Machine::compile(&api, &BTreeMap::new());
        let mut compared = 0usize;
        for unit in &corpus.units {
            for (t, m) in unit.methods() {
                if m.body.is_none() {
                    continue;
                }
                let id = MethodId::new(&t.name, &m.name);
                let mut env = TypeEnv::for_method(&index, &api, &t.name, m);
                let cfg = Cfg::build(m, &mut env);
                let params: Vec<String> = m.params.iter().map(|p| p.name.clone()).collect();
                let dense = machine.check_method(&id, &cfg, &params, m.modifiers.is_static);
                let reference = machine.check_method_ref(&id, &cfg, &params, m.modifiers.is_static);
                assert_eq!(
                    (dense.verdict, dense.checked_calls, dense.unproven, dense.findings.len()),
                    (
                        reference.verdict,
                        reference.checked_calls,
                        reference.unproven,
                        reference.findings.len()
                    ),
                    "dense/reference divergence in {id}"
                );
                compared += 1;
            }
        }
        assert_eq!(compared, corpus.stats.methods, "every corpus method compared");
    }

    #[test]
    fn trivial_methods_short_circuit() {
        let api = standard_api();
        let machine = Machine::compile(&api, &BTreeMap::new());
        let unit = parse("class A { int f(int x) { return x + 1; } }").unwrap();
        let index = ProgramIndex::build(std::iter::once(&unit));
        let (t, m) = unit.methods().next().unwrap();
        let mut env = TypeEnv::for_method(&index, &api, &t.name, m);
        let cfg = Cfg::build(m, &mut env);
        let prog = machine.compile_method(&cfg, &["x".into()], false);
        assert!(prog.trivial, "no protocol obligations anywhere");
        let mut scratch = Scratch::new();
        let summary = machine.run(&prog, &mut scratch);
        assert_eq!(summary.verdict, Verdict::ProvablyClean);
        assert_eq!(summary.checked_calls, 0);
    }
}
