//! The compiled bit-vector machine: per-callee transfer masks.
//!
//! [`Machine::compile`] walks every API model and every provided program
//! specification once and precomputes, per callee, the handful of masks the
//! interpreter needs at a call site: the *require* mask (states the receiver
//! must be in), the *receiver effect* (keep / set-to-mask / forget), the
//! *result* mask (states of the returned object) and the branch-refinement
//! masks from `@TrueIndicates`/`@FalseIndicates`. Checking an event is then
//! two or three word operations.

use crate::dfa::TypeDfa;
use analysis::types::{Callee, MethodId};
use spec_lang::spec::{MethodSpec, SpecTarget};
use spec_lang::state::ALIVE;
use spec_lang::stdlib::ApiRegistry;
use std::collections::BTreeMap;

/// A receiver-state precondition on a call.
#[derive(Debug, Clone)]
pub struct Require {
    /// The declared state name (for diagnostics).
    pub state: String,
    /// The rendered `requires` atom (for diagnostic notes).
    pub clause: String,
    /// Mask of acceptable concrete states; `None` when the state is not
    /// declared in the receiver type's space (unverifiable, never provable).
    pub mask: Option<u64>,
}

/// What a call does to its receiver's state word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReceiverEffect {
    /// A stateless observer (`hasNext`): the receiver keeps its states.
    Keep,
    /// A declared transition: the receiver's word becomes the mask.
    Set(u64),
    /// The spec gives no postcondition state: the word becomes unknown.
    Forget,
}

/// The precomputed transfer function of one callee.
#[derive(Debug, Clone)]
pub struct CallEffect {
    /// Declaring type (receiver type), when known.
    pub type_name: Option<String>,
    /// Receiver-state precondition, if the spec names one beyond `ALIVE`.
    pub require: Option<Require>,
    /// Effect on the receiver's state word.
    pub receiver: ReceiverEffect,
    /// `(return type, mask)` for the returned object, when its states are
    /// pinned by an `ensures ...(result) in S` atom on a protocol type.
    pub result: Option<(String, u64)>,
    /// Mask the spec's `ensures ...(this) in S` atom denotes, if any (used
    /// for `new` expressions, where the constructed object plays `this`).
    pub ensures_this: Option<u64>,
    /// Branch refinement when the call's boolean result is true / false.
    pub true_mask: Option<u64>,
    pub false_mask: Option<u64>,
}

/// A compiled program: protocol DFAs plus per-callee effects.
#[derive(Debug, Clone)]
pub struct Machine {
    dfas: BTreeMap<String, TypeDfa>,
    api_effects: BTreeMap<(String, String), CallEffect>,
    program_effects: BTreeMap<MethodId, CallEffect>,
}

impl Machine {
    /// Compiles the API registry plus program-method specifications.
    ///
    /// `program_specs` maps each specified program method to its spec and
    /// return type (simple name); pass an empty map to check against API
    /// models alone (the screening configuration).
    pub fn compile(
        api: &ApiRegistry,
        program_specs: &BTreeMap<MethodId, (MethodSpec, Option<String>)>,
    ) -> Machine {
        let mut dfas = BTreeMap::new();
        for space in api.states.iter() {
            if let Some(dfa) = TypeDfa::compile(space) {
                dfas.insert(space.type_name().to_string(), dfa);
            }
        }
        let mut api_effects = BTreeMap::new();
        for m in api.iter() {
            let effect = compile_effect(
                &dfas,
                &m.spec,
                Some(m.type_name.as_str()),
                m.return_type.as_deref(),
            );
            api_effects.insert((m.type_name.clone(), m.method_name.clone()), effect);
        }
        let mut program_effects = BTreeMap::new();
        for (id, (spec, return_type)) in program_specs {
            if spec.is_empty() {
                continue;
            }
            let effect =
                compile_effect(&dfas, spec, Some(id.class.as_str()), return_type.as_deref());
            program_effects.insert(id.clone(), effect);
        }
        Machine { dfas, api_effects, program_effects }
    }

    /// The compiled effect of a callee, or `None` when nothing is known
    /// (unknown callee, or a program method without a specification).
    pub fn effect_of(&self, callee: &Callee) -> Option<&CallEffect> {
        match callee {
            Callee::Api { type_name, method } => {
                self.api_effects.get(&(type_name.clone(), method.clone()))
            }
            Callee::Program(id) => self.program_effects.get(id),
            Callee::Unknown { .. } => None,
        }
    }

    /// The DFA of a type, when it declares a protocol.
    pub fn dfa(&self, type_name: &str) -> Option<&TypeDfa> {
        self.dfas.get(type_name)
    }

    /// Whether a type (by simple name) has a tracked protocol.
    pub fn has_protocol(&self, type_name: &str) -> bool {
        self.dfas.contains_key(type_name)
    }
}

/// Compiles one spec into masks. Mirrors the receiver semantics of the
/// deterministic PROT001 lint (and `plural::check`): a callee without a
/// `requires ...(this)` atom does not touch the receiver's protocol; a
/// "stateless observer" (requires and ensures both effectively `ALIVE`)
/// keeps the state; otherwise the ensures state (or unknown) replaces it.
fn compile_effect(
    dfas: &BTreeMap<String, TypeDfa>,
    spec: &MethodSpec,
    type_name: Option<&str>,
    return_type: Option<&str>,
) -> CallEffect {
    let dfa = type_name.and_then(|t| dfas.get(t));
    let req = spec.requires.for_target(&SpecTarget::This);
    let ens = spec.ensures.for_target(&SpecTarget::This);

    let require = req.and_then(|r| {
        let state = r.effective_state();
        if state == ALIVE {
            return None;
        }
        Some(Require {
            state: state.to_string(),
            clause: r.to_string(),
            mask: dfa.and_then(|d| d.mask_of(state)),
        })
    });

    let receiver = match req {
        None => ReceiverEffect::Keep,
        Some(r) => {
            let state_changing = r.effective_state() != ALIVE
                || ens.is_some_and(|e| e.state.as_deref().is_some_and(|s| s != ALIVE));
            if !state_changing {
                ReceiverEffect::Keep
            } else {
                match (ens, dfa) {
                    (Some(e), Some(d)) => match d.mask_of(e.effective_state()) {
                        Some(m) => ReceiverEffect::Set(m),
                        None => ReceiverEffect::Forget,
                    },
                    _ => ReceiverEffect::Forget,
                }
            }
        }
    };

    let result = spec.ensures.for_target(&SpecTarget::Result).and_then(|atom| {
        let ty = return_type?;
        let mask = dfas.get(ty)?.mask_of(atom.effective_state())?;
        Some((ty.to_string(), mask))
    });

    let ensures_this = ens.and_then(|e| dfa.and_then(|d| d.mask_of(e.effective_state())));

    let indicate =
        |state: &Option<String>| state.as_deref().and_then(|s| dfa.and_then(|d| d.mask_of(s)));

    CallEffect {
        type_name: type_name.map(str::to_string),
        require,
        receiver,
        result,
        ensures_this,
        true_mask: indicate(&spec.true_indicates),
        false_mask: indicate(&spec.false_indicates),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_lang::stdlib::standard_api;

    #[test]
    fn iterator_effects_compile() {
        let api = standard_api();
        let m = Machine::compile(&api, &BTreeMap::new());
        let next = m
            .effect_of(&Callee::Api { type_name: "Iterator".into(), method: "next".into() })
            .unwrap();
        let dfa = m.dfa("Iterator").unwrap();
        let req = next.require.as_ref().unwrap();
        assert_eq!(req.state, "HASNEXT");
        assert_eq!(req.mask, dfa.mask_of("HASNEXT"));
        // `ensures full(this) in ALIVE` — the iterator may land anywhere.
        assert_eq!(next.receiver, ReceiverEffect::Set(dfa.full()));

        let has_next = m
            .effect_of(&Callee::Api { type_name: "Iterator".into(), method: "hasNext".into() })
            .unwrap();
        assert!(has_next.require.is_none(), "pure(this) in ALIVE imposes nothing");
        assert_eq!(has_next.receiver, ReceiverEffect::Keep);
        assert_eq!(has_next.true_mask, dfa.mask_of("HASNEXT"));
        assert_eq!(has_next.false_mask, dfa.mask_of("END"));

        let iterator = m
            .effect_of(&Callee::Api { type_name: "Collection".into(), method: "iterator".into() })
            .unwrap();
        let (ty, mask) = iterator.result.as_ref().unwrap();
        assert_eq!(ty, "Iterator");
        assert_eq!(*mask, dfa.full());
    }

    #[test]
    fn stream_close_is_a_transition() {
        let api = standard_api();
        let m = Machine::compile(&api, &BTreeMap::new());
        let close = m
            .effect_of(&Callee::Api { type_name: "Stream".into(), method: "close".into() })
            .unwrap();
        let dfa = m.dfa("Stream").unwrap();
        assert_eq!(close.require.as_ref().unwrap().mask, dfa.mask_of("OPEN"));
        assert_eq!(close.receiver, ReceiverEffect::Set(dfa.mask_of("CLOSED").unwrap()));
    }

    #[test]
    fn unknown_callee_has_no_effect() {
        let api = standard_api();
        let m = Machine::compile(&api, &BTreeMap::new());
        assert!(m.effect_of(&Callee::Unknown { method: "frob".into() }).is_none());
    }
}
