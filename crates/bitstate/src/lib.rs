//! `bitstate` — bit-vector typestate machines.
//!
//! A fast, flow-sensitive, alias-aware typestate checker in the style of
//! Arslanagić et al., "Scalable Typestate Analysis using Bit-Vector
//! Machines": protocol DFAs compile to u64 masks ([`dfa`]), per-callee
//! transfer functions precompile to a few words ([`machine`]), and an
//! abstract interpreter runs them over the event CFG with one state-set
//! word per alias token ([`interp`]). A method checks in microseconds —
//! cheap enough to run *before* BP inference as a screening pre-pass
//! (`anek infer --screen`) and to serve as an independent differential
//! oracle against `plural::check` (`anek check --cross-validate`).
//!
//! The checker is modular: it consults only declared API models and
//! whatever program-method specifications it is given (hand-written,
//! gold, or ANEK-inferred). Its verdict lattice is deliberately
//! three-valued — [`Verdict::ProvablyClean`] is a *proof* (sound under the
//! given specs), [`Verdict::DefiniteViolation`] is a proof of the
//! negation, and everything undecidable lands in
//! [`Verdict::NeedsInference`].

pub mod dfa;
pub mod interp;
pub mod machine;
pub mod program;

pub use dfa::TypeDfa;
pub use interp::{Finding, MethodReport, Verdict};
pub use machine::{CallEffect, Machine, ReceiverEffect};
pub use program::{MethodProgram, RunSummary, Scratch};

use analysis::cfg::Cfg;
use analysis::types::{MethodId, ProgramIndex, TypeEnv};
use java_syntax::ast::CompilationUnit;
use spec_lang::spec::MethodSpec;
use spec_lang::stdlib::ApiRegistry;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Program-method specifications: method -> (spec, return type).
pub type ProgramSpecs = BTreeMap<MethodId, (MethodSpec, Option<String>)>;

/// The whole-program checking report.
#[derive(Debug, Clone)]
pub struct ProgramReport {
    /// Per-method reports, in deterministic method order.
    pub methods: BTreeMap<MethodId, MethodReport>,
    /// Methods with a body that were interpreted.
    pub methods_checked: usize,
    /// Wall-clock for the whole run (compile + interpret).
    pub elapsed: Duration,
}

impl ProgramReport {
    /// All findings across all methods, in method order.
    pub fn findings(&self) -> impl Iterator<Item = &Finding> {
        self.methods.values().flat_map(|r| r.findings.iter())
    }

    /// Number of methods with the given verdict.
    pub fn count(&self, verdict: Verdict) -> usize {
        self.methods.values().filter(|r| r.verdict == verdict).count()
    }
}

/// Checks every method body in `units` against the API models plus
/// `specs` (pass an empty map to check against the APIs alone).
pub fn check_program(
    units: &[CompilationUnit],
    api: &ApiRegistry,
    specs: &ProgramSpecs,
) -> ProgramReport {
    let start = Instant::now();
    let index = ProgramIndex::build(units.iter());
    let machine = Machine::compile(api, specs);
    let mut methods = BTreeMap::new();
    let mut checked = 0usize;
    for unit in units {
        for (t, m) in unit.methods() {
            if m.body.is_none() {
                continue;
            }
            let id = MethodId::new(&t.name, &m.name);
            let mut env = TypeEnv::for_method(&index, api, &t.name, m);
            let cfg = Cfg::build(m, &mut env);
            let params: Vec<String> = m.params.iter().map(|p| p.name.clone()).collect();
            let report = machine.check_method(&id, &cfg, &params, m.modifiers.is_static);
            checked += 1;
            methods.insert(id, report);
        }
    }
    ProgramReport { methods, methods_checked: checked, elapsed: start.elapsed() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use java_syntax::parse;
    use spec_lang::spec::parse_clause;
    use spec_lang::stdlib::standard_api;

    fn check(src: &str) -> ProgramReport {
        let unit = parse(src).unwrap();
        check_program(&[unit], &standard_api(), &BTreeMap::new())
    }

    fn verdict_of(report: &ProgramReport, class: &str, method: &str) -> Verdict {
        report.methods[&MethodId::new(class, method)].verdict
    }

    #[test]
    fn guarded_loop_is_provably_clean() {
        let r = check(
            "class A { int sum(Collection<Integer> c) {\n\
               int s = 0;\n\
               Iterator<Integer> it = c.iterator();\n\
               while (it.hasNext()) { s = s + it.next(); }\n\
               return s; } }",
        );
        assert_eq!(verdict_of(&r, "A", "sum"), Verdict::ProvablyClean);
        assert_eq!(r.methods[&MethodId::new("A", "sum")].findings.len(), 0);
    }

    #[test]
    fn unguarded_next_is_a_may_violation() {
        let r = check(
            "class A { Object first(Collection<Integer> c) {\n\
               return c.iterator().next(); } }",
        );
        let report = &r.methods[&MethodId::new("A", "first")];
        assert_eq!(report.verdict, Verdict::NeedsInference);
        assert_eq!(report.findings.len(), 1);
        let f = &report.findings[0];
        assert!(!f.definite);
        assert_eq!(f.required, "HASNEXT");
        assert_eq!(f.observed, ["END", "HASNEXT"]);
    }

    #[test]
    fn next_after_exhaustion_is_definite() {
        let r = check(
            "class A { void drain(Collection<Integer> c) {\n\
               Iterator<Integer> it = c.iterator();\n\
               while (it.hasNext()) { it.next(); }\n\
               it.next(); } }",
        );
        let report = &r.methods[&MethodId::new("A", "drain")];
        assert_eq!(report.verdict, Verdict::DefiniteViolation);
        assert!(report.findings.iter().any(|f| f.definite), "post-loop next() must-fail");
    }

    #[test]
    fn closed_stream_read_is_definite() {
        let r = check(
            "class A { void go(StreamFactory f) {\n\
               Stream s = f.open();\n\
               s.close();\n\
               s.read(); } }",
        );
        assert_eq!(verdict_of(&r, "A", "go"), Verdict::DefiniteViolation);
    }

    #[test]
    fn alias_carries_the_state_proof() {
        let r = check(
            "class A { void go(Collection<Integer> c) {\n\
               Iterator<Integer> it = c.iterator();\n\
               Iterator<Integer> jt = it;\n\
               if (jt.hasNext()) { it.next(); } } }",
        );
        assert_eq!(
            verdict_of(&r, "A", "go"),
            Verdict::ProvablyClean,
            "hasNext on an alias refines the same token"
        );
    }

    #[test]
    fn unknown_receiver_needs_inference_without_findings() {
        // A parameter iterator has unknown state: nothing is provable, but
        // nothing is reported either (mirrors the deterministic lints).
        let r = check("class A { Object peek(Iterator<Integer> it) { return it.next(); } }");
        let report = &r.methods[&MethodId::new("A", "peek")];
        assert_eq!(report.verdict, Verdict::NeedsInference);
        assert!(report.findings.is_empty());
        assert_eq!(report.unproven, 1);
    }

    #[test]
    fn protocol_free_method_is_clean() {
        let r = check(
            "class A { int f(int x) {\n\
               int acc = 0;\n\
               for (int i = 0; i < x; i++) { acc = acc + i; }\n\
               return acc; } }",
        );
        assert_eq!(verdict_of(&r, "A", "f"), Verdict::ProvablyClean);
    }

    #[test]
    fn program_specs_pin_helper_results() {
        let src = "class H { Collection<Integer> items;\n\
                     Iterator<Integer> make() { return items.iterator(); } }\n\
                   class A { Object use(H h) { return h.make().next(); } }";
        let unit = parse(src).unwrap();
        let api = standard_api();
        // Without a spec for H.make, A.use is undecided with no findings.
        let bare = check_program(std::slice::from_ref(&unit), &api, &BTreeMap::new());
        let report = &bare.methods[&MethodId::new("A", "use")];
        assert_eq!(report.verdict, Verdict::NeedsInference);
        assert!(report.findings.is_empty());
        // With `ensures unique(result) in ALIVE` the call is a may-violation;
        // with `in HASNEXT` it is proven clean.
        let spec = |ens: &str| MethodSpec {
            requires: parse_clause("").unwrap(),
            ensures: parse_clause(ens).unwrap(),
            true_indicates: None,
            false_indicates: None,
        };
        let mut specs = ProgramSpecs::new();
        specs.insert(
            MethodId::new("H", "make"),
            (spec("unique(result) in ALIVE"), Some("Iterator".into())),
        );
        let alive = check_program(std::slice::from_ref(&unit), &api, &specs);
        assert_eq!(alive.methods[&MethodId::new("A", "use")].findings.len(), 1);
        specs.insert(
            MethodId::new("H", "make"),
            (spec("unique(result) in HASNEXT"), Some("Iterator".into())),
        );
        let ready = check_program(&[unit], &api, &specs);
        assert_eq!(ready.methods[&MethodId::new("A", "use")].verdict, Verdict::ProvablyClean);
    }
}
