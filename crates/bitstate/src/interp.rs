//! The flow-sensitive, alias-aware abstract interpreter.
//!
//! One `u64` state-set word per [`AliasToken`]: the interpreter runs the
//! compiled [`Machine`] over the event CFG of a method, tracking for every
//! object token the set of protocol states it *may* be in. Joins at merge
//! points are bitwise OR on agreeing tokens ([`AliasMap::join`] handles the
//! must-alias side); branch edges intersect with the
//! `@TrueIndicates`/`@FalseIndicates` masks; a state-requiring call checks
//! `word & require_mask` in one instruction.
//!
//! Tokens are allocated *per creation site* (declaration parameters plus
//! every `new`/call-result/field-read event), so the fixpoint over loops
//! re-uses stable identities; two objects born at the same site share a
//! word, which only ever widens the may-set.

use crate::machine::{Machine, ReceiverEffect};
use analysis::alias::{AliasMap, AliasToken, TokenSource};
use analysis::cfg::{BlockId, BranchTest, Cfg, Terminator};
use analysis::events::{Event, EventKind, Operand, Place};
use analysis::types::MethodId;
use java_syntax::ast::ExprId;
use java_syntax::span::Span;
use std::collections::BTreeMap;
use std::fmt;

/// The screening classification of one method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verdict {
    /// Every protocol obligation in the method is provably satisfied.
    ProvablyClean,
    /// Some obligation could not be proven either way (unknown receiver,
    /// unspecified callee, or a may-violation).
    NeedsInference,
    /// Some reachable call's receiver cannot be in any acceptable state.
    DefiniteViolation,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Verdict::ProvablyClean => "clean",
            Verdict::NeedsInference => "needs-inference",
            Verdict::DefiniteViolation => "violation",
        };
        f.write_str(s)
    }
}

/// One protocol finding at a call site.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The enclosing method.
    pub method: MethodId,
    /// Source span of the offending call.
    pub span: Span,
    /// Rendered callee, e.g. `Iterator.next()`.
    pub callee: String,
    /// The state the receiver must be in.
    pub required: String,
    /// The states the receiver may actually be in (sorted).
    pub observed: Vec<String>,
    /// `true` when *no* observed state satisfies the requirement.
    pub definite: bool,
    /// The `requires` atom, for the diagnostic note.
    pub clause: String,
}

/// The interpreter's report for one method.
#[derive(Debug, Clone)]
pub struct MethodReport {
    /// The analyzed method.
    pub id: MethodId,
    /// Screening classification.
    pub verdict: Verdict,
    /// May/definite violations at call sites (empty for clean methods).
    pub findings: Vec<Finding>,
    /// State-requiring calls inspected.
    pub checked_calls: usize,
    /// Obligations that could not be decided (unknown receiver state or
    /// unspecified callee touching a protocol object).
    pub unproven: usize,
}

/// Abstract state at one program point: must-alias bindings plus one
/// may-state word per tracked token. `None` = unreachable.
#[derive(Debug, Clone, PartialEq)]
struct Fact {
    alias: AliasMap,
    words: BTreeMap<AliasToken, u64>,
}

type Flow = Option<Fact>;

/// Join: must-alias agreement on bindings; for state words, tokens known on
/// both sides OR their words (may-union), tokens known on only one side go
/// to unknown (dropping a word is always sound — unknown proves nothing).
fn join(into: &Flow, other: &Flow) -> Flow {
    match (into, other) {
        (None, f) | (f, None) => f.clone(),
        (Some(a), Some(b)) => {
            let alias = a.alias.join(&b.alias);
            let mut words = BTreeMap::new();
            for (t, wa) in &a.words {
                if let Some(wb) = b.words.get(t) {
                    words.insert(*t, wa | wb);
                }
            }
            Some(Fact { alias, words })
        }
    }
}

/// Sink for the reporting pass; the fixpoint pass runs with `None`.
struct Collector {
    findings: Vec<Finding>,
    checked_calls: usize,
    unproven: usize,
}

struct Interp<'a> {
    machine: &'a Machine,
    id: &'a MethodId,
    /// Site-stable token per value-producing event.
    site_tokens: BTreeMap<ExprId, AliasToken>,
}

impl Interp<'_> {
    fn forget(&self, fact: &mut Fact, place: &Place) {
        if let Some(t) = fact.alias.resolve(place) {
            fact.words.remove(&t);
        }
    }

    /// Binds `dest` to its site token with an optional known word.
    fn produce(&self, fact: &mut Fact, dest: &Place, event: ExprId, word: Option<u64>) {
        let token = self.site_tokens[&event];
        fact.alias.bind(dest.clone(), token);
        match word {
            Some(w) => {
                fact.words.insert(token, w);
            }
            None => {
                fact.words.remove(&token);
            }
        }
    }

    /// Whether an operand's static type carries a protocol (an unknown
    /// callee touching such a value is an undecided obligation).
    fn protocol_typed(&self, op: &Operand) -> bool {
        op.type_name.as_deref().is_some_and(|t| self.machine.has_protocol(t))
    }

    fn transfer_event(&self, flow: &mut Flow, event: &Event, sink: &mut Option<&mut Collector>) {
        let Some(fact) = flow.as_mut() else { return };
        match &event.kind {
            EventKind::New { dest, callee, args, .. } => {
                for a in args.iter().flatten() {
                    self.forget(fact, &a.place);
                }
                let word = self.machine.effect_of(callee).and_then(|e| e.ensures_this);
                self.produce(fact, dest, event.id, word);
            }
            EventKind::Call { callee, receiver, args, dest } => {
                let effect = self.machine.effect_of(callee);
                if let Some(r) = receiver {
                    match effect {
                        Some(e) => {
                            let token = fact.alias.resolve(&r.place);
                            if let Some(req) = &e.require {
                                if let Some(c) = sink.as_deref_mut() {
                                    c.checked_calls += 1;
                                }
                                let word = token.and_then(|t| fact.words.get(&t).copied());
                                match (word, req.mask) {
                                    (Some(w), Some(mask)) => {
                                        if w & mask != w {
                                            let definite = w & mask == 0;
                                            if let Some(c) = sink.as_deref_mut() {
                                                let dfa = e
                                                    .type_name
                                                    .as_deref()
                                                    .and_then(|t| self.machine.dfa(t));
                                                c.findings.push(Finding {
                                                    method: self.id.clone(),
                                                    span: event.span,
                                                    callee: callee_name(callee),
                                                    required: req.state.clone(),
                                                    observed: dfa
                                                        .map(|d| {
                                                            d.names_of(w)
                                                                .into_iter()
                                                                .map(str::to_string)
                                                                .collect()
                                                        })
                                                        .unwrap_or_default(),
                                                    definite,
                                                    clause: req.clause.clone(),
                                                });
                                            }
                                        }
                                    }
                                    // Untracked receiver or undeclared state:
                                    // the obligation cannot be decided.
                                    _ => {
                                        if let Some(c) = sink.as_deref_mut() {
                                            c.unproven += 1;
                                        }
                                    }
                                }
                            }
                            if let Some(t) = token {
                                match e.receiver {
                                    ReceiverEffect::Keep => {}
                                    ReceiverEffect::Set(m) => {
                                        fact.words.insert(t, m);
                                    }
                                    ReceiverEffect::Forget => {
                                        fact.words.remove(&t);
                                    }
                                }
                            }
                        }
                        None => {
                            // Unknown callee: it may do anything to the
                            // receiver — and may require any state of it.
                            if self.protocol_typed(r) {
                                if let Some(c) = sink.as_deref_mut() {
                                    c.unproven += 1;
                                }
                            }
                            self.forget(fact, &r.place);
                        }
                    }
                }
                for a in args.iter().flatten() {
                    // The argument escapes into the callee.
                    if effect.is_none() && self.protocol_typed(a) {
                        if let Some(c) = sink.as_deref_mut() {
                            c.unproven += 1;
                        }
                    }
                    self.forget(fact, &a.place);
                }
                if let Some(d) = dest {
                    let word = effect.and_then(|e| e.result.as_ref()).map(|(_, m)| *m);
                    self.produce(fact, &d.place, event.id, word);
                }
            }
            EventKind::FieldRead { dest, .. } => {
                // Heap contents have unknown state (but a stable identity
                // per read site, so subsequent refinements stick).
                self.produce(fact, &dest.place, event.id, None);
            }
            EventKind::FieldWrite { src, .. } => {
                if let Some(s) = src {
                    // The object escapes into the heap.
                    self.forget(fact, &s.place);
                }
            }
            EventKind::Copy { dest, src } => {
                fact.alias.copy(dest.clone(), &src.place);
            }
            EventKind::Sync { .. } => {}
        }
    }

    /// The flow along one branch edge: intersect the tested token's word
    /// with the indicated mask; an empty intersection kills the edge.
    fn branch_flow(&self, flow: &Flow, test: &BranchTest, taken: bool) -> Flow {
        let Some(fact) = flow else { return None };
        let Some(effect) = self.machine.effect_of(&test.callee) else { return flow.clone() };
        let mask = if taken != test.negated { effect.true_mask } else { effect.false_mask };
        let Some(mask) = mask else { return flow.clone() };
        let Some(token) = fact.alias.resolve(&test.operand.place) else { return flow.clone() };
        let refined = match fact.words.get(&token) {
            Some(w) => w & mask,
            None => mask,
        };
        if refined == 0 {
            return None; // Infeasible edge.
        }
        let mut fact = fact.clone();
        fact.words.insert(token, refined);
        Some(fact)
    }

    /// Successor edges with their (possibly branch-refined) out-flows.
    fn out_edges(&self, cfg: &Cfg, block: BlockId, flow: &Flow) -> Vec<(BlockId, Flow)> {
        match &cfg.blocks[block].term {
            Some(Terminator::Goto(t)) => vec![(*t, flow.clone())],
            Some(Terminator::Branch { test, then_blk, else_blk }) => match test {
                Some(t) => vec![
                    (*then_blk, self.branch_flow(flow, t, true)),
                    (*else_blk, self.branch_flow(flow, t, false)),
                ],
                None => vec![(*then_blk, flow.clone()), (*else_blk, flow.clone())],
            },
            Some(Terminator::Return(_) | Terminator::Exit) | None => Vec::new(),
        }
    }
}

fn callee_name(callee: &analysis::types::Callee) -> String {
    use analysis::types::Callee;
    match callee {
        Callee::Api { type_name, method } => format!("{type_name}.{method}()"),
        Callee::Program(id) => format!("{id}()"),
        Callee::Unknown { method } => format!("{method}()"),
    }
}

/// Guard against non-converging fixpoints (the lattice is finite, but keep
/// an explicit bound: a method that trips it is reported `NeedsInference`).
fn pass_budget(cfg: &Cfg) -> usize {
    cfg.blocks.len() * 65 + 64
}

impl Machine {
    /// The reference interpreter: runs the bit-vector analysis over one
    /// method using the map-based fact representation.
    ///
    /// `params` are the declared parameter names (with `this` handled via
    /// `is_static`); parameters start with *unknown* state — tracked for
    /// aliasing, but no obligation on them is provable without a spec.
    ///
    /// [`Machine::check_method`] (in [`crate::program`]) compiles to a
    /// dense instruction form and is what production paths call; this
    /// implementation is its differential oracle and the fallback for
    /// methods too wide for the dense encoding.
    pub fn check_method_ref(
        &self,
        id: &MethodId,
        cfg: &Cfg,
        params: &[String],
        is_static: bool,
    ) -> MethodReport {
        let mut tokens = TokenSource::new();
        let mut entry_fact = Fact { alias: AliasMap::new(), words: BTreeMap::new() };
        if !is_static {
            entry_fact.alias.bind(Place::This, tokens.fresh());
        }
        for p in params {
            entry_fact.alias.bind(Place::Local(p.clone()), tokens.fresh());
        }
        let mut site_tokens: BTreeMap<ExprId, AliasToken> = BTreeMap::new();
        for block in &cfg.blocks {
            for e in &block.events {
                let produces = matches!(
                    e.kind,
                    EventKind::New { .. }
                        | EventKind::Call { dest: Some(_), .. }
                        | EventKind::FieldRead { .. }
                );
                if produces {
                    site_tokens.insert(e.id, tokens.fresh());
                }
            }
        }
        let interp = Interp { machine: self, id, site_tokens };

        // ---- Fixpoint over block entry facts ----
        let n = cfg.blocks.len();
        let mut entry: Vec<Flow> = vec![None; n];
        entry[cfg.entry] = Some(entry_fact);
        let mut work: Vec<BlockId> = vec![cfg.entry];
        let mut passes = 0usize;
        let budget = pass_budget(cfg);
        let mut bailed = false;
        while let Some(b) = work.pop() {
            passes += 1;
            if passes > budget {
                bailed = true;
                break;
            }
            let mut flow = entry[b].clone();
            let mut no_sink: Option<&mut Collector> = None;
            for e in &cfg.blocks[b].events {
                interp.transfer_event(&mut flow, e, &mut no_sink);
            }
            for (succ, out) in interp.out_edges(cfg, b, &flow) {
                let joined = join(&entry[succ], &out);
                if joined != entry[succ] {
                    entry[succ] = joined;
                    if !work.contains(&succ) {
                        work.push(succ);
                    }
                }
            }
        }

        // ---- Reporting pass over the converged solution ----
        let mut collector = Collector { findings: Vec::new(), checked_calls: 0, unproven: 0 };
        if !bailed {
            for b in cfg.reachable() {
                let mut flow = entry[b].clone();
                let mut sink = Some(&mut collector);
                for e in &cfg.blocks[b].events {
                    interp.transfer_event(&mut flow, e, &mut sink);
                }
            }
        }

        let verdict = if collector.findings.iter().any(|f| f.definite) {
            Verdict::DefiniteViolation
        } else if bailed || collector.unproven > 0 || !collector.findings.is_empty() {
            Verdict::NeedsInference
        } else {
            Verdict::ProvablyClean
        };
        MethodReport {
            id: id.clone(),
            verdict,
            findings: collector.findings,
            checked_calls: collector.checked_calls,
            unproven: collector.unproven,
        }
    }
}
