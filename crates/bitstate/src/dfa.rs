//! Bit-packed protocol DFAs.
//!
//! A [`TypeDfa`] assigns every *concrete* (non-`ALIVE`) state of one type's
//! [`StateSpace`] a bit position in a `u64` word. A set of states an object
//! may currently be in is then a single word; an abstract state like
//! `ALIVE` or an inner node of the hierarchy becomes the mask of concrete
//! states refining it. All transfer-function work downstream reduces to
//! `&`/`|` on these words (Arslanagić et al.'s bit-vector machines).

use spec_lang::state::{StateSpace, ALIVE};
use std::collections::BTreeMap;

/// One type's protocol, compiled to bit masks.
#[derive(Debug, Clone)]
pub struct TypeDfa {
    type_name: String,
    /// Bit index -> concrete state name, in [`StateSpace::states`] order.
    names: Vec<String>,
    /// Declared state (including `ALIVE` and inner nodes) -> mask of the
    /// concrete states refining it.
    masks: BTreeMap<String, u64>,
    /// Mask of every concrete state (= the `ALIVE` mask).
    full: u64,
}

impl TypeDfa {
    /// Compiles a state space. Returns `None` for trivial spaces (no
    /// protocol to track) and for spaces wider than 64 concrete states
    /// (cannot pack into one word; callers fall back to "unknown").
    pub fn compile(space: &StateSpace) -> Option<TypeDfa> {
        let concrete: Vec<String> =
            space.states().into_iter().filter(|s| *s != ALIVE).map(str::to_string).collect();
        if concrete.is_empty() || concrete.len() > 64 {
            return None;
        }
        let bit_of: BTreeMap<&str, u32> =
            concrete.iter().enumerate().map(|(i, s)| (s.as_str(), i as u32)).collect();
        let mut masks = BTreeMap::new();
        for s in space.states() {
            let mut m = 0u64;
            for c in space.concrete_states(s) {
                m |= 1u64 << bit_of[c];
            }
            masks.insert(s.to_string(), m);
        }
        let full = masks[ALIVE];
        Some(TypeDfa { type_name: space.type_name().to_string(), names: concrete, masks, full })
    }

    /// The type this DFA belongs to.
    pub fn type_name(&self) -> &str {
        &self.type_name
    }

    /// The mask of concrete states refining `state`, or `None` for states
    /// not declared in the space (nothing can be concluded about them).
    pub fn mask_of(&self, state: &str) -> Option<u64> {
        self.masks.get(state).copied()
    }

    /// The mask of every concrete state (an object about which nothing is
    /// known beyond liveness).
    pub fn full(&self) -> u64 {
        self.full
    }

    /// Number of concrete states (bit width of the machine).
    pub fn width(&self) -> usize {
        self.names.len()
    }

    /// Decodes a word back into sorted state names (for diagnostics).
    pub fn names_of(&self, word: u64) -> Vec<&str> {
        self.names
            .iter()
            .enumerate()
            .filter(|(i, _)| word & (1u64 << i) != 0)
            .map(|(_, n)| n.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iterator_space_packs_two_bits() {
        let dfa = TypeDfa::compile(&StateSpace::flat("Iterator", ["HASNEXT", "END"])).unwrap();
        assert_eq!(dfa.width(), 2);
        let h = dfa.mask_of("HASNEXT").unwrap();
        let e = dfa.mask_of("END").unwrap();
        assert_eq!(h.count_ones(), 1);
        assert_eq!(e.count_ones(), 1);
        assert_eq!(h & e, 0);
        assert_eq!(dfa.mask_of(ALIVE).unwrap(), h | e);
        assert_eq!(dfa.full(), h | e);
        assert_eq!(dfa.mask_of("BOGUS"), None);
        assert_eq!(dfa.names_of(h | e), vec!["END", "HASNEXT"]);
    }

    #[test]
    fn trivial_space_does_not_compile() {
        assert!(TypeDfa::compile(&StateSpace::trivial("Row")).is_none());
    }

    #[test]
    fn nested_refinement_masks_include_children() {
        let space = StateSpace::parse_decl("File", "OPEN, CLOSED, OPEN > EOF");
        let dfa = TypeDfa::compile(&space).unwrap();
        let open = dfa.mask_of("OPEN").unwrap();
        let eof = dfa.mask_of("EOF").unwrap();
        let closed = dfa.mask_of("CLOSED").unwrap();
        assert_eq!(open & eof, eof, "OPEN's mask covers its refinement EOF");
        assert_eq!(open & closed, 0);
        assert_eq!(dfa.full(), open | closed);
    }
}
