//! A hand-written lexer for the Java subset.
//!
//! The lexer is a straightforward single-pass scanner producing a `Vec<Token>`.
//! Line and block comments are skipped; `//` and `/* ... */` nest the way Java
//! specifies (block comments do not nest).

use crate::error::{ParseError, ParseErrorKind, Result};
use crate::span::{Pos, Span};
use crate::token::{Keyword, Token, TokenKind};

/// Lexes an entire source string into tokens, ending with [`TokenKind::Eof`].
///
/// # Errors
///
/// Returns a [`ParseError`] on unterminated strings/comments, malformed
/// numeric literals, or characters outside the subset.
pub fn lex(src: &str) -> Result<Vec<Token>> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: Pos,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer { src, bytes: src.as_bytes(), pos: Pos::START, tokens: Vec::new() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos.offset).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos.offset + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos.offset += 1;
        if b == b'\n' {
            self.pos.line += 1;
            self.pos.col = 1;
        } else {
            self.pos.col += 1;
        }
        Some(b)
    }

    fn error(&self, msg: impl Into<String>, start: Pos) -> ParseError {
        ParseError::new(msg, Span::new(start, self.pos))
    }

    fn error_kind(&self, msg: impl Into<String>, start: Pos, kind: ParseErrorKind) -> ParseError {
        ParseError::with_kind(msg, Span::new(start, self.pos), kind)
    }

    fn push(&mut self, kind: TokenKind, start: Pos) {
        self.tokens.push(Token::new(kind, Span::new(start, self.pos)));
    }

    fn run(mut self) -> Result<Vec<Token>> {
        loop {
            self.skip_trivia()?;
            let start = self.pos;
            let Some(b) = self.peek() else {
                self.push(TokenKind::Eof, start);
                return Ok(self.tokens);
            };
            match b {
                b'a'..=b'z' | b'A'..=b'Z' | b'_' | b'$' => self.lex_word(start),
                b'0'..=b'9' => self.lex_number(start)?,
                b'"' => self.lex_string(start)?,
                b'\'' => self.lex_char(start)?,
                _ => self.lex_operator(start)?,
            }
        }
    }

    fn skip_trivia(&mut self) -> Result<()> {
        loop {
            match self.peek() {
                Some(b' ') | Some(b'\t') | Some(b'\r') | Some(b'\n') => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.pos;
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            Some(b'*') if self.peek2() == Some(b'/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            Some(_) => {
                                self.bump();
                            }
                            None => {
                                return Err(self.error_kind(
                                    "unterminated block comment",
                                    start,
                                    ParseErrorKind::UnexpectedEof,
                                ));
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_word(&mut self, start: Pos) {
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' || b == b'$' {
                self.bump();
            } else {
                break;
            }
        }
        let text = &self.src[start.offset..self.pos.offset];
        let kind = match text {
            "true" => TokenKind::BoolLit(true),
            "false" => TokenKind::BoolLit(false),
            "null" => TokenKind::Null,
            _ => match Keyword::from_ident(text) {
                Some(kw) => TokenKind::Keyword(kw),
                None => TokenKind::Ident(text.to_string()),
            },
        };
        self.push(kind, start);
    }

    fn lex_number(&mut self, start: Pos) -> Result<()> {
        // Hexadecimal literals: 0x1F, 0XABCDL.
        if self.peek() == Some(b'0') && matches!(self.peek2(), Some(b'x') | Some(b'X')) {
            self.bump();
            self.bump();
            let digits_start = self.pos;
            while let Some(b) = self.peek() {
                if b.is_ascii_hexdigit() {
                    self.bump();
                } else {
                    break;
                }
            }
            if self.pos.offset == digits_start.offset {
                return Err(self.error_kind(
                    "hex literal needs at least one digit",
                    start,
                    ParseErrorKind::InvalidLiteral,
                ));
            }
            let text = &self.src[digits_start.offset..self.pos.offset];
            if matches!(self.peek(), Some(b'L') | Some(b'l')) {
                self.bump();
            }
            let value = i64::from_str_radix(text, 16).map_err(|_| {
                self.error_kind(
                    format!("invalid hex literal `{text}`"),
                    start,
                    ParseErrorKind::InvalidLiteral,
                )
            })?;
            self.push(TokenKind::IntLit(value), start);
            return Ok(());
        }
        let mut is_double = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => {
                    self.bump();
                }
                b'.' if !is_double && self.peek2().is_some_and(|c| c.is_ascii_digit()) => {
                    is_double = true;
                    self.bump();
                }
                b'e' | b'E' if is_double => {
                    self.bump();
                    if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                        self.bump();
                    }
                }
                b'L' | b'l' | b'f' | b'F' | b'd' | b'D' => {
                    // Suffix terminates the literal; treat f/d as double markers.
                    if matches!(b, b'f' | b'F' | b'd' | b'D') {
                        is_double = true;
                    }
                    self.bump();
                    break;
                }
                _ => break,
            }
        }
        let text = &self.src[start.offset..self.pos.offset];
        let kind = if is_double {
            TokenKind::DoubleLit(text.to_string())
        } else {
            let digits = text.trim_end_matches(['L', 'l']);
            let value: i64 = digits.parse().map_err(|_| {
                self.error_kind(
                    format!("invalid integer literal `{text}`"),
                    start,
                    ParseErrorKind::InvalidLiteral,
                )
            })?;
            TokenKind::IntLit(value)
        };
        self.push(kind, start);
        Ok(())
    }

    fn lex_string(&mut self, start: Pos) -> Result<()> {
        self.bump(); // opening quote
        let mut value = String::new();
        loop {
            match self.bump() {
                Some(b'"') => break,
                Some(b'\\') => value.push(self.escape(start)?),
                Some(b'\n') => {
                    return Err(self.error_kind(
                        "unterminated string literal",
                        start,
                        ParseErrorKind::InvalidLiteral,
                    ));
                }
                None => {
                    return Err(self.error_kind(
                        "unterminated string literal",
                        start,
                        ParseErrorKind::UnexpectedEof,
                    ));
                }
                Some(b) => {
                    // Collect raw bytes; source is valid UTF-8 so multi-byte
                    // sequences pass through unchanged.
                    value.push(b as char);
                }
            }
        }
        self.push(TokenKind::StringLit(value), start);
        Ok(())
    }

    fn lex_char(&mut self, start: Pos) -> Result<()> {
        self.bump(); // opening quote
        let c = match self.bump() {
            Some(b'\\') => self.escape(start)?,
            Some(b'\'') | None => return Err(self.error("empty character literal", start)),
            Some(b) => b as char,
        };
        if self.bump() != Some(b'\'') {
            return Err(self.error("unterminated character literal", start));
        }
        self.push(TokenKind::CharLit(c), start);
        Ok(())
    }

    fn escape(&mut self, start: Pos) -> Result<char> {
        match self.bump() {
            Some(b'n') => Ok('\n'),
            Some(b't') => Ok('\t'),
            Some(b'r') => Ok('\r'),
            Some(b'0') => Ok('\0'),
            Some(b'\\') => Ok('\\'),
            Some(b'"') => Ok('"'),
            Some(b'\'') => Ok('\''),
            other => Err(self.error(
                format!(
                    "unsupported escape sequence `\\{}`",
                    other.map(|b| b as char).unwrap_or(' ')
                ),
                start,
            )),
        }
    }

    fn lex_operator(&mut self, start: Pos) -> Result<()> {
        use TokenKind::*;
        let b = self.bump().expect("caller checked peek");
        let two = |l: &Lexer<'_>| l.peek();
        let kind = match b {
            b'(' => LParen,
            b')' => RParen,
            b'{' => LBrace,
            b'}' => RBrace,
            b'[' => LBracket,
            b']' => RBracket,
            b';' => Semi,
            b',' => Comma,
            b'.' => Dot,
            b'@' => At,
            b'?' => Question,
            b':' => {
                if two(self) == Some(b':') {
                    self.bump();
                    ColonColon
                } else {
                    Colon
                }
            }
            b'=' => {
                if two(self) == Some(b'=') {
                    self.bump();
                    EqEq
                } else {
                    Assign
                }
            }
            b'!' => {
                if two(self) == Some(b'=') {
                    self.bump();
                    NotEq
                } else {
                    Bang
                }
            }
            b'<' => {
                if two(self) == Some(b'=') {
                    self.bump();
                    Le
                } else {
                    Lt
                }
            }
            b'>' => {
                if two(self) == Some(b'=') {
                    self.bump();
                    Ge
                } else {
                    Gt
                }
            }
            b'+' => match two(self) {
                Some(b'+') => {
                    self.bump();
                    PlusPlus
                }
                Some(b'=') => {
                    self.bump();
                    PlusAssign
                }
                _ => Plus,
            },
            b'-' => match two(self) {
                Some(b'-') => {
                    self.bump();
                    MinusMinus
                }
                Some(b'=') => {
                    self.bump();
                    MinusAssign
                }
                _ => Minus,
            },
            b'*' => Star,
            b'/' => Slash,
            b'%' => Percent,
            b'&' => {
                if two(self) == Some(b'&') {
                    self.bump();
                    AndAnd
                } else {
                    Amp
                }
            }
            b'|' => {
                if two(self) == Some(b'|') {
                    self.bump();
                    OrOr
                } else {
                    Pipe
                }
            }
            b'^' => Caret,
            other => {
                return Err(self.error(format!("unexpected character `{}`", other as char), start));
            }
        };
        self.push(kind, start);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::Keyword as Kw;
    use crate::token::TokenKind::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        let mut toks: Vec<_> = lex(src).unwrap().into_iter().map(|t| t.kind).collect();
        assert_eq!(toks.pop(), Some(Eof));
        toks
    }

    #[test]
    fn lexes_simple_class_header() {
        let k = kinds("public class Row {}");
        assert_eq!(
            k,
            vec![Keyword(Kw::Public), Keyword(Kw::Class), Ident("Row".into()), LBrace, RBrace,]
        );
    }

    #[test]
    fn skips_line_and_block_comments() {
        let k = kinds("a // line\n /* block\n multi */ b");
        assert_eq!(k, vec![Ident("a".into()), Ident("b".into())]);
    }

    #[test]
    fn unterminated_block_comment_errors() {
        let e = lex("/* never closed").unwrap_err();
        assert!(e.message.contains("unterminated block comment"));
    }

    #[test]
    fn lexes_literals() {
        let k = kinds(r#"42 3.14 "hi\n" 'c' true false null 7L"#);
        assert_eq!(
            k,
            vec![
                IntLit(42),
                DoubleLit("3.14".into()),
                StringLit("hi\n".into()),
                CharLit('c'),
                BoolLit(true),
                BoolLit(false),
                Null,
                IntLit(7),
            ]
        );
    }

    #[test]
    fn lexes_compound_operators() {
        let k = kinds("== != <= >= && || ++ -- += -= ::");
        assert_eq!(
            k,
            vec![
                EqEq,
                NotEq,
                Le,
                Ge,
                AndAnd,
                OrOr,
                PlusPlus,
                MinusMinus,
                PlusAssign,
                MinusAssign,
                ColonColon
            ]
        );
    }

    #[test]
    fn generics_lex_as_lt_gt() {
        let k = kinds("Iterator<Integer>");
        assert_eq!(k, vec![Ident("Iterator".into()), Lt, Ident("Integer".into()), Gt]);
    }

    #[test]
    fn annotation_tokens() {
        let k = kinds("@Perm(requires=\"full(this)\")");
        assert_eq!(
            k,
            vec![
                At,
                Ident("Perm".into()),
                LParen,
                Ident("requires".into()),
                Assign,
                StringLit("full(this)".into()),
                RParen,
            ]
        );
    }

    #[test]
    fn spans_track_lines_and_columns() {
        let toks = lex("a\n  bb").unwrap();
        assert_eq!(toks[0].span.start.line, 1);
        assert_eq!(toks[0].span.start.col, 1);
        assert_eq!(toks[1].span.start.line, 2);
        assert_eq!(toks[1].span.start.col, 3);
        assert_eq!(toks[1].span.end.col, 5);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("\"abc").is_err());
        assert!(lex("\"abc\ndef\"").is_err());
    }

    #[test]
    fn unexpected_character_errors() {
        let e = lex("#").unwrap_err();
        assert!(e.message.contains("unexpected character"));
    }

    #[test]
    fn empty_input_gives_only_eof() {
        let toks = lex("").unwrap();
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].kind, Eof);
    }

    #[test]
    fn hex_literals() {
        let k = kinds("0x1F 0XABL 0x0");
        assert_eq!(k, vec![IntLit(31), IntLit(171), IntLit(0)]);
        assert!(lex("0x").is_err());
        assert!(lex("0xZZ").is_err());
    }

    #[test]
    fn dollar_idents_allowed() {
        let k = kinds("a$b _x");
        assert_eq!(k, vec![Ident("a$b".into()), Ident("_x".into())]);
    }
}
