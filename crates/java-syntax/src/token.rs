//! Token definitions for the Java subset lexer.

use crate::span::Span;
use std::fmt;

/// The kind of a lexed token.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TokenKind {
    // Literals
    /// Integer literal such as `42`.
    IntLit(i64),
    /// Floating-point literal such as `3.14`.
    DoubleLit(String),
    /// String literal with escape sequences already resolved.
    StringLit(String),
    /// Character literal.
    CharLit(char),
    /// `true` or `false`.
    BoolLit(bool),
    /// `null`.
    Null,

    /// An identifier that is not a keyword.
    Ident(String),
    /// A reserved keyword.
    Keyword(Keyword),

    // Punctuation and operators
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `@`
    At,
    /// `::` (unused by the subset but lexed for error recovery)
    ColonColon,
    /// `:`
    Colon,
    /// `?`
    Question,
    /// `=`
    Assign,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `!`
    Bang,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `++`
    PlusPlus,
    /// `--`
    MinusMinus,
    /// `+=`
    PlusAssign,
    /// `-=`
    MinusAssign,
    /// End of input.
    Eof,
}

/// Java keywords recognized by the subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Keyword {
    Abstract,
    Assert,
    Boolean,
    Break,
    Byte,
    Case,
    Catch,
    Char,
    Class,
    Continue,
    Default,
    Do,
    Double,
    Else,
    Extends,
    Final,
    Finally,
    Float,
    For,
    If,
    Implements,
    Import,
    Instanceof,
    Int,
    Interface,
    Long,
    Native,
    New,
    Package,
    Private,
    Protected,
    Public,
    Return,
    Short,
    Static,
    Super,
    Switch,
    Synchronized,
    This,
    Throw,
    Throws,
    Transient,
    Try,
    Void,
    Volatile,
    While,
}

impl Keyword {
    /// Looks up a keyword from its source text.
    pub fn from_ident(s: &str) -> Option<Keyword> {
        use Keyword::*;
        Some(match s {
            "abstract" => Abstract,
            "assert" => Assert,
            "boolean" => Boolean,
            "break" => Break,
            "byte" => Byte,
            "case" => Case,
            "catch" => Catch,
            "char" => Char,
            "class" => Class,
            "continue" => Continue,
            "default" => Default,
            "do" => Do,
            "double" => Double,
            "else" => Else,
            "extends" => Extends,
            "final" => Final,
            "finally" => Finally,
            "float" => Float,
            "for" => For,
            "if" => If,
            "implements" => Implements,
            "import" => Import,
            "instanceof" => Instanceof,
            "int" => Int,
            "interface" => Interface,
            "long" => Long,
            "native" => Native,
            "new" => New,
            "package" => Package,
            "private" => Private,
            "protected" => Protected,
            "public" => Public,
            "return" => Return,
            "short" => Short,
            "static" => Static,
            "super" => Super,
            "switch" => Switch,
            "synchronized" => Synchronized,
            "this" => This,
            "throw" => Throw,
            "throws" => Throws,
            "transient" => Transient,
            "try" => Try,
            "void" => Void,
            "volatile" => Volatile,
            "while" => While,
            _ => return None,
        })
    }

    /// The keyword's source text.
    pub fn as_str(self) -> &'static str {
        use Keyword::*;
        match self {
            Abstract => "abstract",
            Assert => "assert",
            Boolean => "boolean",
            Break => "break",
            Byte => "byte",
            Case => "case",
            Catch => "catch",
            Char => "char",
            Class => "class",
            Continue => "continue",
            Default => "default",
            Do => "do",
            Double => "double",
            Else => "else",
            Extends => "extends",
            Final => "final",
            Finally => "finally",
            Float => "float",
            For => "for",
            If => "if",
            Implements => "implements",
            Import => "import",
            Instanceof => "instanceof",
            Int => "int",
            Interface => "interface",
            Long => "long",
            Native => "native",
            New => "new",
            Package => "package",
            Private => "private",
            Protected => "protected",
            Public => "public",
            Return => "return",
            Short => "short",
            Static => "static",
            Super => "super",
            Switch => "switch",
            Synchronized => "synchronized",
            This => "this",
            Throw => "throw",
            Throws => "throws",
            Transient => "transient",
            Try => "try",
            Void => "void",
            Volatile => "volatile",
            While => "while",
        }
    }
}

impl fmt::Display for Keyword {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use TokenKind::*;
        match self {
            IntLit(v) => write!(f, "{v}"),
            DoubleLit(v) => write!(f, "{v}"),
            StringLit(v) => write!(f, "{v:?}"),
            CharLit(c) => write!(f, "'{c}'"),
            BoolLit(b) => write!(f, "{b}"),
            Null => f.write_str("null"),
            Ident(s) => f.write_str(s),
            Keyword(k) => write!(f, "{k}"),
            LParen => f.write_str("("),
            RParen => f.write_str(")"),
            LBrace => f.write_str("{"),
            RBrace => f.write_str("}"),
            LBracket => f.write_str("["),
            RBracket => f.write_str("]"),
            Semi => f.write_str(";"),
            Comma => f.write_str(","),
            Dot => f.write_str("."),
            At => f.write_str("@"),
            ColonColon => f.write_str("::"),
            Colon => f.write_str(":"),
            Question => f.write_str("?"),
            Assign => f.write_str("="),
            EqEq => f.write_str("=="),
            NotEq => f.write_str("!="),
            Lt => f.write_str("<"),
            Gt => f.write_str(">"),
            Le => f.write_str("<="),
            Ge => f.write_str(">="),
            Plus => f.write_str("+"),
            Minus => f.write_str("-"),
            Star => f.write_str("*"),
            Slash => f.write_str("/"),
            Percent => f.write_str("%"),
            Bang => f.write_str("!"),
            AndAnd => f.write_str("&&"),
            OrOr => f.write_str("||"),
            Amp => f.write_str("&"),
            Pipe => f.write_str("|"),
            Caret => f.write_str("^"),
            PlusPlus => f.write_str("++"),
            MinusMinus => f.write_str("--"),
            PlusAssign => f.write_str("+="),
            MinusAssign => f.write_str("-="),
            Eof => f.write_str("<eof>"),
        }
    }
}

/// A token paired with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where it came from.
    pub span: Span,
}

impl Token {
    /// Creates a token.
    pub fn new(kind: TokenKind, span: Span) -> Token {
        Token { kind, span }
    }

    /// Whether this token is the given keyword.
    pub fn is_keyword(&self, kw: Keyword) -> bool {
        matches!(&self.kind, TokenKind::Keyword(k) if *k == kw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_round_trip() {
        for kw in [
            Keyword::Abstract,
            Keyword::Class,
            Keyword::Synchronized,
            Keyword::While,
            Keyword::Instanceof,
        ] {
            assert_eq!(Keyword::from_ident(kw.as_str()), Some(kw));
        }
    }

    #[test]
    fn non_keyword_is_none() {
        assert_eq!(Keyword::from_ident("iterator"), None);
        assert_eq!(Keyword::from_ident(""), None);
        // Contextual words that are not reserved in our subset.
        assert_eq!(Keyword::from_ident("var"), None);
    }

    #[test]
    fn token_display_is_sourcelike() {
        assert_eq!(TokenKind::AndAnd.to_string(), "&&");
        assert_eq!(TokenKind::Ident("foo".into()).to_string(), "foo");
        assert_eq!(TokenKind::Keyword(Keyword::Class).to_string(), "class");
        assert_eq!(TokenKind::IntLit(7).to_string(), "7");
    }

    #[test]
    fn is_keyword_checks_kind() {
        let t = Token::new(TokenKind::Keyword(Keyword::If), Span::DUMMY);
        assert!(t.is_keyword(Keyword::If));
        assert!(!t.is_keyword(Keyword::Else));
    }
}
