//! A read-only AST visitor.
//!
//! Downstream analyses (call-site collection, synchronized-target discovery,
//! statistics for Table 1) implement [`Visitor`] and use the `walk_*`
//! functions for the default traversal order (pre-order, left-to-right).

use crate::ast::*;

/// A visitor over the AST. All hooks default to pure traversal.
pub trait Visitor {
    /// Called for every type declaration.
    fn visit_type_decl(&mut self, t: &TypeDecl) {
        walk_type_decl(self, t);
    }
    /// Called for every method declaration.
    fn visit_method(&mut self, m: &MethodDecl) {
        walk_method(self, m);
    }
    /// Called for every field declaration.
    fn visit_field(&mut self, f: &FieldDecl) {
        walk_field(self, f);
    }
    /// Called for every statement.
    fn visit_stmt(&mut self, s: &Stmt) {
        walk_stmt(self, s);
    }
    /// Called for every expression.
    fn visit_expr(&mut self, e: &Expr) {
        walk_expr(self, e);
    }
}

/// Visits every type in a compilation unit.
pub fn walk_unit<V: Visitor + ?Sized>(v: &mut V, unit: &CompilationUnit) {
    for t in &unit.types {
        v.visit_type_decl(t);
    }
}

/// Default traversal of a type declaration.
pub fn walk_type_decl<V: Visitor + ?Sized>(v: &mut V, t: &TypeDecl) {
    for m in &t.members {
        match m {
            Member::Field(f) => v.visit_field(f),
            Member::Method(md) => v.visit_method(md),
        }
    }
}

/// Default traversal of a method declaration.
pub fn walk_method<V: Visitor + ?Sized>(v: &mut V, m: &MethodDecl) {
    if let Some(b) = &m.body {
        for s in &b.stmts {
            v.visit_stmt(s);
        }
    }
}

/// Default traversal of a field declaration.
pub fn walk_field<V: Visitor + ?Sized>(v: &mut V, f: &FieldDecl) {
    if let Some(e) = &f.init {
        v.visit_expr(e);
    }
}

/// Default traversal of a statement.
pub fn walk_stmt<V: Visitor + ?Sized>(v: &mut V, s: &Stmt) {
    match &s.kind {
        StmtKind::Block(b) => {
            for s in &b.stmts {
                v.visit_stmt(s);
            }
        }
        StmtKind::LocalVar { init, .. } => {
            if let Some(e) = init {
                v.visit_expr(e);
            }
        }
        StmtKind::Expr(e) | StmtKind::Throw(e) => v.visit_expr(e),
        StmtKind::If { cond, then_branch, else_branch } => {
            v.visit_expr(cond);
            v.visit_stmt(then_branch);
            if let Some(e) = else_branch {
                v.visit_stmt(e);
            }
        }
        StmtKind::While { cond, body } => {
            v.visit_expr(cond);
            v.visit_stmt(body);
        }
        StmtKind::DoWhile { body, cond } => {
            v.visit_stmt(body);
            v.visit_expr(cond);
        }
        StmtKind::Switch { scrutinee, cases } => {
            v.visit_expr(scrutinee);
            for c in cases {
                for l in c.labels.iter().flatten() {
                    v.visit_expr(l);
                }
                for s in &c.body {
                    v.visit_stmt(s);
                }
            }
        }
        StmtKind::For { init, cond, update, body } => {
            for s in init {
                v.visit_stmt(s);
            }
            if let Some(c) = cond {
                v.visit_expr(c);
            }
            for e in update {
                v.visit_expr(e);
            }
            v.visit_stmt(body);
        }
        StmtKind::ForEach { iterable, body, .. } => {
            v.visit_expr(iterable);
            v.visit_stmt(body);
        }
        StmtKind::Return(e) => {
            if let Some(e) = e {
                v.visit_expr(e);
            }
        }
        StmtKind::Assert { cond, message } => {
            v.visit_expr(cond);
            if let Some(m) = message {
                v.visit_expr(m);
            }
        }
        StmtKind::Synchronized { target, body } => {
            v.visit_expr(target);
            for s in &body.stmts {
                v.visit_stmt(s);
            }
        }
        StmtKind::Try { body, catches, finally } => {
            for s in &body.stmts {
                v.visit_stmt(s);
            }
            for c in catches {
                for s in &c.body.stmts {
                    v.visit_stmt(s);
                }
            }
            if let Some(f) = finally {
                for s in &f.stmts {
                    v.visit_stmt(s);
                }
            }
        }
        StmtKind::Break | StmtKind::Continue | StmtKind::Empty => {}
    }
}

/// Default traversal of an expression.
pub fn walk_expr<V: Visitor + ?Sized>(v: &mut V, e: &Expr) {
    match &e.kind {
        ExprKind::Literal(_) | ExprKind::Name(_) | ExprKind::This => {}
        ExprKind::FieldAccess { receiver, .. } => v.visit_expr(receiver),
        ExprKind::Call { receiver, args, .. } => {
            if let Some(r) = receiver {
                v.visit_expr(r);
            }
            for a in args {
                v.visit_expr(a);
            }
        }
        ExprKind::New { args, .. } => {
            for a in args {
                v.visit_expr(a);
            }
        }
        ExprKind::Assign { lhs, rhs, .. } => {
            v.visit_expr(lhs);
            v.visit_expr(rhs);
        }
        ExprKind::Binary { lhs, rhs, .. } => {
            v.visit_expr(lhs);
            v.visit_expr(rhs);
        }
        ExprKind::Unary { expr, .. }
        | ExprKind::Postfix { expr, .. }
        | ExprKind::Cast { expr, .. }
        | ExprKind::InstanceOf { expr, .. } => v.visit_expr(expr),
        ExprKind::Conditional { cond, then_expr, else_expr } => {
            v.visit_expr(cond);
            v.visit_expr(then_expr);
            v.visit_expr(else_expr);
        }
        ExprKind::ArrayAccess { array, index } => {
            v.visit_expr(array);
            v.visit_expr(index);
        }
    }
}

/// Counts occurrences of calls to a given method name in a unit.
///
/// Used by the Table 1 harness (`Calls to Iterator.next(): 170`).
pub fn count_calls(unit: &CompilationUnit, method_name: &str) -> usize {
    struct Counter<'a> {
        name: &'a str,
        count: usize,
    }
    impl Visitor for Counter<'_> {
        fn visit_expr(&mut self, e: &Expr) {
            if let ExprKind::Call { name, .. } = &e.kind {
                if name == self.name {
                    self.count += 1;
                }
            }
            walk_expr(self, e);
        }
    }
    let mut c = Counter { name: method_name, count: 0 };
    walk_unit(&mut c, unit);
    c.count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn counts_nested_calls() {
        let unit = parse(
            r#"class C {
                void m(Iterator<Integer> it) {
                    while (it.hasNext()) { use(it.next()); }
                    if (it.hasNext()) { int x = it.next() + it.next(); }
                }
            }"#,
        )
        .unwrap();
        assert_eq!(count_calls(&unit, "next"), 3);
        assert_eq!(count_calls(&unit, "hasNext"), 2);
        assert_eq!(count_calls(&unit, "use"), 1);
        assert_eq!(count_calls(&unit, "absent"), 0);
    }

    #[test]
    fn visits_field_initializers_and_synchronized() {
        let unit = parse(
            r#"class C {
                int x = mk();
                void m(Object l) { synchronized (l) { mk(); } }
            }"#,
        )
        .unwrap();
        assert_eq!(count_calls(&unit, "mk"), 2);
    }

    #[test]
    fn visits_for_variants() {
        let unit = parse(
            r#"class C {
                void m(Collection<Integer> c) {
                    for (int i = seed(); i < lim(); i = step(i)) { body(); }
                    for (Integer x : c.view()) { body(); }
                }
            }"#,
        )
        .unwrap();
        assert_eq!(count_calls(&unit, "seed"), 1);
        assert_eq!(count_calls(&unit, "lim"), 1);
        assert_eq!(count_calls(&unit, "step"), 1);
        assert_eq!(count_calls(&unit, "body"), 2);
        assert_eq!(count_calls(&unit, "view"), 1);
    }
}
