//! Pretty-printer emitting Java source from the AST.
//!
//! Used by the corpus generator (to materialize synthetic programs), by the
//! spec applier (to write inferred annotations back into source), and by the
//! round-trip property tests (`parse(print(ast))` structurally equals `ast`
//! modulo spans and expression ids).

use crate::ast::*;
use std::fmt::Write as _;

/// Pretty-prints a compilation unit to Java source.
pub fn print_unit(unit: &CompilationUnit) -> String {
    let mut p = Printer::default();
    p.unit(unit);
    p.out
}

/// Pretty-prints a single type declaration.
pub fn print_type(decl: &TypeDecl) -> String {
    let mut p = Printer::default();
    p.type_decl(decl);
    p.out
}

/// Pretty-prints an expression.
pub fn print_expr(expr: &Expr) -> String {
    let mut p = Printer::default();
    p.expr(expr);
    p.out
}

/// Pretty-prints a statement at indentation level zero.
pub fn print_stmt(stmt: &Stmt) -> String {
    let mut p = Printer::default();
    p.stmt(stmt);
    p.out
}

#[derive(Default)]
struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn nl(&mut self) {
        self.out.push('\n');
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
    }

    fn word(&mut self, s: &str) {
        self.out.push_str(s);
    }

    fn unit(&mut self, unit: &CompilationUnit) {
        if let Some(pkg) = &unit.package {
            let _ = write!(self.out, "package {pkg};");
            self.nl();
        }
        for imp in &unit.imports {
            self.word("import ");
            if imp.is_static {
                self.word("static ");
            }
            let _ = write!(self.out, "{}", imp.path);
            if imp.wildcard {
                self.word(".*");
            }
            self.word(";");
            self.nl();
        }
        for (i, t) in unit.types.iter().enumerate() {
            if i > 0 || unit.package.is_some() || !unit.imports.is_empty() {
                self.nl();
            }
            self.type_decl(t);
            self.nl();
        }
    }

    fn annotations(&mut self, anns: &[Annotation], inline: bool) {
        for a in anns {
            self.word("@");
            let _ = write!(self.out, "{}", a.name);
            match &a.args {
                AnnotationArgs::None => {}
                AnnotationArgs::Single(lit) => {
                    let _ = write!(self.out, "({lit})");
                }
                AnnotationArgs::Pairs(pairs) => {
                    self.word("(");
                    for (i, (k, v)) in pairs.iter().enumerate() {
                        if i > 0 {
                            self.word(", ");
                        }
                        let _ = write!(self.out, "{k} = {v}");
                    }
                    self.word(")");
                }
            }
            if inline {
                self.word(" ");
            } else {
                self.nl();
            }
        }
    }

    fn modifiers(&mut self, m: &Modifiers) {
        if m.public {
            self.word("public ");
        }
        if m.protected {
            self.word("protected ");
        }
        if m.private {
            self.word("private ");
        }
        if m.is_abstract {
            self.word("abstract ");
        }
        if m.is_static {
            self.word("static ");
        }
        if m.is_final {
            self.word("final ");
        }
        if m.is_synchronized {
            self.word("synchronized ");
        }
    }

    fn type_params(&mut self, params: &[String]) {
        if !params.is_empty() {
            let _ = write!(self.out, "<{}>", params.join(", "));
        }
    }

    fn type_list(&mut self, kw: &str, types: &[TypeRef]) {
        if !types.is_empty() {
            let _ = write!(self.out, " {kw} ");
            for (i, t) in types.iter().enumerate() {
                if i > 0 {
                    self.word(", ");
                }
                let _ = write!(self.out, "{t}");
            }
        }
    }

    fn type_decl(&mut self, t: &TypeDecl) {
        self.annotations(&t.annotations, false);
        self.modifiers(&t.modifiers);
        self.word(match t.kind {
            TypeKind::Class => "class ",
            TypeKind::Interface => "interface ",
        });
        self.word(&t.name);
        self.type_params(&t.type_params);
        self.type_list("extends", &t.extends);
        self.type_list("implements", &t.implements);
        self.word(" {");
        self.indent += 1;
        for m in &t.members {
            self.nl();
            match m {
                Member::Field(f) => self.field(f),
                Member::Method(md) => self.method(md),
            }
        }
        self.indent -= 1;
        self.nl();
        self.word("}");
    }

    fn field(&mut self, f: &FieldDecl) {
        self.annotations(&f.annotations, false);
        self.modifiers(&f.modifiers);
        let _ = write!(self.out, "{} {}", f.ty, f.name);
        if let Some(init) = &f.init {
            self.word(" = ");
            self.expr(init);
        }
        self.word(";");
    }

    fn method(&mut self, m: &MethodDecl) {
        self.annotations(&m.annotations, false);
        self.modifiers(&m.modifiers);
        if !m.type_params.is_empty() {
            self.type_params(&m.type_params);
            self.word(" ");
        }
        if let Some(rt) = &m.return_type {
            let _ = write!(self.out, "{rt} ");
        }
        self.word(&m.name);
        self.word("(");
        for (i, p) in m.params.iter().enumerate() {
            if i > 0 {
                self.word(", ");
            }
            self.annotations(&p.annotations, true);
            if p.is_final {
                self.word("final ");
            }
            let _ = write!(self.out, "{} {}", p.ty, p.name);
        }
        self.word(")");
        self.type_list("throws", &m.throws);
        match &m.body {
            Some(b) => {
                self.word(" ");
                self.block(b);
            }
            None => self.word(";"),
        }
    }

    fn block(&mut self, b: &Block) {
        self.word("{");
        self.indent += 1;
        for s in &b.stmts {
            self.nl();
            self.stmt(s);
        }
        self.indent -= 1;
        self.nl();
        self.word("}");
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Block(b) => self.block(b),
            StmtKind::LocalVar { ty, name, init } => {
                let _ = write!(self.out, "{ty} {name}");
                if let Some(e) = init {
                    self.word(" = ");
                    self.expr(e);
                }
                self.word(";");
            }
            StmtKind::Expr(e) => {
                self.expr(e);
                self.word(";");
            }
            StmtKind::If { cond, then_branch, else_branch } => {
                self.word("if (");
                self.expr(cond);
                self.word(") ");
                self.stmt_as_block(then_branch);
                if let Some(els) = else_branch {
                    self.word(" else ");
                    if matches!(els.kind, StmtKind::If { .. }) {
                        self.stmt(els);
                    } else {
                        self.stmt_as_block(els);
                    }
                }
            }
            StmtKind::While { cond, body } => {
                self.word("while (");
                self.expr(cond);
                self.word(") ");
                self.stmt_as_block(body);
            }
            StmtKind::DoWhile { body, cond } => {
                self.word("do ");
                self.stmt_as_block(body);
                self.word(" while (");
                self.expr(cond);
                self.word(");");
            }
            StmtKind::Switch { scrutinee, cases } => {
                self.word("switch (");
                self.expr(scrutinee);
                self.word(") {");
                self.indent += 1;
                for c in cases {
                    for l in &c.labels {
                        self.nl();
                        match l {
                            Some(e) => {
                                self.word("case ");
                                self.expr(e);
                                self.word(":");
                            }
                            None => self.word("default:"),
                        }
                    }
                    self.indent += 1;
                    for s in &c.body {
                        self.nl();
                        self.stmt(s);
                    }
                    self.indent -= 1;
                }
                self.indent -= 1;
                self.nl();
                self.word("}");
            }
            StmtKind::For { init, cond, update, body } => {
                self.word("for (");
                for (i, s) in init.iter().enumerate() {
                    if i > 0 {
                        self.word(", ");
                    }
                    // Statements inside for-init print without their `;`.
                    match &s.kind {
                        StmtKind::LocalVar { ty, name, init } => {
                            let _ = write!(self.out, "{ty} {name}");
                            if let Some(e) = init {
                                self.word(" = ");
                                self.expr(e);
                            }
                        }
                        StmtKind::Expr(e) => self.expr(e),
                        other => {
                            let _ = write!(self.out, "/* unsupported for-init {other:?} */");
                        }
                    }
                }
                self.word("; ");
                if let Some(c) = cond {
                    self.expr(c);
                }
                self.word("; ");
                for (i, e) in update.iter().enumerate() {
                    if i > 0 {
                        self.word(", ");
                    }
                    self.expr(e);
                }
                self.word(") ");
                self.stmt_as_block(body);
            }
            StmtKind::ForEach { ty, name, iterable, body } => {
                let _ = write!(self.out, "for ({ty} {name} : ");
                self.expr(iterable);
                self.word(") ");
                self.stmt_as_block(body);
            }
            StmtKind::Return(v) => {
                self.word("return");
                if let Some(e) = v {
                    self.word(" ");
                    self.expr(e);
                }
                self.word(";");
            }
            StmtKind::Assert { cond, message } => {
                self.word("assert ");
                self.expr(cond);
                if let Some(m) = message {
                    self.word(" : ");
                    self.expr(m);
                }
                self.word(";");
            }
            StmtKind::Synchronized { target, body } => {
                self.word("synchronized (");
                self.expr(target);
                self.word(") ");
                self.block(body);
            }
            StmtKind::Try { body, catches, finally } => {
                self.word("try ");
                self.block(body);
                for c in catches {
                    let _ = write!(self.out, " catch ({} {}) ", c.ty, c.name);
                    self.block(&c.body);
                }
                if let Some(f) = finally {
                    self.word(" finally ");
                    self.block(f);
                }
            }
            StmtKind::Throw(e) => {
                self.word("throw ");
                self.expr(e);
                self.word(";");
            }
            StmtKind::Break => self.word("break;"),
            StmtKind::Continue => self.word("continue;"),
            StmtKind::Empty => self.word(";"),
        }
    }

    /// Prints a statement, wrapping non-block statements in braces so that
    /// printed control flow is never dangling.
    fn stmt_as_block(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Block(b) => self.block(b),
            _ => {
                self.word("{");
                self.indent += 1;
                self.nl();
                self.stmt(s);
                self.indent -= 1;
                self.nl();
                self.word("}");
            }
        }
    }

    fn expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Literal(l) => {
                let _ = write!(self.out, "{l}");
            }
            ExprKind::Name(n) => self.word(n),
            ExprKind::This => self.word("this"),
            ExprKind::FieldAccess { receiver, name } => {
                self.expr_prec(receiver, 15);
                self.word(".");
                self.word(name);
            }
            ExprKind::Call { receiver, name, args } => {
                if let Some(r) = receiver {
                    self.expr_prec(r, 15);
                    self.word(".");
                }
                self.word(name);
                self.word("(");
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        self.word(", ");
                    }
                    self.expr(a);
                }
                self.word(")");
            }
            ExprKind::New { ty, args } => {
                let _ = write!(self.out, "new {ty}(");
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        self.word(", ");
                    }
                    self.expr(a);
                }
                self.word(")");
            }
            ExprKind::Assign { lhs, op, rhs } => {
                self.expr(lhs);
                let _ = write!(self.out, " {op} ");
                self.expr(rhs);
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let prec = bin_prec(*op);
                self.expr_prec(lhs, prec);
                let _ = write!(self.out, " {op} ");
                self.expr_prec(rhs, prec + 1);
            }
            ExprKind::Unary { op, expr } => {
                let _ = write!(self.out, "{op}");
                self.expr_prec(expr, 13);
            }
            ExprKind::Postfix { inc, expr } => {
                self.expr_prec(expr, 14);
                self.word(if *inc { "++" } else { "--" });
            }
            ExprKind::Cast { ty, expr } => {
                let _ = write!(self.out, "({ty}) ");
                self.expr_prec(expr, 13);
            }
            ExprKind::InstanceOf { expr, ty } => {
                self.expr_prec(expr, 7);
                let _ = write!(self.out, " instanceof {ty}");
            }
            ExprKind::Conditional { cond, then_expr, else_expr } => {
                self.expr_prec(cond, 2);
                self.word(" ? ");
                self.expr(then_expr);
                self.word(" : ");
                self.expr(else_expr);
            }
            ExprKind::ArrayAccess { array, index } => {
                self.expr_prec(array, 15);
                self.word("[");
                self.expr(index);
                self.word("]");
            }
        }
    }

    /// Prints a subexpression, parenthesizing when its precedence is lower
    /// than the context requires.
    fn expr_prec(&mut self, e: &Expr, min_prec: u8) {
        if expr_prec(e) < min_prec {
            self.word("(");
            self.expr(e);
            self.word(")");
        } else {
            self.expr(e);
        }
    }
}

fn bin_prec(op: BinaryOp) -> u8 {
    use BinaryOp::*;
    match op {
        Or => 3,
        And => 4,
        BitOr => 5,
        BitXor => 6,
        BitAnd => 7,
        Eq | Ne => 8,
        Lt | Le | Gt | Ge => 9,
        Add | Sub => 10,
        Mul | Div | Rem => 11,
    }
}

fn expr_prec(e: &Expr) -> u8 {
    match &e.kind {
        ExprKind::Assign { .. } => 1,
        ExprKind::Conditional { .. } => 2,
        ExprKind::Binary { op, .. } => bin_prec(*op),
        ExprKind::InstanceOf { .. } => 9,
        ExprKind::Unary { .. } | ExprKind::Cast { .. } => 13,
        ExprKind::Postfix { .. } => 14,
        _ => 15,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, parse_expr};

    /// Strips spans and ids so ASTs can be compared structurally.
    fn normalize(src: &str) -> String {
        format!("{:?}", parse(src).map(strip_unit).unwrap())
    }

    fn strip_unit(mut u: CompilationUnit) -> CompilationUnit {
        fn walk_expr(e: &mut Expr) {
            e.span = crate::span::Span::DUMMY;
            e.id = ExprId(0);
            match &mut e.kind {
                ExprKind::FieldAccess { receiver, .. } => walk_expr(receiver),
                ExprKind::Call { receiver, args, .. } => {
                    if let Some(r) = receiver {
                        walk_expr(r);
                    }
                    args.iter_mut().for_each(walk_expr);
                }
                ExprKind::New { args, .. } => args.iter_mut().for_each(walk_expr),
                ExprKind::Assign { lhs, rhs, .. } => {
                    walk_expr(lhs);
                    walk_expr(rhs);
                }
                ExprKind::Binary { lhs, rhs, .. } => {
                    walk_expr(lhs);
                    walk_expr(rhs);
                }
                ExprKind::Unary { expr, .. }
                | ExprKind::Postfix { expr, .. }
                | ExprKind::Cast { expr, .. }
                | ExprKind::InstanceOf { expr, .. } => walk_expr(expr),
                ExprKind::Conditional { cond, then_expr, else_expr } => {
                    walk_expr(cond);
                    walk_expr(then_expr);
                    walk_expr(else_expr);
                }
                ExprKind::ArrayAccess { array, index } => {
                    walk_expr(array);
                    walk_expr(index);
                }
                ExprKind::Literal(_) | ExprKind::Name(_) | ExprKind::This => {}
            }
        }
        fn walk_stmt(s: &mut Stmt) {
            s.span = crate::span::Span::DUMMY;
            match &mut s.kind {
                StmtKind::Block(b) => walk_block(b),
                StmtKind::LocalVar { init, .. } => {
                    if let Some(e) = init {
                        walk_expr(e);
                    }
                }
                StmtKind::Expr(e) | StmtKind::Throw(e) => walk_expr(e),
                StmtKind::If { cond, then_branch, else_branch } => {
                    walk_expr(cond);
                    walk_stmt(then_branch);
                    if let Some(e) = else_branch {
                        walk_stmt(e);
                    }
                }
                StmtKind::While { cond, body } => {
                    walk_expr(cond);
                    walk_stmt(body);
                }
                StmtKind::DoWhile { body, cond } => {
                    walk_stmt(body);
                    walk_expr(cond);
                }
                StmtKind::Switch { scrutinee, cases } => {
                    walk_expr(scrutinee);
                    for c in cases {
                        for l in c.labels.iter_mut().flatten() {
                            walk_expr(l);
                        }
                        c.body.iter_mut().for_each(walk_stmt);
                    }
                }
                StmtKind::For { init, cond, update, body } => {
                    init.iter_mut().for_each(walk_stmt);
                    if let Some(c) = cond {
                        walk_expr(c);
                    }
                    update.iter_mut().for_each(walk_expr);
                    walk_stmt(body);
                }
                StmtKind::ForEach { iterable, body, .. } => {
                    walk_expr(iterable);
                    walk_stmt(body);
                }
                StmtKind::Return(v) => {
                    if let Some(e) = v {
                        walk_expr(e);
                    }
                }
                StmtKind::Assert { cond, message } => {
                    walk_expr(cond);
                    if let Some(m) = message {
                        walk_expr(m);
                    }
                }
                StmtKind::Synchronized { target, body } => {
                    walk_expr(target);
                    walk_block(body);
                }
                StmtKind::Try { body, catches, finally } => {
                    walk_block(body);
                    for c in catches {
                        walk_block(&mut c.body);
                    }
                    if let Some(f) = finally {
                        walk_block(f);
                    }
                }
                StmtKind::Break | StmtKind::Continue | StmtKind::Empty => {}
            }
        }
        fn walk_block(b: &mut Block) {
            b.span = crate::span::Span::DUMMY;
            b.stmts.iter_mut().for_each(walk_stmt);
        }
        for imp in &mut u.imports {
            imp.span = crate::span::Span::DUMMY;
        }
        for t in &mut u.types {
            t.span = crate::span::Span::DUMMY;
            for a in &mut t.annotations {
                a.span = crate::span::Span::DUMMY;
            }
            for m in &mut t.members {
                match m {
                    Member::Field(f) => {
                        f.span = crate::span::Span::DUMMY;
                        for a in &mut f.annotations {
                            a.span = crate::span::Span::DUMMY;
                        }
                        if let Some(e) = &mut f.init {
                            walk_expr(e);
                        }
                    }
                    Member::Method(md) => {
                        md.span = crate::span::Span::DUMMY;
                        for a in &mut md.annotations {
                            a.span = crate::span::Span::DUMMY;
                        }
                        for p in &mut md.params {
                            p.span = crate::span::Span::DUMMY;
                            for a in &mut p.annotations {
                                a.span = crate::span::Span::DUMMY;
                            }
                        }
                        if let Some(b) = &mut md.body {
                            walk_block(b);
                        }
                    }
                }
            }
        }
        u
    }

    #[test]
    fn round_trips_figure3() {
        let src = r#"package demo;
import java.util.Iterator;

class Row {
    Collection<Integer> entries;
    Iterator<Integer> createColIter() {
        return entries.iterator();
    }
    void add(int val) { }
}

class App {
    Row copy(Row original) {
        Iterator<Integer> iter = original.createColIter();
        Row result = new Row();
        while (iter.hasNext()) {
            result.add(iter.next());
        }
        return result;
    }
    @Test
    void testParseCSV() {
        Row r1 = parseCSVRow("1,2,3,4");
        int sum = r1.createColIter().next() + r1.createColIter().next();
        assert sum != 5;
    }
}
"#;
        let printed = print_unit(&parse(src).unwrap());
        assert_eq!(normalize(src), normalize(&printed), "printed:\n{printed}");
    }

    #[test]
    fn round_trips_annotations() {
        let src = r#"interface Iterator<T> {
    @Perm(requires = "full(this) in HASNEXT", ensures = "full(this) in ALIVE")
    T next();
    @TrueIndicates("HASNEXT")
    boolean hasNext();
}
"#;
        let printed = print_unit(&parse(src).unwrap());
        assert_eq!(normalize(src), normalize(&printed), "printed:\n{printed}");
    }

    #[test]
    fn parenthesization_preserves_shape() {
        for src in ["(1 + 2) * 3", "-(a + b)", "a - (b - c)", "(a ? b : c).toString()", "!(a && b)"]
        {
            let e = parse_expr(src).unwrap();
            let printed = print_expr(&e);
            let re = parse_expr(&printed).unwrap();
            assert_eq!(
                format!("{:?}", strip(e)),
                format!("{:?}", strip(re)),
                "source `{src}` printed as `{printed}`"
            );
        }
        fn strip(mut e: Expr) -> Expr {
            fn go(e: &mut Expr) {
                e.span = crate::span::Span::DUMMY;
                e.id = ExprId(0);
                match &mut e.kind {
                    ExprKind::Binary { lhs, rhs, .. } => {
                        go(lhs);
                        go(rhs);
                    }
                    ExprKind::Unary { expr, .. } => go(expr),
                    ExprKind::Conditional { cond, then_expr, else_expr } => {
                        go(cond);
                        go(then_expr);
                        go(else_expr);
                    }
                    ExprKind::Call { receiver, args, .. } => {
                        if let Some(r) = receiver {
                            go(r);
                        }
                        args.iter_mut().for_each(go);
                    }
                    _ => {}
                }
            }
            go(&mut e);
            e
        }
    }

    #[test]
    fn round_trips_try_switch_dowhile() {
        for src in [
            "class C { void m(Stream s) { try { s.read(); } catch (E e) { log(e); } finally { s.close(); } } void log(Object e) {} }",
            "class C { int m(int x) { switch (x) { case 1: return 1; case 2: default: return 2; } } }",
            "class C { void m(Iterator<Integer> it) { do { it.next(); } while (it.hasNext()); } }",
        ] {
            let printed1 = print_unit(&parse(src).unwrap());
            let printed2 = print_unit(&parse(&printed1).unwrap());
            assert_eq!(printed1, printed2, "not a fixpoint for `{src}`");
        }
    }

    #[test]
    fn prints_control_flow_with_braces() {
        // The printer normalizes unbraced bodies to blocks, so exact AST
        // equality does not hold here; instead the printed form must be a
        // fixpoint: print(parse(print(parse(src)))) == print(parse(src)).
        let src = "class C { void m() { if (a) b(); else if (c) d(); while (e) f(); } }";
        let printed1 = print_unit(&parse(src).unwrap());
        let printed2 = print_unit(&parse(&printed1).unwrap());
        assert_eq!(printed1, printed2);
        assert!(printed1.contains("} else if ("));
    }
}
