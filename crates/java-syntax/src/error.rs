//! Lexing and parsing errors.

use crate::span::Span;
use std::fmt;

/// Broad classification of a [`ParseError`], for callers that react
/// differently to different failure shapes (the pipeline's lenient mode
/// reports the kind; the fault harness asserts specific kinds appear).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParseErrorKind {
    /// A token where the grammar expected something else (the default).
    #[default]
    Syntax,
    /// The source ended mid-construct (truncated input).
    UnexpectedEof,
    /// A malformed numeric or string literal.
    InvalidLiteral,
    /// Expressions, statements or types nested beyond the parser's depth
    /// limit — the guard that turns a would-be stack overflow (a process
    /// abort nothing can catch) into an ordinary error.
    NestingTooDeep,
}

impl fmt::Display for ParseErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ParseErrorKind::Syntax => "syntax error",
            ParseErrorKind::UnexpectedEof => "unexpected end of input",
            ParseErrorKind::InvalidLiteral => "invalid literal",
            ParseErrorKind::NestingTooDeep => "nesting too deep",
        })
    }
}

/// An error produced while lexing or parsing Java source.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Where in the source the error occurred.
    pub span: Span,
    /// What shape of failure this is.
    pub kind: ParseErrorKind,
}

impl ParseError {
    /// Creates a [`ParseErrorKind::Syntax`] error at a span.
    pub fn new(message: impl Into<String>, span: Span) -> ParseError {
        ParseError { message: message.into(), span, kind: ParseErrorKind::Syntax }
    }

    /// Creates an error of a specific kind at a span.
    pub fn with_kind(message: impl Into<String>, span: Span, kind: ParseErrorKind) -> ParseError {
        ParseError { message: message.into(), span, kind }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.span, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Result alias used throughout the front end.
pub type Result<T> = std::result::Result<T, ParseError>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Pos, Span};

    #[test]
    fn display_includes_position_and_message() {
        let e =
            ParseError::new("unexpected token", Span::new(Pos::new(10, 3, 4), Pos::new(11, 3, 5)));
        assert_eq!(e.to_string(), "3:4: unexpected token");
        assert_eq!(e.kind, ParseErrorKind::Syntax);
    }

    #[test]
    fn with_kind_carries_the_kind() {
        let e = ParseError::with_kind("ran out", Span::DUMMY, ParseErrorKind::UnexpectedEof);
        assert_eq!(e.kind, ParseErrorKind::UnexpectedEof);
        assert_eq!(ParseErrorKind::NestingTooDeep.to_string(), "nesting too deep");
    }

    #[test]
    fn error_trait_object_usable() {
        let e = ParseError::new("boom", Span::DUMMY);
        let b: Box<dyn std::error::Error> = Box::new(e);
        assert!(b.to_string().contains("boom"));
    }
}
