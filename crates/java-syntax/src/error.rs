//! Lexing and parsing errors.

use crate::span::Span;
use std::fmt;

/// An error produced while lexing or parsing Java source.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Where in the source the error occurred.
    pub span: Span,
}

impl ParseError {
    /// Creates an error at a span.
    pub fn new(message: impl Into<String>, span: Span) -> ParseError {
        ParseError { message: message.into(), span }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.span, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Result alias used throughout the front end.
pub type Result<T> = std::result::Result<T, ParseError>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Pos, Span};

    #[test]
    fn display_includes_position_and_message() {
        let e =
            ParseError::new("unexpected token", Span::new(Pos::new(10, 3, 4), Pos::new(11, 3, 5)));
        assert_eq!(e.to_string(), "3:4: unexpected token");
    }

    #[test]
    fn error_trait_object_usable() {
        let e = ParseError::new("boom", Span::DUMMY);
        let b: Box<dyn std::error::Error> = Box::new(e);
        assert!(b.to_string().contains("boom"));
    }
}
