//! Recursive-descent parser for the Java subset.
//!
//! The grammar covers what the ANEK/PLURAL pipeline and the benchmark corpus
//! need: package/import headers, class and interface declarations with
//! generics, annotations with literal arguments, fields, methods,
//! constructors, structured statements and a conventional
//! precedence-climbing expression grammar.

use crate::ast::*;
use crate::error::{ParseError, ParseErrorKind, Result};
use crate::lexer::lex;
use crate::span::Span;
use crate::token::{Keyword, Token, TokenKind};

/// Maximum nesting depth of recursive constructs (expressions, statements,
/// types). Far above anything a real program reaches; low enough that
/// pathological inputs (`((((…`) fail with [`ParseErrorKind::NestingTooDeep`]
/// instead of overflowing the stack, which would abort the whole process.
/// Each level costs several parser frames (~25 KiB in unoptimized builds),
/// so the bound must hold inside the 2 MiB stack of a default spawned
/// thread: overflow was measured between 60 and 80 levels there.
const MAX_DEPTH: usize = 50;

/// Parses a full compilation unit from source text.
///
/// # Errors
///
/// Returns the first lex or parse error encountered; there is no error
/// recovery (the corpus is machine-generated or hand-maintained, so the
/// first error is the actionable one).
pub fn parse(src: &str) -> Result<CompilationUnit> {
    let tokens = lex(src)?;
    Parser::new(tokens).compilation_unit()
}

/// Parses a single expression (used by tests and the spec tooling).
///
/// # Errors
///
/// Returns an error if the input is not exactly one expression.
pub fn parse_expr(src: &str) -> Result<Expr> {
    let tokens = lex(src)?;
    let mut p = Parser::new(tokens);
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    next_expr_id: u32,
    depth: usize,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Parser {
        Parser { tokens, pos: 0, next_expr_id: 0, depth: 0 }
    }

    /// Enters one level of recursion; errors out past [`MAX_DEPTH`]. The
    /// recursion hubs (`stmt`, `unary`, `type_ref`) are thin wrappers that
    /// call this on entry and [`Parser::ascend`] on every exit path — all
    /// deep nesting (blocks, parenthesized expressions, generic types)
    /// passes through one of them per level.
    fn descend(&mut self) -> Result<()> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(ParseError::with_kind(
                format!("construct nested deeper than {MAX_DEPTH} levels"),
                self.peek().span,
                ParseErrorKind::NestingTooDeep,
            ));
        }
        Ok(())
    }

    fn ascend(&mut self) {
        self.depth -= 1;
    }

    fn fresh_id(&mut self) -> ExprId {
        let id = ExprId(self.next_expr_id);
        self.next_expr_id += 1;
        id
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn peek_at(&self, n: usize) -> &Token {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at(&self, kind: &TokenKind) -> bool {
        self.peek_kind() == kind
    }

    fn at_keyword(&self, kw: Keyword) -> bool {
        self.peek().is_keyword(kw)
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, kw: Keyword) -> bool {
        if self.at_keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token> {
        if self.at(kind) {
            Ok(self.bump())
        } else {
            Err(self.unexpected(&format!("`{kind}`")))
        }
    }

    fn expect_keyword(&mut self, kw: Keyword) -> Result<Token> {
        if self.at_keyword(kw) {
            Ok(self.bump())
        } else {
            Err(self.unexpected(&format!("`{kw}`")))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span)> {
        match self.peek_kind().clone() {
            TokenKind::Ident(name) => {
                let t = self.bump();
                Ok((name, t.span))
            }
            _ => Err(self.unexpected("identifier")),
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if self.at(&TokenKind::Eof) {
            Ok(())
        } else {
            Err(self.unexpected("end of input"))
        }
    }

    fn unexpected(&self, wanted: &str) -> ParseError {
        let kind = if self.at(&TokenKind::Eof) {
            ParseErrorKind::UnexpectedEof
        } else {
            ParseErrorKind::Syntax
        };
        ParseError::with_kind(
            format!("expected {wanted}, found `{}`", self.peek_kind()),
            self.peek().span,
            kind,
        )
    }

    // ===================== Top level =====================

    fn compilation_unit(&mut self) -> Result<CompilationUnit> {
        let mut unit = CompilationUnit::default();
        if self.at_keyword(Keyword::Package) {
            self.bump();
            unit.package = Some(self.qualified_name()?);
            self.expect(&TokenKind::Semi)?;
        }
        while self.at_keyword(Keyword::Import) {
            let start = self.bump().span;
            let is_static = self.eat_keyword(Keyword::Static);
            let mut segments = vec![self.expect_ident()?.0];
            let mut wildcard = false;
            while self.eat(&TokenKind::Dot) {
                if self.eat(&TokenKind::Star) {
                    wildcard = true;
                    break;
                }
                segments.push(self.expect_ident()?.0);
            }
            let end = self.expect(&TokenKind::Semi)?.span;
            unit.imports.push(Import {
                path: QualifiedName(segments),
                is_static,
                wildcard,
                span: start.to(end),
            });
        }
        while !self.at(&TokenKind::Eof) {
            unit.types.push(self.type_decl()?);
        }
        Ok(unit)
    }

    fn qualified_name(&mut self) -> Result<QualifiedName> {
        let mut segments = vec![self.expect_ident()?.0];
        while self.at(&TokenKind::Dot) && matches!(self.peek_at(1).kind, TokenKind::Ident(_)) {
            self.bump();
            segments.push(self.expect_ident()?.0);
        }
        Ok(QualifiedName(segments))
    }

    fn annotations(&mut self) -> Result<Vec<Annotation>> {
        let mut anns = Vec::new();
        while self.at(&TokenKind::At) {
            let start = self.bump().span;
            let name = self.qualified_name()?;
            let mut span = start;
            let args = if self.eat(&TokenKind::LParen) {
                if self.eat(&TokenKind::RParen) {
                    AnnotationArgs::None
                } else if matches!(self.peek_kind(), TokenKind::Ident(_))
                    && self.peek_at(1).kind == TokenKind::Assign
                {
                    let mut pairs = Vec::new();
                    loop {
                        let (key, _) = self.expect_ident()?;
                        self.expect(&TokenKind::Assign)?;
                        let lit = self.annotation_literal()?;
                        pairs.push((key, lit));
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                    AnnotationArgs::Pairs(pairs)
                } else {
                    let lit = self.annotation_literal()?;
                    self.expect(&TokenKind::RParen)?;
                    AnnotationArgs::Single(lit)
                }
            } else {
                AnnotationArgs::None
            };
            span = span.to(self.tokens[self.pos.saturating_sub(1)].span);
            anns.push(Annotation { name, args, span });
        }
        Ok(anns)
    }

    fn annotation_literal(&mut self) -> Result<Lit> {
        match self.peek_kind().clone() {
            TokenKind::StringLit(s) => {
                self.bump();
                Ok(Lit::Str(s))
            }
            TokenKind::IntLit(v) => {
                self.bump();
                Ok(Lit::Int(v))
            }
            TokenKind::DoubleLit(v) => {
                self.bump();
                Ok(Lit::Double(v))
            }
            TokenKind::BoolLit(b) => {
                self.bump();
                Ok(Lit::Bool(b))
            }
            TokenKind::CharLit(c) => {
                self.bump();
                Ok(Lit::Char(c))
            }
            _ => Err(self.unexpected("annotation literal")),
        }
    }

    fn modifiers(&mut self) -> Modifiers {
        let mut m = Modifiers::default();
        loop {
            match self.peek_kind() {
                TokenKind::Keyword(Keyword::Public) => m.public = true,
                TokenKind::Keyword(Keyword::Private) => m.private = true,
                TokenKind::Keyword(Keyword::Protected) => m.protected = true,
                TokenKind::Keyword(Keyword::Static) => m.is_static = true,
                TokenKind::Keyword(Keyword::Final) => m.is_final = true,
                TokenKind::Keyword(Keyword::Abstract) => m.is_abstract = true,
                TokenKind::Keyword(Keyword::Synchronized) => m.is_synchronized = true,
                TokenKind::Keyword(Keyword::Native)
                | TokenKind::Keyword(Keyword::Transient)
                | TokenKind::Keyword(Keyword::Volatile) => m.other = true,
                _ => return m,
            }
            self.bump();
        }
    }

    fn type_decl(&mut self) -> Result<TypeDecl> {
        let annotations = self.annotations()?;
        let start = self.peek().span;
        let modifiers = self.modifiers();
        let kind = if self.eat_keyword(Keyword::Class) {
            TypeKind::Class
        } else if self.eat_keyword(Keyword::Interface) {
            TypeKind::Interface
        } else {
            return Err(self.unexpected("`class` or `interface`"));
        };
        let (name, _) = self.expect_ident()?;
        let type_params = self.opt_type_params()?;
        let mut extends = Vec::new();
        if self.eat_keyword(Keyword::Extends) {
            extends.push(self.type_ref()?);
            while self.eat(&TokenKind::Comma) {
                extends.push(self.type_ref()?);
            }
        }
        let mut implements = Vec::new();
        if self.eat_keyword(Keyword::Implements) {
            implements.push(self.type_ref()?);
            while self.eat(&TokenKind::Comma) {
                implements.push(self.type_ref()?);
            }
        }
        self.expect(&TokenKind::LBrace)?;
        let mut members = Vec::new();
        while !self.at(&TokenKind::RBrace) && !self.at(&TokenKind::Eof) {
            members.push(self.member(&name)?);
        }
        let end = self.expect(&TokenKind::RBrace)?.span;
        Ok(TypeDecl {
            annotations,
            modifiers,
            kind,
            name,
            type_params,
            extends,
            implements,
            members,
            span: start.to(end),
        })
    }

    fn opt_type_params(&mut self) -> Result<Vec<String>> {
        let mut params = Vec::new();
        if self.eat(&TokenKind::Lt) {
            loop {
                let (name, _) = self.expect_ident()?;
                // Erase bounds: `T extends Foo & Bar`.
                if self.eat_keyword(Keyword::Extends) {
                    self.type_ref()?;
                    while self.eat(&TokenKind::Amp) {
                        self.type_ref()?;
                    }
                }
                params.push(name);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::Gt)?;
        }
        Ok(params)
    }

    fn member(&mut self, class_name: &str) -> Result<Member> {
        let annotations = self.annotations()?;
        let start = self.peek().span;
        let modifiers = self.modifiers();
        let type_params = self.opt_type_params()?;

        // Constructor: `Name (` where Name == class name.
        if let TokenKind::Ident(name) = self.peek_kind() {
            if name == class_name && self.peek_at(1).kind == TokenKind::LParen {
                let (name, _) = self.expect_ident()?;
                return self.finish_method(annotations, modifiers, type_params, None, name, start);
            }
        }

        let ty = self.return_type()?;
        let (name, _) = self.expect_ident()?;
        if self.at(&TokenKind::LParen) {
            let return_type = Some(ty);
            self.finish_method(annotations, modifiers, type_params, return_type, name, start)
        } else {
            // Field declaration; possibly multiple declarators.
            if !type_params.is_empty() {
                return Err(ParseError::new("type parameters on a field", start));
            }
            let mut decls = Vec::new();
            let mut current_name = name;
            loop {
                let init = if self.eat(&TokenKind::Assign) { Some(self.expr()?) } else { None };
                decls.push(FieldDecl {
                    annotations: annotations.clone(),
                    modifiers,
                    ty: ty.clone(),
                    name: current_name,
                    init,
                    span: start,
                });
                if self.eat(&TokenKind::Comma) {
                    current_name = self.expect_ident()?.0;
                } else {
                    break;
                }
            }
            let end = self.expect(&TokenKind::Semi)?.span;
            match decls.pop() {
                Some(mut fd) if decls.is_empty() => {
                    fd.span = start.to(end);
                    Ok(Member::Field(fd))
                }
                // The subset keeps one declarator per FieldDecl; we only
                // support multi-declarator fields by flattening at the
                // TypeDecl level, so reject here to keep the AST faithful.
                _ => Err(ParseError::new(
                    "multiple declarators per field declaration are not supported; split them",
                    start.to(end),
                )),
            }
        }
    }

    fn return_type(&mut self) -> Result<TypeRef> {
        if self.eat_keyword(Keyword::Void) {
            let mut t = TypeRef::Void;
            while self.at(&TokenKind::LBracket) {
                // `void[]` is illegal; let the type checker complain, parse defensively.
                self.bump();
                self.expect(&TokenKind::RBracket)?;
                t = TypeRef::Array(Box::new(t));
            }
            Ok(t)
        } else {
            self.type_ref()
        }
    }

    fn finish_method(
        &mut self,
        annotations: Vec<Annotation>,
        modifiers: Modifiers,
        type_params: Vec<String>,
        return_type: Option<TypeRef>,
        name: String,
        start: Span,
    ) -> Result<Member> {
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.at(&TokenKind::RParen) {
            loop {
                let p_anns = self.annotations()?;
                let p_start = self.peek().span;
                let is_final = self.eat_keyword(Keyword::Final);
                let ty = self.type_ref()?;
                let (p_name, p_end) = self.expect_ident()?;
                params.push(Param {
                    annotations: p_anns,
                    is_final,
                    ty,
                    name: p_name,
                    span: p_start.to(p_end),
                });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        let mut throws = Vec::new();
        if self.eat_keyword(Keyword::Throws) {
            throws.push(self.type_ref()?);
            while self.eat(&TokenKind::Comma) {
                throws.push(self.type_ref()?);
            }
        }
        let (body, end) = if self.at(&TokenKind::LBrace) {
            let b = self.block()?;
            let sp = b.span;
            (Some(b), sp)
        } else {
            let sp = self.expect(&TokenKind::Semi)?.span;
            (None, sp)
        };
        Ok(Member::Method(MethodDecl {
            annotations,
            modifiers,
            type_params,
            return_type,
            name,
            params,
            throws,
            body,
            span: start.to(end),
        }))
    }

    // ===================== Types =====================

    fn type_ref(&mut self) -> Result<TypeRef> {
        self.descend()?;
        let r = self.type_ref_inner();
        self.ascend();
        r
    }

    fn type_ref_inner(&mut self) -> Result<TypeRef> {
        let mut base = match self.peek_kind().clone() {
            TokenKind::Keyword(kw) => {
                let prim = match kw {
                    Keyword::Boolean => Some(PrimitiveType::Boolean),
                    Keyword::Byte => Some(PrimitiveType::Byte),
                    Keyword::Short => Some(PrimitiveType::Short),
                    Keyword::Int => Some(PrimitiveType::Int),
                    Keyword::Long => Some(PrimitiveType::Long),
                    Keyword::Char => Some(PrimitiveType::Char),
                    Keyword::Float => Some(PrimitiveType::Float),
                    Keyword::Double => Some(PrimitiveType::Double),
                    _ => None,
                };
                match prim {
                    Some(p) => {
                        self.bump();
                        TypeRef::Primitive(p)
                    }
                    None => return Err(self.unexpected("type")),
                }
            }
            TokenKind::Question => {
                self.bump();
                // `? extends T` / `? super T` — erase the bound.
                if self.eat_keyword(Keyword::Extends) || self.eat_keyword(Keyword::Super) {
                    self.type_ref()?;
                }
                TypeRef::Wildcard
            }
            TokenKind::Ident(_) => {
                let name = self.qualified_name()?;
                let args = if self.at(&TokenKind::Lt) && self.generic_args_follow() {
                    self.type_args()?
                } else {
                    Vec::new()
                };
                TypeRef::Named { name, args }
            }
            _ => return Err(self.unexpected("type")),
        };
        while self.at(&TokenKind::LBracket) && self.peek_at(1).kind == TokenKind::RBracket {
            self.bump();
            self.bump();
            base = TypeRef::Array(Box::new(base));
        }
        Ok(base)
    }

    /// Lookahead to distinguish `a < b` (comparison) from `A<B>` (generics).
    /// Scans forward from a `<` for a balanced argument list containing only
    /// type-ish tokens.
    fn generic_args_follow(&self) -> bool {
        debug_assert!(self.at(&TokenKind::Lt));
        let mut depth = 0usize;
        let mut i = 0usize;
        loop {
            let t = &self.peek_at(i).kind;
            match t {
                TokenKind::Lt => depth += 1,
                TokenKind::Gt => {
                    depth -= 1;
                    if depth == 0 {
                        return true;
                    }
                }
                TokenKind::Ident(_)
                | TokenKind::Dot
                | TokenKind::Comma
                | TokenKind::Question
                | TokenKind::LBracket
                | TokenKind::RBracket
                | TokenKind::Keyword(Keyword::Extends)
                | TokenKind::Keyword(Keyword::Super)
                | TokenKind::Keyword(Keyword::Boolean)
                | TokenKind::Keyword(Keyword::Byte)
                | TokenKind::Keyword(Keyword::Short)
                | TokenKind::Keyword(Keyword::Int)
                | TokenKind::Keyword(Keyword::Long)
                | TokenKind::Keyword(Keyword::Char)
                | TokenKind::Keyword(Keyword::Float)
                | TokenKind::Keyword(Keyword::Double) => {}
                _ => return false,
            }
            i += 1;
            if i > 64 {
                return false;
            }
        }
    }

    fn type_args(&mut self) -> Result<Vec<TypeRef>> {
        self.expect(&TokenKind::Lt)?;
        let mut args = Vec::new();
        if !self.at(&TokenKind::Gt) {
            loop {
                args.push(self.type_ref()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::Gt)?;
        Ok(args)
    }

    // ===================== Statements =====================

    fn block(&mut self) -> Result<Block> {
        let start = self.expect(&TokenKind::LBrace)?.span;
        let mut stmts = Vec::new();
        while !self.at(&TokenKind::RBrace) && !self.at(&TokenKind::Eof) {
            stmts.push(self.stmt()?);
        }
        let end = self.expect(&TokenKind::RBrace)?.span;
        Ok(Block { stmts, span: start.to(end) })
    }

    fn stmt(&mut self) -> Result<Stmt> {
        self.descend()?;
        let r = self.stmt_inner();
        self.ascend();
        r
    }

    fn stmt_inner(&mut self) -> Result<Stmt> {
        let start = self.peek().span;
        match self.peek_kind().clone() {
            TokenKind::LBrace => {
                let b = self.block()?;
                let span = b.span;
                Ok(Stmt { kind: StmtKind::Block(b), span })
            }
            TokenKind::Semi => {
                let span = self.bump().span;
                Ok(Stmt { kind: StmtKind::Empty, span })
            }
            TokenKind::Keyword(Keyword::If) => self.if_stmt(start),
            TokenKind::Keyword(Keyword::While) => self.while_stmt(start),
            TokenKind::Keyword(Keyword::Do) => {
                self.bump();
                let body = Box::new(self.stmt()?);
                self.expect_keyword(Keyword::While)?;
                self.expect(&TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                let end = self.expect(&TokenKind::Semi)?.span;
                Ok(Stmt { kind: StmtKind::DoWhile { body, cond }, span: start.to(end) })
            }
            TokenKind::Keyword(Keyword::Switch) => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let scrutinee = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                self.expect(&TokenKind::LBrace)?;
                let mut cases: Vec<SwitchCase> = Vec::new();
                while !self.at(&TokenKind::RBrace) && !self.at(&TokenKind::Eof) {
                    let mut labels = Vec::new();
                    loop {
                        if self.eat_keyword(Keyword::Case) {
                            labels.push(Some(self.expr()?));
                            self.expect(&TokenKind::Colon)?;
                        } else if self.eat_keyword(Keyword::Default) {
                            labels.push(None);
                            self.expect(&TokenKind::Colon)?;
                        } else {
                            break;
                        }
                    }
                    if labels.is_empty() {
                        return Err(self.unexpected("`case` or `default`"));
                    }
                    let mut body = Vec::new();
                    while !self.at(&TokenKind::RBrace)
                        && !self.at_keyword(Keyword::Case)
                        && !self.at_keyword(Keyword::Default)
                        && !self.at(&TokenKind::Eof)
                    {
                        body.push(self.stmt()?);
                    }
                    cases.push(SwitchCase { labels, body });
                }
                let end = self.expect(&TokenKind::RBrace)?.span;
                Ok(Stmt { kind: StmtKind::Switch { scrutinee, cases }, span: start.to(end) })
            }
            TokenKind::Keyword(Keyword::For) => self.for_stmt(start),
            TokenKind::Keyword(Keyword::Return) => {
                self.bump();
                let value = if self.at(&TokenKind::Semi) { None } else { Some(self.expr()?) };
                let end = self.expect(&TokenKind::Semi)?.span;
                Ok(Stmt { kind: StmtKind::Return(value), span: start.to(end) })
            }
            TokenKind::Keyword(Keyword::Assert) => {
                self.bump();
                let cond = self.expr()?;
                let message = if self.eat(&TokenKind::Colon) { Some(self.expr()?) } else { None };
                let end = self.expect(&TokenKind::Semi)?.span;
                Ok(Stmt { kind: StmtKind::Assert { cond, message }, span: start.to(end) })
            }
            TokenKind::Keyword(Keyword::Synchronized) => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let target = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                let body = self.block()?;
                let span = start.to(body.span);
                Ok(Stmt { kind: StmtKind::Synchronized { target, body }, span })
            }
            TokenKind::Keyword(Keyword::Try) => {
                self.bump();
                let body = self.block()?;
                let mut catches = Vec::new();
                while self.at_keyword(Keyword::Catch) {
                    self.bump();
                    self.expect(&TokenKind::LParen)?;
                    let ty = self.type_ref()?;
                    let (name, _) = self.expect_ident()?;
                    self.expect(&TokenKind::RParen)?;
                    let cbody = self.block()?;
                    catches.push(CatchClause { ty, name, body: cbody });
                }
                let finally =
                    if self.eat_keyword(Keyword::Finally) { Some(self.block()?) } else { None };
                let end = finally
                    .as_ref()
                    .map(|b| b.span)
                    .or_else(|| catches.last().map(|c| c.body.span))
                    .unwrap_or(body.span);
                Ok(Stmt { kind: StmtKind::Try { body, catches, finally }, span: start.to(end) })
            }
            TokenKind::Keyword(Keyword::Throw) => {
                self.bump();
                let e = self.expr()?;
                let end = self.expect(&TokenKind::Semi)?.span;
                Ok(Stmt { kind: StmtKind::Throw(e), span: start.to(end) })
            }
            TokenKind::Keyword(Keyword::Break) => {
                self.bump();
                let end = self.expect(&TokenKind::Semi)?.span;
                Ok(Stmt { kind: StmtKind::Break, span: start.to(end) })
            }
            TokenKind::Keyword(Keyword::Continue) => {
                self.bump();
                let end = self.expect(&TokenKind::Semi)?.span;
                Ok(Stmt { kind: StmtKind::Continue, span: start.to(end) })
            }
            TokenKind::Keyword(Keyword::Final) => self.local_var_stmt(start),
            _ => {
                if self.local_var_decl_follows() {
                    self.local_var_stmt(start)
                } else {
                    let e = self.expr()?;
                    let end = self.expect(&TokenKind::Semi)?.span;
                    Ok(Stmt { kind: StmtKind::Expr(e), span: start.to(end) })
                }
            }
        }
    }

    fn if_stmt(&mut self, start: Span) -> Result<Stmt> {
        self.expect_keyword(Keyword::If)?;
        self.expect(&TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(&TokenKind::RParen)?;
        let then_branch = Box::new(self.stmt()?);
        let (else_branch, end) = if self.eat_keyword(Keyword::Else) {
            let e = self.stmt()?;
            let sp = e.span;
            (Some(Box::new(e)), sp)
        } else {
            (None, then_branch.span)
        };
        Ok(Stmt { kind: StmtKind::If { cond, then_branch, else_branch }, span: start.to(end) })
    }

    fn while_stmt(&mut self, start: Span) -> Result<Stmt> {
        self.expect_keyword(Keyword::While)?;
        self.expect(&TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(&TokenKind::RParen)?;
        let body = Box::new(self.stmt()?);
        let span = start.to(body.span);
        Ok(Stmt { kind: StmtKind::While { cond, body }, span })
    }

    fn for_stmt(&mut self, start: Span) -> Result<Stmt> {
        self.expect_keyword(Keyword::For)?;
        self.expect(&TokenKind::LParen)?;

        // Detect for-each: `Type name : expr`.
        let checkpoint = self.pos;
        if self.local_var_decl_follows() || self.at_keyword(Keyword::Final) {
            self.eat_keyword(Keyword::Final);
            if let Ok(ty) = self.type_ref() {
                if let Ok((name, _)) = self.expect_ident() {
                    if self.eat(&TokenKind::Colon) {
                        let iterable = self.expr()?;
                        self.expect(&TokenKind::RParen)?;
                        let body = Box::new(self.stmt()?);
                        let span = start.to(body.span);
                        return Ok(Stmt {
                            kind: StmtKind::ForEach { ty, name, iterable, body },
                            span,
                        });
                    }
                }
            }
            self.pos = checkpoint;
        }

        let mut init = Vec::new();
        if !self.at(&TokenKind::Semi) {
            let i_start = self.peek().span;
            if self.local_var_decl_follows() || self.at_keyword(Keyword::Final) {
                init.push(self.local_var_no_semi(i_start)?);
            } else {
                let e = self.expr()?;
                let sp = e.span;
                init.push(Stmt { kind: StmtKind::Expr(e), span: sp });
                while self.eat(&TokenKind::Comma) {
                    let e = self.expr()?;
                    let sp = e.span;
                    init.push(Stmt { kind: StmtKind::Expr(e), span: sp });
                }
            }
        }
        self.expect(&TokenKind::Semi)?;
        let cond = if self.at(&TokenKind::Semi) { None } else { Some(self.expr()?) };
        self.expect(&TokenKind::Semi)?;
        let mut update = Vec::new();
        if !self.at(&TokenKind::RParen) {
            update.push(self.expr()?);
            while self.eat(&TokenKind::Comma) {
                update.push(self.expr()?);
            }
        }
        self.expect(&TokenKind::RParen)?;
        let body = Box::new(self.stmt()?);
        let span = start.to(body.span);
        Ok(Stmt { kind: StmtKind::For { init, cond, update, body }, span })
    }

    fn local_var_stmt(&mut self, start: Span) -> Result<Stmt> {
        let mut s = self.local_var_no_semi(start)?;
        let end = self.expect(&TokenKind::Semi)?.span;
        s.span = s.span.to(end);
        Ok(s)
    }

    fn local_var_no_semi(&mut self, start: Span) -> Result<Stmt> {
        self.eat_keyword(Keyword::Final);
        let ty = self.type_ref()?;
        let (name, mut end) = self.expect_ident()?;
        let init = if self.eat(&TokenKind::Assign) {
            let e = self.expr()?;
            end = e.span;
            Some(e)
        } else {
            None
        };
        Ok(Stmt { kind: StmtKind::LocalVar { ty, name, init }, span: start.to(end) })
    }

    /// Heuristic lookahead: does a local variable declaration start here?
    /// True for `PrimType ...`, and for `Ident ... Ident` shapes like
    /// `Row r`, `Iterator<Integer> it`, `a.b.C x`, `int[] xs`.
    fn local_var_decl_follows(&self) -> bool {
        match self.peek_kind() {
            TokenKind::Keyword(
                Keyword::Boolean
                | Keyword::Byte
                | Keyword::Short
                | Keyword::Int
                | Keyword::Long
                | Keyword::Char
                | Keyword::Float
                | Keyword::Double,
            ) => true,
            TokenKind::Ident(_) => {
                // Scan over a qualified, possibly generic, possibly array type
                // and check the next token is an identifier.
                let mut i = 1;
                while let (TokenKind::Dot, TokenKind::Ident(_)) =
                    (&self.peek_at(i).kind, &self.peek_at(i + 1).kind)
                {
                    i += 2;
                }
                // Generic arguments.
                if self.peek_at(i).kind == TokenKind::Lt {
                    let mut depth = 0usize;
                    loop {
                        match &self.peek_at(i).kind {
                            TokenKind::Lt => depth += 1,
                            TokenKind::Gt => {
                                depth -= 1;
                                i += 1;
                                if depth == 0 {
                                    break;
                                }
                                continue;
                            }
                            TokenKind::Ident(_)
                            | TokenKind::Dot
                            | TokenKind::Comma
                            | TokenKind::Question
                            | TokenKind::LBracket
                            | TokenKind::RBracket
                            | TokenKind::Keyword(_) => {}
                            _ => return false,
                        }
                        i += 1;
                        if i > 64 {
                            return false;
                        }
                    }
                }
                // Array brackets.
                while self.peek_at(i).kind == TokenKind::LBracket
                    && self.peek_at(i + 1).kind == TokenKind::RBracket
                {
                    i += 2;
                }
                matches!(self.peek_at(i).kind, TokenKind::Ident(_))
            }
            _ => false,
        }
    }

    // ===================== Expressions =====================

    fn expr(&mut self) -> Result<Expr> {
        self.assignment()
    }

    fn mk(&mut self, kind: ExprKind, span: Span) -> Expr {
        Expr { kind, span, id: self.fresh_id() }
    }

    fn assignment(&mut self) -> Result<Expr> {
        let lhs = self.conditional()?;
        let op = match self.peek_kind() {
            TokenKind::Assign => Some(AssignOp::Assign),
            TokenKind::PlusAssign => Some(AssignOp::AddAssign),
            TokenKind::MinusAssign => Some(AssignOp::SubAssign),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.assignment()?;
            let span = lhs.span.to(rhs.span);
            Ok(self.mk(ExprKind::Assign { lhs: Box::new(lhs), op, rhs: Box::new(rhs) }, span))
        } else {
            Ok(lhs)
        }
    }

    fn conditional(&mut self) -> Result<Expr> {
        let cond = self.binary(0)?;
        if self.eat(&TokenKind::Question) {
            let then_expr = self.expr()?;
            self.expect(&TokenKind::Colon)?;
            let else_expr = self.conditional()?;
            let span = cond.span.to(else_expr.span);
            Ok(self.mk(
                ExprKind::Conditional {
                    cond: Box::new(cond),
                    then_expr: Box::new(then_expr),
                    else_expr: Box::new(else_expr),
                },
                span,
            ))
        } else {
            Ok(cond)
        }
    }

    fn binary_op(&self) -> Option<(BinaryOp, u8)> {
        use BinaryOp::*;
        let (op, prec) = match self.peek_kind() {
            TokenKind::OrOr => (Or, 1),
            TokenKind::AndAnd => (And, 2),
            TokenKind::Pipe => (BitOr, 3),
            TokenKind::Caret => (BitXor, 4),
            TokenKind::Amp => (BitAnd, 5),
            TokenKind::EqEq => (Eq, 6),
            TokenKind::NotEq => (Ne, 6),
            TokenKind::Lt => (Lt, 7),
            TokenKind::Le => (Le, 7),
            TokenKind::Gt => (Gt, 7),
            TokenKind::Ge => (Ge, 7),
            TokenKind::Plus => (Add, 8),
            TokenKind::Minus => (Sub, 8),
            TokenKind::Star => (Mul, 9),
            TokenKind::Slash => (Div, 9),
            TokenKind::Percent => (Rem, 9),
            _ => return None,
        };
        Some((op, prec))
    }

    fn binary(&mut self, min_prec: u8) -> Result<Expr> {
        let mut lhs = self.unary()?;
        loop {
            // `instanceof` sits at relational precedence.
            if min_prec <= 7 && self.at_keyword(Keyword::Instanceof) {
                self.bump();
                let ty = self.type_ref()?;
                let span = lhs.span;
                lhs = self.mk(ExprKind::InstanceOf { expr: Box::new(lhs), ty }, span);
                continue;
            }
            // Don't treat `<` as less-than when it opens generic arguments in
            // a type context — our expression grammar never produces that, so
            // plain comparison is fine here.
            let Some((op, prec)) = self.binary_op() else { break };
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary(prec + 1)?;
            let span = lhs.span.to(rhs.span);
            lhs = self.mk(ExprKind::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }, span);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr> {
        self.descend()?;
        let r = self.unary_inner();
        self.ascend();
        r
    }

    fn unary_inner(&mut self) -> Result<Expr> {
        let start = self.peek().span;
        let op = match self.peek_kind() {
            TokenKind::Minus => Some(UnaryOp::Neg),
            TokenKind::Bang => Some(UnaryOp::Not),
            TokenKind::PlusPlus => Some(UnaryOp::PreInc),
            TokenKind::MinusMinus => Some(UnaryOp::PreDec),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let e = self.unary()?;
            let span = start.to(e.span);
            return Ok(self.mk(ExprKind::Unary { op, expr: Box::new(e) }, span));
        }
        // Cast: `(Type) unary` — lookahead for `(Type)` followed by a
        // cast-able token.
        if self.at(&TokenKind::LParen) && self.cast_follows() {
            self.bump();
            let ty = self.type_ref()?;
            self.expect(&TokenKind::RParen)?;
            let e = self.unary()?;
            let span = start.to(e.span);
            return Ok(self.mk(ExprKind::Cast { ty, expr: Box::new(e) }, span));
        }
        self.postfix()
    }

    /// Lookahead for a cast expression `(T) e`.
    fn cast_follows(&self) -> bool {
        debug_assert!(self.at(&TokenKind::LParen));
        // Primitive cast is unambiguous.
        if matches!(
            self.peek_at(1).kind,
            TokenKind::Keyword(
                Keyword::Boolean
                    | Keyword::Byte
                    | Keyword::Short
                    | Keyword::Int
                    | Keyword::Long
                    | Keyword::Char
                    | Keyword::Float
                    | Keyword::Double
            )
        ) {
            return true;
        }
        // `(Ident...)` followed by an expression-start token that cannot
        // continue a parenthesized expression: identifier, literal, `(`,
        // `this`, `new`, `!`.
        let mut i = 1;
        if !matches!(self.peek_at(i).kind, TokenKind::Ident(_)) {
            return false;
        }
        i += 1;
        loop {
            match &self.peek_at(i).kind {
                TokenKind::Dot if matches!(self.peek_at(i + 1).kind, TokenKind::Ident(_)) => {
                    i += 2;
                }
                _ => break,
            }
        }
        if self.peek_at(i).kind == TokenKind::Lt {
            let mut depth = 0usize;
            loop {
                match &self.peek_at(i).kind {
                    TokenKind::Lt => depth += 1,
                    TokenKind::Gt => {
                        depth -= 1;
                        i += 1;
                        if depth == 0 {
                            break;
                        }
                        continue;
                    }
                    TokenKind::Ident(_)
                    | TokenKind::Dot
                    | TokenKind::Comma
                    | TokenKind::Question
                    | TokenKind::Keyword(_) => {}
                    _ => return false,
                }
                i += 1;
                if i > 64 {
                    return false;
                }
            }
        }
        while self.peek_at(i).kind == TokenKind::LBracket
            && self.peek_at(i + 1).kind == TokenKind::RBracket
        {
            i += 2;
        }
        if self.peek_at(i).kind != TokenKind::RParen {
            return false;
        }
        matches!(
            self.peek_at(i + 1).kind,
            TokenKind::Ident(_)
                | TokenKind::IntLit(_)
                | TokenKind::DoubleLit(_)
                | TokenKind::StringLit(_)
                | TokenKind::CharLit(_)
                | TokenKind::BoolLit(_)
                | TokenKind::Null
                | TokenKind::LParen
                | TokenKind::Keyword(Keyword::This)
                | TokenKind::Keyword(Keyword::New)
                | TokenKind::Bang
        )
    }

    fn postfix(&mut self) -> Result<Expr> {
        let mut e = self.primary()?;
        loop {
            match self.peek_kind() {
                TokenKind::Dot => {
                    self.bump();
                    // Optional explicit type arguments on calls: `.<T>m(...)`.
                    if self.at(&TokenKind::Lt) && self.generic_args_follow() {
                        self.type_args()?;
                    }
                    let (name, name_span) = self.expect_ident()?;
                    if self.at(&TokenKind::LParen) {
                        let args = self.call_args()?;
                        let span = e.span.to(self.prev_span());
                        e = self
                            .mk(ExprKind::Call { receiver: Some(Box::new(e)), name, args }, span);
                    } else {
                        let span = e.span.to(name_span);
                        e = self.mk(ExprKind::FieldAccess { receiver: Box::new(e), name }, span);
                    }
                }
                TokenKind::LBracket => {
                    self.bump();
                    let index = self.expr()?;
                    self.expect(&TokenKind::RBracket)?;
                    let span = e.span.to(self.prev_span());
                    e = self.mk(
                        ExprKind::ArrayAccess { array: Box::new(e), index: Box::new(index) },
                        span,
                    );
                }
                TokenKind::PlusPlus => {
                    self.bump();
                    let span = e.span.to(self.prev_span());
                    e = self.mk(ExprKind::Postfix { inc: true, expr: Box::new(e) }, span);
                }
                TokenKind::MinusMinus => {
                    self.bump();
                    let span = e.span.to(self.prev_span());
                    e = self.mk(ExprKind::Postfix { inc: false, expr: Box::new(e) }, span);
                }
                _ => return Ok(e),
            }
        }
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    fn call_args(&mut self) -> Result<Vec<Expr>> {
        self.expect(&TokenKind::LParen)?;
        let mut args = Vec::new();
        if !self.at(&TokenKind::RParen) {
            loop {
                args.push(self.expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(args)
    }

    fn primary(&mut self) -> Result<Expr> {
        let start = self.peek().span;
        match self.peek_kind().clone() {
            TokenKind::IntLit(v) => {
                self.bump();
                Ok(self.mk(ExprKind::Literal(Lit::Int(v)), start))
            }
            TokenKind::DoubleLit(v) => {
                self.bump();
                Ok(self.mk(ExprKind::Literal(Lit::Double(v)), start))
            }
            TokenKind::StringLit(v) => {
                self.bump();
                Ok(self.mk(ExprKind::Literal(Lit::Str(v)), start))
            }
            TokenKind::CharLit(c) => {
                self.bump();
                Ok(self.mk(ExprKind::Literal(Lit::Char(c)), start))
            }
            TokenKind::BoolLit(b) => {
                self.bump();
                Ok(self.mk(ExprKind::Literal(Lit::Bool(b)), start))
            }
            TokenKind::Null => {
                self.bump();
                Ok(self.mk(ExprKind::Literal(Lit::Null), start))
            }
            TokenKind::Keyword(Keyword::This) => {
                self.bump();
                Ok(self.mk(ExprKind::This, start))
            }
            TokenKind::Keyword(Keyword::New) => {
                self.bump();
                let ty = self.type_ref()?;
                let args = self.call_args()?;
                let span = start.to(self.prev_span());
                Ok(self.mk(ExprKind::New { ty, args }, span))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.at(&TokenKind::LParen) {
                    let args = self.call_args()?;
                    let span = start.to(self.prev_span());
                    Ok(self.mk(ExprKind::Call { receiver: None, name, args }, span))
                } else {
                    Ok(self.mk(ExprKind::Name(name), start))
                }
            }
            _ => Err(self.unexpected("expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_class(src: &str) -> TypeDecl {
        let unit = parse(src).unwrap();
        assert_eq!(unit.types.len(), 1);
        unit.types.into_iter().next().unwrap()
    }

    #[test]
    fn parses_package_and_imports() {
        let unit = parse(
            "package com.example.app;\nimport java.util.Iterator;\nimport java.util.*;\nclass A {}",
        )
        .unwrap();
        assert_eq!(unit.package.as_ref().unwrap().to_string(), "com.example.app");
        assert_eq!(unit.imports.len(), 2);
        assert!(!unit.imports[0].wildcard);
        assert!(unit.imports[1].wildcard);
    }

    #[test]
    fn parses_interface_with_annotated_methods() {
        let t = one_class(
            r#"interface Iterator<T> {
                @Perm(requires="full(this) in HASNEXT", ensures="full(this) in ALIVE")
                T next();
                @Perm(requires="pure(this) in ALIVE", ensures="pure(this)")
                @TrueIndicates("HASNEXT")
                @FalseIndicates("END")
                boolean hasNext();
            }"#,
        );
        assert_eq!(t.kind, TypeKind::Interface);
        assert_eq!(t.type_params, vec!["T"]);
        let next = t.method_named("next").unwrap();
        assert_eq!(
            next.annotation("Perm").unwrap().string_element("requires"),
            Some("full(this) in HASNEXT")
        );
        assert!(next.body.is_none());
        let has_next = t.method_named("hasNext").unwrap();
        assert_eq!(has_next.annotation("TrueIndicates").unwrap().single_string(), Some("HASNEXT"));
    }

    #[test]
    fn parses_figure3_row_class() {
        let t = one_class(
            r#"class Row {
                Collection<Integer> entries;
                Iterator<Integer> createColIter() {
                    return entries.iterator();
                }
                void add(int val) {}
            }"#,
        );
        assert_eq!(t.fields().count(), 1);
        assert_eq!(t.methods().count(), 2);
        let m = t.method_named("createColIter").unwrap();
        let body = m.body.as_ref().unwrap();
        assert!(matches!(body.stmts[0].kind, StmtKind::Return(Some(_))));
    }

    #[test]
    fn parses_while_loop_with_calls() {
        let t = one_class(
            r#"class C {
                Row copy(Row original) {
                    Iterator<Integer> iter = original.createColIter();
                    Row result = new Row();
                    while (iter.hasNext()) {
                        result.add(iter.next());
                    }
                    return result;
                }
            }"#,
        );
        let m = t.method_named("copy").unwrap();
        let body = m.body.as_ref().unwrap();
        assert_eq!(body.stmts.len(), 4);
        assert!(matches!(&body.stmts[2].kind, StmtKind::While { .. }));
    }

    #[test]
    fn parses_constructor() {
        let t = one_class("class Row { Row() { } Row(int n) { } }");
        let ctors: Vec<_> = t.methods().filter(|m| m.is_constructor()).collect();
        assert_eq!(ctors.len(), 2);
        assert_eq!(ctors[1].params.len(), 1);
    }

    #[test]
    fn distinguishes_generics_from_comparison() {
        let t = one_class(
            "class C { void m() { int a = 1; int b = 2; boolean x = a < b; Iterator<Integer> it = null; } }",
        );
        let m = t.method_named("m").unwrap();
        assert_eq!(m.body.as_ref().unwrap().stmts.len(), 4);
    }

    #[test]
    fn parses_chained_calls_and_field_access() {
        let e = parse_expr("r1.createColIter().next()").unwrap();
        match &e.kind {
            ExprKind::Call { receiver: Some(r), name, .. } => {
                assert_eq!(name, "next");
                assert!(matches!(&r.kind, ExprKind::Call { name, .. } if name == "createColIter"));
            }
            other => panic!("wrong shape: {other:?}"),
        }
    }

    #[test]
    fn precedence_is_conventional() {
        let e = parse_expr("1 + 2 * 3 == 7 && true").unwrap();
        // (((1 + (2*3)) == 7) && true)
        match &e.kind {
            ExprKind::Binary { op: BinaryOp::And, lhs, .. } => match &lhs.kind {
                ExprKind::Binary { op: BinaryOp::Eq, lhs, .. } => match &lhs.kind {
                    ExprKind::Binary { op: BinaryOp::Add, rhs, .. } => {
                        assert!(matches!(&rhs.kind, ExprKind::Binary { op: BinaryOp::Mul, .. }));
                    }
                    other => panic!("wrong add shape: {other:?}"),
                },
                other => panic!("wrong eq shape: {other:?}"),
            },
            other => panic!("wrong and shape: {other:?}"),
        }
    }

    #[test]
    fn parses_casts_and_instanceof() {
        let e = parse_expr("(Row) obj").unwrap();
        assert!(matches!(e.kind, ExprKind::Cast { .. }));
        let e = parse_expr("obj instanceof Row").unwrap();
        assert!(matches!(e.kind, ExprKind::InstanceOf { .. }));
        // Parenthesized expression, not a cast.
        let e = parse_expr("(a) + b").unwrap();
        assert!(matches!(e.kind, ExprKind::Binary { op: BinaryOp::Add, .. }));
    }

    #[test]
    fn parses_conditional_expr() {
        let e = parse_expr("a ? b : c ? d : e").unwrap();
        // Right-associative.
        match &e.kind {
            ExprKind::Conditional { else_expr, .. } => {
                assert!(matches!(else_expr.kind, ExprKind::Conditional { .. }));
            }
            other => panic!("wrong shape: {other:?}"),
        }
    }

    #[test]
    fn parses_synchronized_and_assert() {
        let t = one_class(
            r#"class C {
                void m(Object lock) {
                    synchronized (lock) { int x = 1; }
                    assert lock != null : "lock";
                }
            }"#,
        );
        let m = t.method_named("m").unwrap();
        let stmts = &m.body.as_ref().unwrap().stmts;
        assert!(matches!(&stmts[0].kind, StmtKind::Synchronized { .. }));
        assert!(matches!(&stmts[1].kind, StmtKind::Assert { message: Some(_), .. }));
    }

    #[test]
    fn parses_for_variants() {
        let t = one_class(
            r#"class C {
                void m(Collection<Integer> c) {
                    for (int i = 0; i < 10; i++) { }
                    for (Integer x : c) { }
                    for (;;) { break; }
                }
            }"#,
        );
        let m = t.method_named("m").unwrap();
        let stmts = &m.body.as_ref().unwrap().stmts;
        assert!(matches!(&stmts[0].kind, StmtKind::For { cond: Some(_), .. }));
        assert!(matches!(&stmts[1].kind, StmtKind::ForEach { .. }));
        assert!(matches!(&stmts[2].kind, StmtKind::For { cond: None, .. }));
    }

    #[test]
    fn expr_ids_are_unique() {
        let unit = parse("class C { void m() { int a = 1 + 2; int b = a + 3; } }").unwrap();
        let mut ids = Vec::new();
        fn collect(e: &Expr, ids: &mut Vec<ExprId>) {
            ids.push(e.id);
            match &e.kind {
                ExprKind::Binary { lhs, rhs, .. } => {
                    collect(lhs, ids);
                    collect(rhs, ids);
                }
                ExprKind::Literal(_) | ExprKind::Name(_) => {}
                _ => {}
            }
        }
        for (_, m) in unit.methods() {
            for s in &m.body.as_ref().unwrap().stmts {
                if let StmtKind::LocalVar { init: Some(e), .. } = &s.kind {
                    collect(e, &mut ids);
                }
            }
        }
        let mut sorted = ids.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len());
    }

    #[test]
    fn error_reports_position() {
        let err = parse("class C { void m() { int = 5; } }").unwrap_err();
        assert!(err.span.start.line >= 1);
        assert!(err.message.contains("expected"));
    }

    #[test]
    fn parses_extends_implements() {
        let t = one_class("class A extends B implements C, D<E> {}");
        assert_eq!(t.extends.len(), 1);
        assert_eq!(t.implements.len(), 2);
    }

    #[test]
    fn parses_throws_clause() {
        let t = one_class("class A { void m() throws IOException, FooException { } }");
        let m = t.method_named("m").unwrap();
        assert_eq!(m.throws.len(), 2);
    }

    #[test]
    fn parses_do_while() {
        let t = one_class(
            "class C { void m(Iterator<Integer> it) { do { it.next(); } while (it.hasNext()); } }",
        );
        let m = t.method_named("m").unwrap();
        match &m.body.as_ref().unwrap().stmts[0].kind {
            StmtKind::DoWhile { body, cond } => {
                assert!(matches!(body.kind, StmtKind::Block(_)));
                assert!(matches!(cond.kind, ExprKind::Call { .. }));
            }
            other => panic!("expected do-while, got {other:?}"),
        }
    }

    #[test]
    fn parses_switch_with_fallthrough_and_default() {
        let t = one_class(
            r#"class C {
                int m(int x) {
                    int r = 0;
                    switch (x) {
                        case 1:
                        case 2:
                            r = 10;
                            break;
                        case 3:
                            r = 20;
                        default:
                            r = r + 1;
                    }
                    return r;
                }
            }"#,
        );
        let m = t.method_named("m").unwrap();
        match &m.body.as_ref().unwrap().stmts[1].kind {
            StmtKind::Switch { cases, .. } => {
                assert_eq!(cases.len(), 3);
                assert_eq!(cases[0].labels.len(), 2, "case 1 and 2 share a body");
                assert_eq!(cases[2].labels, vec![None], "default label");
                assert!(matches!(cases[0].body.last().unwrap().kind, StmtKind::Break));
            }
            other => panic!("expected switch, got {other:?}"),
        }
    }

    #[test]
    fn parses_try_catch_finally() {
        let t = one_class(
            r#"class C {
                void m(StreamFactory f) {
                    Stream s = f.open();
                    try {
                        s.read();
                    } catch (IOException e) {
                        log(e);
                    } catch (RuntimeException e) {
                        log(e);
                    } finally {
                        s.close();
                    }
                }
                void log(Object e) { }
            }"#,
        );
        let m = t.method_named("m").unwrap();
        let body = m.body.as_ref().unwrap();
        match &body.stmts[1].kind {
            StmtKind::Try { body, catches, finally } => {
                assert_eq!(body.stmts.len(), 1);
                assert_eq!(catches.len(), 2);
                assert_eq!(catches[0].name, "e");
                assert!(finally.is_some());
            }
            other => panic!("expected try, got {other:?}"),
        }
    }

    #[test]
    fn parses_try_finally_without_catch() {
        let t =
            one_class("class C { void m(Stream s) { try { s.read(); } finally { s.close(); } } }");
        let m = t.method_named("m").unwrap();
        assert!(matches!(
            &m.body.as_ref().unwrap().stmts[0].kind,
            StmtKind::Try { catches, finally: Some(_), .. } if catches.is_empty()
        ));
    }

    #[test]
    fn rejects_multi_declarator_fields() {
        assert!(parse("class A { int x, y; }").is_err());
    }

    #[test]
    fn parses_wildcard_generics() {
        let t = one_class("class A { Collection<? extends Number> xs; void m(Iterator<?> it) {} }");
        assert_eq!(t.fields().count(), 1);
    }

    #[test]
    fn parses_test_annotation_method() {
        let t = one_class(
            r#"class T {
                @Test
                void testParseCSV() {
                    Row r1 = parseCSVRow("1,2,3,4");
                    int sum = r1.createColIter().next() + r1.createColIter().next();
                    assert sum != 5;
                }
            }"#,
        );
        let m = t.method_named("testParseCSV").unwrap();
        assert!(m.annotation("Test").is_some());
    }
}
