//! Abstract syntax tree for the Java subset.
//!
//! The AST deliberately models the slice of Java that the ANEK/PLURAL
//! pipeline needs: classes and interfaces with annotated methods, fields,
//! local variables, structured control flow, method calls, field accesses and
//! object creation. Every node carries a [`Span`]; expressions additionally
//! carry a unique [`ExprId`] so the flow analyses can attach facts to
//! individual occurrences.

use crate::span::Span;
use std::fmt;

/// A dot-separated qualified name such as `java.util.Iterator`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct QualifiedName(pub Vec<String>);

impl QualifiedName {
    /// Builds a qualified name from dotted text.
    pub fn parse(s: &str) -> QualifiedName {
        QualifiedName(s.split('.').map(str::to_string).collect())
    }

    /// The final segment (the simple name).
    pub fn simple(&self) -> &str {
        self.0.last().map(String::as_str).unwrap_or("")
    }

    /// Whether this is a single-segment name.
    pub fn is_simple(&self) -> bool {
        self.0.len() == 1
    }
}

impl fmt::Display for QualifiedName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0.join("."))
    }
}

impl From<&str> for QualifiedName {
    fn from(s: &str) -> QualifiedName {
        QualifiedName::parse(s)
    }
}

/// A whole source file.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CompilationUnit {
    /// `package a.b.c;` if present.
    pub package: Option<QualifiedName>,
    /// `import` declarations in order.
    pub imports: Vec<Import>,
    /// Top-level class and interface declarations.
    pub types: Vec<TypeDecl>,
}

impl CompilationUnit {
    /// Finds a top-level type by simple name.
    pub fn type_named(&self, name: &str) -> Option<&TypeDecl> {
        self.types.iter().find(|t| t.name == name)
    }

    /// Iterates over every method in every type.
    pub fn methods(&self) -> impl Iterator<Item = (&TypeDecl, &MethodDecl)> {
        self.types.iter().flat_map(|t| {
            t.members.iter().filter_map(move |m| match m {
                Member::Method(md) => Some((t, md)),
                Member::Field(_) => None,
            })
        })
    }
}

/// An `import` declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct Import {
    /// The imported path.
    pub path: QualifiedName,
    /// `import static ...`.
    pub is_static: bool,
    /// `import a.b.*;`
    pub wildcard: bool,
    /// Source span.
    pub span: Span,
}

/// Modifier flags on declarations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Modifiers {
    /// `public`
    pub public: bool,
    /// `private`
    pub private: bool,
    /// `protected`
    pub protected: bool,
    /// `static`
    pub is_static: bool,
    /// `final`
    pub is_final: bool,
    /// `abstract`
    pub is_abstract: bool,
    /// `synchronized`
    pub is_synchronized: bool,
    /// `native`, `transient` or `volatile` (tracked but not distinguished).
    pub other: bool,
}

/// Whether a [`TypeDecl`] is a class or an interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TypeKind {
    /// `class`
    Class,
    /// `interface`
    Interface,
}

/// A class or interface declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeDecl {
    /// Annotations such as `@States(...)`.
    pub annotations: Vec<Annotation>,
    /// Modifier flags.
    pub modifiers: Modifiers,
    /// Class or interface.
    pub kind: TypeKind,
    /// Simple name.
    pub name: String,
    /// Type parameter names (`<T, U>`), erased of bounds.
    pub type_params: Vec<String>,
    /// `extends` clause (single for classes, many for interfaces).
    pub extends: Vec<TypeRef>,
    /// `implements` clause.
    pub implements: Vec<TypeRef>,
    /// Fields and methods in declaration order.
    pub members: Vec<Member>,
    /// Source span of the whole declaration.
    pub span: Span,
}

impl TypeDecl {
    /// Iterates over the methods of this type.
    pub fn methods(&self) -> impl Iterator<Item = &MethodDecl> {
        self.members.iter().filter_map(|m| match m {
            Member::Method(md) => Some(md),
            Member::Field(_) => None,
        })
    }

    /// Iterates over the fields of this type.
    pub fn fields(&self) -> impl Iterator<Item = &FieldDecl> {
        self.members.iter().filter_map(|m| match m {
            Member::Field(fd) => Some(fd),
            Member::Method(_) => None,
        })
    }

    /// Finds a method by name (first overload).
    pub fn method_named(&self, name: &str) -> Option<&MethodDecl> {
        self.methods().find(|m| m.name == name)
    }
}

/// A member of a type declaration.
#[derive(Debug, Clone, PartialEq)]
pub enum Member {
    /// A field.
    Field(FieldDecl),
    /// A method or constructor.
    Method(MethodDecl),
}

/// A field declaration (one declarator per `FieldDecl`; the parser splits
/// comma-separated declarators).
#[derive(Debug, Clone, PartialEq)]
pub struct FieldDecl {
    /// Annotations on the field.
    pub annotations: Vec<Annotation>,
    /// Modifier flags.
    pub modifiers: Modifiers,
    /// Declared type.
    pub ty: TypeRef,
    /// Field name.
    pub name: String,
    /// Optional initializer.
    pub init: Option<Expr>,
    /// Source span.
    pub span: Span,
}

/// A method or constructor declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodDecl {
    /// Annotations, e.g. `@Perm(...)`, `@TrueIndicates(...)`.
    pub annotations: Vec<Annotation>,
    /// Modifier flags.
    pub modifiers: Modifiers,
    /// Method-level type parameters.
    pub type_params: Vec<String>,
    /// Return type; `None` for constructors.
    pub return_type: Option<TypeRef>,
    /// Method name (class name for constructors).
    pub name: String,
    /// Formal parameters.
    pub params: Vec<Param>,
    /// Declared thrown exception types.
    pub throws: Vec<TypeRef>,
    /// Body; `None` for abstract/interface methods.
    pub body: Option<Block>,
    /// Source span.
    pub span: Span,
}

impl MethodDecl {
    /// Whether this declaration is a constructor.
    pub fn is_constructor(&self) -> bool {
        self.return_type.is_none()
    }

    /// Finds an annotation by simple name.
    pub fn annotation(&self, name: &str) -> Option<&Annotation> {
        self.annotations.iter().find(|a| a.name.simple() == name)
    }
}

/// A formal method parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Annotations on the parameter.
    pub annotations: Vec<Annotation>,
    /// `final` flag.
    pub is_final: bool,
    /// Declared type.
    pub ty: TypeRef,
    /// Parameter name.
    pub name: String,
    /// Source span.
    pub span: Span,
}

/// A reference to a type in source.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TypeRef {
    /// A primitive type.
    Primitive(PrimitiveType),
    /// `void` (only valid as a return type).
    Void,
    /// A class/interface type, possibly generic: `Iterator<Integer>`.
    Named {
        /// Possibly-qualified type name.
        name: QualifiedName,
        /// Type arguments; empty for raw types.
        args: Vec<TypeRef>,
    },
    /// An array type `T[]`.
    Array(Box<TypeRef>),
    /// The `?` wildcard type argument (bounds erased).
    Wildcard,
}

impl TypeRef {
    /// Convenience constructor for a non-generic named type.
    pub fn named(name: &str) -> TypeRef {
        TypeRef::Named { name: QualifiedName::parse(name), args: Vec::new() }
    }

    /// The erased simple name of this type if it is a named type.
    pub fn simple_name(&self) -> Option<&str> {
        match self {
            TypeRef::Named { name, .. } => Some(name.simple()),
            _ => None,
        }
    }

    /// Whether this is a reference (non-primitive, non-void) type.
    pub fn is_reference(&self) -> bool {
        matches!(self, TypeRef::Named { .. } | TypeRef::Array(_) | TypeRef::Wildcard)
    }
}

impl fmt::Display for TypeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeRef::Primitive(p) => write!(f, "{p}"),
            TypeRef::Void => f.write_str("void"),
            TypeRef::Named { name, args } => {
                write!(f, "{name}")?;
                if !args.is_empty() {
                    f.write_str("<")?;
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            f.write_str(", ")?;
                        }
                        write!(f, "{a}")?;
                    }
                    f.write_str(">")?;
                }
                Ok(())
            }
            TypeRef::Array(t) => write!(f, "{t}[]"),
            TypeRef::Wildcard => f.write_str("?"),
        }
    }
}

/// Java primitive types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum PrimitiveType {
    Boolean,
    Byte,
    Short,
    Int,
    Long,
    Char,
    Float,
    Double,
}

impl fmt::Display for PrimitiveType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use PrimitiveType::*;
        f.write_str(match self {
            Boolean => "boolean",
            Byte => "byte",
            Short => "short",
            Int => "int",
            Long => "long",
            Char => "char",
            Float => "float",
            Double => "double",
        })
    }
}

/// An annotation occurrence, e.g. `@Perm(requires = "...", ensures = "...")`.
#[derive(Debug, Clone, PartialEq)]
pub struct Annotation {
    /// Annotation type name.
    pub name: QualifiedName,
    /// Arguments.
    pub args: AnnotationArgs,
    /// Source span.
    pub span: Span,
}

impl Annotation {
    /// The single string value, for marker-with-value annotations like
    /// `@TrueIndicates("HASNEXT")`.
    pub fn single_string(&self) -> Option<&str> {
        match &self.args {
            AnnotationArgs::Single(Lit::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// Looks up a named string element, e.g. `requires` in `@Perm(requires = "...")`.
    pub fn string_element(&self, key: &str) -> Option<&str> {
        match &self.args {
            AnnotationArgs::Pairs(pairs) => pairs.iter().find_map(|(k, v)| {
                if k == key {
                    if let Lit::Str(s) = v {
                        return Some(s.as_str());
                    }
                }
                None
            }),
            _ => None,
        }
    }
}

/// The argument form of an annotation.
#[derive(Debug, Clone, PartialEq)]
pub enum AnnotationArgs {
    /// `@Test`
    None,
    /// `@TrueIndicates("HASNEXT")`
    Single(Lit),
    /// `@Perm(requires = "...", ensures = "...")`
    Pairs(Vec<(String, Lit)>),
}

/// A literal value (also used for annotation arguments).
#[derive(Debug, Clone, PartialEq)]
pub enum Lit {
    /// Integer literal.
    Int(i64),
    /// Floating literal kept as source text to avoid round-trip loss.
    Double(String),
    /// Boolean literal.
    Bool(bool),
    /// String literal.
    Str(String),
    /// Character literal.
    Char(char),
    /// `null`.
    Null,
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lit::Int(v) => write!(f, "{v}"),
            Lit::Double(v) => f.write_str(v),
            Lit::Bool(v) => write!(f, "{v}"),
            Lit::Str(v) => write!(f, "\"{}\"", escape_str(v)),
            Lit::Char(c) => write!(f, "'{c}'"),
            Lit::Null => f.write_str("null"),
        }
    }
}

/// Escapes a string for Java source output.
pub fn escape_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            other => out.push(other),
        }
    }
    out
}

/// A block of statements.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
    /// Source span.
    pub span: Span,
}

/// A statement with its span.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// What kind of statement.
    pub kind: StmtKind,
    /// Source span.
    pub span: Span,
}

/// Statement forms.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// `{ ... }`
    Block(Block),
    /// `T x = e;`
    LocalVar {
        /// Declared type.
        ty: TypeRef,
        /// Variable name.
        name: String,
        /// Optional initializer.
        init: Option<Expr>,
    },
    /// An expression statement.
    Expr(Expr),
    /// `if (c) s else s`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_branch: Box<Stmt>,
        /// Else branch.
        else_branch: Option<Box<Stmt>>,
    },
    /// `while (c) s`
    While {
        /// Condition.
        cond: Expr,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `do s while (c);`
    DoWhile {
        /// Loop body (runs at least once).
        body: Box<Stmt>,
        /// Condition, evaluated after the body.
        cond: Expr,
    },
    /// `switch (e) { case l: ... default: ... }` (with Java fallthrough).
    Switch {
        /// The switched-on expression.
        scrutinee: Expr,
        /// Cases in order.
        cases: Vec<SwitchCase>,
    },
    /// `for (init; cond; update) s`
    For {
        /// Initializers (local-var or expression statements).
        init: Vec<Stmt>,
        /// Optional condition.
        cond: Option<Expr>,
        /// Update expressions.
        update: Vec<Expr>,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `for (T x : e) s`
    ForEach {
        /// Element type.
        ty: TypeRef,
        /// Element variable.
        name: String,
        /// The iterable expression.
        iterable: Expr,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `return e;`
    Return(Option<Expr>),
    /// `assert c;` or `assert c : m;`
    Assert {
        /// Condition.
        cond: Expr,
        /// Optional message.
        message: Option<Expr>,
    },
    /// `synchronized (e) { ... }`
    Synchronized {
        /// The lock target.
        target: Expr,
        /// Protected block.
        body: Block,
    },
    /// `try { ... } catch (T e) { ... } finally { ... }`
    Try {
        /// The guarded block.
        body: Block,
        /// Catch clauses in order.
        catches: Vec<CatchClause>,
        /// Optional finally block.
        finally: Option<Block>,
    },
    /// `throw e;`
    Throw(Expr),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `;`
    Empty,
}

/// One `case L:`/`default:` group of a switch.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchCase {
    /// Labels; `None` is `default`. Several labels may share a body.
    pub labels: Vec<Option<Expr>>,
    /// Statements until the next label (falls through unless it breaks).
    pub body: Vec<Stmt>,
}

/// One `catch (T name) { ... }` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct CatchClause {
    /// Caught exception type.
    pub ty: TypeRef,
    /// Binding name.
    pub name: String,
    /// Handler block.
    pub body: Block,
}

/// Unique identifier for an expression occurrence within a compilation unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprId(pub u32);

impl fmt::Display for ExprId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// An expression with span and identity.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// What kind of expression.
    pub kind: ExprKind,
    /// Source span.
    pub span: Span,
    /// Unique id within the compilation unit.
    pub id: ExprId,
}

/// Expression forms.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// A literal.
    Literal(Lit),
    /// A simple name (local variable, parameter, or implicit-this field).
    Name(String),
    /// `this`
    This,
    /// `e.f`
    FieldAccess {
        /// Receiver expression.
        receiver: Box<Expr>,
        /// Field name.
        name: String,
    },
    /// `e.m(args)` or `m(args)` (receiver `None` means implicit `this`/static).
    Call {
        /// Receiver; `None` for unqualified calls.
        receiver: Option<Box<Expr>>,
        /// Method name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `new C(args)`
    New {
        /// The constructed type.
        ty: TypeRef,
        /// Constructor arguments.
        args: Vec<Expr>,
    },
    /// `lhs = rhs`, `lhs += rhs`, ...
    Assign {
        /// Target (name or field access).
        lhs: Box<Expr>,
        /// Which assignment operator.
        op: AssignOp,
        /// Source value.
        rhs: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Prefix unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Postfix `++`/`--`.
    Postfix {
        /// Whether increment (`true`) or decrement.
        inc: bool,
        /// Operand.
        expr: Box<Expr>,
    },
    /// `(T) e`
    Cast {
        /// Target type.
        ty: TypeRef,
        /// Operand.
        expr: Box<Expr>,
    },
    /// `e instanceof T`
    InstanceOf {
        /// Operand.
        expr: Box<Expr>,
        /// Tested type.
        ty: TypeRef,
    },
    /// `c ? a : b`
    Conditional {
        /// Condition.
        cond: Box<Expr>,
        /// Value if true.
        then_expr: Box<Expr>,
        /// Value if false.
        else_expr: Box<Expr>,
    },
    /// `a[i]`
    ArrayAccess {
        /// Array expression.
        array: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
    },
}

/// Assignment operators in the subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssignOp {
    /// `=`
    Assign,
    /// `+=`
    AddAssign,
    /// `-=`
    SubAssign,
}

impl fmt::Display for AssignOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AssignOp::Assign => "=",
            AssignOp::AddAssign => "+=",
            AssignOp::SubAssign => "-=",
        })
    }
}

/// Binary operators in the subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    BitAnd,
    BitOr,
    BitXor,
}

impl BinaryOp {
    /// Whether this operator produces a boolean.
    pub fn is_boolean(self) -> bool {
        use BinaryOp::*;
        matches!(self, Eq | Ne | Lt | Le | Gt | Ge | And | Or)
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use BinaryOp::*;
        f.write_str(match self {
            Add => "+",
            Sub => "-",
            Mul => "*",
            Div => "/",
            Rem => "%",
            Eq => "==",
            Ne => "!=",
            Lt => "<",
            Le => "<=",
            Gt => ">",
            Ge => ">=",
            And => "&&",
            Or => "||",
            BitAnd => "&",
            BitOr => "|",
            BitXor => "^",
        })
    }
}

/// Prefix unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// `-e`
    Neg,
    /// `!e`
    Not,
    /// `++e`
    PreInc,
    /// `--e`
    PreDec,
}

impl fmt::Display for UnaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            UnaryOp::Neg => "-",
            UnaryOp::Not => "!",
            UnaryOp::PreInc => "++",
            UnaryOp::PreDec => "--",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qualified_name_parse_and_display() {
        let q = QualifiedName::parse("java.util.Iterator");
        assert_eq!(q.simple(), "Iterator");
        assert!(!q.is_simple());
        assert_eq!(q.to_string(), "java.util.Iterator");
        assert!(QualifiedName::parse("Row").is_simple());
    }

    #[test]
    fn type_ref_display_with_generics() {
        let t = TypeRef::Named { name: "Iterator".into(), args: vec![TypeRef::named("Integer")] };
        assert_eq!(t.to_string(), "Iterator<Integer>");
        assert_eq!(
            TypeRef::Array(Box::new(TypeRef::Primitive(PrimitiveType::Int))).to_string(),
            "int[]"
        );
        assert_eq!(TypeRef::Void.to_string(), "void");
        assert_eq!(TypeRef::Wildcard.to_string(), "?");
    }

    #[test]
    fn lit_display_escapes_strings() {
        assert_eq!(Lit::Str("a\"b\n".into()).to_string(), "\"a\\\"b\\n\"");
        assert_eq!(Lit::Null.to_string(), "null");
        assert_eq!(Lit::Int(-3).to_string(), "-3");
    }

    #[test]
    fn annotation_element_lookup() {
        let a = Annotation {
            name: "Perm".into(),
            args: AnnotationArgs::Pairs(vec![
                ("requires".into(), Lit::Str("full(this) in HASNEXT".into())),
                ("ensures".into(), Lit::Str("full(this) in ALIVE".into())),
            ]),
            span: Span::DUMMY,
        };
        assert_eq!(a.string_element("requires"), Some("full(this) in HASNEXT"));
        assert_eq!(a.string_element("missing"), None);
        assert_eq!(a.single_string(), None);

        let b = Annotation {
            name: "TrueIndicates".into(),
            args: AnnotationArgs::Single(Lit::Str("HASNEXT".into())),
            span: Span::DUMMY,
        };
        assert_eq!(b.single_string(), Some("HASNEXT"));
    }

    #[test]
    fn constructor_detection() {
        let m = MethodDecl {
            annotations: vec![],
            modifiers: Modifiers::default(),
            type_params: vec![],
            return_type: None,
            name: "Row".into(),
            params: vec![],
            throws: vec![],
            body: Some(Block::default()),
            span: Span::DUMMY,
        };
        assert!(m.is_constructor());
    }

    #[test]
    fn binary_op_boolean_classification() {
        assert!(BinaryOp::Eq.is_boolean());
        assert!(BinaryOp::And.is_boolean());
        assert!(!BinaryOp::Add.is_boolean());
        assert!(!BinaryOp::BitXor.is_boolean());
    }
}
