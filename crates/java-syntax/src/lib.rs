//! # java-syntax
//!
//! A from-scratch front end for the Java subset used by the ANEK/PLURAL
//! reproduction: lexer, recursive-descent parser, AST, pretty-printer and
//! visitor. It stands in for the Eclipse JDT extractor of the original tool
//! (Beckman & Nori, PLDI 2011, §4.1).
//!
//! The subset covers classes, interfaces, generics, annotations with literal
//! arguments (`@Perm(requires = "...", ensures = "...")`), fields, methods,
//! constructors, structured control flow and a conventional expression
//! grammar — everything the paper's figures and the benchmark corpus use.
//!
//! ## Example
//!
//! ```
//! use java_syntax::{parse, print_unit};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let unit = parse(
//!     "class Row { Iterator<Integer> createColIter() { return entries.iterator(); } }",
//! )?;
//! let row = unit.type_named("Row").expect("Row is declared");
//! assert_eq!(row.methods().count(), 1);
//! let java = print_unit(&unit); // round-trips back to Java source
//! assert!(java.contains("createColIter"));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod span;
pub mod token;
pub mod visit;

pub use ast::{
    Annotation, AnnotationArgs, AssignOp, BinaryOp, Block, CompilationUnit, Expr, ExprId, ExprKind,
    FieldDecl, Import, Lit, Member, MethodDecl, Modifiers, Param, PrimitiveType, QualifiedName,
    Stmt, StmtKind, TypeDecl, TypeKind, TypeRef, UnaryOp,
};
pub use error::{ParseError, ParseErrorKind, Result};
pub use lexer::lex;
pub use parser::{parse, parse_expr};
pub use printer::{print_expr, print_stmt, print_type, print_unit};
pub use span::{render_snippet, Pos, Span};
pub use token::{Keyword, Token, TokenKind};
