//! Source positions and spans.
//!
//! Every token and AST node carries a [`Span`] so that diagnostics emitted by
//! the downstream analyses (PLURAL warnings, ANEK inference notes) can point
//! back into the original Java source.

use std::fmt;

/// A position in a source file: 1-based line and column plus byte offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pos {
    /// Byte offset from the start of the file.
    pub offset: usize,
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in bytes).
    pub col: u32,
}

impl Pos {
    /// The first position in any file.
    pub const START: Pos = Pos { offset: 0, line: 1, col: 1 };

    /// Creates a position from raw parts.
    pub fn new(offset: usize, line: u32, col: u32) -> Pos {
        Pos { offset, line, col }
    }
}

impl Default for Pos {
    fn default() -> Pos {
        Pos::START
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A half-open region of source text `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Span {
    /// Start position (inclusive).
    pub start: Pos,
    /// End position (exclusive).
    pub end: Pos,
}

impl Span {
    /// A span covering nothing, used for synthesized nodes.
    pub const DUMMY: Span = Span { start: Pos::START, end: Pos::START };

    /// Creates a span from two positions.
    pub fn new(start: Pos, end: Pos) -> Span {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: if self.start <= other.start { self.start } else { other.start },
            end: if self.end >= other.end { self.end } else { other.end },
        }
    }

    /// Extracts the spanned text from `src`.
    pub fn slice<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start.offset..self.end.offset.min(src.len())]
    }

    /// Whether this is the dummy (zero-width at origin) span.
    pub fn is_dummy(&self) -> bool {
        *self == Span::DUMMY
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.start)
    }
}

/// Renders the source line a span starts on, with a caret underline marking
/// the spanned columns — the classic compiler-diagnostic snippet:
///
/// ```text
///    12 |         return r.createIter0().next();
///       |                ^^^^^^^^^^^^^^^^^^^^^^
/// ```
///
/// Multi-line spans are underlined to the end of the first line. Returns an
/// empty string for the dummy span or when the span lies outside `source`.
pub fn render_snippet(source: &str, span: Span) -> String {
    if span.is_dummy() || span.start.offset >= source.len() {
        return String::new();
    }
    let line_start = source[..span.start.offset].rfind('\n').map_or(0, |i| i + 1);
    let line_end =
        source[span.start.offset..].find('\n').map_or(source.len(), |i| span.start.offset + i);
    let line = &source[line_start..line_end];
    let line_no = span.start.line;
    let gutter = format!("{line_no:>5} | ");
    // Column math in characters, expanding tabs to one column each.
    let caret_col = source[line_start..span.start.offset].chars().count();
    let span_end =
        span.end.offset.clamp(span.start.offset + 1, line_end.max(span.start.offset + 1));
    let caret_len = source[span.start.offset..span_end.min(line_end).max(span.start.offset)]
        .chars()
        .count()
        .max(1);
    let mut out = String::new();
    out.push_str(&gutter);
    out.push_str(line);
    out.push('\n');
    out.push_str(&" ".repeat(gutter.len() - 2));
    out.push_str("| ");
    out.push_str(&" ".repeat(caret_col));
    out.push_str(&"^".repeat(caret_len));
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pos_ordering_is_by_offset_first() {
        let a = Pos::new(0, 1, 1);
        let b = Pos::new(5, 1, 6);
        assert!(a < b);
    }

    #[test]
    fn span_join_covers_both() {
        let a = Span::new(Pos::new(0, 1, 1), Pos::new(3, 1, 4));
        let b = Span::new(Pos::new(8, 2, 1), Pos::new(9, 2, 2));
        let j = a.to(b);
        assert_eq!(j.start, a.start);
        assert_eq!(j.end, b.end);
        // Join is commutative.
        assert_eq!(b.to(a), j);
    }

    #[test]
    fn span_slice_extracts_text() {
        let src = "hello world";
        let s = Span::new(Pos::new(0, 1, 1), Pos::new(5, 1, 6));
        assert_eq!(s.slice(src), "hello");
    }

    #[test]
    fn display_forms() {
        assert_eq!(Pos::new(3, 2, 7).to_string(), "2:7");
        let s = Span::new(Pos::new(3, 2, 7), Pos::new(4, 2, 8));
        assert_eq!(s.to_string(), "2:7");
    }

    #[test]
    fn snippet_renders_caret_under_span() {
        let src = "class A {\n    void m() { it.next(); }\n}\n";
        let off = src.find("it.next()").unwrap();
        let s = Span::new(
            Pos::new(off, 2, (off - src.find('\n').unwrap()) as u32),
            Pos::new(off + "it.next()".len(), 2, 0),
        );
        let snip = render_snippet(src, s);
        let lines: Vec<&str> = snip.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("void m() { it.next(); }"), "{snip}");
        assert!(lines[1].contains("^^^^^^^^^"), "{snip}");
        // The caret column lines up with the spanned text.
        let caret_at = lines[1].find('^').unwrap();
        assert_eq!(&lines[0][caret_at..caret_at + 2], "it", "{snip}");
    }

    #[test]
    fn snippet_of_dummy_span_is_empty() {
        assert_eq!(render_snippet("class A {}", Span::DUMMY), "");
    }

    #[test]
    fn dummy_span_detection() {
        assert!(Span::DUMMY.is_dummy());
        let s = Span::new(Pos::new(1, 1, 2), Pos::new(2, 1, 3));
        assert!(!s.is_dummy());
    }
}
