//! Property tests: the front end never panics, whatever the input.
//!
//! The fault-isolated pipeline treats parse failures as skippable per-source
//! events, which is only sound if `parse` returns `Err` instead of tearing
//! the process down. These tests feed it seeded random corruption — byte
//! garbling, truncation at every boundary, and adversarial deep nesting —
//! and assert the result is always a clean `Ok`/`Err`.

use java_syntax::{parse, ParseErrorKind};
use prng::{forall, Rng};

/// A small healthy program exercising most of the grammar.
const HEALTHY: &str = r#"
    package com.example;
    import java.util.Iterator;
    @States("ALIVE, DONE")
    class Row {
        Collection<Integer> entries;
        Iterator<Integer> createColIter() { return entries.iterator(); }
        void add(int val) { entries.add(val); }
    }
    class App {
        Row copy(Row original) {
            Iterator<Integer> iter = original.createColIter();
            Row result = new Row();
            while (iter.hasNext()) { result.add(iter.next()); }
            return result;
        }
    }
"#;

fn garble(src: &str, edits: usize, rng: &mut Rng) -> String {
    const JUNK: &[u8] = b"{}();\"\\@#$%~`^|\x01\x7f012ABz \n";
    let mut chars: Vec<char> = src.chars().collect();
    for _ in 0..edits {
        let at = rng.gen_index(0..chars.len());
        chars[at] = *rng.pick(JUNK) as char;
    }
    chars.into_iter().collect()
}

#[test]
fn parse_never_panics_on_garbled_sources() {
    forall("garbled-parse", 300, |rng| {
        let edits = rng.gen_index(1..40);
        let garbled = garble(HEALTHY, edits, rng);
        // The property is the absence of a panic: any Ok/Err is fine.
        let _ = parse(&garbled);
    });
}

#[test]
fn parse_never_panics_on_truncations() {
    // Every prefix, cut on char boundaries — catches mid-construct EOF
    // handling at each grammar position, deterministically.
    for cut in 0..=HEALTHY.len() {
        if HEALTHY.is_char_boundary(cut) {
            let _ = parse(&HEALTHY[..cut]);
        }
    }
}

#[test]
fn truncated_source_reports_unexpected_eof() {
    let cut = &HEALTHY[..HEALTHY.rfind('}').unwrap()];
    let err = parse(cut).unwrap_err();
    assert_eq!(err.kind, ParseErrorKind::UnexpectedEof, "{err}");
}

#[test]
fn deep_nesting_errors_instead_of_overflowing() {
    // Would overflow the parser stack without the depth guard; the process
    // would abort, so merely *returning* here proves the guard works.
    for src in [
        format!("class A {{ int x = {}1{}; }}", "(".repeat(5_000), ")".repeat(5_000)),
        format!("class A {{ boolean x = {}true; }}", "!".repeat(5_000)),
        format!("class A {{ void m() {{ {} }} }}", "{".repeat(5_000)),
    ] {
        let err = parse(&src).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::NestingTooDeep, "{err}");
    }
    // Deep generic types are rejected by the generics lookahead before the
    // parser ever recurses; any clean error is the property here.
    let generics = format!("class A {{ {}Deep{} f; }}", "List<".repeat(5_000), ">".repeat(5_000));
    assert!(parse(&generics).is_err());
}

#[test]
fn moderate_nesting_still_parses() {
    let src = format!("class A {{ int x = {}1{}; }}", "(".repeat(40), ")".repeat(40));
    parse(&src).expect("40 levels is fine");
}

#[test]
fn bad_literals_report_invalid_literal() {
    for src in ["class A { long x = 99999999999999999999999; }", "class A { int x = 0xZZ; }"] {
        let err = parse(src).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::InvalidLiteral, "{src}: {err}");
    }
}
