//! Deterministic fault-injection plans for the inference pipeline.
//!
//! A [`FaultPlan`] scripts every fault class the fault-isolated worklist
//! must survive — scripted solve panics, NaN-poisoned factor tables,
//! oversized models, garbled or truncated sources, and starved BP budgets —
//! in a tiny line-based text format that `anek infer --inject <plan>`
//! replays. Everything random (which bytes to garble) derives from the
//! plan's seed through the in-tree [`prng`], so a plan file is a complete,
//! replayable description of the failure scenario: same plan, same corpus,
//! same outcome table, on every machine and for every `--threads` value.
//!
//! ## Plan format
//!
//! One directive per line; blank lines and `#` comments are ignored:
//!
//! ```text
//! seed 42                 # base seed for source corruption (default 0)
//! panic App.copy          # solve of App.copy panics (pattern: exact, Class.*, *)
//! nan Row.*               # NaN unary factor in every Row method's model
//! oversize App.big 4096   # pad App.big's factor graph with 4096 variables
//! slow App.copy 250       # App.copy's solve sleeps 250 ms before running
//! garble 0 12             # source #0: overwrite 12 random bytes
//! truncate 1 50           # source #1: keep the first 50% of bytes
//! bp-max-iters 2          # starve every solve's iteration cap
//! update-budget 500       # hard per-solve message-update budget
//! max-model-vars 100      # lower the model-size refusal cap
//! ```

use anek_core::config::FaultInjection;
use anek_core::InferConfig;
use prng::Rng;
use std::fmt;

/// A parsed, replayable fault-injection plan (see the module docs for the
/// file format).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Base seed for the source-corruption streams.
    pub seed: u64,
    /// Method patterns whose solve panics.
    pub panic_methods: Vec<String>,
    /// Method patterns whose model gets a NaN factor.
    pub nan_methods: Vec<String>,
    /// Method patterns padded with extra factor-graph variables.
    pub oversize_methods: Vec<(String, usize)>,
    /// `(pattern, milliseconds)` pairs: the solve sleeps before running.
    /// Replayable slowness for deadline/cancellation testing — never
    /// changes any result, only timing.
    pub slow_methods: Vec<(String, u64)>,
    /// `(source index, bytes to overwrite)` pairs.
    pub garble_sources: Vec<(usize, usize)>,
    /// `(source index, percent of bytes kept)` pairs.
    pub truncate_sources: Vec<(usize, usize)>,
    /// Override for `BpOptions::max_iterations` (starves convergence).
    pub bp_max_iterations: Option<usize>,
    /// Override for `BpOptions::update_budget`.
    pub update_budget: Option<usize>,
    /// Override for `InferConfig::max_model_vars`.
    pub max_model_vars: Option<usize>,
}

impl FaultPlan {
    /// Parses the plan format. Returns the first offending line on error.
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let err = |what: &str| format!("line {}: {what}: `{raw}`", lineno + 1);
            let mut words = line.split_whitespace();
            let directive = words.next().unwrap_or("");
            let args: Vec<&str> = words.collect();
            let one = |args: &[&str]| -> Result<String, String> {
                match args {
                    [a] => Ok((*a).to_string()),
                    _ => Err(err("expected one argument")),
                }
            };
            let one_num = |args: &[&str]| -> Result<usize, String> {
                one(args)?.parse().map_err(|_| err("expected a number"))
            };
            let two_nums = |args: &[&str]| -> Result<(usize, usize), String> {
                match args {
                    [a, b] => match (a.parse(), b.parse()) {
                        (Ok(a), Ok(b)) => Ok((a, b)),
                        _ => Err(err("expected two numbers")),
                    },
                    _ => Err(err("expected two arguments")),
                }
            };
            match directive {
                "seed" => plan.seed = one(&args)?.parse().map_err(|_| err("expected a number"))?,
                "panic" => plan.panic_methods.push(one(&args)?),
                "nan" => plan.nan_methods.push(one(&args)?),
                "oversize" => match args[..] {
                    [pat, n] => plan
                        .oversize_methods
                        .push((pat.to_string(), n.parse().map_err(|_| err("bad var count"))?)),
                    _ => return Err(err("expected `oversize <pattern> <vars>`")),
                },
                "slow" => match args[..] {
                    [pat, ms] => plan
                        .slow_methods
                        .push((pat.to_string(), ms.parse().map_err(|_| err("bad delay"))?)),
                    _ => return Err(err("expected `slow <pattern> <ms>`")),
                },
                "garble" => plan.garble_sources.push(two_nums(&args)?),
                "truncate" => {
                    let (idx, pct) = two_nums(&args)?;
                    if pct > 100 {
                        return Err(err("percent must be 0–100"));
                    }
                    plan.truncate_sources.push((idx, pct));
                }
                "bp-max-iters" => plan.bp_max_iterations = Some(one_num(&args)?),
                "update-budget" => plan.update_budget = Some(one_num(&args)?),
                "max-model-vars" => plan.max_model_vars = Some(one_num(&args)?),
                _ => return Err(err("unknown directive")),
            }
        }
        Ok(plan)
    }

    /// Whether the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        *self == FaultPlan { seed: self.seed, ..FaultPlan::default() }
    }

    /// Applies the source-level faults (garbling, truncation) in place.
    ///
    /// Out-of-range source indices are ignored — a plan written for a large
    /// corpus degrades gracefully on a smaller one. Corruption is drawn from
    /// a child stream forked per directive, so adding a directive never
    /// shifts the bytes an earlier one picks.
    pub fn apply_sources(&self, sources: &mut [String]) {
        let mut rng = Rng::new(self.seed);
        for &(idx, edits) in &self.garble_sources {
            let mut child = rng.fork();
            let Some(src) = sources.get_mut(idx) else { continue };
            *src = garble(src, edits, &mut child);
        }
        for &(idx, pct) in &self.truncate_sources {
            let Some(src) = sources.get_mut(idx) else { continue };
            let keep = src.len() * pct / 100;
            // Cut on a char boundary at or below the target length.
            let mut cut = keep.min(src.len());
            while !src.is_char_boundary(cut) {
                cut -= 1;
            }
            src.truncate(cut);
        }
    }

    /// Applies the model- and solver-level faults to an [`InferConfig`].
    pub fn apply_config(&self, cfg: &mut InferConfig) {
        cfg.faults = FaultInjection {
            panic_methods: self.panic_methods.clone(),
            nan_methods: self.nan_methods.clone(),
            oversize_methods: self.oversize_methods.clone(),
            slow_methods: self.slow_methods.clone(),
        };
        if let Some(n) = self.bp_max_iterations {
            cfg.bp.max_iterations = n;
        }
        if let Some(n) = self.update_budget {
            cfg.bp.update_budget = Some(n);
        }
        if let Some(n) = self.max_model_vars {
            cfg.max_model_vars = n;
        }
    }
}

impl fmt::Display for FaultPlan {
    /// Renders the plan back into its file format (`parse` ∘ `to_string`
    /// is the identity on the plan value).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "seed {}", self.seed)?;
        for p in &self.panic_methods {
            writeln!(f, "panic {p}")?;
        }
        for p in &self.nan_methods {
            writeln!(f, "nan {p}")?;
        }
        for (p, n) in &self.oversize_methods {
            writeln!(f, "oversize {p} {n}")?;
        }
        for (p, ms) in &self.slow_methods {
            writeln!(f, "slow {p} {ms}")?;
        }
        for (i, n) in &self.garble_sources {
            writeln!(f, "garble {i} {n}")?;
        }
        for (i, n) in &self.truncate_sources {
            writeln!(f, "truncate {i} {n}")?;
        }
        if let Some(n) = self.bp_max_iterations {
            writeln!(f, "bp-max-iters {n}")?;
        }
        if let Some(n) = self.update_budget {
            writeln!(f, "update-budget {n}")?;
        }
        if let Some(n) = self.max_model_vars {
            writeln!(f, "max-model-vars {n}")?;
        }
        Ok(())
    }
}

/// Overwrites `edits` random byte positions of `src` with random printable
/// ASCII. Operates on bytes but writes only single-byte characters, so the
/// result may split a multi-byte character — which is the point: the parser
/// must survive arbitrary corruption, and [`garble`] keeps whatever it
/// produces a valid `String` by replacing any torn character wholesale.
pub fn garble(src: &str, edits: usize, rng: &mut Rng) -> String {
    if src.is_empty() {
        return String::new();
    }
    // Work on chars (not raw bytes) so the output stays valid UTF-8 while
    // still hitting every position a fuzzer could reach in ASCII sources.
    let mut chars: Vec<char> = src.chars().collect();
    const JUNK: &[u8] = b"{}();\"\\@#$%~`^|\x01\x7f012ABz \n";
    for _ in 0..edits {
        let at = rng.gen_index(0..chars.len());
        chars[at] = *rng.pick(JUNK) as char;
    }
    chars.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const PLAN: &str = "\
# exercise every directive
seed 7
panic App.copy
nan Row.*
oversize App.big 4096
slow App.copy 250
garble 0 12
truncate 1 50
bp-max-iters 2
update-budget 500
max-model-vars 100
";

    #[test]
    fn parse_display_roundtrip() {
        let plan = FaultPlan::parse(PLAN).unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.panic_methods, vec!["App.copy"]);
        assert_eq!(plan.oversize_methods, vec![("App.big".to_string(), 4096)]);
        assert_eq!(plan.slow_methods, vec![("App.copy".to_string(), 250)]);
        let reparsed = FaultPlan::parse(&plan.to_string()).unwrap();
        assert_eq!(plan, reparsed);
    }

    #[test]
    fn parse_rejects_bad_lines() {
        for bad in ["bogus x", "oversize App.big", "truncate 0 150", "seed x", "slow App.copy"] {
            assert!(FaultPlan::parse(bad).is_err(), "should reject `{bad}`");
        }
    }

    #[test]
    fn empty_and_comment_lines_ignored() {
        let plan = FaultPlan::parse("\n# only a comment\n   \n").unwrap();
        assert!(plan.is_empty());
    }

    #[test]
    fn apply_sources_is_deterministic() {
        let plan = FaultPlan::parse("seed 3\ngarble 0 8\ntruncate 1 25\n").unwrap();
        let original = vec!["class A { void m() { } }".to_string(), "0123456789abcdef".repeat(4)];
        let mut a = original.clone();
        let mut b = original.clone();
        plan.apply_sources(&mut a);
        plan.apply_sources(&mut b);
        assert_eq!(a, b);
        assert_ne!(a[0], original[0], "garbling changed the source");
        assert_eq!(a[1].len(), original[1].len() / 4, "25% kept");
    }

    #[test]
    fn apply_sources_ignores_out_of_range_indices() {
        let plan = FaultPlan::parse("garble 9 5\ntruncate 9 10\n").unwrap();
        let mut sources = vec!["class A { }".to_string()];
        plan.apply_sources(&mut sources);
        assert_eq!(sources[0], "class A { }");
    }

    #[test]
    fn apply_config_sets_every_knob() {
        let plan = FaultPlan::parse(PLAN).unwrap();
        let mut cfg = InferConfig::default();
        plan.apply_config(&mut cfg);
        assert_eq!(cfg.bp.max_iterations, 2);
        assert_eq!(cfg.bp.update_budget, Some(500));
        assert_eq!(cfg.max_model_vars, 100);
        assert_eq!(cfg.faults.panic_methods, vec!["App.copy"]);
        assert_eq!(cfg.faults.slow_methods, vec![("App.copy".to_string(), 250)]);
        assert!(!cfg.faults.is_empty());
    }

    #[test]
    fn garble_output_stays_valid_and_same_char_count() {
        let mut rng = Rng::new(11);
        let src = "class A { void m(Iterator<Integer> it) { it.next(); } }";
        let out = garble(src, 10, &mut rng);
        assert_eq!(out.chars().count(), src.chars().count());
    }
}
