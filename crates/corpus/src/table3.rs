//! The Table 3 micro-benchmark program.
//!
//! "We took a small test program crafted for this experiment which contained
//! numerous short methods and ran ANEK on it to infer method specifications.
//! Then, in a second run, we inlined each method so that the resulting
//! program consists of one single large method and ran PLURAL on this
//! program… The program under inference is small (400 lines) but contains
//! numerous control flow branches." (§4.2)
//!
//! [`generate`] emits the same computation in both forms: `modular` (many
//! short methods calling each other) and `inlined` (one large method), so
//! the harness can run ANEK on the former and PLURAL's local fractional
//! inference on the latter.

use java_syntax::{parse, CompilationUnit};
use prng::Rng;
use std::fmt::Write as _;

/// The two forms of the Table 3 program.
#[derive(Debug, Clone)]
pub struct Table3Program {
    /// Many short, branchy methods (ANEK's input).
    pub modular: CompilationUnit,
    /// The same work inlined into one large method (PLURAL's input).
    pub inlined: CompilationUnit,
    /// Source of the modular form.
    pub modular_source: String,
    /// Source of the inlined form.
    pub inlined_source: String,
}

/// One inlinable step of work over an iterator.
fn step_body(out: &mut String, indent: &str, rng: &mut Rng, i: usize) {
    let c = rng.gen_range(2..9);
    let _ = writeln!(out, "{indent}if (it{i}.hasNext()) {{");
    let _ = writeln!(out, "{indent}    total = total + it{i}.next() * {c};");
    let _ = writeln!(out, "{indent}}} else {{");
    let _ = writeln!(out, "{indent}    total = total - {c};");
    let _ = writeln!(out, "{indent}}}");
    let _ = writeln!(out, "{indent}while (it{i}.hasNext()) {{");
    let _ = writeln!(out, "{indent}    int v{i} = it{i}.next();");
    let _ = writeln!(out, "{indent}    if (v{i} > total) {{");
    let _ = writeln!(out, "{indent}        total = v{i};");
    let _ = writeln!(out, "{indent}    }}");
    let _ = writeln!(out, "{indent}}}");
}

/// Generates the Table 3 program with roughly `target_lines` lines in the
/// modular form (the paper used ~400).
pub fn generate(seed: u64, target_lines: usize) -> Table3Program {
    // Each step method is ~14 lines; solve for the step count.
    let steps = (target_lines / 14).max(2);

    // ---- Modular form: one short method per step + a driver ----
    let mut rng = Rng::new(seed);
    let mut modular = String::new();
    let _ = writeln!(modular, "class Pipeline {{");
    for i in 0..steps {
        let _ = writeln!(modular, "    int step{i}(Collection<Integer> c, int total) {{");
        let _ = writeln!(modular, "        Iterator<Integer> it{i} = c.iterator();");
        step_body(&mut modular, "        ", &mut rng, i);
        let _ = writeln!(modular, "        return total;");
        let _ = writeln!(modular, "    }}");
    }
    let _ = writeln!(modular, "    int run(Collection<Integer> c) {{");
    let _ = writeln!(modular, "        int total = 0;");
    for i in 0..steps {
        let _ = writeln!(modular, "        total = step{i}(c, total);");
    }
    let _ = writeln!(modular, "        return total;");
    let _ = writeln!(modular, "    }}");
    let _ = writeln!(modular, "}}");

    // ---- Inlined form: the same work in one large method ----
    let mut rng = Rng::new(seed);
    let mut inlined = String::new();
    let _ = writeln!(inlined, "class PipelineInlined {{");
    let _ = writeln!(inlined, "    int run(Collection<Integer> c) {{");
    let _ = writeln!(inlined, "        int total = 0;");
    for i in 0..steps {
        let _ = writeln!(inlined, "        Iterator<Integer> it{i} = c.iterator();");
        step_body(&mut inlined, "        ", &mut rng, i);
    }
    let _ = writeln!(inlined, "        return total;");
    let _ = writeln!(inlined, "    }}");
    let _ = writeln!(inlined, "}}");

    Table3Program {
        modular: parse(&modular).expect("modular Table 3 program parses"),
        inlined: parse(&inlined).expect("inlined Table 3 program parses"),
        modular_source: modular,
        inlined_source: inlined,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use java_syntax::visit::count_calls;

    #[test]
    fn both_forms_parse_and_cover_the_same_work() {
        let p = generate(1, 400);
        // The same number of next() calls in both forms.
        assert_eq!(count_calls(&p.modular, "next"), count_calls(&p.inlined, "next"));
        assert!(count_calls(&p.modular, "next") >= 4);
        // Modular has many methods, inlined has one (plus none extra).
        let modular_methods = p.modular.methods().count();
        let inlined_methods = p.inlined.methods().count();
        assert!(modular_methods > 10);
        assert_eq!(inlined_methods, 1);
    }

    #[test]
    fn modular_form_is_about_the_requested_size() {
        let p = generate(1, 400);
        let lines = p.modular_source.lines().count();
        assert!((300..=560).contains(&lines), "lines = {lines}");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate(9, 400);
        let b = generate(9, 400);
        assert_eq!(a.modular_source, b.modular_source);
        assert_eq!(a.inlined_source, b.inlined_source);
    }

    #[test]
    fn contains_numerous_branches() {
        // The paper stresses "numerous control flow branches".
        let p = generate(1, 400);
        let ifs = p.inlined_source.matches("if (").count();
        let whiles = p.inlined_source.matches("while (").count();
        assert!(ifs + whiles > 30, "ifs={ifs} whiles={whiles}");
    }
}
