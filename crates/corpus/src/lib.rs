//! # corpus
//!
//! Benchmark programs for the ANEK/PLURAL reproduction (Beckman & Nori,
//! PLDI 2011):
//!
//! * [`figures`] — the paper's running examples (Figures 2, 3, 5, 7) as
//!   embedded, parseable Java;
//! * [`regression`] — the small per-rule experiment suite of §4.2 (one case
//!   per logical/heuristic constraint);
//! * [`generator`] — the deterministic PMD-stand-in corpus reproducing
//!   Table 1's shape (classes, methods, `next()` call sites, bug sites),
//!   plus the gold ("Bierhoff") annotations and ground-truth specs;
//! * [`table3`] — the 400-line branchy program in modular and inlined forms;
//! * [`faults`] — deterministic fault-injection plans (`anek infer
//!   --inject`) driving the robustness harness.
//!
//! ## Example
//!
//! ```
//! use corpus::generator::{generate, PmdConfig};
//!
//! let corpus = generate(&PmdConfig::small());
//! assert_eq!(corpus.stats.classes, PmdConfig::small().total_classes);
//! assert!(!corpus.gold.is_empty()); // the hand-annotation set
//! ```

#![warn(missing_docs)]

pub mod faults;
pub mod figures;
pub mod generator;
pub mod regression;
pub mod table3;

pub use faults::FaultPlan;
pub use figures::{figure2, figure3_unit, figure7_unit, FIGURE3, FIGURE7};
pub use generator::{generate, CorpusStats, PmdConfig, PmdCorpus};
pub use regression::{suite, Expectation, RegressionCase};
pub use table3::{generate as table3_program, Table3Program};
