//! The PMD-stand-in corpus generator.
//!
//! The paper's main experiment runs ANEK on PMD — 38,483 lines, 463
//! classes, 3,120 methods, 170 calls to `Iterator.next()` (Table 1) — with
//! an annotated iterator API. PMD's source is not available offline, so this
//! generator synthesizes a corpus with the same *shape*, seeded and
//! deterministic:
//!
//! * most `next()` calls sit in correct, locally-verifiable loops;
//! * a configurable number of iterators cross unannotated method boundaries
//!   (the warnings Bierhoff's 26 hand annotations fixed);
//! * exactly `buggy_sites` call `next()` without `hasNext()` — the
//!   conflicting-constraint sites of §4.2;
//! * one "branch trap" helper returns an iterator that is provably in
//!   `HASNEXT` only via branch reasoning ANEK lacks — the paper's fourth,
//!   branch-insensitivity warning.
//!
//! The generator also emits the *gold* annotation set (playing Bierhoff's
//! hand annotations) and a *ground-truth* spec per interesting method (used
//! by the Table 4 categorization).

use analysis::types::MethodId;
use java_syntax::{parse, CompilationUnit};
use prng::Rng;
use spec_lang::{parse_clause, MethodSpec};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Generation parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PmdConfig {
    /// RNG seed; the same seed reproduces the same corpus byte-for-byte.
    pub seed: u64,
    /// Iterator-returning helper classes (each gets one gold annotation).
    pub helper_classes: usize,
    /// Correct in-method loop uses of `iterator()` (one `next()` each).
    pub local_loops: usize,
    /// Correct loop uses of a *helper-returned* iterator (one `next()`
    /// each; warn without annotations).
    pub helper_loops: usize,
    /// `next()`-without-`hasNext()` bug sites.
    pub buggy_sites: usize,
    /// Branch-trap helpers + uses (ANEK's branch-insensitivity warning).
    pub branch_traps: usize,
    /// Gold-annotated dynamic state-test methods (`@TrueIndicates`) — specs
    /// ANEK does not infer, filling Table 4's "Removed" bucket.
    pub state_tests: usize,
    /// Total classes to emit (filled up with data classes).
    pub total_classes: usize,
    /// Total methods to emit (filled up with data-class methods).
    pub total_methods: usize,
}

impl PmdConfig {
    /// Paper-scale configuration targeting Table 1's shape.
    pub fn paper() -> PmdConfig {
        // Calibrated so the unannotated ("Original") corpus produces the
        // paper's 45 warnings: 39 helper-loop `next()`s + 3 bug sites +
        // 1 branch trap + the 2 IterUtils bodies; and so the gold set has
        // the paper's 26 annotations: 20 helpers + the trap + 2 utilities
        // + 3 state-test methods.
        PmdConfig {
            seed: 42,
            helper_classes: 20,
            local_loops: 125,
            helper_loops: 39,
            buggy_sites: 3,
            branch_traps: 1,
            state_tests: 3,
            total_classes: 463,
            total_methods: 3120,
        }
    }

    /// A fast, small configuration for tests.
    pub fn small() -> PmdConfig {
        PmdConfig {
            seed: 7,
            helper_classes: 3,
            local_loops: 5,
            helper_loops: 4,
            buggy_sites: 1,
            branch_traps: 1,
            state_tests: 1,
            total_classes: 18,
            total_methods: 60,
        }
    }
}

/// Aggregate statistics (the Table 1 row values).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CorpusStats {
    /// Lines of generated source.
    pub lines: usize,
    /// Number of classes.
    pub classes: usize,
    /// Number of methods (constructors included).
    pub methods: usize,
    /// Calls to `Iterator.next()`.
    pub next_calls: usize,
}

/// A generated corpus.
#[derive(Debug, Clone)]
pub struct PmdCorpus {
    /// One compilation unit per class.
    pub units: Vec<CompilationUnit>,
    /// The full concatenated source.
    pub source: String,
    /// The gold ("Bierhoff") annotation set: method -> hand spec.
    pub gold: BTreeMap<MethodId, MethodSpec>,
    /// Ground truth for every interesting method (for Table 4).
    pub truth: BTreeMap<MethodId, MethodSpec>,
    /// The planted protocol bugs (`first{i}`: `next()` on a fresh
    /// iterator), in deterministic order. A checker must flag exactly
    /// these methods.
    pub bugs: Vec<MethodId>,
    /// The planted branch traps (`head{i}`: `next()` on an iterator that is
    /// provably `HASNEXT`, but only via branch reasoning). A checker
    /// without state-test refinement reports these as false positives —
    /// the documented precision gap.
    pub traps: Vec<MethodId>,
    /// Table 1 statistics.
    pub stats: CorpusStats,
}

impl PmdCorpus {
    /// Materializes the corpus as one `.java` file per class under `dir`
    /// (created if needed). Returns the number of files written. Useful for
    /// driving the `anek` CLI against a real directory of sources.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to_dir(&self, dir: &std::path::Path) -> std::io::Result<usize> {
        std::fs::create_dir_all(dir)?;
        let mut written = 0usize;
        for unit in &self.units {
            let Some(class) = unit.types.first() else { continue };
            let path = dir.join(format!("{}.java", class.name));
            std::fs::write(path, java_syntax::print_unit(unit))?;
            written += 1;
        }
        Ok(written)
    }
}

fn spec(req: &str, ens: &str) -> MethodSpec {
    MethodSpec {
        requires: parse_clause(req).expect("generator clauses are well-formed"),
        ensures: parse_clause(ens).expect("generator clauses are well-formed"),
        true_indicates: None,
        false_indicates: None,
    }
}

/// Generates the corpus for `cfg`.
pub fn generate(cfg: &PmdConfig) -> PmdCorpus {
    let mut rng = Rng::new(cfg.seed);
    let mut sources: Vec<String> = Vec::new();
    let mut gold = BTreeMap::new();
    let mut truth = BTreeMap::new();
    let mut methods = 0usize;

    // ---- Helper (registry) classes ----
    let helper_names: Vec<String> =
        (0..cfg.helper_classes.max(1)).map(|i| format!("Registry{i}")).collect();
    for (i, name) in helper_names.iter().enumerate() {
        let mut s = String::new();
        let _ = writeln!(s, "class {name} {{");
        let _ = writeln!(s, "    Collection<Integer> items;");
        let _ = writeln!(s, "    Iterator<Integer> createIter{i}() {{");
        let _ = writeln!(s, "        return items.iterator();");
        let _ = writeln!(s, "    }}");
        methods += 1;
        gold.insert(
            MethodId::new(name, format!("createIter{i}")),
            spec("pure(this)", "pure(this), unique(result) in ALIVE"),
        );
        truth.insert(
            MethodId::new(name, format!("createIter{i}")),
            spec("pure(this)", "pure(this), unique(result) in ALIVE"),
        );
        // A second, harmless method keeps the class realistic.
        let _ = writeln!(s, "    void refill{i}(Collection<Integer> fresh) {{");
        let _ = writeln!(s, "        this.items = fresh;");
        let _ = writeln!(s, "    }}");
        methods += 1;
        truth.insert(
            MethodId::new(name, format!("refill{i}")),
            spec("full(this), share(fresh)", "full(this), share(fresh)"),
        );
        if i < cfg.state_tests {
            // A dynamic state-test method: its gold spec carries
            // @TrueIndicates, which ANEK does not infer (Table 4 "Removed").
            let _ = writeln!(s, "    boolean hasEntries{i}() {{");
            let _ = writeln!(s, "        Iterator<Integer> probe = items.iterator();");
            let _ = writeln!(s, "        return probe.hasNext();");
            let _ = writeln!(s, "    }}");
            methods += 1;
            let mut st = spec("pure(this)", "pure(this)");
            st.true_indicates = Some("READY".to_string());
            gold.insert(MethodId::new(name, format!("hasEntries{i}")), st.clone());
            truth.insert(MethodId::new(name, format!("hasEntries{i}")), st);
        }
        if i == 0 && cfg.branch_traps > 0 {
            // The branch trap: provably HASNEXT on return, but only via the
            // branch reasoning ANEK does not perform.
            let _ = writeln!(s, "    Iterator<Integer> createReadyIter() {{");
            let _ = writeln!(s, "        Iterator<Integer> it = items.iterator();");
            let _ = writeln!(s, "        if (!it.hasNext()) {{");
            let _ = writeln!(s, "            throw new RuntimeException(\"empty registry\");");
            let _ = writeln!(s, "        }}");
            let _ = writeln!(s, "        return it;");
            let _ = writeln!(s, "    }}");
            methods += 1;
            gold.insert(
                MethodId::new(name, "createReadyIter"),
                spec("pure(this)", "pure(this), unique(result) in HASNEXT"),
            );
            truth.insert(
                MethodId::new(name, "createReadyIter"),
                spec("pure(this)", "pure(this), unique(result) in HASNEXT"),
            );
        }
        let _ = writeln!(s, "}}");
        sources.push(s);
    }

    // ---- Iterator utilities (gold-annotated parameter specs) ----
    {
        let mut s = String::new();
        let _ = writeln!(s, "class IterUtils {{");
        let _ = writeln!(s, "    static int drainSum(Iterator<Integer> it) {{");
        let _ = writeln!(s, "        int s = 0;");
        let _ = writeln!(s, "        while (it.hasNext()) {{");
        let _ = writeln!(s, "            s = s + it.next();");
        let _ = writeln!(s, "        }}");
        let _ = writeln!(s, "        return s;");
        let _ = writeln!(s, "    }}");
        let _ = writeln!(s, "    static int drainCount(Iterator<Integer> it) {{");
        let _ = writeln!(s, "        int n = 0;");
        let _ = writeln!(s, "        while (it.hasNext()) {{");
        let _ = writeln!(s, "            it.next();");
        let _ = writeln!(s, "            n = n + 1;");
        let _ = writeln!(s, "        }}");
        let _ = writeln!(s, "        return n;");
        let _ = writeln!(s, "    }}");
        let _ = writeln!(s, "}}");
        methods += 2;
        for m in ["drainSum", "drainCount"] {
            gold.insert(MethodId::new("IterUtils", m), spec("full(it)", "full(it)"));
            truth.insert(MethodId::new("IterUtils", m), spec("full(it)", "full(it)"));
        }
        sources.push(s);
    }

    // ---- Worker classes ----
    let mut worker_methods: Vec<String> = Vec::new();
    let mut next_calls_planned = 2; // drainSum + drainCount
    let mut worker_id = 0usize;
    let mk_id = |worker_id: &mut usize| {
        let id = *worker_id;
        *worker_id += 1;
        id
    };

    for _ in 0..cfg.local_loops {
        let i = mk_id(&mut worker_id);
        let acc = *rng.pick(&["sum", "count", "max"]);
        let mut s = String::new();
        let _ = writeln!(s, "    int local{i}(Collection<Integer> c) {{");
        let _ = writeln!(s, "        int total = 0;");
        let _ = writeln!(s, "        Iterator<Integer> it = c.iterator();");
        let _ = writeln!(s, "        while (it.hasNext()) {{");
        match acc {
            "sum" => {
                let _ = writeln!(s, "            total = total + it.next();");
            }
            "count" => {
                let _ = writeln!(s, "            it.next();");
                let _ = writeln!(s, "            total = total + 1;");
            }
            _ => {
                let _ = writeln!(s, "            int v = it.next();");
                let _ = writeln!(s, "            if (v > total) {{");
                let _ = writeln!(s, "                total = v;");
                let _ = writeln!(s, "            }}");
            }
        }
        let _ = writeln!(s, "        }}");
        let _ = writeln!(s, "        return total;");
        let _ = writeln!(s, "    }}");
        next_calls_planned += 1;
        worker_methods.push(s);
    }
    for k in 0..cfg.helper_loops {
        let i = mk_id(&mut worker_id);
        let helper = &helper_names[k % helper_names.len()];
        let hidx = k % helper_names.len();
        let mut s = String::new();
        let _ = writeln!(s, "    int scan{i}({helper} r) {{");
        let _ = writeln!(s, "        int total = 0;");
        let _ = writeln!(s, "        Iterator<Integer> it = r.createIter{hidx}();");
        let _ = writeln!(s, "        while (it.hasNext()) {{");
        let _ = writeln!(s, "            total = total + it.next();");
        let _ = writeln!(s, "        }}");
        let _ = writeln!(s, "        return total;");
        let _ = writeln!(s, "    }}");
        next_calls_planned += 1;
        worker_methods.push(s);
    }
    let mut bug_slots: Vec<(usize, String)> = Vec::new();
    let mut trap_slots: Vec<(usize, String)> = Vec::new();
    for k in 0..cfg.buggy_sites {
        let i = mk_id(&mut worker_id);
        let helper = &helper_names[k % helper_names.len()];
        let hidx = k % helper_names.len();
        let mut s = String::new();
        let _ = writeln!(s, "    int first{i}({helper} r) {{");
        let _ = writeln!(s, "        return r.createIter{hidx}().next();");
        let _ = writeln!(s, "    }}");
        next_calls_planned += 1;
        bug_slots.push((worker_methods.len(), format!("first{i}")));
        worker_methods.push(s);
    }
    for _ in 0..cfg.branch_traps {
        let i = mk_id(&mut worker_id);
        let helper = &helper_names[0];
        let mut s = String::new();
        let _ = writeln!(s, "    int head{i}({helper} r) {{");
        let _ = writeln!(s, "        Iterator<Integer> it = r.createReadyIter();");
        let _ = writeln!(s, "        return it.next();");
        let _ = writeln!(s, "    }}");
        next_calls_planned += 1;
        trap_slots.push((worker_methods.len(), format!("head{i}")));
        worker_methods.push(s);
    }
    // A few delegate workers exercising the annotated utilities.
    for _ in 0..3.min(cfg.local_loops) {
        let i = mk_id(&mut worker_id);
        let mut s = String::new();
        let _ = writeln!(s, "    int delegate{i}(Collection<Integer> c) {{");
        let _ = writeln!(s, "        return IterUtils.drainSum(c.iterator());");
        let _ = writeln!(s, "    }}");
        worker_methods.push(s);
    }

    // Pack worker methods into classes of ~8. The worker-list slot decides
    // which class each planted bug/trap lands in.
    let per_class = 8usize;
    let worker_class = |slot: usize| format!("Worker{}", slot / per_class);
    let bugs: Vec<MethodId> =
        bug_slots.iter().map(|(slot, name)| MethodId::new(worker_class(*slot), name)).collect();
    let traps: Vec<MethodId> =
        trap_slots.iter().map(|(slot, name)| MethodId::new(worker_class(*slot), name)).collect();
    for (ci, chunk) in worker_methods.chunks(per_class).enumerate() {
        let mut s = String::new();
        let _ = writeln!(s, "class Worker{ci} {{");
        for m in chunk {
            s.push_str(m);
        }
        let _ = writeln!(s, "}}");
        methods += chunk.len();
        sources.push(s);
    }

    // ---- Filler data classes up to the class/method targets ----
    let classes_so_far = sources.len();
    let filler_classes = cfg.total_classes.saturating_sub(classes_so_far).max(1);
    let methods_needed = cfg.total_methods.saturating_sub(methods);
    let per_filler = (methods_needed / filler_classes).max(1);
    let mut remainder = methods_needed.saturating_sub(per_filler * filler_classes);
    for f in 0..filler_classes {
        let mut count = per_filler;
        if remainder > 0 {
            count += 1;
            remainder -= 1;
        }
        let mut s = String::new();
        let _ = writeln!(s, "class Model{f} {{");
        let _ = writeln!(s, "    int base{f};");
        let _ = writeln!(s, "    String label{f};");
        let mut emitted = 0usize;
        // Constructor.
        if emitted < count {
            let _ = writeln!(s, "    Model{f}(int base) {{");
            let _ = writeln!(s, "        this.base{f} = base;");
            let _ = writeln!(s, "    }}");
            emitted += 1;
        }
        // Getter / setter pair (exercises H4 and pure receivers).
        if emitted < count {
            let _ = writeln!(s, "    int getBase{f}() {{");
            let _ = writeln!(s, "        return base{f};");
            let _ = writeln!(s, "    }}");
            truth.insert(
                MethodId::new(format!("Model{f}"), format!("getBase{f}")),
                spec("pure(this)", "pure(this)"),
            );
            emitted += 1;
        }
        if emitted < count {
            let _ = writeln!(s, "    void setBase{f}(int v) {{");
            let _ = writeln!(s, "        this.base{f} = v;");
            let _ = writeln!(s, "    }}");
            // The idiomatic PLURAL setter spec is `full(this)` (exclusive
            // writer, readers tolerated).
            truth.insert(
                MethodId::new(format!("Model{f}"), format!("setBase{f}")),
                spec("full(this)", "full(this)"),
            );
            emitted += 1;
        }
        // Arithmetic padding methods with branches (adds realistic LoC).
        let mut k = 0usize;
        while emitted < count {
            let c1 = rng.gen_range(2..9);
            let c2 = rng.gen_range(10..99);
            let c3 = rng.gen_range(1..7);
            let _ = writeln!(s, "    int compute{f}x{k}(int x, int y) {{");
            let _ = writeln!(s, "        int r = x * {c1} + y;");
            let _ = writeln!(s, "        int acc = 0;");
            let _ = writeln!(s, "        for (int i = 0; i < {c3}; i++) {{");
            let _ = writeln!(s, "            acc = acc + r;");
            let _ = writeln!(s, "            if (acc > {c2}) {{");
            let _ = writeln!(s, "                acc = acc - x;");
            let _ = writeln!(s, "            }} else {{");
            let _ = writeln!(s, "                acc = acc + y;");
            let _ = writeln!(s, "            }}");
            let _ = writeln!(s, "        }}");
            let _ = writeln!(s, "        int w = acc - x;");
            let _ = writeln!(s, "        while (w > {c2}) {{");
            let _ = writeln!(s, "            w = w - {c1};");
            let _ = writeln!(s, "        }}");
            if rng.gen_bool(0.4) {
                let _ = writeln!(s, "        acc = acc + w * {c3};");
            }
            let _ = writeln!(s, "        return acc + r * {c3};");
            let _ = writeln!(s, "    }}");
            emitted += 1;
            k += 1;
        }
        let _ = writeln!(s, "}}");
        sources.push(s);
    }

    // ---- Parse everything and compute stats ----
    let mut units = Vec::with_capacity(sources.len());
    let mut source = String::new();
    for s in &sources {
        source.push_str(s);
        source.push('\n');
        units.push(parse(s).unwrap_or_else(|e| panic!("generated class does not parse: {e}\n{s}")));
    }
    let lines = source.lines().filter(|l| !l.trim().is_empty()).count();
    let classes = units.iter().map(|u| u.types.len()).sum();
    let counted_methods: usize = units.iter().map(|u| u.methods().count()).sum();
    let next_calls: usize = units.iter().map(|u| java_syntax::visit::count_calls(u, "next")).sum();
    debug_assert_eq!(next_calls, next_calls_planned, "next() planning drifted");

    PmdCorpus {
        units,
        source,
        gold,
        truth,
        bugs,
        traps,
        stats: CorpusStats { lines, classes, methods: counted_methods, next_calls },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use java_syntax::ast::CompilationUnit;
    use std::collections::BTreeSet;

    #[test]
    fn small_corpus_generates_and_parses() {
        let corpus = generate(&PmdConfig::small());
        assert_eq!(corpus.stats.classes, PmdConfig::small().total_classes);
        assert_eq!(corpus.stats.methods, PmdConfig::small().total_methods);
        // 5 local + 4 helper + 1 buggy + 1 trap + 2 utils = 13 next() calls.
        assert_eq!(corpus.stats.next_calls, 13);
        assert!(corpus.stats.lines > 100);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&PmdConfig::small());
        let b = generate(&PmdConfig::small());
        assert_eq!(a.source, b.source);
        assert_eq!(a.stats, b.stats);
        let c = generate(&PmdConfig { seed: 8, ..PmdConfig::small() });
        assert_ne!(a.source, c.source);
    }

    #[test]
    fn gold_annotations_cover_helpers_and_utils() {
        let cfg = PmdConfig::small();
        let corpus = generate(&cfg);
        // helpers + trap + 2 utils + state tests.
        assert_eq!(corpus.gold.len(), cfg.helper_classes + cfg.branch_traps + cfg.state_tests + 2);
        assert!(corpus.gold.contains_key(&MethodId::new("Registry0", "createIter0")));
        assert!(corpus.gold.contains_key(&MethodId::new("IterUtils", "drainSum")));
    }

    #[test]
    fn truth_is_superset_of_gold() {
        let corpus = generate(&PmdConfig::small());
        for id in corpus.gold.keys() {
            assert!(corpus.truth.contains_key(id), "truth missing {id}");
        }
        assert!(corpus.truth.len() > corpus.gold.len());
    }

    #[test]
    fn corpus_writes_and_reparses_from_disk() {
        let corpus = generate(&PmdConfig::small());
        let dir = std::env::temp_dir().join(format!("anek-corpus-test-{}", std::process::id()));
        let n = corpus.write_to_dir(&dir).unwrap();
        assert_eq!(n, corpus.units.len());
        // Every written file reparses.
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            let src = std::fs::read_to_string(&path).unwrap();
            parse(&src).unwrap_or_else(|e| panic!("{} does not reparse: {e}", path.display()));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn planted_bugs_and_traps_resolve_to_real_methods() {
        for cfg in [PmdConfig::small(), PmdConfig::paper()] {
            let corpus = generate(&cfg);
            assert_eq!(corpus.bugs.len(), cfg.buggy_sites);
            assert_eq!(corpus.traps.len(), cfg.branch_traps);
            let all: BTreeSet<MethodId> = corpus
                .units
                .iter()
                .flat_map(CompilationUnit::methods)
                .map(|(t, m)| MethodId::new(&t.name, &m.name))
                .collect();
            for id in corpus.bugs.iter().chain(&corpus.traps) {
                assert!(all.contains(id), "planted {id} not found in corpus");
                assert!(id.class.starts_with("Worker"), "{id} should live in a Worker class");
            }
        }
    }

    #[test]
    fn paper_scale_stats_match_table1_shape() {
        let corpus = generate(&PmdConfig::paper());
        assert_eq!(corpus.stats.classes, 463);
        assert_eq!(corpus.stats.methods, 3120);
        assert_eq!(corpus.stats.next_calls, 170);
        // Lines land in the tens of thousands like PMD's 38,483.
        assert!(
            corpus.stats.lines > 25_000 && corpus.stats.lines < 55_000,
            "lines = {}",
            corpus.stats.lines
        );
    }
}
