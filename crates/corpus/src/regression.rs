//! The small-experiment regression suite (paper §4.2).
//!
//! "Each of these benchmarks consisted of one or more classes, with one or
//! more methods … Each experiment was designed to test some particular ANEK
//! constraint or feature." The suite doubles as the training set the paper
//! used to tune inference parameters; the integration tests run inference on
//! each case and assert its expectation.

use java_syntax::{parse, CompilationUnit};

/// What a regression case expects of the inference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expectation {
    /// Inference emits, for `method`, a requires atom on `target` of the
    /// given kind name.
    RequiresKind {
        /// `Class.method`.
        method: &'static str,
        /// `this`/`result`/param name.
        target: &'static str,
        /// Expected permission kind name.
        kind: &'static str,
    },
    /// Inference emits, for `method`, an ensures atom on `target` of the
    /// given kind name.
    EnsuresKind {
        /// `Class.method`.
        method: &'static str,
        /// `this`/`result`/param name.
        target: &'static str,
        /// Expected permission kind name.
        kind: &'static str,
    },
    /// Inference emits, for `method`, a requires atom on `target` in the
    /// given state.
    RequiresState {
        /// `Class.method`.
        method: &'static str,
        /// Target name.
        target: &'static str,
        /// Expected abstract state.
        state: &'static str,
    },
    /// After applying inferred specs, PLURAL reports exactly this many
    /// warnings on the case.
    WarningsAfterInference(usize),
    /// The method's receiver precondition marginals exclude the read-only
    /// kinds (H4/L3 only rule kinds *out*; they do not pick among writers).
    ReceiverNotReadOnly {
        /// `Class.method`.
        method: &'static str,
    },
}

/// One regression case.
#[derive(Debug, Clone)]
pub struct RegressionCase {
    /// Short unique name (which rule it targets).
    pub name: &'static str,
    /// What the case exercises.
    pub description: &'static str,
    /// Java source.
    pub source: &'static str,
    /// Expectations checked by the integration tests.
    pub expectations: Vec<Expectation>,
}

impl RegressionCase {
    /// Parses the case's source.
    pub fn unit(&self) -> CompilationUnit {
        parse(self.source).unwrap_or_else(|e| panic!("case {} does not parse: {e}", self.name))
    }
}

/// The full suite.
pub fn suite() -> Vec<RegressionCase> {
    vec![
        RegressionCase {
            name: "l1-straight-flow",
            description: "L1: permission demanded by a callee flows back to the parameter",
            source: r#"class L1 {
                void drain(Iterator<Integer> it) {
                    while (it.hasNext()) { it.next(); }
                }
            }"#,
            expectations: vec![
                Expectation::RequiresKind { method: "L1.drain", target: "it", kind: "full" },
                Expectation::WarningsAfterInference(0),
            ],
        },
        RegressionCase {
            name: "l2-merge-after-call",
            description: "L2: the retained permission survives a read-only call",
            source: r#"class L2 {
                void peek(Iterator<Integer> it) {
                    it.hasNext();
                    it.hasNext();
                    it.next();
                }
            }"#,
            expectations: vec![Expectation::RequiresKind {
                method: "L2.peek",
                target: "it",
                kind: "full",
            }],
        },
        RegressionCase {
            name: "l3-field-write",
            description: "L3: a field write makes the receiver a writer",
            source: r#"class L3 {
                Object f;
                void store(Object v) {
                    this.f = v;
                }
            }"#,
            expectations: vec![Expectation::WarningsAfterInference(0)],
        },
        RegressionCase {
            name: "h1-constructor",
            description: "H1: constructed objects come back unique",
            source: r#"class H1 {
                H1() { }
                static H1 make() {
                    return new H1();
                }
            }"#,
            expectations: vec![Expectation::EnsuresKind {
                method: "H1.make",
                target: "result",
                kind: "unique",
            }],
        },
        RegressionCase {
            name: "h2-pre-post",
            description: "H2: parameter permissions are returned to the caller",
            source: r#"class H2 {
                void read(Iterator<Integer> it) {
                    it.hasNext();
                }
            }"#,
            expectations: vec![Expectation::EnsuresKind {
                method: "H2.read",
                target: "it",
                kind: "pure",
            }],
        },
        RegressionCase {
            name: "h3-create-factory",
            description: "H3: create* methods return unique (the paper's createColIter)",
            source: r#"class H3 {
                Collection<Integer> entries;
                Iterator<Integer> createColIter() {
                    return entries.iterator();
                }
            }"#,
            expectations: vec![Expectation::EnsuresKind {
                method: "H3.createColIter",
                target: "result",
                kind: "unique",
            }],
        },
        RegressionCase {
            name: "h4-setter",
            description: "H4: set* receivers need a writing permission",
            source: r#"class H4 {
                int value;
                void setValue(int v) {
                    this.value = v;
                }
            }"#,
            expectations: vec![Expectation::ReceiverNotReadOnly { method: "H4.setValue" }],
        },
        RegressionCase {
            name: "h5-synchronized",
            description: "H5: synchronized targets are thread-shared (full/share/pure)",
            source: r#"class H5 {
                void locked(H5 other) {
                    synchronized (other) {
                        other.touch();
                    }
                }
                void touch() { }
            }"#,
            expectations: vec![],
        },
        RegressionCase {
            name: "conflict-tolerance",
            description: "conflicting constraints still yield a spec (the Figure 3 story)",
            source: r#"class Conflict {
                Collection<Integer> entries;
                Iterator<Integer> createIt() {
                    return entries.iterator();
                }
                void goodUse() {
                    Iterator<Integer> it = createIt();
                    while (it.hasNext()) { it.next(); }
                }
                void goodUse2() {
                    Iterator<Integer> it = createIt();
                    while (it.hasNext()) { it.next(); }
                }
                void buggyUse() {
                    createIt().next();
                }
            }"#,
            expectations: vec![
                Expectation::EnsuresKind {
                    method: "Conflict.createIt",
                    target: "result",
                    kind: "unique",
                },
                // The buggy site keeps one warning after inference; good
                // uses verify.
                Expectation::WarningsAfterInference(1),
            ],
        },
        RegressionCase {
            name: "modular-chain",
            description: "summaries propagate requirements through wrappers",
            source: r#"class Chain {
                void inner(Iterator<Integer> it) { it.next(); }
                void outer(Iterator<Integer> it) { inner(it); }
            }"#,
            expectations: vec![
                Expectation::RequiresState {
                    method: "Chain.inner",
                    target: "it",
                    state: "HASNEXT",
                },
                Expectation::RequiresState {
                    method: "Chain.outer",
                    target: "it",
                    state: "HASNEXT",
                },
            ],
        },
        RegressionCase {
            name: "stream-protocol",
            description: "a second protocol (open/close) exercises non-iterator states",
            source: r#"class Streams {
                void pump(StreamFactory f) {
                    Stream s = f.open();
                    s.read();
                    s.read();
                    s.close();
                }
            }"#,
            expectations: vec![Expectation::WarningsAfterInference(0)],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_cases_parse() {
        for case in suite() {
            let unit = case.unit();
            assert!(!unit.types.is_empty(), "{} has no types", case.name);
        }
    }

    #[test]
    fn suite_covers_all_rules() {
        let names: Vec<&str> = suite().iter().map(|c| c.name).collect();
        for rule in ["l1", "l2", "l3", "h1", "h2", "h3", "h4", "h5"] {
            assert!(names.iter().any(|n| n.starts_with(rule)), "no case covers {rule}: {names:?}");
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = suite().iter().map(|c| c.name).collect();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), before);
    }
}
