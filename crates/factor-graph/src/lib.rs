//! # factor-graph
//!
//! A small probabilistic-inference engine over Bernoulli variables: factor
//! graphs with tabulated potentials, solved by the sum-product algorithm
//! (loopy belief propagation) with an exact-enumeration cross-check. It
//! stands in for the INFER.NET library the original ANEK implementation used
//! (Beckman & Nori, PLDI 2011, §4.1); the paper only requires approximate
//! marginals of a factorized Bernoulli joint (Eq. 4–6).
//!
//! ## Example
//!
//! ```
//! use factor_graph::{BpOptions, Factor, FactorGraph};
//!
//! let mut g = FactorGraph::new();
//! let x = g.add_var("x");
//! let y = g.add_var("y");
//! g.add_factor(Factor::unary(x, 0.9));                       // prior belief
//! g.add_factor(Factor::soft(vec![x, y], 0.8, |a| a[0] == a[1])); // soft equality
//! let m = g.solve(&BpOptions::default());
//! assert!(m.prob(y) > 0.5); // y is pulled towards x's evidence
//! ```

#![warn(missing_docs)]

pub mod factor;
pub mod graph;
pub mod kernel;

pub use factor::{Factor, VarId, MAX_SCOPE};
pub use graph::{BpOptions, BpPrecision, BpSchedule, FactorGraph, GuardEvents, Marginals};
pub use kernel::{CompiledGraph, Scratch};
