//! The flat-arena belief-propagation kernel.
//!
//! [`CompiledGraph`] lowers a [`FactorGraph`] into contiguous CSR arrays —
//! one edge per (factor, scope-position) pair, factor tables laid out flat,
//! and a variable→edge adjacency index — so the message-passing loops touch
//! only dense `f64`/`u32` slices. A single core parameterized by the
//! sum/max semiring serves both marginal ([`CompiledGraph::solve`]) and MAP
//! ([`CompiledGraph::solve_map`]) inference, with specialized paths for
//! unary and pairwise factors that skip the generic `2^n` table walk.
//!
//! Two message schedules are provided (see [`BpSchedule`]):
//!
//! * **Sweep** — the classic synchronous two-phase sweep. This reproduces
//!   the pre-arena nested-`Vec` solver bit-for-bit: identical update order,
//!   identical floating-point accumulation order.
//! * **Residual** — residual belief propagation (Elidan et al., UAI 2006):
//!   factor→variable messages are updated highest-residual first from a
//!   priority queue, which converges in far fewer message updates on large
//!   loopy graphs.
//!
//! The kernel also supports *stamped* solves: a compiled skeleton plus a
//! list of extra unary potentials supplied per solve. Stamped extras behave
//! exactly as if `Factor::unary` factors had been appended after every
//! skeleton factor, which is what lets callers cache a method's static
//! factor-graph skeleton and re-solve with fresh evidence without
//! recompiling (see `anek-core`'s incremental `ANEK-INFER`).

use crate::factor::VarId;
use crate::graph::{BpOptions, BpSchedule, FactorGraph, GuardEvents, Marginals};
use std::collections::BinaryHeap;

/// A [`FactorGraph`] compiled into flat arena form.
///
/// Compilation is cheap (one linear pass) but not free; callers that solve
/// the same graph repeatedly — possibly with different stamped extras —
/// should compile once and reuse.
#[derive(Debug, Clone)]
pub struct CompiledGraph {
    n_vars: usize,
    /// Per factor: half-open edge range `f_off[fi]..f_off[fi+1]`.
    f_off: Vec<u32>,
    /// Per factor: offset of its table in `tables` (length `1 << arity`).
    t_off: Vec<u32>,
    /// All factor tables, concatenated.
    tables: Vec<f64>,
    /// Per edge: the variable it connects.
    edge_var: Vec<u32>,
    /// Per edge: the factor that owns it.
    edge_factor: Vec<u32>,
    /// Per variable: half-open range into `v_edges`.
    v_off: Vec<u32>,
    /// Edge ids grouped by variable, ascending within each group (this is
    /// exactly the insertion order the nested solver used).
    v_edges: Vec<u32>,
}

/// Per-solve adjacency for stamped extra unary potentials: extras grouped
/// by variable, preserving stamp order within each variable.
struct ExtraIndex {
    /// `p(true)` per extra, in stamp order.
    ps: Vec<f64>,
    x_off: Vec<u32>,
    x_idx: Vec<u32>,
}

impl ExtraIndex {
    fn build(n_vars: usize, extras: &[(VarId, f64)]) -> ExtraIndex {
        let mut x_off = vec![0u32; n_vars + 1];
        for (v, _) in extras {
            assert!((v.0 as usize) < n_vars, "stamped extra references unknown variable {v}");
            x_off[v.0 as usize + 1] += 1;
        }
        for i in 0..n_vars {
            x_off[i + 1] += x_off[i];
        }
        let mut cursor = x_off.clone();
        let mut x_idx = vec![0u32; extras.len()];
        for (i, (v, _)) in extras.iter().enumerate() {
            x_idx[cursor[v.0 as usize] as usize] = i as u32;
            cursor[v.0 as usize] += 1;
        }
        ExtraIndex { ps: extras.iter().map(|&(_, p)| p).collect(), x_off, x_idx }
    }

    #[inline]
    fn of(&self, v: usize) -> &[u32] {
        &self.x_idx[self.x_off[v] as usize..self.x_off[v + 1] as usize]
    }
}

/// Synchronous sweeps run before the residual schedule starts prioritizing
/// (see the warm-start note in [`CompiledGraph::solve_stamped`]'s residual
/// path).
const WARM_SWEEPS: usize = 2;

#[inline]
fn damp(old: f64, new: f64, d: f64) -> f64 {
    d * old + (1.0 - d) * new
}

/// Normalizes a two-point mass to `p(true)`, clamping degenerate masses to
/// the uniform message and counting the clamp in `ev`.
///
/// On healthy inputs (finite, positive mass) this is exactly the historical
/// `p_t / (p_t + p_f)` — bit-for-bit. Non-finite mass (a NaN or infinite
/// potential leaked into the products) and zero mass (all-zero factor rows,
/// fully underflowed products) both clamp to `0.5`; the former used to
/// produce `0.5` silently via NaN comparison semantics, and is now counted
/// so the solve can be reported as degraded.
#[inline]
fn normalize(p_t: f64, p_f: f64, ev: &mut GuardEvents) -> f64 {
    let z = p_t + p_f;
    if z > 0.0 && z.is_finite() {
        p_t / z
    } else {
        if z.is_finite() {
            ev.zero_sum += 1;
        } else {
            ev.non_finite += 1;
        }
        0.5
    }
}

impl CompiledGraph {
    /// Lowers a graph into arena form.
    pub fn compile(g: &FactorGraph) -> CompiledGraph {
        let n_vars = g.num_vars();
        let factors = g.factors();
        let n_edges: usize = factors.iter().map(|f| f.scope().len()).sum();
        let mut f_off = Vec::with_capacity(factors.len() + 1);
        let mut t_off = Vec::with_capacity(factors.len() + 1);
        let mut edge_var = Vec::with_capacity(n_edges);
        let mut edge_factor = Vec::with_capacity(n_edges);
        let mut tables = Vec::new();
        f_off.push(0u32);
        t_off.push(0u32);
        for (fi, f) in factors.iter().enumerate() {
            for v in f.scope() {
                edge_var.push(v.0);
                edge_factor.push(fi as u32);
            }
            tables.extend_from_slice(f.table());
            f_off.push(edge_var.len() as u32);
            t_off.push(tables.len() as u32);
        }
        // Counting sort: v_edges grouped by variable, ascending edge id —
        // the same order the nested solver's `var_edges` push loop produced.
        let mut v_off = vec![0u32; n_vars + 1];
        for &v in &edge_var {
            v_off[v as usize + 1] += 1;
        }
        for i in 0..n_vars {
            v_off[i + 1] += v_off[i];
        }
        let mut cursor = v_off.clone();
        let mut v_edges = vec![0u32; n_edges];
        for (e, &v) in edge_var.iter().enumerate() {
            v_edges[cursor[v as usize] as usize] = e as u32;
            cursor[v as usize] += 1;
        }
        CompiledGraph { n_vars, f_off, t_off, tables, edge_var, edge_factor, v_off, v_edges }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.n_vars
    }

    /// Number of (factor, position) edges.
    pub fn num_edges(&self) -> usize {
        self.edge_var.len()
    }

    /// Sum-product inference (marginals).
    pub fn solve(&self, opts: &BpOptions) -> Marginals {
        self.solve_stamped(&[], opts)
    }

    /// Max-product inference (per-variable MAP beliefs).
    pub fn solve_map(&self, opts: &BpOptions) -> Marginals {
        self.solve_map_stamped(&[], opts)
    }

    /// Sum-product inference with extra unary potentials stamped onto the
    /// compiled skeleton. Equivalent — bit-for-bit under
    /// [`BpSchedule::Sweep`] — to appending `Factor::unary(var, p)` for each
    /// extra and solving the extended graph.
    pub fn solve_stamped(&self, extras: &[(VarId, f64)], opts: &BpOptions) -> Marginals {
        let extras = ExtraIndex::build(self.n_vars, extras);
        match opts.schedule {
            BpSchedule::Sweep => self.sweep::<false>(&extras, opts),
            BpSchedule::Residual => self.residual::<false>(&extras, opts),
        }
    }

    /// Max-product inference with stamped extras.
    pub fn solve_map_stamped(&self, extras: &[(VarId, f64)], opts: &BpOptions) -> Marginals {
        let extras = ExtraIndex::build(self.n_vars, extras);
        match opts.schedule {
            BpSchedule::Sweep => self.sweep::<true>(&extras, opts),
            BpSchedule::Residual => self.residual::<true>(&extras, opts),
        }
    }

    #[inline]
    fn var_edges(&self, v: usize) -> &[u32] {
        &self.v_edges[self.v_off[v] as usize..self.v_off[v + 1] as usize]
    }

    /// The synchronous two-phase sweep schedule (bit-for-bit compatible
    /// with the historical nested-`Vec` solver).
    fn sweep<const MAX: bool>(&self, extras: &ExtraIndex, opts: &BpOptions) -> Marginals {
        let ne = self.edge_var.len();
        let nf = self.f_off.len() - 1;
        let nx = extras.ps.len();
        let d = opts.damping;
        let budget = opts.update_budget.unwrap_or(usize::MAX);
        let mut msg_fv = vec![0.5f64; ne];
        let mut msg_vf = vec![0.5f64; ne];
        let mut x_msg = vec![0.5f64; nx];
        let mut marginals = vec![0.5f64; self.n_vars];
        let mut iterations = 0;
        let mut converged = false;
        let mut updates = 0usize;
        let mut ev = GuardEvents::default();

        for it in 0..opts.max_iterations {
            iterations = it + 1;

            // Variable → factor messages: product of incoming messages
            // except the target edge (extras always contribute; they have no
            // outgoing variable message of their own to exclude).
            for v in 0..self.n_vars {
                let es = self.var_edges(v);
                let xs = extras.of(v);
                for &e in es {
                    let mut p_t = 1.0f64;
                    let mut p_f = 1.0f64;
                    for &o in es {
                        if o == e {
                            continue;
                        }
                        let m = msg_fv[o as usize];
                        p_t *= m;
                        p_f *= 1.0 - m;
                    }
                    for &x in xs {
                        let m = x_msg[x as usize];
                        p_t *= m;
                        p_f *= 1.0 - m;
                    }
                    let new = normalize(p_t, p_f, &mut ev);
                    let slot = &mut msg_vf[e as usize];
                    *slot = damp(*slot, new, d);
                }
            }

            // Factor → variable messages.
            for fi in 0..nf {
                let e0 = self.f_off[fi] as usize;
                let e1 = self.f_off[fi + 1] as usize;
                for pos in 0..(e1 - e0) {
                    let new = self.factor_message_local::<MAX>(fi, pos, &msg_vf[e0..e1], &mut ev);
                    let slot = &mut msg_fv[e0 + pos];
                    *slot = damp(*slot, new, d);
                }
            }
            // Stamped extras behave as unary factors appended after every
            // skeleton factor: constant normalized message, damped in.
            for (x, &p) in extras.ps.iter().enumerate() {
                let new = normalize(p, 1.0 - p, &mut ev);
                let slot = &mut x_msg[x];
                *slot = damp(*slot, new, d);
            }
            updates += ne + nx;

            // Beliefs and convergence.
            let mut max_delta = 0.0f64;
            for (v, belief) in marginals.iter_mut().enumerate() {
                let mut p_t = 1.0f64;
                let mut p_f = 1.0f64;
                for &e in self.var_edges(v) {
                    let m = msg_fv[e as usize];
                    p_t *= m;
                    p_f *= 1.0 - m;
                }
                for &x in extras.of(v) {
                    let m = x_msg[x as usize];
                    p_t *= m;
                    p_f *= 1.0 - m;
                }
                let b = normalize(p_t, p_f, &mut ev);
                max_delta = max_delta.max((b - *belief).abs());
                *belief = b;
            }
            if max_delta < opts.tolerance {
                converged = true;
                break;
            }
            if updates >= budget {
                break;
            }
        }

        Marginals { probs: marginals, iterations, converged, updates, guards: ev }
    }

    /// The variable→factor message for edge `e`, computed on demand from
    /// the current factor→variable messages (asynchronous form).
    fn vf_message(
        &self,
        e: usize,
        msg_fv: &[f64],
        x_msg: &[f64],
        extras: &ExtraIndex,
        ev: &mut GuardEvents,
    ) -> f64 {
        let v = self.edge_var[e] as usize;
        let mut p_t = 1.0f64;
        let mut p_f = 1.0f64;
        for &o in self.var_edges(v) {
            if o as usize == e {
                continue;
            }
            let m = msg_fv[o as usize];
            p_t *= m;
            p_f *= 1.0 - m;
        }
        for &x in extras.of(v) {
            let m = x_msg[x as usize];
            p_t *= m;
            p_f *= 1.0 - m;
        }
        normalize(p_t, p_f, ev)
    }

    /// The damped candidate update for factor→variable message `e`, read
    /// from a cache of current variable→factor messages (`msg_vf[o]` must
    /// hold [`CompiledGraph::vf_message`] of `o` for every edge `o` of `e`'s
    /// factor).
    fn candidate_cached<const MAX: bool>(
        &self,
        e: usize,
        msg_fv: &[f64],
        msg_vf: &[f64],
        d: f64,
        ev: &mut GuardEvents,
    ) -> f64 {
        let fi = self.edge_factor[e] as usize;
        let e0 = self.f_off[fi] as usize;
        let e1 = self.f_off[fi + 1] as usize;
        let new = self.factor_message_local::<MAX>(fi, e - e0, &msg_vf[e0..e1], ev);
        damp(msg_fv[e], new, d)
    }

    /// One factor→variable message for factor `fi`, target scope position
    /// `pos`, reading the incoming variable→factor messages from a
    /// factor-local slice (`local[opos]` for scope position `opos`).
    ///
    /// `MAX` selects max-product; otherwise sum-product. The arithmetic
    /// replicates the pre-arena solver exactly: accumulation in ascending
    /// table-index order, `z > 0` normalization, and unary/pairwise fast
    /// paths that are operation-for-operation equal to the generic walk
    /// (zero-potential rows contribute exactly `+0.0` / lose every `max`,
    /// so skipping them never changes a bit).
    #[inline]
    fn factor_message_local<const MAX: bool>(
        &self,
        fi: usize,
        pos: usize,
        local: &[f64],
        ev: &mut GuardEvents,
    ) -> f64 {
        let n = local.len();
        let table = &self.tables[self.t_off[fi] as usize..self.t_off[fi + 1] as usize];
        match n {
            1 => normalize(table[1], table[0], ev),
            2 => {
                let m = local[1 - pos];
                let om = 1.0 - m;
                let (t_lo, t_hi, f_lo, f_hi) = if pos == 0 {
                    (table[1] * om, table[3] * m, table[0] * om, table[2] * m)
                } else {
                    (table[2] * om, table[3] * m, table[0] * om, table[1] * m)
                };
                let (p_t, p_f) = if MAX {
                    (0.0f64.max(t_lo).max(t_hi), 0.0f64.max(f_lo).max(f_hi))
                } else {
                    (t_lo + t_hi, f_lo + f_hi)
                };
                normalize(p_t, p_f, ev)
            }
            _ => {
                let mut acc_t = 0.0f64;
                let mut acc_f = 0.0f64;
                for (idx, &pot) in table.iter().enumerate() {
                    if pot == 0.0 {
                        continue;
                    }
                    let mut w = pot;
                    for (opos, &m) in local.iter().enumerate() {
                        if opos == pos {
                            continue;
                        }
                        let bit = idx & (1 << opos) != 0;
                        w *= if bit { m } else { 1.0 - m };
                    }
                    if idx & (1 << pos) != 0 {
                        acc_t = if MAX { acc_t.max(w) } else { acc_t + w };
                    } else {
                        acc_f = if MAX { acc_f.max(w) } else { acc_f + w };
                    }
                }
                normalize(acc_t, acc_f, ev)
            }
        }
    }

    /// Residual-prioritized belief propagation: repeatedly apply the
    /// factor→variable message with the largest pending change.
    ///
    /// `max_iterations` bounds the *sweep-equivalent* work: the update
    /// budget is `max_iterations * num_edges`, so a `BpOptions` tuned for
    /// the sweep schedule spends at most comparable effort here.
    fn residual<const MAX: bool>(&self, extras: &ExtraIndex, opts: &BpOptions) -> Marginals {
        let ne = self.edge_var.len();
        let d = opts.damping;
        let mut msg_fv = vec![0.5f64; ne];
        let mut ev = GuardEvents::default();
        // Extras are constant under the asynchronous schedule: install their
        // normalized value up front.
        let x_msg: Vec<f64> = extras.ps.iter().map(|&p| normalize(p, 1.0 - p, &mut ev)).collect();
        let budget = opts
            .max_iterations
            .saturating_mul(ne.max(1))
            .min(opts.update_budget.unwrap_or(usize::MAX));
        let mut updates = 0usize;
        // Warm start: a few synchronous sweeps before greedy prioritization.
        // Loopy graphs with near-symmetric structure (e.g. soft one-hot
        // constraints) have several BP fixed points; updating
        // highest-residual-first from a cold uniform start breaks the
        // symmetry towards whichever strong local factor is popped first and
        // can land in a different basin than the synchronous schedule. A
        // couple of Jacobi sweeps propagate all evidence one hop before any
        // greedy choice is made, after which prioritization only
        // *accelerates* convergence within the sweep's basin.
        let mut msg_vf = vec![0.5f64; ne];
        for _ in 0..WARM_SWEEPS.min(opts.max_iterations) {
            if updates >= budget {
                break;
            }
            for (e, m) in msg_vf.iter_mut().enumerate() {
                *m = self.vf_message(e, &msg_fv, &x_msg, extras, &mut ev);
            }
            let next: Vec<f64> = (0..ne)
                .map(|e| self.candidate_cached::<MAX>(e, &msg_fv, &msg_vf, d, &mut ev))
                .collect();
            msg_fv = next;
            updates += ne;
        }
        // Cached state, kept current as messages are applied: `msg_vf[e]`
        // is the variable→factor message along `e`; `cand[e]`/`resid[e]`
        // are the pending damped update of factor→variable message `e` and
        // its residual. A heap entry is *stale* (superseded by a later
        // push) exactly when its residual no longer bit-matches `resid`.
        for (e, m) in msg_vf.iter_mut().enumerate() {
            *m = self.vf_message(e, &msg_fv, &x_msg, extras, &mut ev);
        }
        let mut cand = vec![0.0f64; ne];
        let mut resid = vec![0.0f64; ne];
        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(ne * 2);
        for e in 0..ne {
            cand[e] = self.candidate_cached::<MAX>(e, &msg_fv, &msg_vf, d, &mut ev);
            resid[e] = (cand[e] - msg_fv[e]).abs();
            if resid[e] >= opts.tolerance {
                heap.push(HeapEntry { residual: resid[e], edge: e as u32 });
            }
        }
        let mut converged = true;
        while let Some(entry) = heap.pop() {
            let e = entry.edge as usize;
            if entry.residual.to_bits() != resid[e].to_bits() || resid[e] < opts.tolerance {
                continue; // superseded by a newer push for this edge
            }
            if updates >= budget {
                converged = false;
                break;
            }
            msg_fv[e] = cand[e];
            updates += 1;
            // `msg_fv[e]` feeds the variable→factor messages of `v`'s other
            // edges (its own `msg_vf[e]` excludes it), which in turn feed
            // the pending updates of those factors' messages to their other
            // variables. This edge's own pending update only changes under
            // damping (the geometric tail towards the undamped value).
            let v = self.edge_var[e] as usize;
            let f = self.edge_factor[e];
            for &o in self.var_edges(v) {
                if o as usize != e {
                    msg_vf[o as usize] =
                        self.vf_message(o as usize, &msg_fv, &x_msg, extras, &mut ev);
                }
            }
            let mut repush =
                |e3: usize, cand: &mut [f64], resid: &mut [f64], ev: &mut GuardEvents| {
                    cand[e3] = self.candidate_cached::<MAX>(e3, &msg_fv, &msg_vf, d, ev);
                    resid[e3] = (cand[e3] - msg_fv[e3]).abs();
                    if resid[e3] >= opts.tolerance {
                        heap.push(HeapEntry { residual: resid[e3], edge: e3 as u32 });
                    }
                };
            repush(e, &mut cand, &mut resid, &mut ev);
            for &e2 in self.var_edges(v) {
                let f2 = self.edge_factor[e2 as usize];
                if f2 == f {
                    continue;
                }
                let b0 = self.f_off[f2 as usize];
                let b1 = self.f_off[f2 as usize + 1];
                for e3 in b0..b1 {
                    if self.edge_var[e3 as usize] as usize != v {
                        repush(e3 as usize, &mut cand, &mut resid, &mut ev);
                    }
                }
            }
        }

        let mut marginals = vec![0.5f64; self.n_vars];
        for (v, belief) in marginals.iter_mut().enumerate() {
            let mut p_t = 1.0f64;
            let mut p_f = 1.0f64;
            for &e in self.var_edges(v) {
                let m = msg_fv[e as usize];
                p_t *= m;
                p_f *= 1.0 - m;
            }
            for &x in extras.of(v) {
                let m = x_msg[x as usize];
                p_t *= m;
                p_f *= 1.0 - m;
            }
            *belief = normalize(p_t, p_f, &mut ev);
        }
        let iterations = updates.div_ceil(ne.max(1)).max(1);
        Marginals { probs: marginals, iterations, converged, updates, guards: ev }
    }
}

/// Max-heap entry ordered by residual, tie-broken by edge id so the
/// schedule (and therefore the result) is fully deterministic.
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    residual: f64,
    edge: u32,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &HeapEntry) -> bool {
        self.residual == other.residual && self.edge == other.edge
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &HeapEntry) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &HeapEntry) -> std::cmp::Ordering {
        // Residuals are absolute differences of guarded normalizations, so
        // they are finite and non-negative; `total_cmp` agrees with
        // `partial_cmp` on that domain while staying total (no panic path)
        // if a poisoned table ever slips a NaN through.
        self.residual.total_cmp(&other.residual).then_with(|| other.edge.cmp(&self.edge))
    }
}
