//! The flat-arena belief-propagation kernel.
//!
//! [`CompiledGraph`] lowers a [`FactorGraph`] into contiguous CSR arrays —
//! one edge per (factor, scope-position) pair, factor tables laid out flat
//! (each row padded to a 32-byte boundary), and a variable→edge adjacency
//! index — so the message-passing loops touch only dense scalar slices.
//!
//! ## Message layout
//!
//! Messages are stored as `(p, 1-p)` *pairs*, so the two product chains a
//! Bernoulli message pass maintains (`p_t` and `p_f`) read one contiguous
//! pair per hop — a shape the autovectorizer turns into two-lane SIMD
//! multiplies. Factor→variable messages live in **variable-major** order
//! (grouped by target variable, via the `vslot` permutation), which makes
//! the inner loops of the variable→factor pass and the belief read-out walk
//! contiguous memory; variable→factor messages stay **factor-major** so the
//! factor pass reads its scope as one slice. Storing `1-p` next to `p` is
//! bit-neutral: the pre-pair kernel computed `1.0 - m` from the same stored
//! `m` at every read, which produces exactly the bits the pair caches at
//! write time.
//!
//! Message *storage* is generic over `BpPrecision`: `f64` (the default,
//! bit-for-bit identical to the historical solver) or opt-in `f32` —
//! halved message bandwidth while every product, normalization and damping
//! step still **accumulates in `f64`** (only the stored message is
//! rounded).
//!
//! A single core parameterized by the sum/max semiring serves both marginal
//! ([`CompiledGraph::solve`]) and MAP ([`CompiledGraph::solve_map`])
//! inference, with specialized paths for unary and pairwise factors that
//! skip the generic `2^n` table walk.
//!
//! Two message schedules are provided (see [`BpSchedule`]):
//!
//! * **Sweep** — the classic synchronous two-phase sweep. This reproduces
//!   the pre-arena nested-`Vec` solver bit-for-bit: identical update order,
//!   identical floating-point accumulation order.
//! * **Residual** — residual belief propagation (Elidan et al., UAI 2006)
//!   on a bucketed coarse-residual queue; see the schedule notes below.
//!
//! The kernel also supports *stamped* solves: a compiled skeleton plus a
//! list of extra unary potentials supplied per solve. Stamped extras behave
//! exactly as if `Factor::unary` factors had been appended after every
//! skeleton factor, which is what lets callers cache a method's static
//! factor-graph skeleton and re-solve with fresh evidence without
//! recompiling (see `anek-core`'s incremental `ANEK-INFER`).
//!
//! Callers that solve many graphs in a row should reuse a [`Scratch`]
//! across solves ([`CompiledGraph::solve_stamped_scratch`]): all working
//! arrays — messages, candidates, residuals, the bucket queue — are then
//! recycled instead of reallocated per solve.
//!
//! ## The bucketed residual schedule
//!
//! The residual schedule orders pending factor→variable updates by a
//! *coarse* residual: edges whose pending change shares a power-of-two
//! magnitude land in the same bucket (the bucket index is read straight
//! off the residual's exponent bits), buckets are drained
//! largest-magnitude-first, and within a bucket edges keep FIFO order. A
//! drained bucket is applied as one **batch** — every message in it is
//! committed against the same pre-batch state, and only then are the
//! affected variable→factor messages and candidate residuals recomputed,
//! each exactly once per batch rather than once per push.
//!
//! Queue entries are invalidated *lazily* by an epoch stamp per edge:
//! re-bucketing an edge bumps its epoch, and a popped entry whose stamp no
//! longer matches the edge's current epoch (or whose edge is no longer
//! queued at all) is simply skipped. There is no heap search and no
//! bit-matching of residual values against live state — an entry is
//! authoritative if and only if its `(edge, epoch)` pair matches, an O(1)
//! array probe. An edge whose residual changes *within* its current bucket
//! is not re-queued at all; its queue entry stays valid and the live
//! candidate is read from the side array at application time.
//!
//! Batch application is what keeps the residual schedule's fixed points
//! aligned with the sweep's: an evidence-free soft one-hot subgraph (the
//! model's exactly-one-kind factor groups) is perfectly symmetric, and its
//! symmetric BP fixed point is *unstable* under one-edge-at-a-time
//! asynchronous updates — the first applied message tips the component
//! into an arbitrary asymmetric corner, manufacturing a confident marginal
//! out of no evidence (the previous heap-based schedule did exactly this;
//! see the cross-schedule agreement tests). Symmetric edges always carry
//! bit-equal residuals, therefore share a bucket, therefore commit in the
//! same batch against the same state — the symmetry is preserved
//! inductively and the schedule converges to the same symmetric fixed
//! point the sweep finds. The update order across buckets still differs
//! from a pure max-residual heap; it is fully deterministic, and the
//! resulting marginals are pinned by the `figure3_residual` golden
//! fixture.

use crate::factor::VarId;
use crate::graph::{BpOptions, BpPrecision, BpSchedule, FactorGraph, GuardEvents, Marginals};
use std::collections::VecDeque;

/// One stored message element: `f64` for exact/historical numerics, `f32`
/// for the compact opt-in representation. Products, normalizations and
/// damping always run in `f64`; only the store rounds.
trait MsgElem: Copy + Send + Sync + 'static {
    /// Rounds an `f64` into the stored representation.
    fn enc(x: f64) -> Self;
    /// Widens the stored representation back to `f64`.
    fn dec(self) -> f64;
    /// The canonical uniform message.
    fn half() -> Self;
}

impl MsgElem for f64 {
    #[inline(always)]
    fn enc(x: f64) -> f64 {
        x
    }
    #[inline(always)]
    fn dec(self) -> f64 {
        self
    }
    #[inline(always)]
    fn half() -> f64 {
        0.5
    }
}

impl MsgElem for f32 {
    #[inline(always)]
    fn enc(x: f64) -> f32 {
        x as f32
    }
    #[inline(always)]
    fn dec(self) -> f64 {
        f64::from(self)
    }
    #[inline(always)]
    fn half() -> f32 {
        0.5
    }
}

/// Factor tables are padded so each row starts on a 32-byte boundary (4
/// `f64`s). Pad entries are zero potentials, which both semirings already
/// skip; the message loops additionally slice rows to their exact
/// `1 << arity` length, so padding is value- and bit-neutral.
const TABLE_ALIGN: usize = 4;

/// A [`FactorGraph`] compiled into flat arena form.
///
/// Compilation is cheap (one linear pass) but not free; callers that solve
/// the same graph repeatedly — possibly with different stamped extras —
/// should compile once and reuse (and hand the solver a recycled
/// [`Scratch`]).
#[derive(Debug, Clone)]
pub struct CompiledGraph {
    n_vars: usize,
    /// Per factor: half-open edge range `f_off[fi]..f_off[fi+1]`.
    f_off: Vec<u32>,
    /// Per factor: offset of its table row in `tables`. Rows start on a
    /// [`TABLE_ALIGN`] boundary; the live row is the first `1 << arity`
    /// entries, the rest (up to the next row) is zero padding.
    t_off: Vec<u32>,
    /// All factor tables, concatenated (aligned rows, zero padding).
    tables: Vec<f64>,
    /// Per edge: the variable it connects.
    edge_var: Vec<u32>,
    /// Per edge: the factor that owns it.
    edge_factor: Vec<u32>,
    /// Per variable: half-open range into `v_edges`.
    v_off: Vec<u32>,
    /// Edge ids grouped by variable, ascending within each group (this is
    /// exactly the insertion order the nested solver used).
    v_edges: Vec<u32>,
    /// Per edge: its position in `v_edges` — the variable-major slot the
    /// factor→variable message for this edge is stored at (the inverse
    /// permutation of `v_edges`).
    vslot: Vec<u32>,
    /// Per factor: sparse summary of a two-valued table (see [`TwoValued`]),
    /// `None` when the factor is small or its table has more than two
    /// distinct values.
    sparse: Vec<Option<TwoValued>>,
    /// Minority table indices for all [`TwoValued`] rows, concatenated,
    /// ascending within each row.
    sparse_idx: Vec<u16>,
}

/// Sparse summary of a two-valued factor table: every cell holds `maj`
/// except the cells listed at `sparse_idx[i0..i1]`, which hold `minv`.
///
/// Soft factors built from predicates (`Factor::soft`) always produce such
/// tables (`h` where the predicate holds, `1-h` elsewhere), so for a wide
/// factor the sum-product message collapses to a rank-one correction:
///
/// ```text
/// acc(b) = maj * Π_{i≠pos}(m_i(0)+m_i(1)) + (minv-maj) * Σ_{minority, bit_pos=b} Π_{i≠pos} m_i
/// ```
///
/// which costs `O(|minority| * n)` instead of `O(2^n * n)`. Only the
/// residual schedule uses this path — the sweep schedule's dense
/// accumulation order is frozen bit-for-bit by the golden fixtures.
#[derive(Debug, Clone, Copy)]
struct TwoValued {
    maj: f64,
    minv: f64,
    i0: u32,
    i1: u32,
}

/// Arity floor for the sparse two-valued message path. Narrow factors gain
/// little, and keeping them on the dense walk means the symmetric one-hot
/// selector factors (arity ≤ 5) retain the exact historical accumulation —
/// the order the batch scheduler's symmetric-fixed-point guarantee was
/// validated against.
const SPARSE_MIN_ARITY: usize = 6;

/// Builds the [`TwoValued`] summary for one factor table, appending its
/// minority indices to `sparse_idx`. Values are compared bit-exactly (so a
/// NaN-poisoned table still groups, and is handled by `normalize`'s
/// non-finite guard like the dense path). Ties pick `table[0]` as the
/// majority, deterministically.
fn two_valued_summary(table: &[f64], sparse_idx: &mut Vec<u16>) -> Option<TwoValued> {
    let n_cells = table.len();
    if !(1 << SPARSE_MIN_ARITY..=1 << 16).contains(&n_cells) {
        return None;
    }
    let a = table[0].to_bits();
    let mut b = None;
    let mut count_b = 0usize;
    for &v in table {
        let bits = v.to_bits();
        if bits == a {
            continue;
        }
        match b {
            None => {
                b = Some(bits);
                count_b = 1;
            }
            Some(x) if x == bits => count_b += 1,
            Some(_) => return None,
        }
    }
    let (maj_bits, min_bits) = match b {
        // Constant table: empty minority, the correction term vanishes.
        None => (a, a),
        Some(bits) if count_b * 2 <= n_cells => (a, bits),
        Some(bits) => (bits, a),
    };
    let i0 = sparse_idx.len() as u32;
    if min_bits != maj_bits {
        for (idx, &v) in table.iter().enumerate() {
            if v.to_bits() == min_bits {
                sparse_idx.push(idx as u16);
            }
        }
    }
    Some(TwoValued {
        maj: f64::from_bits(maj_bits),
        minv: f64::from_bits(min_bits),
        i0,
        i1: sparse_idx.len() as u32,
    })
}

/// Reusable per-solve working memory: message pair arrays (one pool per
/// stored precision), the stamped-extra index, and the residual schedule's
/// candidate/bucket state.
///
/// A `Scratch` may be reused across solves of *different* graphs — every
/// buffer is (re)sized and reinitialized at the start of each solve, so a
/// fresh `Scratch` and a recycled one produce bit-identical results, and a
/// solve that panics leaves no state behind that could poison the next
/// one.
#[derive(Debug, Default)]
pub struct Scratch {
    // Message pools, `(p, 1-p)` interleaved; only the pool matching
    // `BpOptions::precision` is touched by a given solve.
    fv64: Vec<f64>,
    vf64: Vec<f64>,
    x64: Vec<f64>,
    fv32: Vec<f32>,
    vf32: Vec<f32>,
    x32: Vec<f32>,
    // Stamped-extra index (`ExtraIndex` borrows these).
    ps: Vec<f64>,
    x_off: Vec<u32>,
    x_idx: Vec<u32>,
    // Residual schedule state.
    cand: Vec<f64>,
    resid: Vec<f64>,
    epoch: Vec<u32>,
    queued: Vec<u8>,
    buckets: Vec<VecDeque<(u32, u32)>>,
    batch: Vec<u32>,
    affected_vars: Vec<u32>,
    changed_vf: Vec<u32>,
    touched: Vec<u32>,
    vmark: Vec<u8>,
    emark: Vec<u8>,
}

impl Scratch {
    /// A fresh, empty scratch. Buffers grow on first use and are retained
    /// across solves.
    pub fn new() -> Scratch {
        Scratch::default()
    }
}

/// Access to the per-precision message pools inside [`Scratch`]. The pools
/// are moved out for the duration of a solve (leaving empty `Vec`s behind)
/// and restored on completion, which keeps the borrow of the remaining
/// scratch fields independent.
trait MsgPool: MsgElem {
    fn take(s: &mut Scratch) -> (Vec<Self>, Vec<Self>, Vec<Self>);
    fn restore(s: &mut Scratch, fv: Vec<Self>, vf: Vec<Self>, x: Vec<Self>);
}

impl MsgPool for f64 {
    fn take(s: &mut Scratch) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        (std::mem::take(&mut s.fv64), std::mem::take(&mut s.vf64), std::mem::take(&mut s.x64))
    }
    fn restore(s: &mut Scratch, fv: Vec<f64>, vf: Vec<f64>, x: Vec<f64>) {
        s.fv64 = fv;
        s.vf64 = vf;
        s.x64 = x;
    }
}

impl MsgPool for f32 {
    fn take(s: &mut Scratch) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        (std::mem::take(&mut s.fv32), std::mem::take(&mut s.vf32), std::mem::take(&mut s.x32))
    }
    fn restore(s: &mut Scratch, fv: Vec<f32>, vf: Vec<f32>, x: Vec<f32>) {
        s.fv32 = fv;
        s.vf32 = vf;
        s.x32 = x;
    }
}

/// Per-solve adjacency for stamped extra unary potentials: extras grouped
/// by variable, preserving stamp order within each variable. Borrows its
/// storage from [`Scratch`].
struct ExtraIndex<'a> {
    /// `p(true)` per extra, in stamp order.
    ps: &'a [f64],
    x_off: &'a [u32],
    x_idx: &'a [u32],
}

impl<'a> ExtraIndex<'a> {
    fn build(
        n_vars: usize,
        extras: &[(VarId, f64)],
        ps: &'a mut Vec<f64>,
        x_off: &'a mut Vec<u32>,
        x_idx: &'a mut Vec<u32>,
    ) -> ExtraIndex<'a> {
        x_off.clear();
        x_off.resize(n_vars + 1, 0);
        for (v, _) in extras {
            assert!((v.0 as usize) < n_vars, "stamped extra references unknown variable {v}");
            x_off[v.0 as usize + 1] += 1;
        }
        for i in 0..n_vars {
            x_off[i + 1] += x_off[i];
        }
        let mut cursor = x_off.clone();
        x_idx.clear();
        x_idx.resize(extras.len(), 0);
        for (i, (v, _)) in extras.iter().enumerate() {
            x_idx[cursor[v.0 as usize] as usize] = i as u32;
            cursor[v.0 as usize] += 1;
        }
        ps.clear();
        ps.extend(extras.iter().map(|&(_, p)| p));
        ExtraIndex { ps, x_off, x_idx }
    }

    #[inline]
    fn of(&self, v: usize) -> &[u32] {
        &self.x_idx[self.x_off[v] as usize..self.x_off[v + 1] as usize]
    }
}

/// Synchronous sweeps run before the residual schedule starts prioritizing
/// (see the warm-start note in the residual path).
const WARM_SWEEPS: usize = 2;

/// Residual buckets: bucket `b` holds residuals in `[2^-(b+1), 2^-b)`.
/// Bucket 0 additionally absorbs anything ≥ 0.5 and the last bucket
/// everything smaller than its lower edge (but still above tolerance).
const NUM_BUCKETS: usize = 48;

/// The bucket of a non-negative residual, read straight off its exponent
/// bits — no logarithm, no magnitude branch. Zero and subnormals clamp
/// into the last bucket (they never enqueue in practice: enqueue is gated
/// on `resid >= tolerance`).
#[inline]
fn bucket_of(r: f64) -> usize {
    let exp = ((r.to_bits() >> 52) & 0x7ff) as i32;
    (1022 - exp).clamp(0, NUM_BUCKETS as i32 - 1) as usize
}

#[inline]
fn damp(old: f64, new: f64, d: f64) -> f64 {
    d * old + (1.0 - d) * new
}

/// Whether the solve's wall-clock deadline (if any) has passed. Polled at
/// sweep/batch granularity only — never per message update.
#[inline]
fn deadline_passed(opts: &BpOptions) -> bool {
    opts.deadline.is_some_and(|d| std::time::Instant::now() >= d)
}

/// Normalizes a two-point mass to `p(true)`, clamping degenerate masses to
/// the uniform message and counting the clamp in `ev`.
///
/// On healthy inputs (finite, positive mass) this is exactly the historical
/// `p_t / (p_t + p_f)` — bit-for-bit. Non-finite mass (a NaN or infinite
/// potential leaked into the products) and zero mass (all-zero factor rows,
/// fully underflowed products) both clamp to `0.5`; the former used to
/// produce `0.5` silently via NaN comparison semantics, and is now counted
/// so the solve can be reported as degraded.
#[inline]
fn normalize(p_t: f64, p_f: f64, ev: &mut GuardEvents) -> f64 {
    let z = p_t + p_f;
    if z > 0.0 && z.is_finite() {
        p_t / z
    } else {
        if z.is_finite() {
            ev.zero_sum += 1;
        } else {
            ev.non_finite += 1;
        }
        0.5
    }
}

/// Writes message `m` as an `(m, 1-m)` pair at pair-slot `i`.
#[inline(always)]
fn put<S: MsgElem>(buf: &mut [S], i: usize, m: f64) {
    buf[2 * i] = S::enc(m);
    buf[2 * i + 1] = S::enc(1.0 - m);
}

/// Reads the `p(true)` half of the pair at slot `i`.
#[inline(always)]
fn get_t<S: MsgElem>(buf: &[S], i: usize) -> f64 {
    buf[2 * i].dec()
}

/// Resets a pair buffer to `n` uniform messages.
fn reset_pairs<S: MsgElem>(buf: &mut Vec<S>, n: usize) {
    buf.clear();
    buf.resize(2 * n, S::half());
}

impl CompiledGraph {
    /// Lowers a graph into arena form.
    pub fn compile(g: &FactorGraph) -> CompiledGraph {
        let n_vars = g.num_vars();
        let factors = g.factors();
        let n_edges: usize = factors.iter().map(|f| f.scope().len()).sum();
        let mut f_off = Vec::with_capacity(factors.len() + 1);
        let mut t_off = Vec::with_capacity(factors.len() + 1);
        let mut edge_var = Vec::with_capacity(n_edges);
        let mut edge_factor = Vec::with_capacity(n_edges);
        let mut tables = Vec::new();
        let mut sparse = Vec::with_capacity(factors.len());
        let mut sparse_idx: Vec<u16> = Vec::new();
        f_off.push(0u32);
        t_off.push(0u32);
        for (fi, f) in factors.iter().enumerate() {
            for v in f.scope() {
                edge_var.push(v.0);
                edge_factor.push(fi as u32);
            }
            sparse.push(two_valued_summary(f.table(), &mut sparse_idx));
            tables.extend_from_slice(f.table());
            // Pad the row to the alignment boundary with zero potentials
            // (sliced off / skipped by every consumer), so the next row
            // starts aligned.
            while tables.len() % TABLE_ALIGN != 0 {
                tables.push(0.0);
            }
            f_off.push(edge_var.len() as u32);
            t_off.push(tables.len() as u32);
        }
        // Counting sort: v_edges grouped by variable, ascending edge id —
        // the same order the nested solver's `var_edges` push loop produced.
        let mut v_off = vec![0u32; n_vars + 1];
        for &v in &edge_var {
            v_off[v as usize + 1] += 1;
        }
        for i in 0..n_vars {
            v_off[i + 1] += v_off[i];
        }
        let mut cursor = v_off.clone();
        let mut v_edges = vec![0u32; n_edges];
        let mut vslot = vec![0u32; n_edges];
        for (e, &v) in edge_var.iter().enumerate() {
            let slot = cursor[v as usize];
            v_edges[slot as usize] = e as u32;
            vslot[e] = slot;
            cursor[v as usize] += 1;
        }
        CompiledGraph {
            n_vars,
            f_off,
            t_off,
            tables,
            edge_var,
            edge_factor,
            v_off,
            v_edges,
            vslot,
            sparse,
            sparse_idx,
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.n_vars
    }

    /// Number of (factor, position) edges.
    pub fn num_edges(&self) -> usize {
        self.edge_var.len()
    }

    /// Sum-product inference (marginals).
    pub fn solve(&self, opts: &BpOptions) -> Marginals {
        self.solve_stamped(&[], opts)
    }

    /// Max-product inference (per-variable MAP beliefs).
    pub fn solve_map(&self, opts: &BpOptions) -> Marginals {
        self.solve_map_stamped(&[], opts)
    }

    /// Sum-product inference with extra unary potentials stamped onto the
    /// compiled skeleton. Equivalent — bit-for-bit under
    /// [`BpSchedule::Sweep`] with `BpPrecision::F64` — to appending
    /// `Factor::unary(var, p)` for each extra and solving the extended
    /// graph.
    pub fn solve_stamped(&self, extras: &[(VarId, f64)], opts: &BpOptions) -> Marginals {
        self.solve_stamped_scratch(extras, opts, &mut Scratch::new())
    }

    /// Max-product inference with stamped extras.
    pub fn solve_map_stamped(&self, extras: &[(VarId, f64)], opts: &BpOptions) -> Marginals {
        self.solve_map_stamped_scratch(extras, opts, &mut Scratch::new())
    }

    /// [`CompiledGraph::solve_stamped`] with caller-provided scratch
    /// buffers. Reusing one [`Scratch`] across many solves removes every
    /// per-solve allocation except the returned marginal vector; results
    /// are bit-identical to a fresh scratch.
    pub fn solve_stamped_scratch(
        &self,
        extras: &[(VarId, f64)],
        opts: &BpOptions,
        scratch: &mut Scratch,
    ) -> Marginals {
        match opts.precision {
            BpPrecision::F64 => self.run::<false, f64>(extras, opts, scratch),
            BpPrecision::F32 => self.run::<false, f32>(extras, opts, scratch),
        }
    }

    /// [`CompiledGraph::solve_map_stamped`] with caller-provided scratch.
    pub fn solve_map_stamped_scratch(
        &self,
        extras: &[(VarId, f64)],
        opts: &BpOptions,
        scratch: &mut Scratch,
    ) -> Marginals {
        match opts.precision {
            BpPrecision::F64 => self.run::<true, f64>(extras, opts, scratch),
            BpPrecision::F32 => self.run::<true, f32>(extras, opts, scratch),
        }
    }

    fn run<const MAX: bool, S: MsgPool>(
        &self,
        extras: &[(VarId, f64)],
        opts: &BpOptions,
        scratch: &mut Scratch,
    ) -> Marginals {
        match opts.schedule {
            BpSchedule::Sweep => self.sweep::<MAX, S>(extras, opts, scratch),
            BpSchedule::Residual => self.residual::<MAX, S>(extras, opts, scratch),
        }
    }

    #[inline]
    fn var_edges(&self, v: usize) -> &[u32] {
        &self.v_edges[self.v_off[v] as usize..self.v_off[v + 1] as usize]
    }

    /// The exclusive product over a variable's incoming message pairs: all
    /// factor→variable messages of `v` except local slot `skip` (pass
    /// `usize::MAX` to skip nothing, e.g. for beliefs), then all extras.
    ///
    /// `fv` is the variable-major pair array, so the hot loop walks one
    /// contiguous slice in ascending-edge order — exactly the historical
    /// accumulation order, now as two-lane multiplies the autovectorizer
    /// can keep in one register.
    #[inline]
    fn var_product<S: MsgElem>(
        &self,
        v: usize,
        skip: usize,
        fv: &[S],
        x_msg: &[S],
        extras: &ExtraIndex<'_>,
    ) -> (f64, f64) {
        let s0 = self.v_off[v] as usize;
        let s1 = self.v_off[v + 1] as usize;
        let pairs = &fv[2 * s0..2 * s1];
        let mut p_t = 1.0f64;
        let mut p_f = 1.0f64;
        for (j, pair) in pairs.chunks_exact(2).enumerate() {
            if j == skip {
                continue;
            }
            p_t *= pair[0].dec();
            p_f *= pair[1].dec();
        }
        for &x in extras.of(v) {
            p_t *= x_msg[2 * x as usize].dec();
            p_f *= x_msg[2 * x as usize + 1].dec();
        }
        (p_t, p_f)
    }

    /// The synchronous two-phase sweep schedule (bit-for-bit compatible
    /// with the historical nested-`Vec` solver under `f64` storage).
    fn sweep<const MAX: bool, S: MsgPool>(
        &self,
        extras_in: &[(VarId, f64)],
        opts: &BpOptions,
        scratch: &mut Scratch,
    ) -> Marginals {
        let ne = self.edge_var.len();
        let nf = self.f_off.len() - 1;
        let nx = extras_in.len();
        let d = opts.damping;
        let budget = opts.update_budget.unwrap_or(usize::MAX);
        let mut ev = GuardEvents::default();

        let (mut fv, mut vf, mut xm) = S::take(scratch);
        reset_pairs(&mut fv, ne);
        reset_pairs(&mut vf, ne);
        reset_pairs(&mut xm, nx);
        let Scratch { ps, x_off, x_idx, .. } = scratch;
        let extras = ExtraIndex::build(self.n_vars, extras_in, ps, x_off, x_idx);

        let mut beliefs = vec![0.5f64; self.n_vars];
        let mut iterations = 0;
        let mut converged = false;
        let mut updates = 0usize;
        let mut deadline_expired = false;

        for it in 0..opts.max_iterations {
            iterations = it + 1;

            // Variable → factor messages: product of incoming messages
            // except the target edge (extras always contribute; they have no
            // outgoing variable message of their own to exclude).
            for v in 0..self.n_vars {
                for (j, &e) in self.var_edges(v).iter().enumerate() {
                    let (p_t, p_f) = self.var_product(v, j, &fv, &xm, &extras);
                    let new = normalize(p_t, p_f, &mut ev);
                    let old = get_t(&vf, e as usize);
                    put(&mut vf, e as usize, damp(old, new, d));
                }
            }

            // Factor → variable messages.
            for fi in 0..nf {
                let e0 = self.f_off[fi] as usize;
                let e1 = self.f_off[fi + 1] as usize;
                for pos in 0..(e1 - e0) {
                    let new =
                        self.factor_message_local::<MAX, S>(fi, pos, &vf[2 * e0..2 * e1], &mut ev);
                    let slot = self.vslot[e0 + pos] as usize;
                    let old = get_t(&fv, slot);
                    put(&mut fv, slot, damp(old, new, d));
                }
            }
            // Stamped extras behave as unary factors appended after every
            // skeleton factor: constant normalized message, damped in.
            for (x, &p) in extras.ps.iter().enumerate() {
                let new = normalize(p, 1.0 - p, &mut ev);
                let old = get_t(&xm, x);
                put(&mut xm, x, damp(old, new, d));
            }
            updates += ne + nx;

            // Beliefs and convergence.
            let mut max_delta = 0.0f64;
            for (v, belief) in beliefs.iter_mut().enumerate() {
                let (p_t, p_f) = self.var_product(v, usize::MAX, &fv, &xm, &extras);
                let b = normalize(p_t, p_f, &mut ev);
                max_delta = max_delta.max((b - *belief).abs());
                *belief = b;
            }
            if max_delta < opts.tolerance {
                converged = true;
                break;
            }
            if updates >= budget {
                break;
            }
            // Wall-clock deadline, polled once per sweep: cheap relative to
            // the `ne + nx` message updates a sweep costs.
            if deadline_passed(opts) {
                deadline_expired = true;
                break;
            }
        }

        S::restore(scratch, fv, vf, xm);
        Marginals { probs: beliefs, iterations, converged, updates, guards: ev, deadline_expired }
    }

    /// The variable→factor message for edge `e`, computed on demand from
    /// the current factor→variable messages (asynchronous form).
    fn vf_message<S: MsgElem>(
        &self,
        e: usize,
        fv: &[S],
        x_msg: &[S],
        extras: &ExtraIndex<'_>,
        ev: &mut GuardEvents,
    ) -> f64 {
        let v = self.edge_var[e] as usize;
        let j = (self.vslot[e] - self.v_off[v]) as usize;
        let (p_t, p_f) = self.var_product(v, j, fv, x_msg, extras);
        normalize(p_t, p_f, ev)
    }

    /// The damped candidate update for factor→variable message `e`, read
    /// from a cache of current variable→factor messages (`vf` pair slot `o`
    /// must hold [`CompiledGraph::vf_message`] of `o` for every edge `o` of
    /// `e`'s factor).
    fn candidate_cached<const MAX: bool, S: MsgElem>(
        &self,
        e: usize,
        fv: &[S],
        vf: &[S],
        d: f64,
        ev: &mut GuardEvents,
    ) -> f64 {
        let fi = self.edge_factor[e] as usize;
        let e0 = self.f_off[fi] as usize;
        let e1 = self.f_off[fi + 1] as usize;
        let local = &vf[2 * e0..2 * e1];
        // Wide two-valued tables take the sparse rank-one path (sum-product
        // only; the max semiring does not decompose over the majority
        // value). Everything else replicates the sweep kernel exactly.
        let new = match self.sparse[fi] {
            Some(row) if !MAX => self.factor_message_sparse::<S>(&row, e - e0, local, ev),
            _ => self.factor_message_local::<MAX, S>(fi, e - e0, local, ev),
        };
        damp(get_t(fv, self.vslot[e] as usize), new, d)
    }

    /// One sum-product factor→variable message through a [`TwoValued`]
    /// sparse table summary: a full-sum majority term plus a minority
    /// correction that only walks the `minv`-valued cells.
    ///
    /// Accumulation is deterministic — minority cells in ascending
    /// table-index order, operand products left-associated in ascending
    /// scope order skipping `pos` — but *not* bit-identical to the dense
    /// walk, which is why only the residual schedule dispatches here.
    fn factor_message_sparse<S: MsgElem>(
        &self,
        row: &TwoValued,
        pos: usize,
        local: &[S],
        ev: &mut GuardEvents,
    ) -> f64 {
        let n = local.len() / 2;
        // Σ over all assignments of the other variables of Π m_i(bit_i)
        // factorizes into Π (m_i(0) + m_i(1)).
        let mut p_all = 1.0f64;
        for opos in 0..n {
            if opos == pos {
                continue;
            }
            p_all *= local[2 * opos].dec() + local[2 * opos + 1].dec();
        }
        let mut t_t = 0.0f64;
        let mut t_f = 0.0f64;
        for &idx in &self.sparse_idx[row.i0 as usize..row.i1 as usize] {
            let idx = idx as usize;
            let mut w = 1.0f64;
            for opos in 0..n {
                if opos == pos {
                    continue;
                }
                let bit = idx & (1 << opos) != 0;
                w *= if bit { local[2 * opos].dec() } else { local[2 * opos + 1].dec() };
            }
            if idx & (1 << pos) != 0 {
                t_t += w;
            } else {
                t_f += w;
            }
        }
        let delta = row.minv - row.maj;
        // Each lane is mathematically a sum of non-negative products; the
        // clamp only absorbs last-ulp cancellation when `delta` is negative.
        let acc_t = (row.maj * p_all + delta * t_t).max(0.0);
        let acc_f = (row.maj * p_all + delta * t_f).max(0.0);
        normalize(acc_t, acc_f, ev)
    }

    /// One factor→variable message for factor `fi`, target scope position
    /// `pos`, reading the incoming variable→factor messages from a
    /// factor-local *pair* slice (pair `opos` for scope position `opos`).
    ///
    /// `MAX` selects max-product; otherwise sum-product. The arithmetic
    /// replicates the pre-arena solver exactly: accumulation in ascending
    /// table-index order, `z > 0` normalization, and unary/pairwise fast
    /// paths that are operation-for-operation equal to the generic walk
    /// (zero-potential rows contribute exactly `+0.0` / lose every `max`,
    /// so skipping them never changes a bit).
    #[inline]
    fn factor_message_local<const MAX: bool, S: MsgElem>(
        &self,
        fi: usize,
        pos: usize,
        local: &[S],
        ev: &mut GuardEvents,
    ) -> f64 {
        let n = local.len() / 2;
        let table = &self.tables[self.t_off[fi] as usize..][..1 << n];
        match n {
            1 => normalize(table[1], table[0], ev),
            2 => {
                let o = 1 - pos;
                let m = local[2 * o].dec();
                let om = local[2 * o + 1].dec();
                let (t_lo, t_hi, f_lo, f_hi) = if pos == 0 {
                    (table[1] * om, table[3] * m, table[0] * om, table[2] * m)
                } else {
                    (table[2] * om, table[3] * m, table[0] * om, table[1] * m)
                };
                let (p_t, p_f) = if MAX {
                    (0.0f64.max(t_lo).max(t_hi), 0.0f64.max(f_lo).max(f_hi))
                } else {
                    (t_lo + t_hi, f_lo + f_hi)
                };
                normalize(p_t, p_f, ev)
            }
            _ => {
                let mut acc_t = 0.0f64;
                let mut acc_f = 0.0f64;
                for (idx, &pot) in table.iter().enumerate() {
                    if pot == 0.0 {
                        continue;
                    }
                    let mut w = pot;
                    for opos in 0..n {
                        if opos == pos {
                            continue;
                        }
                        let bit = idx & (1 << opos) != 0;
                        w *= if bit { local[2 * opos].dec() } else { local[2 * opos + 1].dec() };
                    }
                    if idx & (1 << pos) != 0 {
                        acc_t = if MAX { acc_t.max(w) } else { acc_t + w };
                    } else {
                        acc_f = if MAX { acc_f.max(w) } else { acc_f + w };
                    }
                }
                normalize(acc_t, acc_f, ev)
            }
        }
    }

    /// Residual-prioritized belief propagation on the bucketed batch queue
    /// (see the module notes on the schedule's design and determinism).
    ///
    /// `max_iterations` bounds the *sweep-equivalent* work: the update
    /// budget is `max_iterations * num_edges`, so a `BpOptions` tuned for
    /// the sweep schedule spends at most comparable effort here.
    fn residual<const MAX: bool, S: MsgPool>(
        &self,
        extras_in: &[(VarId, f64)],
        opts: &BpOptions,
        scratch: &mut Scratch,
    ) -> Marginals {
        let ne = self.edge_var.len();
        let d = opts.damping;
        let mut ev = GuardEvents::default();

        let (mut fv, mut vf, mut xm) = S::take(scratch);
        reset_pairs(&mut fv, ne);
        reset_pairs(&mut vf, ne);
        // Extras are constant under the asynchronous schedule: install
        // their normalized value up front.
        xm.clear();
        xm.reserve(2 * extras_in.len());
        for &(_, p) in extras_in {
            let m = normalize(p, 1.0 - p, &mut ev);
            xm.push(S::enc(m));
            xm.push(S::enc(1.0 - m));
        }
        let Scratch {
            ps,
            x_off,
            x_idx,
            cand,
            resid,
            epoch,
            queued,
            buckets,
            batch,
            affected_vars,
            changed_vf,
            touched,
            vmark,
            emark,
            ..
        } = scratch;
        let extras = ExtraIndex::build(self.n_vars, extras_in, ps, x_off, x_idx);

        let budget = opts
            .max_iterations
            .saturating_mul(ne.max(1))
            .min(opts.update_budget.unwrap_or(usize::MAX));
        let mut updates = 0usize;
        let mut deadline_expired = false;

        // Warm start: a few synchronous (Jacobi) sweeps before any
        // prioritization, so all evidence propagates one hop before the
        // first greedy choice. The batch schedule already preserves
        // symmetric fixed points on its own; the warm sweeps additionally
        // keep early update counts comparable with the sweep schedule and
        // seed the residuals with informative values.
        for _ in 0..WARM_SWEEPS.min(opts.max_iterations) {
            if updates >= budget {
                break;
            }
            if deadline_passed(opts) {
                deadline_expired = true;
                break;
            }
            for e in 0..ne {
                let m = self.vf_message(e, &fv, &xm, &extras, &mut ev);
                put(&mut vf, e, m);
            }
            // In-place is still Jacobi here: the factor message reads only
            // `vf`, and each edge's `fv` slot is read (for damping) only by
            // its own candidate.
            for e in 0..ne {
                let c = self.candidate_cached::<MAX, S>(e, &fv, &vf, d, &mut ev);
                put(&mut fv, self.vslot[e] as usize, c);
            }
            updates += ne;
        }

        // Live cached state: `vf[o]` is the variable→factor message along
        // `o`; `cand[e]`/`resid[e]` are the pending damped update of
        // factor→variable message `e` and its residual. `queued[e]` is
        // `bucket + 1` while `e` has an authoritative queue entry (0
        // otherwise), and that entry is the unique one stamped `epoch[e]`.
        for e in 0..ne {
            let m = self.vf_message(e, &fv, &xm, &extras, &mut ev);
            put(&mut vf, e, m);
        }
        cand.clear();
        cand.resize(ne, 0.0);
        resid.clear();
        resid.resize(ne, 0.0);
        epoch.clear();
        epoch.resize(ne, 0);
        queued.clear();
        queued.resize(ne, 0);
        vmark.clear();
        vmark.resize(self.n_vars, 0);
        emark.clear();
        emark.resize(ne, 0);
        if buckets.len() < NUM_BUCKETS {
            buckets.resize_with(NUM_BUCKETS, VecDeque::new);
        }
        for q in buckets.iter_mut() {
            q.clear();
        }
        for e in 0..ne {
            cand[e] = self.candidate_cached::<MAX, S>(e, &fv, &vf, d, &mut ev);
            resid[e] = (cand[e] - get_t(&fv, self.vslot[e] as usize)).abs();
            if resid[e] >= opts.tolerance {
                let b = bucket_of(resid[e]);
                buckets[b].push_back((e as u32, 0));
                queued[e] = b as u8 + 1;
            }
        }

        let mut converged = true;
        // Highest-magnitude non-empty bucket; entirely drained as one
        // batch (stale entries — epoch mismatch or dequeued edge — are
        // skipped on pop).
        'solve: while let Some(b) = buckets.iter().position(|q| !q.is_empty()) {
            // Deadline polled once per batch: a batch is at most `ne`
            // updates, the same granularity as a sweep-schedule iteration.
            if deadline_expired || deadline_passed(opts) {
                deadline_expired = true;
                converged = false;
                break;
            }
            batch.clear();
            while let Some((e, ep)) = buckets[b].pop_front() {
                let eu = e as usize;
                if queued[eu] as usize != b + 1 || epoch[eu] != ep {
                    continue;
                }
                queued[eu] = 0;
                batch.push(e);
            }
            if batch.is_empty() {
                continue;
            }

            // Phase 1: commit the whole batch against the pre-batch state.
            // Bit-equal residuals (symmetric edges) share a bucket, so they
            // are always applied together from identical inputs.
            for &e in batch.iter() {
                if updates >= budget {
                    converged = false;
                    break 'solve;
                }
                let eu = e as usize;
                put(&mut fv, self.vslot[eu] as usize, cand[eu]);
                resid[eu] = 0.0;
                updates += 1;
            }

            // Phase 2: recompute the variable→factor messages of every
            // variable the batch touched — once per variable, not once per
            // applied edge — and remember which ones actually changed.
            affected_vars.clear();
            for &e in batch.iter() {
                let v = self.edge_var[e as usize];
                if vmark[v as usize] == 0 {
                    vmark[v as usize] = 1;
                    affected_vars.push(v);
                }
            }
            changed_vf.clear();
            for &v in affected_vars.iter() {
                for &o in self.var_edges(v as usize) {
                    let m = self.vf_message(o as usize, &fv, &xm, &extras, &mut ev);
                    if S::enc(m).dec() != get_t(&vf, o as usize) {
                        put(&mut vf, o as usize, m);
                        changed_vf.push(o);
                    }
                }
            }

            // Phase 3: recompute each candidate the batch invalidated,
            // exactly once — the applied edges themselves (their damping
            // base moved) and the co-scope edges of every changed
            // variable→factor message.
            touched.clear();
            for &e in batch.iter() {
                if emark[e as usize] == 0 {
                    emark[e as usize] = 1;
                    touched.push(e);
                }
            }
            for &o in changed_vf.iter() {
                let f2 = self.edge_factor[o as usize] as usize;
                for e3 in self.f_off[f2]..self.f_off[f2 + 1] {
                    if e3 != o && emark[e3 as usize] == 0 {
                        emark[e3 as usize] = 1;
                        touched.push(e3);
                    }
                }
            }
            for &e3 in touched.iter() {
                let eu = e3 as usize;
                cand[eu] = self.candidate_cached::<MAX, S>(eu, &fv, &vf, d, &mut ev);
                let r = (cand[eu] - get_t(&fv, self.vslot[eu] as usize)).abs();
                resid[eu] = r;
                if r >= opts.tolerance {
                    let nb = bucket_of(r) as u8 + 1;
                    // Same bucket → the existing entry stays authoritative
                    // (no churn); new bucket → bump the epoch (killing the
                    // old entry lazily) and enqueue.
                    if queued[eu] != nb {
                        epoch[eu] = epoch[eu].wrapping_add(1);
                        buckets[nb as usize - 1].push_back((e3, epoch[eu]));
                        queued[eu] = nb;
                    }
                } else {
                    // Below tolerance: dequeue lazily.
                    queued[eu] = 0;
                }
            }
            for &v in affected_vars.iter() {
                vmark[v as usize] = 0;
            }
            for &e in touched.iter() {
                emark[e as usize] = 0;
            }
        }

        let mut beliefs = vec![0.5f64; self.n_vars];
        for (v, belief) in beliefs.iter_mut().enumerate() {
            let (p_t, p_f) = self.var_product(v, usize::MAX, &fv, &xm, &extras);
            *belief = normalize(p_t, p_f, &mut ev);
        }
        let iterations = updates.div_ceil(ne.max(1)).max(1);
        S::restore(scratch, fv, vf, xm);
        Marginals { probs: beliefs, iterations, converged, updates, guards: ev, deadline_expired }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factor::Factor;

    #[test]
    fn bucket_of_maps_magnitude_ranges() {
        assert_eq!(bucket_of(0.75), 0);
        assert_eq!(bucket_of(0.5), 0);
        assert_eq!(bucket_of(2.0), 0); // ≥ 0.5 clamps up
        assert_eq!(bucket_of(0.49), 1);
        assert_eq!(bucket_of(0.25), 1);
        assert_eq!(bucket_of(0.125), 2);
        assert_eq!(bucket_of(1e-300), NUM_BUCKETS - 1); // tiny clamps down
        assert_eq!(bucket_of(0.0), NUM_BUCKETS - 1);
    }

    fn loopy_fixture() -> FactorGraph {
        let mut g = FactorGraph::new();
        let xs: Vec<_> = (0..6).map(|i| g.add_var(format!("x{i}"))).collect();
        g.add_factor(Factor::unary(xs[0], 0.9));
        g.add_factor(Factor::unary(xs[3], 0.2));
        for i in 0..6 {
            let a = xs[i];
            let b = xs[(i + 1) % 6];
            g.add_factor(Factor::soft(vec![a, b], 0.8, |v| v[0] == v[1]));
        }
        g.add_factor(Factor::soft(xs[..3].to_vec(), 0.9, |a| {
            a.iter().filter(|b| **b).count() == 1
        }));
        g
    }

    #[test]
    fn scratch_reuse_is_bit_identical_to_fresh() {
        let g = loopy_fixture();
        let compiled = CompiledGraph::compile(&g);
        for schedule in [BpSchedule::Sweep, BpSchedule::Residual] {
            let opts = BpOptions { schedule, damping: 0.1, ..BpOptions::default() };
            let extras = [(VarId(1), 0.7), (VarId(4), 0.3)];
            let mut scratch = Scratch::new();
            // Dirty the scratch with a different solve first.
            let _ = compiled.solve_stamped_scratch(&[], &opts, &mut scratch);
            let reused = compiled.solve_stamped_scratch(&extras, &opts, &mut scratch);
            let fresh = compiled.solve_stamped(&extras, &opts);
            assert_eq!(reused, fresh, "{schedule}");
        }
    }

    #[test]
    fn f32_precision_tracks_f64_closely() {
        let g = loopy_fixture();
        let compiled = CompiledGraph::compile(&g);
        for schedule in [BpSchedule::Sweep, BpSchedule::Residual] {
            let o64 = BpOptions { schedule, damping: 0.1, ..BpOptions::default() };
            let o32 = BpOptions { precision: BpPrecision::F32, ..o64 };
            let m64 = compiled.solve(&o64);
            let m32 = compiled.solve(&o32);
            for (a, b) in m64.as_slice().iter().zip(m32.as_slice()) {
                assert!((a - b).abs() < 1e-4, "{schedule}: f64 {a} vs f32 {b}");
            }
        }
    }

    #[test]
    fn residual_batches_preserve_symmetric_fixed_points() {
        // An evidence-free soft one-hot group: all members must stay at
        // their common symmetric marginal instead of being tipped into an
        // arbitrary corner by asynchronous update order.
        let mut g = FactorGraph::new();
        let xs: Vec<_> = (0..4).map(|i| g.add_var(format!("k{i}"))).collect();
        g.add_factor(Factor::soft(xs.clone(), 0.9, |a| a.iter().filter(|b| **b).count() == 1));
        for schedule in [BpSchedule::Sweep, BpSchedule::Residual] {
            let m = g.solve(&BpOptions { schedule, ..BpOptions::default() });
            let p0 = m.prob(xs[0]);
            for &x in &xs {
                assert_eq!(m.prob(x).to_bits(), p0.to_bits(), "{schedule}: symmetry broken at {x}");
            }
        }
        // And the two schedules agree with each other.
        let sweep = g.solve(&BpOptions::default());
        let residual =
            g.solve(&BpOptions { schedule: BpSchedule::Residual, ..BpOptions::default() });
        for (a, b) in sweep.as_slice().iter().zip(residual.as_slice()) {
            assert!((a - b).abs() < 1e-4, "sweep {a} vs residual {b}");
        }
    }
}
