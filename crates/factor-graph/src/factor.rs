//! Variables and factors over binary (Bernoulli) domains.
//!
//! The paper's probabilistic constraints (Eq. 5–6) are "functions having a
//! small number of variables as arguments with the interval (0, 1] as range".
//! A [`Factor`] here is exactly that: a tabulated potential over the joint
//! assignments of its (boolean) scope.

use std::fmt;

/// Identifier of a variable within a [`crate::FactorGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Maximum number of variables a single factor may couple. Potentials are
/// tabulated, so the table has `2^scope` entries; 16 keeps that at 64Ki.
pub const MAX_SCOPE: usize = 16;

/// A potential function over the boolean assignments of a variable scope.
///
/// `table[i]` is the potential of the assignment whose bit `j` (of `i`)
/// gives the value of `scope[j]` — i.e. `scope[0]` is the least-significant
/// bit.
#[derive(Debug, Clone, PartialEq)]
pub struct Factor {
    scope: Vec<VarId>,
    table: Vec<f64>,
}

impl Factor {
    /// Builds a factor by evaluating `f` on every assignment of `scope`.
    ///
    /// # Panics
    ///
    /// Panics if the scope is empty, exceeds [`MAX_SCOPE`], contains
    /// duplicate variables, or if `f` returns a non-finite or negative
    /// potential.
    pub fn from_fn(scope: Vec<VarId>, f: impl Fn(&[bool]) -> f64) -> Factor {
        assert!(!scope.is_empty(), "factor scope must be non-empty");
        assert!(scope.len() <= MAX_SCOPE, "factor scope of {} exceeds {MAX_SCOPE}", scope.len());
        let mut sorted = scope.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), scope.len(), "duplicate variable in factor scope");
        let n = scope.len();
        let mut table = Vec::with_capacity(1 << n);
        let mut assign = vec![false; n];
        for bits in 0u32..(1 << n) {
            for (j, a) in assign.iter_mut().enumerate() {
                *a = bits & (1 << j) != 0;
            }
            let v = f(&assign);
            assert!(v.is_finite() && v >= 0.0, "potential must be finite and non-negative");
            table.push(v);
        }
        Factor { scope, table }
    }

    /// A soft constraint (paper Eq. 6): potential `h` where `pred` holds and
    /// `1 - h` where it does not.
    ///
    /// # Panics
    ///
    /// Panics if `h` is outside `(0, 1)` or on the scope conditions of
    /// [`Factor::from_fn`].
    pub fn soft(scope: Vec<VarId>, h: f64, pred: impl Fn(&[bool]) -> bool) -> Factor {
        assert!(h > 0.0 && h < 1.0, "constraint strength must lie strictly in (0, 1)");
        Factor::from_fn(scope, |a| if pred(a) { h } else { 1.0 - h })
    }

    /// A unary prior factor: potential `p` for true, `1 - p` for false.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn unary(var: VarId, p: f64) -> Factor {
        assert!((0.0..=1.0).contains(&p), "probability must lie in [0, 1]");
        Factor { scope: vec![var], table: vec![1.0 - p, p] }
    }

    /// Builds a factor from raw parts **without** checking any invariant
    /// (scope arity, table size, potential range).
    ///
    /// This exists so the IR-verifier tests can construct deliberately
    /// malformed factors; library code should use [`Factor::from_fn`],
    /// [`Factor::soft`] or [`Factor::unary`], which validate.
    #[doc(hidden)]
    pub fn from_raw_parts(scope: Vec<VarId>, table: Vec<f64>) -> Factor {
        Factor { scope, table }
    }

    /// The variables this factor couples.
    pub fn scope(&self) -> &[VarId] {
        &self.scope
    }

    /// The tabulated potentials (see type-level docs for indexing).
    pub fn table(&self) -> &[f64] {
        &self.table
    }

    /// Evaluates the potential of a full assignment over the factor's scope.
    pub fn eval(&self, assign: &[bool]) -> f64 {
        debug_assert_eq!(assign.len(), self.scope.len());
        let mut idx = 0usize;
        for (j, &a) in assign.iter().enumerate() {
            if a {
                idx |= 1 << j;
            }
        }
        self.table[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_tabulates_in_lsb_order() {
        let f = Factor::from_fn(vec![VarId(0), VarId(1)], |a| {
            (a[0] as u8 as f64) + 2.0 * (a[1] as u8 as f64)
        });
        // index 0 = (F,F), 1 = (T,F), 2 = (F,T), 3 = (T,T)
        assert_eq!(f.table(), &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(f.eval(&[true, false]), 1.0);
        assert_eq!(f.eval(&[true, true]), 3.0);
    }

    #[test]
    fn soft_equality_matches_eq6() {
        let h = 0.9;
        let f = Factor::soft(vec![VarId(0), VarId(1)], h, |a| a[0] == a[1]);
        assert_eq!(f.eval(&[false, false]), h);
        assert_eq!(f.eval(&[true, true]), h);
        assert!((f.eval(&[true, false]) - (1.0 - h)).abs() < 1e-12);
    }

    #[test]
    fn unary_prior_table() {
        let f = Factor::unary(VarId(3), 0.9);
        assert_eq!(f.scope(), &[VarId(3)]);
        assert!((f.table()[1] - 0.9).abs() < 1e-12);
        assert!((f.table()[0] - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_scope_panics() {
        let _ = Factor::from_fn(vec![], |_| 1.0);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_scope_panics() {
        let _ = Factor::from_fn(vec![VarId(0), VarId(0)], |_| 1.0);
    }

    #[test]
    #[should_panic(expected = "strictly in (0, 1)")]
    fn hard_constraint_strength_rejected() {
        let _ = Factor::soft(vec![VarId(0)], 1.0, |a| a[0]);
    }
}
