//! The factor graph and its solvers.
//!
//! Two solvers are provided:
//!
//! * [`FactorGraph::solve`] — the sum-product algorithm on the factor graph
//!   (loopy belief propagation), the approximate marginal computation the
//!   paper relies on (§3.4, citing Kschischang et al. \[14\]). Message
//!   passing runs on the flat-arena kernel in [`crate::kernel`]; see
//!   [`BpSchedule`] for the available message schedules.
//! * [`FactorGraph::solve_exact`] — brute-force enumeration of the joint,
//!   used to validate BP on small graphs and by the "Logical"-style exact
//!   baselines.

use crate::factor::{Factor, VarId};
use crate::kernel::CompiledGraph;

/// The message-update schedule used by loopy belief propagation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BpSchedule {
    /// Synchronous two-phase sweeps over all messages. The historical
    /// behavior; deterministic and bit-for-bit stable across releases.
    #[default]
    Sweep,
    /// Residual belief propagation: update the factor→variable message with
    /// the largest pending change first. Typically converges in far fewer
    /// message updates on large loopy graphs; same fixed points as `Sweep`.
    Residual,
}

impl BpSchedule {
    /// Parses a schedule name as accepted by the `--bp-schedule` CLI flag.
    pub fn parse(s: &str) -> Option<BpSchedule> {
        match s {
            "sweep" => Some(BpSchedule::Sweep),
            "residual" => Some(BpSchedule::Residual),
            _ => None,
        }
    }
}

impl std::fmt::Display for BpSchedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BpSchedule::Sweep => "sweep",
            BpSchedule::Residual => "residual",
        })
    }
}

/// The stored representation of belief-propagation messages.
///
/// Arithmetic (products, normalization, damping) always runs in `f64`
/// regardless of this setting; the precision only controls what the
/// message *stores*, i.e. where rounding happens. `F64` is bit-for-bit
/// identical to the historical solver and is the default; `F32` halves
/// message memory traffic at the cost of ~1e-7 relative rounding per
/// stored message, and is opt-in (`--bp-precision f32`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BpPrecision {
    /// Full-width message storage — the historical, byte-stable behavior.
    #[default]
    F64,
    /// Compact `f32` message storage with `f64` accumulation.
    F32,
}

impl BpPrecision {
    /// Parses a precision name as accepted by the `--bp-precision` CLI
    /// flag.
    pub fn parse(s: &str) -> Option<BpPrecision> {
        match s {
            "f64" => Some(BpPrecision::F64),
            "f32" => Some(BpPrecision::F32),
            _ => None,
        }
    }
}

impl std::fmt::Display for BpPrecision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BpPrecision::F64 => "f64",
            BpPrecision::F32 => "f32",
        })
    }
}

/// Options controlling loopy belief propagation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BpOptions {
    /// Maximum message-passing sweeps (under [`BpSchedule::Residual`], the
    /// equivalent update budget: `max_iterations * num_edges`).
    pub max_iterations: usize,
    /// Convergence threshold on the max-change of any marginal.
    pub tolerance: f64,
    /// Damping in `[0, 1)`: new message = (1-d)*computed + d*old.
    pub damping: f64,
    /// Message-update schedule.
    pub schedule: BpSchedule,
    /// Optional hard per-solve budget on message updates, counted in the
    /// same unit as [`Marginals::updates`]. Unlike a wall-clock deadline
    /// this is deterministic: the same graph and options stop at the same
    /// update on every run. `None` (the default) leaves `max_iterations`
    /// as the only bound.
    pub update_budget: Option<usize>,
    /// Stored message representation (see [`BpPrecision`]). `F64` (the
    /// default) keeps results bit-identical to previous releases.
    pub precision: BpPrecision,
    /// Optional wall-clock deadline. The kernel polls it at sweep/batch
    /// granularity and stops early with [`Marginals::deadline_expired`]
    /// set. Inherently non-deterministic — callers that promise
    /// byte-identical replays must never cache a deadline-truncated
    /// result (the inference layer keeps such solves out of the store).
    pub deadline: Option<std::time::Instant>,
}

impl Default for BpOptions {
    fn default() -> BpOptions {
        BpOptions {
            max_iterations: 50,
            tolerance: 1e-6,
            damping: 0.0,
            schedule: BpSchedule::Sweep,
            update_budget: None,
            precision: BpPrecision::F64,
            deadline: None,
        }
    }
}

/// Counters of numeric anomalies absorbed during message passing.
///
/// The kernel clamps every normalization whose mass is non-finite or sums
/// to zero back to the uniform message `0.5` instead of dividing — the
/// solve always completes with finite marginals. These counters record how
/// often that clamp fired so callers can report the solve as degraded
/// rather than silently trusting the result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GuardEvents {
    /// Normalizations whose mass was NaN or infinite (poisoned factor
    /// table or stamped extra).
    pub non_finite: usize,
    /// Normalizations whose mass summed to zero (all-zero factor rows or
    /// fully underflowed message products).
    pub zero_sum: usize,
}

impl GuardEvents {
    /// Whether any guard fired during the solve.
    pub fn any(&self) -> bool {
        self.non_finite > 0 || self.zero_sum > 0
    }
}

/// The result of marginal inference.
#[derive(Debug, Clone, PartialEq)]
pub struct Marginals {
    pub(crate) probs: Vec<f64>,
    /// Number of sweeps actually performed (under the residual schedule,
    /// the sweep-equivalent count `ceil(updates / num_edges)`).
    pub iterations: usize,
    /// Whether the tolerance was reached before the iteration cap.
    pub converged: bool,
    /// Total factor→variable message updates applied. The unit both
    /// schedules share: one sweep costs `num_edges` updates.
    pub updates: usize,
    /// Numeric anomalies clamped during the solve (see [`GuardEvents`]).
    pub guards: GuardEvents,
    /// True when [`BpOptions::deadline`] expired before convergence; the
    /// marginals are whatever the schedule had produced so far.
    pub deadline_expired: bool,
}

impl Marginals {
    /// `p(X = true)` for a variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` is not from the solved graph.
    pub fn prob(&self, var: VarId) -> f64 {
        self.probs[var.0 as usize]
    }

    /// All marginals, indexed by `VarId`.
    pub fn as_slice(&self) -> &[f64] {
        &self.probs
    }
}

/// A factor graph over Bernoulli variables.
///
/// Build it by interleaving [`FactorGraph::add_var`] and
/// [`FactorGraph::add_factor`], then call one of the solvers.
#[derive(Debug, Clone, Default)]
pub struct FactorGraph {
    names: Vec<String>,
    factors: Vec<Factor>,
}

impl FactorGraph {
    /// An empty graph.
    pub fn new() -> FactorGraph {
        FactorGraph::default()
    }

    /// Adds a variable with a diagnostic name, returning its id. Variables
    /// start with a uniform (uninformative) prior; add a
    /// [`Factor::unary`] to encode a prior belief (paper §3.2).
    pub fn add_var(&mut self, name: impl Into<String>) -> VarId {
        let id = VarId(self.names.len() as u32);
        self.names.push(name.into());
        id
    }

    /// The diagnostic name of a variable.
    pub fn var_name(&self, var: VarId) -> &str {
        &self.names[var.0 as usize]
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.names.len()
    }

    /// Number of factors.
    pub fn num_factors(&self) -> usize {
        self.factors.len()
    }

    /// Adds a factor.
    ///
    /// # Panics
    ///
    /// Panics if the factor references a variable not in this graph.
    pub fn add_factor(&mut self, factor: Factor) {
        for v in factor.scope() {
            assert!((v.0 as usize) < self.names.len(), "factor references unknown variable {v}");
        }
        self.factors.push(factor);
    }

    /// Adds a factor **without** the scope-bounds check of
    /// [`FactorGraph::add_factor`].
    ///
    /// Only for tests that need a structurally broken graph to exercise the
    /// IR verifier; everything else must go through [`FactorGraph::add_factor`].
    #[doc(hidden)]
    pub fn push_factor_unchecked(&mut self, factor: Factor) {
        self.factors.push(factor);
    }

    /// The factors added so far.
    pub fn factors(&self) -> &[Factor] {
        &self.factors
    }

    /// Sum-product loopy belief propagation.
    ///
    /// Returns approximate marginals for every variable. On tree-structured
    /// graphs the result is exact once converged; on loopy graphs it is the
    /// standard approximation the paper's `Solve` procedure computes.
    ///
    /// Compiles the graph into a [`CompiledGraph`] arena and solves it; a
    /// caller that solves the same graph repeatedly should compile once and
    /// reuse.
    pub fn solve(&self, opts: &BpOptions) -> Marginals {
        CompiledGraph::compile(self).solve(opts)
    }

    /// Max-product (MAP) inference: the same message-passing core with
    /// `max` in place of `sum`, yielding for each variable the value it
    /// takes in the (approximately) most likely joint assignment. Useful as
    /// an alternative extraction rule: instead of thresholding marginals,
    /// read off the single best specification.
    pub fn solve_map(&self, opts: &BpOptions) -> Marginals {
        CompiledGraph::compile(self).solve_map(opts)
    }

    /// Exact MAP by enumeration: the single most likely joint assignment.
    ///
    /// # Panics
    ///
    /// Panics if the graph has more than 24 variables.
    pub fn solve_map_exact(&self) -> Vec<bool> {
        let n = self.names.len();
        assert!(n <= 24, "exact MAP enumeration limited to 24 variables, got {n}");
        let mut best = vec![false; n];
        let mut best_w = -1.0f64;
        let mut assign = vec![false; n];
        for bits in 0u64..(1 << n) {
            for (j, a) in assign.iter_mut().enumerate() {
                *a = bits & (1 << j) != 0;
            }
            let mut w = 1.0f64;
            for f in &self.factors {
                let local: Vec<bool> = f.scope().iter().map(|v| assign[v.0 as usize]).collect();
                w *= f.eval(&local);
                if w == 0.0 {
                    break;
                }
            }
            if w > best_w {
                best_w = w;
                best = assign.clone();
            }
        }
        best
    }

    /// Exact marginals by enumerating the full joint (paper Eq. 4).
    ///
    /// # Panics
    ///
    /// Panics if the graph has more than 24 variables — enumeration is
    /// `O(2^n)` and only intended for validation on small graphs.
    pub fn solve_exact(&self) -> Marginals {
        let n = self.names.len();
        assert!(n <= 24, "exact enumeration limited to 24 variables, got {n}");
        let mut weight_true = vec![0.0f64; n];
        let mut total = 0.0f64;
        let mut assign = vec![false; n];
        for bits in 0u64..(1 << n) {
            for (j, a) in assign.iter_mut().enumerate() {
                *a = bits & (1 << j) != 0;
            }
            let mut w = 1.0f64;
            for f in &self.factors {
                let local: Vec<bool> = f.scope().iter().map(|v| assign[v.0 as usize]).collect();
                w *= f.eval(&local);
                if w == 0.0 {
                    break;
                }
            }
            if w == 0.0 {
                continue;
            }
            total += w;
            for (j, &a) in assign.iter().enumerate() {
                if a {
                    weight_true[j] += w;
                }
            }
        }
        let probs =
            weight_true.iter().map(|&wt| if total > 0.0 { wt / total } else { 0.5 }).collect();
        Marginals {
            probs,
            iterations: 1,
            converged: true,
            updates: 0,
            guards: GuardEvents::default(),
            deadline_expired: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn single_prior_is_returned_exactly() {
        let mut g = FactorGraph::new();
        let x = g.add_var("x");
        g.add_factor(Factor::unary(x, 0.9));
        let m = g.solve(&BpOptions::default());
        assert!(close(m.prob(x), 0.9, 1e-9));
        let e = g.solve_exact();
        assert!(close(e.prob(x), 0.9, 1e-12));
    }

    #[test]
    fn soft_equality_pulls_towards_evidence() {
        // x has prior 0.9; y tied to x with strength 0.8.
        let mut g = FactorGraph::new();
        let x = g.add_var("x");
        let y = g.add_var("y");
        g.add_factor(Factor::unary(x, 0.9));
        g.add_factor(Factor::soft(vec![x, y], 0.8, |a| a[0] == a[1]));
        let exact = g.solve_exact();
        let bp = g.solve(&BpOptions::default());
        // Tree-structured: BP must match enumeration.
        assert!(close(bp.prob(y), exact.prob(y), 1e-6));
        assert!(exact.prob(y) > 0.5, "y should lean true: {}", exact.prob(y));
        assert!(exact.prob(y) < 0.9, "equality is soft");
    }

    #[test]
    fn bp_matches_exact_on_chain() {
        // x0 -(0.9)- x1 -(0.9)- x2 with prior on x0.
        let mut g = FactorGraph::new();
        let xs: Vec<_> = (0..3).map(|i| g.add_var(format!("x{i}"))).collect();
        g.add_factor(Factor::unary(xs[0], 0.95));
        for w in xs.windows(2) {
            g.add_factor(Factor::soft(vec![w[0], w[1]], 0.9, |a| a[0] == a[1]));
        }
        let exact = g.solve_exact();
        let bp = g.solve(&BpOptions::default());
        for &x in &xs {
            assert!(close(bp.prob(x), exact.prob(x), 1e-6), "{x}");
        }
        assert!(bp.converged);
    }

    #[test]
    fn conflicting_evidence_resolves_to_majority() {
        // The paper's key scenario (§1): one constraint says HASNEXT, many
        // say ALIVE. Model one variable pulled both ways.
        let mut g = FactorGraph::new();
        let x = g.add_var("state_is_hasnext");
        g.add_factor(Factor::unary(x, 0.9)); // the buggy call site
        for _ in 0..4 {
            g.add_factor(Factor::unary(x, 0.1)); // the consistent sites
        }
        let m = g.solve(&BpOptions::default());
        assert!(m.prob(x) < 0.5, "majority evidence wins: {}", m.prob(x));
        // Crucially, a solution exists at all — a hard constraint system
        // would be unsatisfiable here.
    }

    #[test]
    fn loopy_graph_stays_bounded_and_close() {
        // A 4-cycle of soft equalities with one informative prior.
        let mut g = FactorGraph::new();
        let xs: Vec<_> = (0..4).map(|i| g.add_var(format!("x{i}"))).collect();
        g.add_factor(Factor::unary(xs[0], 0.9));
        for i in 0..4 {
            let a = xs[i];
            let b = xs[(i + 1) % 4];
            g.add_factor(Factor::soft(vec![a, b], 0.85, |v| v[0] == v[1]));
        }
        let exact = g.solve_exact();
        let bp = g.solve(&BpOptions { max_iterations: 200, ..BpOptions::default() });
        for &x in &xs {
            let (pb, pe) = (bp.prob(x), exact.prob(x));
            // Loopy BP is known to be overconfident on tight cycles; it must
            // stay in the right direction and within a coarse band.
            assert!((pb - pe).abs() < 0.1, "{x}: bp={pb} exact={pe}");
            assert!(pb > 0.5);
        }
    }

    #[test]
    fn exactly_one_style_factor() {
        // Soft one-hot over 3 vars plus a strong prior on var 0.
        let mut g = FactorGraph::new();
        let xs: Vec<_> = (0..3).map(|i| g.add_var(format!("k{i}"))).collect();
        g.add_factor(Factor::soft(xs.clone(), 0.95, |a| a.iter().filter(|b| **b).count() == 1));
        g.add_factor(Factor::unary(xs[0], 0.9));
        let m = g.solve_exact();
        assert!(m.prob(xs[0]) > 0.8);
        assert!(m.prob(xs[1]) < 0.3);
        assert!(m.prob(xs[2]) < 0.3);
    }

    #[test]
    fn zero_potential_assignments_are_excluded() {
        let mut g = FactorGraph::new();
        let x = g.add_var("x");
        let y = g.add_var("y");
        // Hard XOR via from_fn (0 potential on violating rows).
        g.add_factor(Factor::from_fn(vec![x, y], |a| if a[0] != a[1] { 1.0 } else { 0.0 }));
        g.add_factor(Factor::unary(x, 0.9));
        let m = g.solve_exact();
        assert!(close(m.prob(y), 0.1, 1e-9));
    }

    #[test]
    fn unconstrained_variable_is_uniform() {
        let mut g = FactorGraph::new();
        let x = g.add_var("x");
        let y = g.add_var("y");
        g.add_factor(Factor::unary(x, 0.7));
        g.add_factor(Factor::unary(y, 0.5));
        let m = g.solve(&BpOptions::default());
        assert!(close(m.prob(y), 0.5, 1e-9));
    }

    #[test]
    fn var_names_are_kept() {
        let mut g = FactorGraph::new();
        let x = g.add_var("PRE original unique");
        assert_eq!(g.var_name(x), "PRE original unique");
        assert_eq!(g.num_vars(), 1);
    }

    #[test]
    fn map_agrees_with_exact_on_chain() {
        // Distinct link strengths keep the MAP mode unique (a uniform chain
        // has tied break positions).
        let mut g = FactorGraph::new();
        let xs: Vec<_> = (0..5).map(|i| g.add_var(format!("x{i}"))).collect();
        g.add_factor(Factor::unary(xs[0], 0.9));
        g.add_factor(Factor::unary(xs[4], 0.05));
        for (w, h) in xs.windows(2).zip([0.9, 0.8, 0.7, 0.6]) {
            g.add_factor(Factor::soft(vec![w[0], w[1]], h, |a| a[0] == a[1]));
        }
        let exact = g.solve_map_exact();
        let map = g.solve_map(&BpOptions { max_iterations: 100, ..BpOptions::default() });
        for (i, &x) in xs.iter().enumerate() {
            assert_eq!(map.prob(x) > 0.5, exact[i], "var {i}: belief {}", map.prob(x));
        }
    }

    #[test]
    fn map_picks_the_consistent_mode() {
        // Two near-symmetric modes; the prior tips the MAP.
        let mut g = FactorGraph::new();
        let a = g.add_var("a");
        let b = g.add_var("b");
        g.add_factor(Factor::soft(vec![a, b], 0.95, |v| v[0] == v[1]));
        g.add_factor(Factor::unary(a, 0.6));
        let exact = g.solve_map_exact();
        assert_eq!(exact, vec![true, true]);
        let map = g.solve_map(&BpOptions::default());
        assert!(map.prob(a) > 0.5 && map.prob(b) > 0.5);
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn foreign_variable_rejected() {
        let mut g = FactorGraph::new();
        let _x = g.add_var("x");
        g.add_factor(Factor::unary(VarId(5), 0.5));
    }
}
