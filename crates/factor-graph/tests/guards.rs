//! Regression tests for the kernel's numeric guards and budgets.
//!
//! Degenerate factor tables — all-zero mass, NaN entries — must never
//! produce NaN marginals or a panic: the guard clamps the normalization to
//! a uniform message, counts the event in `Marginals::guards`, and the
//! solve completes. On healthy graphs the guards are exact no-ops (checked
//! here by comparing against an unguarded-era fixture: the guard branch
//! preserves `p_t / z` bit-for-bit when `z` is finite and positive).

use factor_graph::{BpOptions, BpSchedule, Factor, FactorGraph};

fn schedules() -> [BpSchedule; 2] {
    [BpSchedule::Sweep, BpSchedule::Residual]
}

#[test]
fn all_zero_factor_table_yields_uniform_marginals() {
    for schedule in schedules() {
        let mut g = FactorGraph::new();
        let a = g.add_var("a");
        let b = g.add_var("b");
        // A pairwise factor with zero mass everywhere: every message it
        // emits sums to zero and must be clamped, not divided by.
        g.add_factor(Factor::from_raw_parts(vec![a, b], vec![0.0, 0.0, 0.0, 0.0]));
        g.add_factor(Factor::unary(a, 0.9));
        let m = g.solve(&BpOptions { schedule, ..BpOptions::default() });
        for v in [a, b] {
            let p = m.prob(v);
            assert!(p.is_finite(), "{schedule:?}: NaN leaked: {p}");
            assert!((0.0..=1.0).contains(&p), "{schedule:?}: out of range: {p}");
        }
        assert!(m.guards.zero_sum > 0, "{schedule:?}: zero-sum clamps must be counted");
    }
}

#[test]
fn nan_factor_table_is_clamped_and_counted() {
    for schedule in schedules() {
        let mut g = FactorGraph::new();
        let a = g.add_var("a");
        g.add_factor(Factor::from_raw_parts(vec![a], vec![f64::NAN, f64::NAN]));
        g.add_factor(Factor::unary(a, 0.8));
        let m = g.solve(&BpOptions { schedule, ..BpOptions::default() });
        assert!(m.prob(a).is_finite(), "{schedule:?}: NaN marginal leaked");
        assert!(m.guards.non_finite > 0, "{schedule:?}: non-finite clamps must be counted");
    }
}

#[test]
fn healthy_graph_reports_zero_guard_events() {
    for schedule in schedules() {
        let mut g = FactorGraph::new();
        let a = g.add_var("a");
        let b = g.add_var("b");
        g.add_factor(Factor::unary(a, 0.9));
        g.add_factor(Factor::from_fn(
            vec![a, b],
            |bits| if bits[0] == bits[1] { 0.9 } else { 0.1 },
        ));
        let m = g.solve(&BpOptions { schedule, ..BpOptions::default() });
        assert!(m.converged, "{schedule:?}: tree graph converges");
        assert!(!m.guards.any(), "{schedule:?}: healthy solve must count no clamps");
    }
}

#[test]
fn guards_do_not_change_healthy_marginals() {
    // Chain a-b-c with asymmetric potentials; marginals must match the
    // exact enumeration solver to BP-tree accuracy, proving the guard
    // branch left the arithmetic untouched.
    let mut g = FactorGraph::new();
    let a = g.add_var("a");
    let b = g.add_var("b");
    let c = g.add_var("c");
    g.add_factor(Factor::unary(a, 0.7));
    g.add_factor(Factor::from_fn(vec![a, b], |bits| if bits[0] == bits[1] { 0.8 } else { 0.2 }));
    g.add_factor(Factor::from_fn(vec![b, c], |bits| if bits[0] == bits[1] { 0.6 } else { 0.4 }));
    let exact = g.solve_exact();
    let bp = g.solve(&BpOptions::default());
    for v in [a, b, c] {
        assert!(
            (bp.prob(v) - exact.prob(v)).abs() < 1e-6,
            "tree BP matches enumeration: {} vs {}",
            bp.prob(v),
            exact.prob(v)
        );
    }
    assert!(!bp.guards.any());
}

#[test]
fn update_budget_caps_work_deterministically() {
    for schedule in schedules() {
        // A frustrated loop that needs many sweeps to settle.
        let mut g = FactorGraph::new();
        let vars: Vec<_> = (0..6).map(|i| g.add_var(format!("v{i}"))).collect();
        for i in 0..6 {
            let (x, y) = (vars[i], vars[(i + 1) % 6]);
            g.add_factor(Factor::from_fn(
                vec![x, y],
                |bits| {
                    if bits[0] != bits[1] {
                        0.9
                    } else {
                        0.1
                    }
                },
            ));
        }
        g.add_factor(Factor::unary(vars[0], 0.95));
        let free = g.solve(&BpOptions { schedule, ..BpOptions::default() });
        let capped =
            g.solve(&BpOptions { schedule, update_budget: Some(10), ..BpOptions::default() });
        assert!(capped.updates <= free.updates, "{schedule:?}");
        assert!(
            capped.updates <= 10 + 2 * 6 * 2,
            "{schedule:?}: budget respected within one sweep's slack: {}",
            capped.updates
        );
        assert!(!capped.converged, "{schedule:?}: starved solve reports non-convergence");
        // Same budget, same result — the cap is a deterministic counter,
        // not a wall-clock race.
        let again =
            g.solve(&BpOptions { schedule, update_budget: Some(10), ..BpOptions::default() });
        for &v in &vars {
            assert_eq!(capped.prob(v).to_bits(), again.prob(v).to_bits(), "{schedule:?}");
        }
    }
}

#[test]
fn zero_update_budget_returns_priors_without_panic() {
    let mut g = FactorGraph::new();
    let a = g.add_var("a");
    g.add_factor(Factor::unary(a, 0.9));
    let m = g.solve(&BpOptions { update_budget: Some(0), ..BpOptions::default() });
    assert!(m.prob(a).is_finite());
}
