//! Parity tests for the flat-arena kernel.
//!
//! The arena rewrite is only allowed to change *how fast* sum/max BP runs,
//! never *what it computes*: under [`BpSchedule::Sweep`] the kernel must
//! reproduce the historical nested-`Vec` solver bit-for-bit. This file
//! keeps a verbatim copy of that solver (`reference` module below) and
//! drives both implementations over randomized graphs, comparing raw
//! `f64::to_bits`. It also checks the two semantic properties of the new
//! machinery: stamped extras are exactly appended unary factors, and the
//! residual schedule reaches the same fixed points with fewer updates.

use factor_graph::{BpOptions, BpSchedule, CompiledGraph, Factor, FactorGraph, VarId};
use prng::Rng;

/// The pre-arena solver, kept as the bit-exactness oracle.
mod reference {
    use factor_graph::{BpOptions, FactorGraph};

    fn damp(old: f64, new: f64, d: f64) -> f64 {
        d * old + (1.0 - d) * new
    }

    /// One synchronous BP run; `MAX` selects max-product.
    pub fn solve<const MAX: bool>(g: &FactorGraph, opts: &BpOptions) -> (Vec<f64>, usize, bool) {
        let n_vars = g.num_vars();
        let factors = g.factors();
        let mut var_edges: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n_vars];
        for (fi, f) in factors.iter().enumerate() {
            for (pos, v) in f.scope().iter().enumerate() {
                var_edges[v.0 as usize].push((fi, pos));
            }
        }
        let mut msg_fv: Vec<Vec<f64>> =
            factors.iter().map(|f| vec![0.5; f.scope().len()]).collect();
        let mut msg_vf: Vec<Vec<f64>> =
            factors.iter().map(|f| vec![0.5; f.scope().len()]).collect();
        let mut marginals = vec![0.5f64; n_vars];
        let mut iterations = 0;
        let mut converged = false;
        for it in 0..opts.max_iterations {
            iterations = it + 1;
            for edges in &var_edges {
                for &(fi, pos) in edges {
                    let mut p_t = 1.0f64;
                    let mut p_f = 1.0f64;
                    for &(ofi, opos) in edges {
                        if ofi == fi && opos == pos {
                            continue;
                        }
                        let m = msg_fv[ofi][opos];
                        p_t *= m;
                        p_f *= 1.0 - m;
                    }
                    let z = p_t + p_f;
                    let new = if z > 0.0 { p_t / z } else { 0.5 };
                    msg_vf[fi][pos] = damp(msg_vf[fi][pos], new, opts.damping);
                }
            }
            for (fi, f) in factors.iter().enumerate() {
                let table = f.table();
                for (pos, slot) in msg_fv[fi].iter_mut().enumerate() {
                    let mut acc_t = 0.0f64;
                    let mut acc_f = 0.0f64;
                    for (idx, &pot) in table.iter().enumerate() {
                        if pot == 0.0 {
                            continue;
                        }
                        let mut w = pot;
                        for (opos, _) in f.scope().iter().enumerate() {
                            if opos == pos {
                                continue;
                            }
                            let bit = idx & (1 << opos) != 0;
                            let m = msg_vf[fi][opos];
                            w *= if bit { m } else { 1.0 - m };
                        }
                        if idx & (1 << pos) != 0 {
                            acc_t = if MAX { acc_t.max(w) } else { acc_t + w };
                        } else {
                            acc_f = if MAX { acc_f.max(w) } else { acc_f + w };
                        }
                    }
                    let z = acc_t + acc_f;
                    let new = if z > 0.0 { acc_t / z } else { 0.5 };
                    *slot = damp(*slot, new, opts.damping);
                }
            }
            let mut max_delta = 0.0f64;
            for (vi, edges) in var_edges.iter().enumerate() {
                let mut p_t = 1.0f64;
                let mut p_f = 1.0f64;
                for &(fi, pos) in edges {
                    let m = msg_fv[fi][pos];
                    p_t *= m;
                    p_f *= 1.0 - m;
                }
                let z = p_t + p_f;
                let b = if z > 0.0 { p_t / z } else { 0.5 };
                max_delta = max_delta.max((b - marginals[vi]).abs());
                marginals[vi] = b;
            }
            if max_delta < opts.tolerance {
                converged = true;
                break;
            }
        }
        (marginals, iterations, converged)
    }
}

/// A random mixed graph: unary priors, pairwise (in)equalities, and some
/// wider soft constraints, in interleaved insertion order.
fn random_graph(rng: &mut Rng, n_vars: usize, n_factors: usize) -> FactorGraph {
    let mut g = FactorGraph::new();
    let vars: Vec<VarId> = (0..n_vars).map(|i| g.add_var(format!("v{i}"))).collect();
    for _ in 0..n_factors {
        match rng.gen_index(0..4) {
            0 => {
                let v = *rng.pick(&vars);
                let p = 0.05 + 0.9 * rng.gen_f64();
                g.add_factor(Factor::unary(v, p));
            }
            1 => {
                let a = *rng.pick(&vars);
                let b = *rng.pick(&vars);
                if a == b {
                    continue;
                }
                let h = 0.55 + 0.44 * rng.gen_f64();
                let eq = rng.gen_bool(0.7);
                g.add_factor(Factor::soft(vec![a, b], h, move |x| (x[0] == x[1]) == eq));
            }
            2 => {
                // Hard XOR-ish rows: exercises the zero-potential skip.
                let a = *rng.pick(&vars);
                let b = *rng.pick(&vars);
                if a == b {
                    continue;
                }
                g.add_factor(Factor::from_fn(vec![a, b], |x| if x[0] != x[1] { 1.0 } else { 0.0 }));
            }
            _ => {
                let k = rng.gen_index(3..5).min(n_vars);
                let mut scope: Vec<VarId> = Vec::new();
                for &v in &vars {
                    if scope.len() < k && rng.gen_bool(0.5) {
                        scope.push(v);
                    }
                }
                if scope.len() < 3 {
                    continue;
                }
                let h = 0.6 + 0.35 * rng.gen_f64();
                g.add_factor(Factor::soft(scope, h, |x| x.iter().filter(|b| **b).count() == 1));
            }
        }
    }
    g
}

fn assert_bit_equal(ours: &[f64], theirs: &[f64], what: &str) {
    assert_eq!(ours.len(), theirs.len(), "{what}: length");
    for (i, (a, b)) in ours.iter().zip(theirs).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{what}: var {i} differs: {a:e} ({:016x}) vs {b:e} ({:016x})",
            a.to_bits(),
            b.to_bits()
        );
    }
}

#[test]
fn sweep_matches_reference_bit_for_bit() {
    prng::forall("sweep-parity", 40, |rng| {
        let n_vars = rng.gen_index(1..25);
        let n_factors = rng.gen_index(0..40);
        let g = random_graph(rng, n_vars, n_factors);
        let opts = BpOptions {
            max_iterations: rng.gen_index(1..60),
            damping: *rng.pick(&[0.0, 0.1, 0.3]),
            ..BpOptions::default()
        };
        let (ref_sum, ref_it, ref_conv) = reference::solve::<false>(&g, &opts);
        let sum = g.solve(&opts);
        assert_bit_equal(sum.as_slice(), &ref_sum, "sum");
        assert_eq!(sum.iterations, ref_it);
        assert_eq!(sum.converged, ref_conv);
        let (ref_max, _, _) = reference::solve::<true>(&g, &opts);
        let map = g.solve_map(&opts);
        assert_bit_equal(map.as_slice(), &ref_max, "max");
    });
}

#[test]
fn stamped_extras_equal_appended_unary_factors() {
    prng::forall("stamp-parity", 40, |rng| {
        let n_vars = rng.gen_index(2..20);
        let n_factors = rng.gen_index(0..25);
        let g = random_graph(rng, n_vars, n_factors);
        // Random unary extras, some repeated on the same variable.
        let n_extras = rng.gen_index(0..8);
        let extras: Vec<(VarId, f64)> = (0..n_extras)
            .map(|_| (VarId(rng.gen_index(0..n_vars) as u32), 0.05 + 0.9 * rng.gen_f64()))
            .collect();
        let mut extended = g.clone();
        for &(v, p) in &extras {
            extended.add_factor(Factor::unary(v, p));
        }
        let opts = BpOptions {
            max_iterations: rng.gen_index(1..50),
            damping: *rng.pick(&[0.0, 0.1]),
            ..BpOptions::default()
        };
        let compiled = CompiledGraph::compile(&g);
        let stamped = compiled.solve_stamped(&extras, &opts);
        let appended = extended.solve(&opts);
        assert_bit_equal(stamped.as_slice(), appended.as_slice(), "stamped sum");
        assert_eq!(stamped.iterations, appended.iterations);
        assert_eq!(stamped.converged, appended.converged);
        let stamped_map = compiled.solve_map_stamped(&extras, &opts);
        let appended_map = extended.solve_map(&opts);
        assert_bit_equal(stamped_map.as_slice(), appended_map.as_slice(), "stamped max");
    });
}

/// A random tree: each variable links to one earlier variable.
fn random_tree(rng: &mut Rng, n_vars: usize) -> FactorGraph {
    let mut g = FactorGraph::new();
    let vars: Vec<VarId> = (0..n_vars).map(|i| g.add_var(format!("t{i}"))).collect();
    g.add_factor(Factor::unary(vars[0], 0.05 + 0.9 * rng.gen_f64()));
    for i in 1..n_vars {
        let parent = vars[rng.gen_index(0..i)];
        let h = 0.6 + 0.35 * rng.gen_f64();
        let eq = rng.gen_bool(0.8);
        g.add_factor(Factor::soft(vec![parent, vars[i]], h, move |x| (x[0] == x[1]) == eq));
        if rng.gen_bool(0.4) {
            g.add_factor(Factor::unary(vars[i], 0.1 + 0.8 * rng.gen_f64()));
        }
    }
    g
}

#[test]
fn residual_matches_exact_on_trees() {
    prng::forall("residual-trees", 30, |rng| {
        let n_vars = rng.gen_index(2..12);
        let g = random_tree(rng, n_vars);
        let opts = BpOptions {
            max_iterations: 500,
            tolerance: 1e-9,
            damping: 0.0,
            schedule: BpSchedule::Residual,
            ..BpOptions::default()
        };
        let residual = g.solve(&opts);
        assert!(residual.converged, "residual BP must converge on trees");
        let exact = g.solve_exact();
        for i in 0..n_vars {
            let v = VarId(i as u32);
            let (r, e) = (residual.prob(v), exact.prob(v));
            assert!((r - e).abs() < 1e-6, "var {i}: residual={r} exact={e}");
        }
    });
}

#[test]
fn residual_stays_in_loopy_tolerance_band() {
    // The same 4-cycle the sweep solver is tested on: loopy BP is allowed to
    // be overconfident but must stay in the right direction and within 0.1.
    let mut g = FactorGraph::new();
    let xs: Vec<_> = (0..4).map(|i| g.add_var(format!("x{i}"))).collect();
    g.add_factor(Factor::unary(xs[0], 0.9));
    for i in 0..4 {
        let (a, b) = (xs[i], xs[(i + 1) % 4]);
        g.add_factor(Factor::soft(vec![a, b], 0.85, |v| v[0] == v[1]));
    }
    let exact = g.solve_exact();
    let residual = g.solve(&BpOptions {
        max_iterations: 200,
        schedule: BpSchedule::Residual,
        ..BpOptions::default()
    });
    for &x in &xs {
        let (pr, pe) = (residual.prob(x), exact.prob(x));
        assert!((pr - pe).abs() < 0.1, "{x}: residual={pr} exact={pe}");
        assert!(pr > 0.5, "{x} leans true");
    }
}

#[test]
fn residual_uses_fewer_updates_than_sweep_on_loopy_graphs() {
    // A long cycle with sparse evidence: the sweep schedule keeps touching
    // every message each round while information crawls around the loop.
    let mut g = FactorGraph::new();
    let n = 40;
    let xs: Vec<_> = (0..n).map(|i| g.add_var(format!("c{i}"))).collect();
    g.add_factor(Factor::unary(xs[0], 0.95));
    for i in 0..n {
        let (a, b) = (xs[i], xs[(i + 1) % n]);
        g.add_factor(Factor::soft(vec![a, b], 0.9, |v| v[0] == v[1]));
    }
    let opts =
        BpOptions { max_iterations: 400, tolerance: 1e-6, damping: 0.0, ..Default::default() };
    let sweep = g.solve(&opts);
    let residual = g.solve(&BpOptions { schedule: BpSchedule::Residual, ..opts });
    assert!(sweep.converged && residual.converged);
    assert!(
        residual.updates < sweep.updates,
        "residual should need fewer updates: {} vs {}",
        residual.updates,
        sweep.updates
    );
    for &x in &xs {
        assert!((residual.prob(x) - sweep.prob(x)).abs() < 1e-4, "{x}");
    }
}
