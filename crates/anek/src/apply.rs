//! The spec applier (the paper's "Eclipse Applier", §4.1, Figure 10).
//!
//! Walks the program AST and attaches inferred specifications as `@Perm`
//! annotations to methods that have none, then pretty-prints the result —
//! producing the annotated program a PLURAL user would see in their IDE.

use analysis::types::MethodId;
use java_syntax::ast::{CompilationUnit, Member};
use java_syntax::print_unit;
use spec_lang::{spec_of_method, spec_to_annotations, MethodSpec};
use std::collections::BTreeMap;

/// Applies `specs` to copies of `units`: every method that lacks a
/// hand-written `@Perm`/`@Spec` and has a non-empty inferred spec gains the
/// corresponding annotations. Returns the annotated ASTs and how many
/// methods were annotated.
pub fn apply_specs(
    units: &[CompilationUnit],
    specs: &BTreeMap<MethodId, MethodSpec>,
) -> (Vec<CompilationUnit>, usize) {
    let mut out = Vec::with_capacity(units.len());
    let mut applied = 0usize;
    for unit in units {
        let mut unit = unit.clone();
        for t in &mut unit.types {
            let class = t.name.clone();
            for m in &mut t.members {
                let Member::Method(md) = m else { continue };
                let existing = spec_of_method(md).unwrap_or_default();
                if !existing.is_empty() {
                    continue;
                }
                let id = MethodId::new(&class, &md.name);
                if let Some(spec) = specs.get(&id) {
                    if !spec.is_empty() {
                        md.annotations.extend(spec_to_annotations(spec));
                        applied += 1;
                    }
                }
            }
        }
        out.push(unit);
    }
    (out, applied)
}

/// Pretty-prints annotated units back to Java source.
pub fn render(units: &[CompilationUnit]) -> String {
    let mut s = String::new();
    for u in units {
        s.push_str(&print_unit(u));
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use java_syntax::parse;
    use spec_lang::parse_clause;

    fn spec(req: &str, ens: &str) -> MethodSpec {
        MethodSpec {
            requires: parse_clause(req).unwrap(),
            ensures: parse_clause(ens).unwrap(),
            true_indicates: None,
            false_indicates: None,
        }
    }

    #[test]
    fn applies_to_unannotated_methods_only() {
        let unit = parse(
            r#"class C {
                @Perm(requires = "pure(this)")
                void annotated() { }
                void plain(Iterator<Integer> it) { }
            }"#,
        )
        .unwrap();
        let mut specs = BTreeMap::new();
        specs.insert(MethodId::new("C", "annotated"), spec("full(this)", ""));
        specs.insert(MethodId::new("C", "plain"), spec("full(it) in HASNEXT", "full(it)"));
        let (annotated, applied) = apply_specs(&[unit], &specs);
        assert_eq!(applied, 1);
        let rendered = render(&annotated);
        // The hand annotation survives untouched…
        assert!(rendered.contains("requires = \"pure(this)\""));
        // …and plain() gained the inferred one.
        assert!(rendered.contains("requires = \"full(it) in HASNEXT\""), "{rendered}");
    }

    #[test]
    fn applied_source_reparses_with_specs() {
        let unit = parse("class C { void m(Iterator<Integer> it) { it.next(); } }").unwrap();
        let mut specs = BTreeMap::new();
        specs.insert(MethodId::new("C", "m"), spec("full(it) in HASNEXT", "full(it)"));
        let (annotated, _) = apply_specs(&[unit], &specs);
        let reparsed = parse(&render(&annotated)).unwrap();
        let m = reparsed.type_named("C").unwrap().method_named("m").unwrap();
        let round = spec_of_method(m).unwrap();
        assert_eq!(round.requires.to_string(), "full(it) in HASNEXT");
    }

    #[test]
    fn empty_specs_change_nothing() {
        let unit = parse("class C { void m() { } }").unwrap();
        let before = render(std::slice::from_ref(&unit));
        let (annotated, applied) = apply_specs(&[unit], &BTreeMap::new());
        assert_eq!(applied, 0);
        assert_eq!(render(&annotated), before);
    }
}
