//! The `anek serve` inference daemon: a multi-tenant, long-running server
//! answering line-delimited JSON requests with millisecond-scale latency.
//!
//! ## Protocol (one JSON object per line, in and out)
//!
//! ```text
//! → {"id":1,"method":"load_sources","params":{"sources":[{"name":"A.java","text":"..."}]}}
//! ← {"id":1,"result":{"loaded":1,"skipped":[],"methods":3,"solves":5,"memo_hits":0,"memo_misses":5}}
//! → {"id":2,"method":"query_spec","params":{"session":"alice","method":"A.m","deadline_ms":250}}
//! ← {"id":2,"result":{"method":"A.m","requires":"...","ensures":"...","confidence":0.97}}
//! ```
//!
//! Requests: `load_sources`, `update_source`, `query_spec`,
//! `query_outcomes`, `inject_faults`, `stats`, `open_session`,
//! `close_session`, `server_stats`, `shutdown`. Every request may carry
//! `params.session` (default `"default"`) and `params.deadline_ms`.
//! Responses carry either `result` or `error`; structured errors add a
//! `code` (`overloaded`, `deadline`, `too_large`, `shutting_down`) and
//! `overloaded` adds `retry_after_ms`. No response contains wall-clock
//! times, so a scripted session's transcript is byte-stable (the CI golden
//! gates rely on this).
//!
//! ## Architecture
//!
//! - [`session`] — one workspace: sources, config, last result.
//! - [`registry`] — named sessions sharing one process and one store, with
//!   LRU eviction of heavyweight state under a memory budget.
//! - [`scheduler`] — per-session FIFO queues, a global admission cap,
//!   coalescing of stacked edits, and ordered per-client delivery.
//! - [`shed`] — the three-tier overload policy (full → screen → reject).
//! - [`server`] — the worker pool and the in-process [`Client`] handle.
//!
//! Fault tolerance: per-method solve faults (including injected panics)
//! are isolated by the worklist, so a failing method surfaces in
//! `query_outcomes` as `failed` while the daemon keeps serving; `shutdown`
//! drains gracefully — everything already queued is answered first.

pub mod registry;
pub mod scheduler;
pub mod server;
pub mod session;
pub mod shed;

pub use registry::{SessionRegistry, SessionSlot};
pub use scheduler::{Admission, Outbox, SchedCounters, Scheduler};
pub use server::{Client, SendStatus, Server, ServerOptions};
pub use session::{Handled, RequestCtx, ServeSession};
pub use shed::{ShedPolicy, ShedTier};

use crate::json::Json;

/// Renders the classic error response: `{"id":…,"error":{"message":…}}`.
/// The shape predates error codes and is pinned by the golden transcript.
pub(crate) fn error_response(id: Json, message: &str) -> String {
    Json::Obj(vec![
        ("id".into(), id),
        ("error".into(), Json::Obj(vec![("message".into(), Json::str(message))])),
    ])
    .to_string()
}

/// Renders a structured error response:
/// `{"id":…,"error":{"message":…,"code":…,…extra}}`.
pub(crate) fn error_coded(id: Json, code: &str, message: &str, extra: &[(String, Json)]) -> String {
    let mut fields = vec![("message".into(), Json::str(message)), ("code".into(), Json::str(code))];
    fields.extend(extra.iter().cloned());
    Json::Obj(vec![("id".into(), id), ("error".into(), Json::Obj(fields))]).to_string()
}
