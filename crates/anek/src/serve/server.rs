//! The multi-tenant serve front end: worker threads executing scheduled
//! requests against the session registry, plus the in-process [`Client`]
//! handle the transports (stdio, unix socket, bench) talk through.
//!
//! ## Determinism
//!
//! Any single session's responses are byte-identical to driving a
//! [`ServeSession`](super::session::ServeSession) serially with the same
//! requests, at any worker count: the scheduler runs at most one request
//! of a session at a time in enqueue order, and each client's [`Outbox`]
//! releases responses in request order. Concurrency across sessions (and
//! the shared store underneath) affects only latency.

use anek_core::InferConfig;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use store::Store;

use super::registry::SessionRegistry;
use super::scheduler::{Admission, Dispatch, Outbox, Queued, RequestMeta, Scheduler};
use super::session::RequestCtx;
use super::shed::{ShedPolicy, ShedTier};
use super::{error_coded, error_response};
use crate::json::{self, Json};

/// Tuning knobs of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Worker threads executing requests. Any value ≥ 1 yields the same
    /// per-session transcripts (see the module docs).
    pub workers: usize,
    /// The three-tier load-shedding policy.
    pub policy: ShedPolicy,
    /// Byte budget across all sessions' heavyweight state; `0` = unlimited.
    pub memory_budget_bytes: usize,
    /// Requests longer than this many bytes are refused with a structured
    /// `too_large` error instead of being read.
    pub max_request_bytes: usize,
}

impl Default for ServerOptions {
    fn default() -> ServerOptions {
        ServerOptions {
            workers: 2,
            policy: ShedPolicy::default(),
            memory_budget_bytes: 0,
            max_request_bytes: 16 * 1024 * 1024,
        }
    }
}

/// Shared state behind the worker threads and every client handle.
struct ServerInner {
    registry: SessionRegistry,
    sched: Scheduler,
    store: Option<Arc<Store>>,
    opts: ServerOptions,
    clients: Mutex<Vec<Arc<Outbox>>>,
}

/// A running multi-session server (see the module docs).
pub struct Server {
    inner: Arc<ServerInner>,
    workers: Vec<JoinHandle<()>>,
}

/// What [`Client::send`] did with the request. Every variant leaves
/// exactly one response in the outbox pipeline, so transports can ignore
/// this; the load generator uses it to react to backpressure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendStatus {
    /// Admitted; the response will arrive once the request executes.
    Queued,
    /// Refused at admission (tier 3); the `overloaded` error response is
    /// already in the outbox.
    Rejected {
        /// The back-off hint the refusal carried.
        retry_after_ms: u64,
    },
    /// Answered without scheduling (parse error, oversized request, or
    /// shutdown refusal); the response is already in the outbox.
    Answered,
}

impl Server {
    /// Starts the worker pool over a fresh registry.
    pub fn start(config: InferConfig, store: Option<Arc<Store>>, opts: ServerOptions) -> Server {
        let inner = Arc::new(ServerInner {
            registry: SessionRegistry::new(config, store.clone(), opts.memory_budget_bytes),
            sched: Scheduler::new(opts.policy),
            store,
            opts: opts.clone(),
            clients: Mutex::new(Vec::new()),
        });
        let workers = (0..opts.workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("anek-serve-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn serve worker")
            })
            .collect();
        Server { inner, workers }
    }

    /// Opens an in-process client with its own ordered response stream.
    pub fn connect(&self) -> Client {
        let outbox = Arc::new(Outbox::new());
        self.inner.clients.lock().unwrap().push(Arc::clone(&outbox));
        Client { inner: Arc::clone(&self.inner), outbox, sent: 0 }
    }

    /// The scheduler (hold/release hook and traffic counters).
    pub fn scheduler(&self) -> &Scheduler {
        &self.inner.sched
    }

    /// The session registry.
    pub fn registry(&self) -> &SessionRegistry {
        &self.inner.registry
    }

    /// Whether a `shutdown` request has completed the drain.
    pub fn stopped(&self) -> bool {
        self.inner.sched.stopped()
    }

    /// Blocks until the graceful drain completes (after some client sent
    /// `shutdown`), joins the workers, and hangs up every outbox so
    /// transport writer loops terminate.
    pub fn join(self) {
        self.inner.sched.wait_stopped();
        for w in self.workers {
            let _ = w.join();
        }
        for outbox in self.inner.clients.lock().unwrap().drain(..) {
            outbox.hangup();
        }
    }

    /// Moves the join to a background thread: once a `shutdown` drain
    /// completes, workers are joined and every outbox is hung up. Use when
    /// the calling thread must keep pumping a transport.
    pub fn detach(self) {
        std::thread::spawn(move || self.join());
    }
}

/// One client's ordered request/response pipe into a [`Server`].
pub struct Client {
    inner: Arc<ServerInner>,
    outbox: Arc<Outbox>,
    sent: u64,
}

impl Client {
    /// Submits one request line. Always produces exactly one response in
    /// the outbox (possibly immediately, for refusals and parse errors).
    pub fn send(&mut self, line: &str) -> SendStatus {
        let seq = self.sent;
        self.sent += 1;
        if line.len() > self.inner.opts.max_request_bytes {
            let message = format!(
                "request of {} bytes exceeds max_request_bytes ({})",
                line.len(),
                self.inner.opts.max_request_bytes
            );
            self.outbox.push(seq, error_coded(Json::Null, "too_large", &message, &[]));
            return SendStatus::Answered;
        }
        let request = match json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                self.outbox.push(seq, error_response(Json::Null, &format!("bad request: {e}")));
                return SendStatus::Answered;
            }
        };
        let id = request.get("id").cloned().unwrap_or(Json::Null);
        let method = request.get("method").and_then(Json::as_str).unwrap_or("").to_string();
        let params = request.get("params").cloned().unwrap_or(Json::Obj(Vec::new()));
        let session = params.get("session").and_then(Json::as_str).unwrap_or("default").to_string();
        let deadline = params
            .get("deadline_ms")
            .and_then(Json::as_num)
            .filter(|ms| *ms >= 0.0)
            .map(|ms| Instant::now() + Duration::from_millis(ms as u64));
        let meta = RequestMeta { id, method, params, session, deadline };
        let queued = Queued { meta, outbox: Arc::clone(&self.outbox), seq };
        match self.inner.sched.enqueue(queued) {
            Admission::Queued => SendStatus::Queued,
            Admission::Rejected => {
                SendStatus::Rejected { retry_after_ms: self.inner.sched.policy.retry_after_ms }
            }
            Admission::ShuttingDown => SendStatus::Answered,
        }
    }

    /// Blocks for the next in-order response; `None` once the stream is
    /// complete. The instant is when the response became ready.
    pub fn recv(&self) -> Option<(String, Instant)> {
        self.outbox.pop()
    }

    /// Refuses a request the transport's bounded reader discarded for
    /// exceeding `max_request_bytes` (the content is gone, so this takes
    /// only the observed size).
    pub fn send_oversized(&mut self, actual_bytes: usize) -> SendStatus {
        let seq = self.sent;
        self.sent += 1;
        let message = format!(
            "request of {} bytes exceeds max_request_bytes ({})",
            actual_bytes, self.inner.opts.max_request_bytes
        );
        self.outbox.push(seq, error_coded(Json::Null, "too_large", &message, &[]));
        SendStatus::Answered
    }

    /// The ordered response stream, shareable with a transport writer loop
    /// while another thread keeps calling [`Client::send`].
    pub fn responses(&self) -> Arc<Outbox> {
        Arc::clone(&self.outbox)
    }

    /// Declares the request stream finished: after the last pending
    /// response, [`Client::recv`] returns `None`.
    pub fn close(&self) {
        self.outbox.close(self.sent);
    }
}

fn worker_loop(inner: &ServerInner) {
    while let Dispatch::Run(item, tier) = inner.sched.next() {
        let session = item.meta.session.clone();
        let line = execute(inner, item.meta, tier);
        item.outbox.push(item.seq, line);
        inner.sched.finish(&session);
    }
}

/// Executes one scheduled request and renders its response line.
fn execute(inner: &ServerInner, meta: RequestMeta, tier: ShedTier) -> String {
    if let Some(deadline) = meta.deadline {
        if Instant::now() >= deadline {
            inner.sched.counters.deadline_cancelled.fetch_add(1, Ordering::Relaxed);
            return error_coded(meta.id, "deadline", "deadline expired before execution", &[]);
        }
    }
    match meta.method.as_str() {
        "open_session" => {
            let (_, created) = inner.registry.open(&meta.session);
            let result = Json::Obj(vec![
                ("session".into(), Json::str(&meta.session)),
                ("created".into(), Json::Bool(created)),
            ]);
            Json::Obj(vec![("id".into(), meta.id), ("result".into(), result)]).to_string()
        }
        "close_session" => {
            let closed = inner.registry.close(&meta.session);
            let result = Json::Obj(vec![
                ("session".into(), Json::str(&meta.session)),
                ("closed".into(), Json::Bool(closed)),
            ]);
            Json::Obj(vec![("id".into(), meta.id), ("result".into(), result)]).to_string()
        }
        "server_stats" => {
            let result = server_stats(inner);
            Json::Obj(vec![("id".into(), meta.id), ("result".into(), result)]).to_string()
        }
        "shutdown" => {
            if let Some(store) = &inner.store {
                let _ = store.flush();
            }
            inner.sched.begin_drain();
            let result = Json::Obj(vec![("ok".into(), Json::Bool(true))]);
            Json::Obj(vec![("id".into(), meta.id), ("result".into(), result)]).to_string()
        }
        _ => {
            if tier == ShedTier::Screen {
                inner.sched.counters.shed_screen.fetch_add(1, Ordering::Relaxed);
            }
            let ctx = RequestCtx { deadline: meta.deadline, shed_screen: tier == ShedTier::Screen };
            inner
                .registry
                .with_session(&meta.session, |s| {
                    s.handle_request(meta.id, &meta.method, &meta.params, &ctx)
                })
                .response
        }
    }
}

fn server_stats(inner: &ServerInner) -> Json {
    let sessions = inner
        .registry
        .snapshot()
        .into_iter()
        .map(|(name, generation, resident)| {
            Json::Obj(vec![
                ("name".into(), Json::str(name)),
                ("generation".into(), Json::num(generation as usize)),
                ("resident_bytes".into(), Json::num(resident)),
            ])
        })
        .collect();
    let [admitted, completed, rejected, coalesced, shed_screen, deadline_cancelled, peak_depth] =
        inner.sched.counters.snapshot();
    Json::Obj(vec![
        ("sessions".into(), Json::Arr(sessions)),
        ("admitted".into(), Json::num(admitted as usize)),
        ("completed".into(), Json::num(completed as usize)),
        ("rejected".into(), Json::num(rejected as usize)),
        ("coalesced".into(), Json::num(coalesced as usize)),
        ("shed_screen".into(), Json::num(shed_screen as usize)),
        ("deadline_cancelled".into(), Json::num(deadline_cancelled as usize)),
        ("peak_depth".into(), Json::num(peak_depth as usize)),
        ("evictions".into(), Json::num(inner.registry.evictions.load(Ordering::Relaxed) as usize)),
        ("memory_budget_bytes".into(), Json::num(inner.registry.memory_budget_bytes)),
        ("resident_bytes".into(), Json::num(inner.registry.total_resident())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    const APP: &str =
        "class App { void drain(Iterator<Integer> it) { while (it.hasNext()) { it.next(); } } }";

    fn load_line(id: usize, session: Option<&str>) -> String {
        let session = session.map_or(String::new(), |s| format!("\"session\":\"{s}\","));
        format!(
            r#"{{"id":{id},"method":"load_sources","params":{{{session}"sources":[{{"name":"App.java","text":"{APP}"}}]}}}}"#
        )
    }

    #[test]
    fn concurrent_server_matches_serial_session_byte_for_byte() {
        let lines = [
            load_line(1, None),
            r#"{"id":2,"method":"query_spec","params":{"method":"App.drain"}}"#.to_string(),
            r#"{"id":3,"method":"query_outcomes"}"#.to_string(),
            r#"{"id":4,"method":"stats"}"#.to_string(),
        ];
        let mut serial = super::super::session::ServeSession::new(InferConfig::default(), None);
        let expected: Vec<String> = lines.iter().map(|l| serial.handle_line(l).response).collect();
        for workers in [1, 4] {
            let server = Server::start(
                InferConfig::default(),
                None,
                ServerOptions { workers, ..ServerOptions::default() },
            );
            let mut client = server.connect();
            for line in &lines {
                client.send(line);
            }
            client.close();
            let mut got = Vec::new();
            while let Some((line, _)) = client.recv() {
                got.push(line);
            }
            assert_eq!(got, expected, "workers={workers}");
        }
    }

    #[test]
    fn sessions_are_isolated_and_server_drains_on_shutdown() {
        let server = Server::start(InferConfig::default(), None, ServerOptions::default());
        let mut client = server.connect();
        client.send(&load_line(1, Some("a")));
        client.send(&load_line(2, Some("b")));
        // Panic-fault session a only.
        client.send(
            r#"{"id":3,"method":"inject_faults","params":{"session":"a","plan":"panic App.drain"}}"#,
        );
        client.send(r#"{"id":4,"method":"query_outcomes","params":{"session":"a"}}"#);
        client.send(r#"{"id":5,"method":"query_outcomes","params":{"session":"b"}}"#);
        client.send(r#"{"id":6,"method":"shutdown"}"#);
        client.close();
        let mut got = Vec::new();
        while let Some((line, _)) = client.recv() {
            got.push(line);
        }
        assert_eq!(got.len(), 6);
        assert!(got[3].contains("\"failed\""), "fault lands in a: {}", got[3]);
        assert!(!got[4].contains("\"failed\""), "b untouched: {}", got[4]);
        assert!(got[5].contains("\"ok\":true"), "{}", got[5]);
        server.join();
    }

    #[test]
    fn oversized_requests_get_a_structured_error() {
        let server = Server::start(
            InferConfig::default(),
            None,
            ServerOptions { max_request_bytes: 64, ..ServerOptions::default() },
        );
        let mut client = server.connect();
        let big =
            format!(r#"{{"id":1,"method":"stats","params":{{"pad":"{}"}}}}"#, "x".repeat(100));
        assert_eq!(client.send(&big), SendStatus::Answered);
        client.close();
        let (line, _) = client.recv().expect("error response");
        assert!(line.contains("\"code\":\"too_large\""), "{line}");
    }
}
