//! One serve workspace: a session that keeps parsed sources, the shared
//! store and the last inference result warm, and answers line-delimited
//! JSON requests with millisecond-scale latency. The multi-tenant server
//! (see [`super::server`]) runs many of these behind a scheduler; a single
//! session driven serially through [`ServeSession::handle_line`] is the
//! byte-stable reference the CI golden gate scripts.
//!
//! Protocol (one JSON object per line, in and out):
//!
//! ```text
//! → {"id":1,"method":"load_sources","params":{"sources":[{"name":"A.java","text":"..."}]}}
//! ← {"id":1,"result":{"loaded":1,"skipped":[],"methods":3,"solves":5,"memo_hits":0,"memo_misses":5}}
//! → {"id":2,"method":"query_spec","params":{"method":"A.m"}}
//! ← {"id":2,"result":{"method":"A.m","requires":"...","ensures":"...","confidence":0.97}}
//! ```
//!
//! Requests: `load_sources`, `update_source`, `query_spec`,
//! `query_outcomes`, `inject_faults`, `stats`, `shutdown`. Responses carry
//! either `result` or `error`; a malformed line gets `"id":null`. No
//! response contains wall-clock times, so a scripted session's transcript
//! is byte-stable (the CI golden gate relies on this).
//!
//! Fault tolerance: per-method solve faults (including injected panics)
//! are already isolated by the worklist, so a failing method surfaces in
//! `query_outcomes` as `failed` while the daemon keeps serving.

use super::error_response;
use crate::json::{self, Json};
use anek_core::{infer_with_store, InferCache, InferConfig, InferResult};
use java_syntax::ast::CompilationUnit;
use spec_lang::{standard_api, ApiRegistry};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;
use store::{DepIndex, Store, StoreStats};

/// Per-request execution context the scheduler hands a session: an
/// absolute deadline and whether the load shedder degraded this request to
/// a screening-only solve.
#[derive(Debug, Clone, Copy, Default)]
pub struct RequestCtx {
    /// Absolute wall-clock deadline for solves run by this request. A
    /// deadline-truncated run reports `Degraded{deadline-expired}` outcomes
    /// and is never recorded to the store.
    pub deadline: Option<Instant>,
    /// Force the bit-vector screening pre-pass on for this request's solve
    /// (shed tier 2). The session remembers it owes a full catch-up solve;
    /// the next query performs it.
    pub shed_screen: bool,
}

/// One serve session: sources, configuration, optional store, and the most
/// recent inference result.
pub struct ServeSession {
    api: ApiRegistry,
    /// The session's inference configuration (fault injections accumulate
    /// onto it via `inject_faults`).
    pub config: InferConfig,
    store: Option<Arc<Store>>,
    /// Named sources in deterministic (name) order.
    sources: BTreeMap<String, String>,
    /// Names that failed to parse in the last run.
    skipped: Vec<String>,
    result: Option<InferResult>,
    /// Reverse-call dependency index from the last run, used to report the
    /// dirty cone of an update.
    dep: DepIndex,
    /// Monotonic count of inference runs this session has performed. The
    /// registry mirrors it per slot for `server_stats`.
    pub generation: u64,
    /// A shed (screening-only) run left the cached result degraded; the
    /// next query must re-solve fully before answering.
    needs_full: bool,
}

/// What [`ServeSession::handle_line`] produced: the response line and
/// whether the peer asked the daemon to stop.
pub struct Handled {
    /// The serialized JSON response (no trailing newline).
    pub response: String,
    /// True after a `shutdown` request.
    pub shutdown: bool,
}

impl ServeSession {
    /// A fresh session with the standard API model.
    pub fn new(config: InferConfig, store: Option<Arc<Store>>) -> ServeSession {
        ServeSession {
            api: standard_api(),
            config,
            store,
            sources: BTreeMap::new(),
            skipped: Vec::new(),
            result: None,
            dep: DepIndex::default(),
            generation: 0,
            needs_full: false,
        }
    }

    /// Handles one request line serially (no deadline, no shedding) — the
    /// protocol path the golden transcript exercises byte-for-byte.
    pub fn handle_line(&mut self, line: &str) -> Handled {
        let request = match json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                return Handled {
                    response: error_response(Json::Null, &format!("bad request: {e}")),
                    shutdown: false,
                }
            }
        };
        let id = request.get("id").cloned().unwrap_or(Json::Null);
        let method = request.get("method").and_then(Json::as_str).unwrap_or("").to_string();
        let params = request.get("params").cloned().unwrap_or(Json::Obj(Vec::new()));
        self.handle_request(id, &method, &params, &RequestCtx::default())
    }

    /// Handles one parsed request under an execution context. With the
    /// default context this is exactly [`ServeSession::handle_line`] after
    /// parsing; a deadline or shed flag only ever *adds* response fields
    /// (`"deadline":true`, `"shed":"screen"`), so undegraded responses stay
    /// byte-identical to the serial protocol.
    pub fn handle_request(
        &mut self,
        id: Json,
        method: &str,
        params: &Json,
        ctx: &RequestCtx,
    ) -> Handled {
        let mut shutdown = false;
        let outcome = match method {
            "load_sources" => self.load_sources(params, ctx),
            "update_source" => self.update_source(params, ctx),
            "query_spec" => self.query_spec(params),
            "query_outcomes" => self.query_outcomes(),
            "inject_faults" => self.inject_faults(params, ctx),
            "stats" => Ok(self.stats()),
            "shutdown" => {
                shutdown = true;
                if let Some(store) = &self.store {
                    let _ = store.flush();
                }
                Ok(Json::Obj(vec![("ok".into(), Json::Bool(true))]))
            }
            "" => Err("request has no method".to_string()),
            other => Err(format!("unknown method `{other}`")),
        };
        let response = match outcome {
            Ok(mut result) => {
                if matches!(method, "load_sources" | "update_source" | "inject_faults") {
                    if let Json::Obj(fields) = &mut result {
                        if self.result.as_ref().is_some_and(|r| r.deadline_hit) {
                            fields.push(("deadline".into(), Json::Bool(true)));
                        }
                        if ctx.shed_screen {
                            fields.push(("shed".into(), Json::str("screen")));
                        }
                    }
                }
                Json::Obj(vec![("id".into(), id), ("result".into(), result)]).to_string()
            }
            Err(message) => error_response(id, &message),
        };
        Handled { response, shutdown }
    }

    /// Re-parses every source (leniently) and re-runs inference through the
    /// store. Returns counters shared by several responses.
    fn run_infer(&mut self, ctx: &RequestCtx) -> Json {
        let mut units: Vec<CompilationUnit> = Vec::new();
        self.skipped.clear();
        for (name, text) in &self.sources {
            match java_syntax::parse(text) {
                Ok(unit) => units.push(unit),
                Err(_) => self.skipped.push(name.clone()),
            }
        }
        let saved_screen = self.config.screen;
        self.config.screen = saved_screen || ctx.shed_screen;
        self.config.bp.deadline = ctx.deadline;
        let cache = self.store.as_deref().map(|s| s as &dyn InferCache);
        let result = infer_with_store(&units, &self.api, &self.config, cache);
        self.config.screen = saved_screen;
        self.config.bp.deadline = None;
        self.generation += 1;
        // A degraded run (shed to screening, or truncated by its deadline)
        // never records to the store — partial results must not poison the
        // shared cache — and a shed run marks the session as owing a full
        // catch-up before the next query answers.
        let degraded_run = ctx.shed_screen || result.deadline_hit;
        if let Some(store) = &self.store {
            if !degraded_run {
                let _ = store.record_run(&units, &self.api, &self.config, &result);
            }
        }
        if ctx.shed_screen {
            self.needs_full = true;
        } else if !result.deadline_hit {
            self.needs_full = false;
        }
        self.dep = DepIndex::default();
        for id in result.summaries.keys() {
            self.dep.class_methods.entry(id.class.clone()).or_default().insert(id.method.clone());
        }
        for (callee, callers) in &result.callers {
            self.dep.callers.insert(callee.clone(), callers.clone());
        }
        let counters = Json::Obj(vec![
            ("methods".into(), Json::num(result.summaries.len())),
            ("solves".into(), Json::num(result.solves)),
            ("memo_hits".into(), Json::num(result.memo_hits)),
            ("memo_misses".into(), Json::num(result.memo_misses)),
        ]);
        self.result = Some(result);
        counters
    }

    fn load_sources(&mut self, params: &Json, ctx: &RequestCtx) -> Result<Json, String> {
        let sources = params
            .get("sources")
            .and_then(Json::as_arr)
            .ok_or("load_sources needs params.sources: [{name, text}]")?;
        self.sources.clear();
        for entry in sources {
            let name = entry
                .get("name")
                .and_then(Json::as_str)
                .ok_or("each source needs a `name`")?
                .to_string();
            let text = entry
                .get("text")
                .and_then(Json::as_str)
                .ok_or("each source needs a `text`")?
                .to_string();
            self.sources.insert(name, text);
        }
        let counters = self.run_infer(ctx);
        let mut fields = vec![
            ("loaded".into(), Json::num(self.sources.len())),
            ("skipped".into(), Json::Arr(self.skipped.iter().map(Json::str).collect())),
        ];
        if let Json::Obj(c) = counters {
            fields.extend(c);
        }
        Ok(Json::Obj(fields))
    }

    fn update_source(&mut self, params: &Json, ctx: &RequestCtx) -> Result<Json, String> {
        let name = params
            .get("name")
            .and_then(Json::as_str)
            .ok_or("update_source needs params.name")?
            .to_string();
        let text = params
            .get("text")
            .and_then(Json::as_str)
            .ok_or("update_source needs params.text")?
            .to_string();
        if !self.sources.contains_key(&name) {
            return Err(format!("unknown source `{name}` (load_sources first)"));
        }
        // The dirty cone: methods declared in the old or new version of
        // this file, closed transitively over the previous run's reverse
        // call graph. Reported before re-running so the peer can see what
        // the edit *can* invalidate.
        let mut roots = Vec::new();
        for version in [self.sources.get(&name), Some(&text)].into_iter().flatten() {
            if let Ok(unit) = java_syntax::parse(version) {
                for t in &unit.types {
                    for m in self.dep.class_methods.get(&t.name).into_iter().flatten() {
                        roots.push(analysis::types::MethodId::new(&t.name, m));
                    }
                }
            }
        }
        let cone = self.dep.dirty_cone(roots);
        self.sources.insert(name, text);
        let counters = self.run_infer(ctx);
        let mut fields = vec![(
            "dirty".into(),
            Json::Arr(cone.iter().map(|id| Json::str(id.to_string())).collect()),
        )];
        if let Json::Obj(c) = counters {
            fields.extend(c);
        }
        Ok(Json::Obj(fields))
    }

    fn query_spec(&mut self, params: &Json) -> Result<Json, String> {
        self.ensure_full();
        let target =
            params.get("method").and_then(Json::as_str).ok_or("query_spec needs params.method")?;
        let (class, method) =
            target.split_once('.').ok_or("params.method must be `Class.method`")?;
        let id = analysis::types::MethodId::new(class, method);
        let result = self.result.as_ref().ok_or("no sources loaded")?;
        let spec = result.specs.get(&id).ok_or_else(|| format!("unknown method `{target}`"))?;
        let confidence = result.confidence.get(&id).copied().unwrap_or(1.0);
        Ok(Json::Obj(vec![
            ("method".into(), Json::str(target)),
            ("requires".into(), Json::str(spec.requires.to_string())),
            ("ensures".into(), Json::str(spec.ensures.to_string())),
            // Two decimals: enough to read, stable across float formatting.
            ("confidence".into(), Json::str(format!("{confidence:.2}"))),
        ]))
    }

    fn query_outcomes(&mut self) -> Result<Json, String> {
        self.ensure_full();
        let result = self.result.as_ref().ok_or("no sources loaded")?;
        let outcomes = result
            .outcomes
            .iter()
            .map(|(id, outcome)| {
                Json::Obj(vec![
                    ("method".into(), Json::str(id.to_string())),
                    ("status".into(), Json::str(outcome.status())),
                    ("detail".into(), Json::str(outcome.detail())),
                ])
            })
            .collect();
        Ok(Json::Obj(vec![
            ("skipped".into(), Json::Arr(self.skipped.iter().map(Json::str).collect())),
            ("outcomes".into(), Json::Arr(outcomes)),
        ]))
    }

    /// Re-solves fully when the cached result is missing (evicted) or was
    /// produced by a shed screening-only run. The content-addressed store
    /// makes the catch-up warm, so the rebuilt state is byte-identical to
    /// the state an unshedded serial run would hold.
    fn ensure_full(&mut self) {
        if (self.needs_full || self.result.is_none()) && !self.sources.is_empty() {
            self.run_infer(&RequestCtx::default());
        }
    }

    /// Drops the heavyweight state (last result + dependency index),
    /// keeping sources and configuration. The next query transparently
    /// rebuilds it via [`ServeSession::ensure_full`].
    pub fn evict_heavy(&mut self) {
        self.result = None;
        self.dep = DepIndex::default();
    }

    /// Coarse, deterministic estimate of this session's *evictable*
    /// heavyweight footprint in bytes — LRU bookkeeping for the registry's
    /// memory budget, not an allocator measurement. Zero after
    /// [`ServeSession::evict_heavy`] (unevictable sources and config are
    /// deliberately excluded, so the budget loop always terminates).
    pub fn resident_bytes(&self) -> usize {
        self.result.as_ref().map_or(0, |r| {
            let sources: usize = self.sources.iter().map(|(n, t)| n.len() + t.len()).sum();
            sources + r.summaries.len() * 4096
        })
    }

    fn inject_faults(&mut self, params: &Json, ctx: &RequestCtx) -> Result<Json, String> {
        let text =
            params.get("plan").and_then(Json::as_str).ok_or("inject_faults needs params.plan")?;
        let plan = corpus::FaultPlan::parse(text)?;
        plan.apply_config(&mut self.config);
        // Source-corruption faults garble the stored texts in name order —
        // the same deterministic streams `anek infer --inject` uses.
        let mut texts: Vec<String> = self.sources.values().cloned().collect();
        plan.apply_sources(&mut texts);
        for (slot, text) in self.sources.values_mut().zip(texts) {
            *slot = text;
        }
        let counters = self.run_infer(ctx);
        let failed: Vec<Json> = self
            .result
            .as_ref()
            .map(|r| {
                r.outcomes
                    .iter()
                    .filter(|(_, o)| o.is_failed())
                    .map(|(id, _)| Json::str(id.to_string()))
                    .collect()
            })
            .unwrap_or_default();
        let mut fields = vec![("failed".into(), Json::Arr(failed))];
        if let Json::Obj(c) = counters {
            fields.extend(c);
        }
        Ok(Json::Obj(fields))
    }

    fn stats(&self) -> Json {
        let mut fields = vec![
            ("sources".into(), Json::num(self.sources.len())),
            ("generation".into(), Json::num(self.generation as usize)),
            ("methods".into(), Json::num(self.result.as_ref().map_or(0, |r| r.summaries.len()))),
            ("memo_hits".into(), Json::num(self.result.as_ref().map_or(0, |r| r.memo_hits))),
            ("memo_misses".into(), Json::num(self.result.as_ref().map_or(0, |r| r.memo_misses))),
            (
                "discarded_solves".into(),
                Json::num(self.result.as_ref().map_or(0, |r| r.discarded_solves)),
            ),
            (
                "speculative_solves".into(),
                Json::num(self.result.as_ref().map_or(0, |r| r.speculative_solves)),
            ),
            (
                "commit_stall_ms".into(),
                Json::num(self.result.as_ref().map_or(0, |r| r.commit_stall.as_millis() as usize)),
            ),
            (
                "screened_methods".into(),
                Json::num(self.result.as_ref().map_or(0, |r| r.screened_methods)),
            ),
        ];
        let store_field = match &self.store {
            Some(store) => {
                let StoreStats {
                    solve_hits,
                    solve_misses,
                    pfg_hits,
                    pfg_misses,
                    corrupt_entries,
                    entries,
                    inserted,
                } = store.stats();
                Json::Obj(vec![
                    ("solve_hits".into(), Json::num(solve_hits)),
                    ("solve_misses".into(), Json::num(solve_misses)),
                    ("pfg_hits".into(), Json::num(pfg_hits)),
                    ("pfg_misses".into(), Json::num(pfg_misses)),
                    ("corrupt_entries".into(), Json::num(corrupt_entries)),
                    ("entries".into(), Json::num(entries)),
                    ("inserted".into(), Json::num(inserted)),
                ])
            }
            None => Json::Null,
        };
        fields.push(("store".into(), store_field));
        Json::Obj(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(session: &mut ServeSession, line: &str) -> Json {
        let handled = session.handle_line(line);
        json::parse(&handled.response).expect("response is valid JSON")
    }

    #[test]
    fn session_loads_queries_and_updates() {
        let mut s = ServeSession::new(InferConfig::default(), None);
        let loaded = req(
            &mut s,
            r#"{"id":1,"method":"load_sources","params":{"sources":[{"name":"App.java","text":"class App { void drain(Iterator<Integer> it) { while (it.hasNext()) { it.next(); } } }"}]}}"#,
        );
        let result = loaded.get("result").expect("result");
        assert_eq!(result.get("loaded").and_then(Json::as_num), Some(1.0));
        let spec = req(&mut s, r#"{"id":2,"method":"query_spec","params":{"method":"App.drain"}}"#);
        let requires = spec
            .get("result")
            .and_then(|r| r.get("requires"))
            .and_then(Json::as_str)
            .expect("requires");
        assert!(requires.contains("it"), "drain should require permission on `it`: {requires}");
        let updated = req(
            &mut s,
            r#"{"id":3,"method":"update_source","params":{"name":"App.java","text":"class App { void drain(Iterator<Integer> it) { it.next(); } }"}}"#,
        );
        let dirty = updated
            .get("result")
            .and_then(|r| r.get("dirty"))
            .and_then(Json::as_arr)
            .expect("dirty cone");
        assert_eq!(dirty.iter().filter_map(Json::as_str).collect::<Vec<_>>(), ["App.drain"]);
    }

    #[test]
    fn malformed_and_unknown_requests_answer_with_errors() {
        let mut s = ServeSession::new(InferConfig::default(), None);
        let bad = req(&mut s, "{nope");
        assert!(bad.get("error").is_some());
        let unknown = req(&mut s, r#"{"id":9,"method":"frobnicate"}"#);
        let msg = unknown
            .get("error")
            .and_then(|e| e.get("message"))
            .and_then(Json::as_str)
            .expect("message");
        assert!(msg.contains("frobnicate"));
        assert_eq!(unknown.get("id").and_then(Json::as_num), Some(9.0));
        let spec_too_early =
            req(&mut s, r#"{"id":10,"method":"query_spec","params":{"method":"A.m"}}"#);
        assert!(spec_too_early.get("error").is_some());
    }

    #[test]
    fn injected_panic_fails_method_but_session_survives() {
        let mut s = ServeSession::new(InferConfig::default(), None);
        req(
            &mut s,
            r#"{"id":1,"method":"load_sources","params":{"sources":[{"name":"App.java","text":"class App { void copy(Iterator<Integer> it) { it.next(); } void other(Iterator<Integer> it) { it.hasNext(); } }"}]}}"#,
        );
        let status_in = |response: &Json, m: &str| {
            response.get("result").and_then(|r| r.get("outcomes")).and_then(Json::as_arr).and_then(
                |table| {
                    table
                        .iter()
                        .find(|o| o.get("method").and_then(Json::as_str) == Some(m))
                        .and_then(|o| o.get("status"))
                        .and_then(Json::as_str)
                        .map(ToOwned::to_owned)
                },
            )
        };
        let before = req(&mut s, r#"{"id":8,"method":"query_outcomes"}"#);
        let other_before = status_in(&before, "App.other").expect("App.other outcome");
        assert_ne!(other_before, "failed");
        let injected =
            req(&mut s, r#"{"id":2,"method":"inject_faults","params":{"plan":"panic App.copy"}}"#);
        let failed = injected
            .get("result")
            .and_then(|r| r.get("failed"))
            .and_then(Json::as_arr)
            .expect("failed list");
        assert_eq!(failed.iter().filter_map(Json::as_str).collect::<Vec<_>>(), ["App.copy"]);
        let outcomes = req(&mut s, r#"{"id":3,"method":"query_outcomes"}"#);
        assert_eq!(status_in(&outcomes, "App.copy").as_deref(), Some("failed"));
        // Zero blast radius: the fault must not change App.other's outcome.
        assert_eq!(status_in(&outcomes, "App.other"), Some(other_before));
        let shutdown = s.handle_line(r#"{"id":4,"method":"shutdown"}"#);
        assert!(shutdown.shutdown);
    }

    #[test]
    fn stats_reports_speculation_counters() {
        // Lift the worker clamp so the 4-thread session really speculates
        // even on a single-core test runner.
        std::env::set_var("ANEK_OVERSUBSCRIBE", "1");
        let mut s = ServeSession::new(InferConfig { threads: 4, ..InferConfig::default() }, None);
        req(
            &mut s,
            r#"{"id":1,"method":"load_sources","params":{"sources":[{"name":"App.java","text":"class App { void copy(Iterator<Integer> it) { it.next(); } void other(Iterator<Integer> it) { it.hasNext(); } }"}]}}"#,
        );
        let stats = req(&mut s, r#"{"id":2,"method":"stats"}"#);
        let result = stats.get("result").expect("result").clone();
        let num = |k: &str| result.get(k).and_then(Json::as_num).unwrap_or_else(|| panic!("{k}"));
        // Two independent methods form one generation, so every worklist
        // pass speculates both under 4 threads. The stall clock is
        // wall-time — only its presence and non-negativity are stable
        // enough to assert.
        assert!(num("speculative_solves") >= 2.0, "expected speculation, got {stats}");
        assert!(num("discarded_solves") <= num("speculative_solves"));
        assert!(num("commit_stall_ms") >= 0.0);
    }
}
