//! The three-tier load-shedding policy of the multi-session server.
//!
//! Overload is a function of *queue depth*, not wall-clock: the scheduler
//! consults the policy with the number of requests waiting to run and gets
//! back a tier. The tiers degrade through the same `Ok < Degraded < Failed`
//! lattice the per-method outcomes use — the server never falls over, it
//! answers less precisely:
//!
//! 1. **Full** — normal operation: every solve runs the configured
//!    inference.
//! 2. **Screen** — the queue is deep: solving requests run with the
//!    bit-vector screening pre-pass forced on, which skips BP entirely for
//!    provably-clean isolated methods. The session remembers that it owes a
//!    full catch-up solve; the next `query_spec`/`query_outcomes` performs
//!    it, so *final* per-session state is byte-identical to an unshedded
//!    serial run (the content-addressed store makes the catch-up warm).
//! 3. **Reject** — the queue is full: new solving requests are refused at
//!    admission with a structured `overloaded` error carrying
//!    `retry_after_ms`. Nothing is dropped silently.
//!
//! Queries, stats and control requests are never shed — an overloaded
//! server must stay observable.

/// What the scheduler does with a solving request at the current depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedTier {
    /// Normal operation: run the full configured inference.
    Full,
    /// Degraded: force the screening pre-pass on for this solve.
    Screen,
    /// Refuse at admission with `retry_after_ms`.
    Reject,
}

/// Depth thresholds of the three tiers (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShedPolicy {
    /// Queued solving requests at or above which solves run screening-only.
    pub screen_depth: usize,
    /// Queued solving requests at or above which new solving requests are
    /// rejected at admission (the global admission cap).
    pub reject_depth: usize,
    /// The back-off hint attached to `overloaded` rejections.
    pub retry_after_ms: u64,
}

impl Default for ShedPolicy {
    fn default() -> ShedPolicy {
        ShedPolicy { screen_depth: 32, reject_depth: 256, retry_after_ms: 50 }
    }
}

impl ShedPolicy {
    /// The tier for a solving request when `depth` requests are queued.
    pub fn tier(&self, depth: usize) -> ShedTier {
        if depth >= self.reject_depth {
            ShedTier::Reject
        } else if depth >= self.screen_depth {
            ShedTier::Screen
        } else {
            ShedTier::Full
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_partition_the_depth_axis() {
        let p = ShedPolicy { screen_depth: 4, reject_depth: 8, retry_after_ms: 10 };
        assert_eq!(p.tier(0), ShedTier::Full);
        assert_eq!(p.tier(3), ShedTier::Full);
        assert_eq!(p.tier(4), ShedTier::Screen);
        assert_eq!(p.tier(7), ShedTier::Screen);
        assert_eq!(p.tier(8), ShedTier::Reject);
        assert_eq!(p.tier(1000), ShedTier::Reject);
    }

    #[test]
    fn degenerate_zero_cap_rejects_everything() {
        let p = ShedPolicy { screen_depth: 0, reject_depth: 0, retry_after_ms: 1 };
        assert_eq!(p.tier(0), ShedTier::Reject);
    }
}
