//! The session registry: many named workspaces sharing one server process
//! and one content-addressed store.
//!
//! Each session owns its sources, configuration and last inference result;
//! all sessions share the `Arc<Store>`, so a solve paid for by one tenant
//! warms every other tenant with the same code. Under a configurable
//! memory budget the registry evicts the *heavyweight* state (last result +
//! dependency index) of least-recently-used sessions — sources and
//! configuration are kept, so the next query transparently re-solves, and
//! because every re-solve replays warm store records the rebuilt state is
//! byte-identical to the evicted one.

use anek_core::InferConfig;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use store::Store;

use super::session::ServeSession;

/// One registered session plus the bookkeeping the registry reads without
/// taking the session lock.
pub struct SessionSlot {
    /// The session name (registry key).
    pub name: String,
    /// The session itself. Locked for the duration of each request.
    pub session: Mutex<ServeSession>,
    /// Mirror of the session's generation counter (bumped per inference
    /// run), readable without the session lock.
    pub generation: AtomicU64,
    /// Mirror of the session's coarse resident-size estimate in bytes.
    pub resident: AtomicUsize,
    /// LRU clock tick of the last completed request.
    pub last_used: AtomicU64,
}

/// The multi-tenant session table (see the module docs).
pub struct SessionRegistry {
    slots: Mutex<BTreeMap<String, Arc<SessionSlot>>>,
    base_config: InferConfig,
    store: Option<Arc<Store>>,
    /// Byte budget for the sum of all sessions' resident estimates;
    /// `0` disables eviction.
    pub memory_budget_bytes: usize,
    clock: AtomicU64,
    /// How many heavyweight evictions the budget has forced.
    pub evictions: AtomicU64,
}

impl SessionRegistry {
    /// A registry whose sessions start from `base_config` and share `store`.
    pub fn new(
        base_config: InferConfig,
        store: Option<Arc<Store>>,
        memory_budget_bytes: usize,
    ) -> SessionRegistry {
        SessionRegistry {
            slots: Mutex::new(BTreeMap::new()),
            base_config,
            store,
            memory_budget_bytes,
            clock: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Fetches the named session, creating it on first use. Returns the
    /// slot and whether this call created it.
    pub fn open(&self, name: &str) -> (Arc<SessionSlot>, bool) {
        let mut slots = self.slots.lock().unwrap();
        if let Some(slot) = slots.get(name) {
            return (Arc::clone(slot), false);
        }
        let slot = Arc::new(SessionSlot {
            name: name.to_string(),
            session: Mutex::new(ServeSession::new(self.base_config.clone(), self.store.clone())),
            generation: AtomicU64::new(0),
            resident: AtomicUsize::new(0),
            last_used: AtomicU64::new(0),
        });
        slots.insert(name.to_string(), Arc::clone(&slot));
        (slot, true)
    }

    /// Removes the named session entirely. Returns whether it existed.
    pub fn close(&self, name: &str) -> bool {
        self.slots.lock().unwrap().remove(name).is_some()
    }

    /// Runs `f` under the named session's lock (creating the session on
    /// first use), then refreshes the slot mirrors, stamps the LRU clock
    /// and enforces the memory budget.
    pub fn with_session<T>(&self, name: &str, f: impl FnOnce(&mut ServeSession) -> T) -> T {
        let (slot, _) = self.open(name);
        let out = {
            let mut session = slot.session.lock().unwrap();
            let out = f(&mut session);
            slot.generation.store(session.generation, Ordering::Relaxed);
            slot.resident.store(session.resident_bytes(), Ordering::Relaxed);
            out
        };
        slot.last_used.store(self.clock.fetch_add(1, Ordering::Relaxed) + 1, Ordering::Relaxed);
        self.enforce_budget();
        out
    }

    /// Session names in deterministic order.
    pub fn names(&self) -> Vec<String> {
        self.slots.lock().unwrap().keys().cloned().collect()
    }

    /// Snapshot of (name, generation, resident bytes) per session.
    pub fn snapshot(&self) -> Vec<(String, u64, usize)> {
        self.slots
            .lock()
            .unwrap()
            .values()
            .map(|s| {
                (
                    s.name.clone(),
                    s.generation.load(Ordering::Relaxed),
                    s.resident.load(Ordering::Relaxed),
                )
            })
            .collect()
    }

    /// Sum of the per-session resident estimates.
    pub fn total_resident(&self) -> usize {
        self.slots.lock().unwrap().values().map(|s| s.resident.load(Ordering::Relaxed)).sum()
    }

    /// Evicts heavyweight state from least-recently-used sessions until the
    /// total resident estimate fits the budget. The most-recently-used
    /// session and sessions whose lock is currently held are skipped, so a
    /// request in flight never loses its own state.
    fn enforce_budget(&self) {
        if self.memory_budget_bytes == 0 {
            return;
        }
        loop {
            let candidates: Vec<Arc<SessionSlot>> = {
                let slots = self.slots.lock().unwrap();
                let total: usize = slots.values().map(|s| s.resident.load(Ordering::Relaxed)).sum();
                if total <= self.memory_budget_bytes {
                    return;
                }
                let newest =
                    slots.values().map(|s| s.last_used.load(Ordering::Relaxed)).max().unwrap_or(0);
                let mut by_age: Vec<Arc<SessionSlot>> = slots
                    .values()
                    .filter(|s| {
                        s.resident.load(Ordering::Relaxed) > 0
                            && s.last_used.load(Ordering::Relaxed) != newest
                    })
                    .cloned()
                    .collect();
                by_age.sort_by_key(|s| s.last_used.load(Ordering::Relaxed));
                by_age
            };
            let mut evicted = false;
            for slot in candidates {
                if let Ok(mut session) = slot.session.try_lock() {
                    session.evict_heavy();
                    slot.resident.store(session.resident_bytes(), Ordering::Relaxed);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    evicted = true;
                    break;
                }
            }
            if !evicted {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(reg: &SessionRegistry, name: &str) {
        reg.with_session(name, |s| {
            s.handle_line(
                r#"{"id":1,"method":"load_sources","params":{"sources":[{"name":"App.java","text":"class App { void drain(Iterator<Integer> it) { while (it.hasNext()) { it.next(); } } }"}]}}"#,
            )
        });
    }

    #[test]
    fn sessions_are_created_on_first_use_and_closable() {
        let reg = SessionRegistry::new(InferConfig::default(), None, 0);
        let (_, created) = reg.open("a");
        assert!(created);
        let (_, created_again) = reg.open("a");
        assert!(!created_again);
        assert_eq!(reg.names(), ["a"]);
        assert!(reg.close("a"));
        assert!(!reg.close("a"));
        assert!(reg.names().is_empty());
    }

    #[test]
    fn budget_evicts_the_least_recently_used_heavy_session() {
        // A budget of one byte cannot hold two loaded sessions; the older
        // one loses its heavyweight state, the newest keeps it.
        let reg = SessionRegistry::new(InferConfig::default(), None, 1);
        load(&reg, "old");
        load(&reg, "new");
        assert!(reg.evictions.load(Ordering::Relaxed) >= 1);
        let snap = reg.snapshot();
        let resident =
            |name: &str| snap.iter().find(|(n, _, _)| n == name).map(|&(_, _, r)| r).unwrap();
        assert!(resident("new") > resident("old"), "{snap:?}");
        // The evicted session still answers queries: it re-solves lazily.
        let line = reg.with_session("old", |s| {
            s.handle_line(r#"{"id":2,"method":"query_spec","params":{"method":"App.drain"}}"#)
                .response
        });
        assert!(line.contains("\"requires\""), "{line}");
    }
}
