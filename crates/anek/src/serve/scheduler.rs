//! The bounded request scheduler: per-session FIFO queues under a global
//! admission cap, with coalescing of stacked edits and ordered per-client
//! response delivery.
//!
//! ## Invariants
//!
//! - **Per-session FIFO**: at most one request of a session runs at a time,
//!   and requests of a session start in exactly their enqueue order. All
//!   cross-session interleaving affects only latency, never any session's
//!   final state.
//! - **Every request is answered exactly once** — executed, coalesced
//!   (`{"superseded": true}`), rejected (`overloaded` + `retry_after_ms`),
//!   cancelled (`deadline`), or drained at shutdown (`shutting_down`).
//! - **Per-client responses deliver in request order**: workers finish out
//!   of order across sessions, but each response is released through the
//!   client's [`Outbox`] only after every earlier response of that client —
//!   a scripted transcript is byte-stable no matter how many workers run.
//! - **Coalescing**: a queued-but-not-started `update_source` for the same
//!   session and source as a newly enqueued one is superseded — removed
//!   from the queue and answered immediately. Only the newest edit's dirty
//!   cone is ever solved. Because a session's inference state is a pure
//!   function of (sources, config) warmed by the shared store, skipping the
//!   intermediate solve cannot change any later answer.

use crate::json::Json;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use super::shed::{ShedPolicy, ShedTier};

/// The parsed envelope of one request.
#[derive(Debug, Clone)]
pub struct RequestMeta {
    /// The request `id`, echoed in the response.
    pub id: Json,
    /// The request method name.
    pub method: String,
    /// The request `params` object.
    pub params: Json,
    /// Target session name (`"default"` when the request names none).
    pub session: String,
    /// Absolute deadline derived from `deadline_ms`, if any.
    pub deadline: Option<Instant>,
}

/// A request waiting in (or running from) a session queue, bound to the
/// client outbox slot that must receive its answer.
pub(crate) struct Queued {
    pub meta: RequestMeta,
    pub outbox: std::sync::Arc<Outbox>,
    pub seq: u64,
}

/// Whether `method` performs model solves when it runs (the requests the
/// admission cap and shed tiers apply to). Queries, stats and control
/// requests are always admitted — an overloaded server stays observable.
pub fn is_solving(method: &str) -> bool {
    matches!(method, "load_sources" | "update_source" | "inject_faults")
}

/// Ordered response channel of one client.
///
/// Workers push responses tagged with the request's per-client sequence
/// number; the outbox releases them strictly in sequence order, parking
/// out-of-order completions until the gap fills. The transport (or an
/// in-process client) blocks on [`Outbox::pop`].
pub struct Outbox {
    inner: Mutex<OutboxInner>,
    cv: Condvar,
}

struct OutboxInner {
    /// Completions that arrived ahead of their turn: seq → (line, at).
    parked: BTreeMap<u64, (String, Instant)>,
    /// Released lines not yet popped.
    ready: VecDeque<(String, Instant)>,
    /// Next sequence number to release.
    next: u64,
    /// Total requests the client will ever send (set by `close`); once
    /// `next` reaches it and `ready` drains, `pop` returns `None`.
    total: Option<u64>,
    /// Server went away (shutdown): `pop` drains `ready` then ends.
    hangup: bool,
}

impl Outbox {
    pub(crate) fn new() -> Outbox {
        Outbox {
            inner: Mutex::new(OutboxInner {
                parked: BTreeMap::new(),
                ready: VecDeque::new(),
                next: 0,
                total: None,
                hangup: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Delivers the response for request `seq`, releasing it (and any
    /// parked successors) once every earlier response has been delivered.
    pub(crate) fn push(&self, seq: u64, line: String) {
        let mut g = self.inner.lock().unwrap();
        g.parked.insert(seq, (line, Instant::now()));
        while let Some(entry) = {
            let next = g.next;
            g.parked.remove(&next)
        } {
            g.ready.push_back(entry);
            g.next += 1;
        }
        self.cv.notify_all();
    }

    /// Marks the sequence space complete: the client has sent `total`
    /// requests and will send no more.
    pub(crate) fn close(&self, total: u64) {
        let mut g = self.inner.lock().unwrap();
        g.total = Some(total);
        self.cv.notify_all();
    }

    /// Server-side hangup: release whatever is ready, then end the stream.
    pub(crate) fn hangup(&self) {
        let mut g = self.inner.lock().unwrap();
        g.hangup = true;
        self.cv.notify_all();
    }

    /// Blocks for the next in-order response; `None` when the stream is
    /// complete (client closed and fully drained, or server hangup). The
    /// instant is when the response became ready — latency measured against
    /// it excludes the consumer's own read delay.
    pub fn pop(&self) -> Option<(String, Instant)> {
        let mut g = self.inner.lock().unwrap();
        loop {
            if let Some(entry) = g.ready.pop_front() {
                return Some(entry);
            }
            if g.hangup || g.total.is_some_and(|t| g.next >= t) {
                return None;
            }
            g = self.cv.wait(g).unwrap();
        }
    }
}

/// Monotonic counters of scheduler traffic, exported via `server_stats`
/// and the load bench.
#[derive(Debug, Default)]
pub struct SchedCounters {
    /// Requests accepted into a session queue.
    pub admitted: AtomicU64,
    /// Requests whose execution completed (any response).
    pub completed: AtomicU64,
    /// Solving requests refused at admission (tier 3).
    pub rejected: AtomicU64,
    /// `update_source` requests superseded by a newer stacked edit to the
    /// same source (answered `{"superseded": true}` without running).
    pub coalesced: AtomicU64,
    /// Solving requests executed under the screening tier (tier 2).
    pub shed_screen: AtomicU64,
    /// Requests cancelled because their deadline passed before they ran.
    pub deadline_cancelled: AtomicU64,
    /// High-water mark of the global queue depth.
    pub peak_depth: AtomicU64,
}

impl SchedCounters {
    fn bump_peak(&self, depth: usize) {
        self.peak_depth.fetch_max(depth as u64, Ordering::Relaxed);
    }

    /// (admitted, completed, rejected, coalesced, shed_screen,
    /// deadline_cancelled, peak_depth) — one consistent-enough snapshot.
    pub fn snapshot(&self) -> [u64; 7] {
        [
            self.admitted.load(Ordering::Relaxed),
            self.completed.load(Ordering::Relaxed),
            self.rejected.load(Ordering::Relaxed),
            self.coalesced.load(Ordering::Relaxed),
            self.shed_screen.load(Ordering::Relaxed),
            self.deadline_cancelled.load(Ordering::Relaxed),
            self.peak_depth.load(Ordering::Relaxed),
        ]
    }
}

struct SessionQueue {
    fifo: VecDeque<Queued>,
    /// A worker is executing a request of this session right now.
    running: bool,
}

struct SchedState {
    queues: BTreeMap<String, SessionQueue>,
    /// Requests queued and not yet started, across all sessions.
    depth: usize,
    /// Requests currently executing.
    running: usize,
    /// `shutdown` was executed: no new admissions, queues drain, then stop.
    draining: bool,
    /// Drain complete: workers exit.
    stopped: bool,
    /// Test/bench hook: workers pause dequeuing while held, so a burst can
    /// be enqueued deterministically (guaranteed stacking → guaranteed
    /// coalescing/shed tiers, independent of worker speed).
    held: bool,
}

/// What [`Scheduler::next`] hands a worker.
pub(crate) enum Dispatch {
    /// Execute this request under this shed tier.
    Run(Queued, ShedTier),
    /// Drain finished; the worker exits.
    Exit,
}

/// Outcome of [`Scheduler::enqueue`], for callers (the load generator) that
/// want to react to backpressure without reading the outbox out of order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Queued; the response will arrive through the outbox.
    Queued,
    /// Refused at admission; an `overloaded` error response (with
    /// `retry_after_ms`) was pushed to the outbox.
    Rejected,
    /// The server is shutting down; a `shutting_down` error was pushed.
    ShuttingDown,
}

/// The bounded multi-session scheduler (see the module docs).
pub struct Scheduler {
    state: Mutex<SchedState>,
    /// Signaled when runnable work may exist (or the world changed).
    work: Condvar,
    /// Signaled when the drain may have completed.
    idle: Condvar,
    /// The shed policy consulted at admission and dispatch.
    pub policy: ShedPolicy,
    /// Traffic counters.
    pub counters: SchedCounters,
}

impl Scheduler {
    pub(crate) fn new(policy: ShedPolicy) -> Scheduler {
        Scheduler {
            state: Mutex::new(SchedState {
                queues: BTreeMap::new(),
                depth: 0,
                running: 0,
                draining: false,
                stopped: false,
                held: false,
            }),
            work: Condvar::new(),
            idle: Condvar::new(),
            policy,
            counters: SchedCounters::default(),
        }
    }

    /// Admits (or refuses) one request. Every path answers the request
    /// eventually: refusal paths push their error response here and now.
    pub(crate) fn enqueue(&self, q: Queued) -> Admission {
        let mut g = self.state.lock().unwrap();
        if g.draining || g.stopped {
            q.outbox.push(
                q.seq,
                super::error_coded(q.meta.id, "shutting_down", "server is shutting down", &[]),
            );
            return Admission::ShuttingDown;
        }
        let solving = is_solving(&q.meta.method);
        if solving && self.policy.tier(g.depth) == ShedTier::Reject {
            self.counters.rejected.fetch_add(1, Ordering::Relaxed);
            let retry = self.policy.retry_after_ms;
            q.outbox.push(
                q.seq,
                super::error_coded(
                    q.meta.id,
                    "overloaded",
                    "admission queue full",
                    &[("retry_after_ms".into(), Json::num(retry as usize))],
                ),
            );
            return Admission::Rejected;
        }
        let queue = g
            .queues
            .entry(q.meta.session.clone())
            .or_insert_with(|| SessionQueue { fifo: VecDeque::new(), running: false });
        // Coalesce stacked edits: an older queued-not-started update to the
        // same source is superseded by this one.
        if q.meta.method == "update_source" {
            let name = q.meta.params.get("name").and_then(Json::as_str).map(ToOwned::to_owned);
            if let Some(name) = name {
                let stale = queue.fifo.iter().position(|p| {
                    p.meta.method == "update_source"
                        && p.meta.params.get("name").and_then(Json::as_str) == Some(name.as_str())
                });
                if let Some(at) = stale {
                    let old = queue.fifo.remove(at).expect("position came from this queue");
                    self.counters.coalesced.fetch_add(1, Ordering::Relaxed);
                    let body = Json::Obj(vec![
                        ("id".into(), old.meta.id),
                        ("result".into(), Json::Obj(vec![("superseded".into(), Json::Bool(true))])),
                    ]);
                    old.outbox.push(old.seq, body.to_string());
                    g.depth -= 1;
                }
            }
        }
        let queue = g.queues.get_mut(&q.meta.session).expect("inserted above");
        queue.fifo.push_back(q);
        g.depth += 1;
        self.counters.admitted.fetch_add(1, Ordering::Relaxed);
        self.counters.bump_peak(g.depth);
        self.work.notify_all();
        Admission::Queued
    }

    /// Blocks until a request is runnable (first eligible session in name
    /// order — deterministic given a deterministic queue state) or the
    /// drain completes.
    pub(crate) fn next(&self) -> Dispatch {
        let mut g = self.state.lock().unwrap();
        loop {
            if g.stopped {
                return Dispatch::Exit;
            }
            if !g.held {
                let ready = g
                    .queues
                    .iter()
                    .find(|(_, q)| !q.running && !q.fifo.is_empty())
                    .map(|(name, _)| name.clone());
                if let Some(name) = ready {
                    let queue = g.queues.get_mut(&name).expect("found above");
                    queue.running = true;
                    let item = queue.fifo.pop_front().expect("non-empty above");
                    g.depth -= 1;
                    g.running += 1;
                    let tier = if is_solving(&item.meta.method) {
                        // Depth after removing this item: the backlog the
                        // request leaves behind decides its tier.
                        match self.policy.tier(g.depth) {
                            ShedTier::Reject => ShedTier::Screen,
                            t => t,
                        }
                    } else {
                        ShedTier::Full
                    };
                    return Dispatch::Run(item, tier);
                }
                if g.draining && g.depth == 0 && g.running == 0 {
                    g.stopped = true;
                    self.work.notify_all();
                    self.idle.notify_all();
                    return Dispatch::Exit;
                }
            }
            g = self.work.wait(g).unwrap();
        }
    }

    /// Marks a dispatched request finished, unblocking the session's queue.
    pub(crate) fn finish(&self, session: &str) {
        let mut g = self.state.lock().unwrap();
        if let Some(queue) = g.queues.get_mut(session) {
            queue.running = false;
        }
        g.running -= 1;
        self.counters.completed.fetch_add(1, Ordering::Relaxed);
        if g.draining && g.depth == 0 && g.running == 0 {
            g.stopped = true;
            self.idle.notify_all();
        }
        self.work.notify_all();
    }

    /// Begins a graceful drain: no new admissions; queued and running work
    /// completes; workers then stop.
    pub(crate) fn begin_drain(&self) {
        let mut g = self.state.lock().unwrap();
        g.draining = true;
        self.work.notify_all();
        self.idle.notify_all();
    }

    /// Pauses (`true`) or resumes (`false`) worker dispatch. While held,
    /// enqueues stack deterministically — the load generator and the
    /// overload tests use this to exercise coalescing and shed tiers
    /// independently of worker speed.
    pub fn hold(&self, on: bool) {
        let mut g = self.state.lock().unwrap();
        g.held = on;
        if !on {
            self.work.notify_all();
        }
    }

    /// Current queued-not-started request count.
    pub fn depth(&self) -> usize {
        self.state.lock().unwrap().depth
    }

    /// Whether the drain has completed.
    pub(crate) fn stopped(&self) -> bool {
        self.state.lock().unwrap().stopped
    }

    /// Blocks until the drain completes (after [`Scheduler::begin_drain`]).
    pub(crate) fn wait_stopped(&self) {
        let mut g = self.state.lock().unwrap();
        while !g.stopped {
            g = self.idle.wait(g).unwrap();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn meta(method: &str, session: &str, source: Option<&str>) -> RequestMeta {
        let params = match source {
            Some(s) => Json::Obj(vec![
                ("name".into(), Json::str(s)),
                ("text".into(), Json::str("class A {}")),
            ]),
            None => Json::Obj(Vec::new()),
        };
        RequestMeta {
            id: Json::num(1),
            method: method.into(),
            params,
            session: session.into(),
            deadline: None,
        }
    }

    #[test]
    fn outbox_releases_in_sequence_order() {
        let ob = Outbox::new();
        ob.push(2, "third".into());
        ob.push(0, "first".into());
        assert_eq!(ob.pop().unwrap().0, "first");
        ob.push(1, "second".into());
        assert_eq!(ob.pop().unwrap().0, "second");
        assert_eq!(ob.pop().unwrap().0, "third");
        ob.close(3);
        assert!(ob.pop().is_none());
    }

    #[test]
    fn stacked_updates_coalesce_to_the_newest() {
        let sched = Scheduler::new(ShedPolicy::default());
        sched.hold(true);
        let ob = Arc::new(Outbox::new());
        for seq in 0..3 {
            let q = Queued {
                meta: meta("update_source", "s", Some("A.java")),
                outbox: Arc::clone(&ob),
                seq,
            };
            assert_eq!(sched.enqueue(q), Admission::Queued);
        }
        // Two older edits superseded; only the newest remains queued.
        assert_eq!(sched.counters.coalesced.load(Ordering::Relaxed), 2);
        assert_eq!(sched.depth(), 1);
        let (line, _) = ob.pop().expect("superseded response");
        assert!(line.contains("\"superseded\":true"), "{line}");
    }

    #[test]
    fn admission_cap_rejects_with_retry_hint() {
        let policy = ShedPolicy { screen_depth: 1, reject_depth: 2, retry_after_ms: 9 };
        let sched = Scheduler::new(policy);
        sched.hold(true);
        let ob = Arc::new(Outbox::new());
        // A second client sends the request that gets refused — its outbox
        // has no earlier pending responses, so the refusal pops directly.
        let ob2 = Arc::new(Outbox::new());
        let mk = |ob: &Arc<Outbox>, seq, src: &str| Queued {
            meta: meta("update_source", "s", Some(src)),
            outbox: Arc::clone(ob),
            seq,
        };
        assert_eq!(sched.enqueue(mk(&ob, 0, "A.java")), Admission::Queued);
        assert_eq!(sched.enqueue(mk(&ob, 1, "B.java")), Admission::Queued);
        assert_eq!(sched.enqueue(mk(&ob2, 0, "C.java")), Admission::Rejected);
        // Non-solving requests are still admitted at full depth.
        let q = Queued { meta: meta("query_outcomes", "s", None), outbox: Arc::clone(&ob), seq: 2 };
        assert_eq!(sched.enqueue(q), Admission::Queued);
        let (line, _) = ob2.pop().expect("rejection response");
        assert!(line.contains("\"code\":\"overloaded\""), "{line}");
        assert!(line.contains("\"retry_after_ms\":9"), "{line}");
    }

    #[test]
    fn drain_answers_everything_then_stops() {
        let sched = Arc::new(Scheduler::new(ShedPolicy::default()));
        let ob = Arc::new(Outbox::new());
        sched.hold(true);
        let q = Queued { meta: meta("stats", "s", None), outbox: Arc::clone(&ob), seq: 0 };
        sched.enqueue(q);
        let worker = {
            let sched = Arc::clone(&sched);
            std::thread::spawn(move || {
                while let Dispatch::Run(item, _) = sched.next() {
                    item.outbox.push(item.seq, "{}".into());
                    sched.finish(&item.meta.session);
                }
            })
        };
        sched.begin_drain();
        sched.hold(false);
        sched.wait_stopped();
        worker.join().unwrap();
        assert_eq!(ob.pop().unwrap().0, "{}");
        // Enqueue after drain answers shutting_down immediately.
        let q = Queued { meta: meta("stats", "s", None), outbox: Arc::clone(&ob), seq: 1 };
        assert_eq!(sched.enqueue(q), Admission::ShuttingDown);
        let (line, _) = ob.pop().expect("shutdown refusal");
        assert!(line.contains("shutting_down"), "{line}");
    }
}
