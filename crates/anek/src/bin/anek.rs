//! The `anek` command-line tool — the reproduction's equivalent of the
//! paper's Eclipse plugin pipeline (Figure 10).
//!
//! ```text
//! anek infer [--threads N] [--bp-schedule sweep|residual]
//!            [--bp-precision f64|f32] [--inject PLAN] [--outcomes]
//!            [--screen] [--max-iters N] <file.java>...
//!                               infer specs, print them; --inject replays a
//!                               fault plan (corpus::faults format) and
//!                               --outcomes appends the per-method outcome
//!                               table (method<TAB>status<TAB>detail).
//!                               --screen runs the bit-vector pre-pass and
//!                               skips BP solves for provably-clean isolated
//!                               methods. Exit 0: every source parsed and
//!                               every method solved. Exit 3: completed
//!                               partially (a source was skipped or a
//!                               method's solve failed); the printed specs
//!                               cover the healthy remainder.
//! anek check [--engine bitstate|plural] [--infer] [--branch-sensitive]
//!            [--json] [--cross-validate] <file.java>...
//!                               verify client code against declared specs
//!                               (plus ANEK-inferred ones under --infer):
//!                               the bit-vector engine reports CHK001/CHK002
//!                               diagnostics with caret snippets or JSON;
//!                               --engine plural runs the fractional-
//!                               permission checker instead;
//!                               --cross-validate runs bitstate, PLURAL and
//!                               the PROT001 lint side by side and reports
//!                               per-method verdict disagreements
//! anek lint [--json] [--verify-ir] <file.java>...
//!                               run the deterministic dataflow lints
//!                               (DF/PROT/SPEC rules) and optionally the IR
//!                               verifier; exit non-zero on errors
//! anek pipeline [--out DIR] [--verify-ir] [--threads N]
//!               [--bp-schedule sweep|residual] [--bp-precision f64|f32]
//!               <file.java>...
//!                               infer, apply, re-check; print the annotated
//!                               program (or write one file per input into
//!                               DIR) and report both warning counts
//! anek pfg <file.java> <Class.method>
//!                               dump a method's Permissions Flow Graph as DOT
//! anek corpus <dir> [--small]   materialize the PMD-shaped synthetic corpus
//!                               as .java files under <dir>
//! anek serve (--stdio | --socket PATH) [--store DIR] [--threads N]
//!            [--workers N] [--admission-cap N] [--screen-depth N]
//!            [--retry-after-ms MS] [--memory-budget-mb MB]
//!            [--max-request-bytes N]
//!                               long-running multi-session inference daemon
//!                               speaking line-delimited JSON (see
//!                               anek::serve): named sessions share one
//!                               store, stacked edits coalesce, deep queues
//!                               shed load (screen, then reject with
//!                               retry_after_ms), and a memory budget evicts
//!                               idle sessions' heavyweight state
//! ```
//!
//! `--store DIR` (on `infer`, `pipeline` and `serve`) attaches the
//! persistent artifact store: warm runs replay memoized solves and are
//! byte-identical to cold runs.

use anek::analysis::{MethodId, Pfg, ProgramIndex};
use anek::bitstate;
use anek::factor_graph::{BpPrecision, BpSchedule};
use anek::plural::SpecTable;
use anek::spec_lang::standard_api;
use anek::{Pipeline, Server, ServerOptions};
use std::io::Write;
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "\
usage: anek <infer|check|lint|pipeline|pfg|corpus|serve> [flags] <file.java>...

  infer    [--threads N] [--bp-schedule sweep|residual]
           [--bp-precision f64|f32] [--inject PLAN] [--outcomes]
           [--screen] [--max-iters N] [--store DIR] <file.java>...
  check    [--engine bitstate|plural] [--infer] [--branch-sensitive]
           [--json] [--cross-validate] [infer flags] <file.java>...
  lint     [--json] [--verify-ir] <file.java>...
  pipeline [--out DIR] [--verify-ir] [--threads N] [--bp-schedule S]
           [--bp-precision P] [--store DIR] <file.java>...
  pfg      <file.java>... <Class.method>
  corpus   <dir> [--small]
  serve    (--stdio | --socket PATH) [--store DIR] [--threads N]
           [--workers N] [--admission-cap N] [--screen-depth N]
           [--retry-after-ms MS] [--memory-budget-mb MB]
           [--max-request-bytes N]

exit codes:
  0  success (infer: every source parsed and every method solved;
     check/lint: no warnings/errors;
     check --cross-validate: no undocumented disagreements)
  1  runtime failure (unreadable input, parse error in strict mode,
     check/lint found problems, or an undocumented engine disagreement)
  2  usage error (unknown command or flag, missing argument, no inputs)
  3  partial result (infer: a source was skipped or a method's solve
     failed; printed specs cover the healthy remainder)";

/// An error in how the tool was invoked (vs. a runtime failure). Mapped to
/// exit code 2 where runtime failures map to 1.
#[derive(Debug)]
struct UsageError(String);

impl std::fmt::Display for UsageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl std::error::Error for UsageError {}

fn usage_err(message: impl Into<String>) -> Box<dyn std::error::Error> {
    Box::new(UsageError(message.into()))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    if cmd == "--help" || cmd == "-h" || cmd == "help" {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    match run(cmd, rest) {
        Ok(code) => code,
        Err(e) if e.is::<UsageError>() => {
            eprintln!("anek: {e}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
        Err(e) => {
            eprintln!("anek: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Flags shared by the inference-running subcommands.
#[derive(Default)]
struct InferFlags {
    threads: Option<usize>,
    schedule: Option<BpSchedule>,
    precision: Option<BpPrecision>,
    inject: Option<corpus::FaultPlan>,
    outcomes: bool,
    store: Option<String>,
    screen: bool,
    max_iters: Option<usize>,
}

impl InferFlags {
    /// Consumes `--threads N` / `--bp-schedule S` / `--bp-precision P` /
    /// `--inject PLAN` / `--outcomes` / `--store DIR` / `--screen` /
    /// `--max-iters N` from `args`, returning the flags and the remaining
    /// arguments.
    fn parse(args: &[String]) -> Result<(InferFlags, Vec<String>), Box<dyn std::error::Error>> {
        let mut flags = InferFlags::default();
        let mut rest = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if a == "--threads" {
                let n = it
                    .next()
                    .ok_or_else(|| usage_err("--threads needs a count (0 = one per core)"))?;
                flags.threads =
                    Some(n.parse().map_err(|_| usage_err(format!("--threads: bad count `{n}`")))?);
            } else if a == "--bp-schedule" {
                let s = it
                    .next()
                    .ok_or_else(|| usage_err("--bp-schedule needs `sweep` or `residual`"))?;
                flags.schedule =
                    Some(BpSchedule::parse(s).ok_or_else(|| {
                        usage_err(format!("--bp-schedule: unknown schedule `{s}`"))
                    })?);
            } else if a == "--bp-precision" {
                // f32 halves BP message storage (accumulation stays f64);
                // marginals may differ from f64 in the last ulps, so the
                // default f64 keeps historical byte-exact output.
                let p =
                    it.next().ok_or_else(|| usage_err("--bp-precision needs `f64` or `f32`"))?;
                flags.precision = Some(BpPrecision::parse(p).ok_or_else(|| {
                    usage_err(format!("--bp-precision: unknown precision `{p}`"))
                })?);
            } else if a == "--inject" {
                let path =
                    it.next().ok_or_else(|| usage_err("--inject needs a fault-plan file"))?;
                let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
                flags.inject =
                    Some(corpus::FaultPlan::parse(&text).map_err(|e| format!("{path}: {e}"))?);
            } else if a == "--outcomes" {
                flags.outcomes = true;
            } else if a == "--screen" {
                flags.screen = true;
            } else if a == "--max-iters" {
                let n = it
                    .next()
                    .ok_or_else(|| usage_err("--max-iters needs a worklist-pass budget"))?;
                let n: usize =
                    n.parse().map_err(|_| usage_err(format!("--max-iters: bad count `{n}`")))?;
                if n == 0 {
                    return Err(usage_err("--max-iters must be positive"));
                }
                flags.max_iters = Some(n);
            } else if a == "--store" {
                let dir = it.next().ok_or_else(|| usage_err("--store needs a directory"))?;
                flags.store = Some(dir.clone());
            } else {
                rest.push(a.clone());
            }
        }
        Ok((flags, rest))
    }

    /// Applies the flags to a pipeline.
    fn apply(&self, mut pipeline: Pipeline) -> Result<Pipeline, Box<dyn std::error::Error>> {
        if let Some(t) = self.threads {
            pipeline = pipeline.with_threads(t);
        }
        if let Some(s) = self.schedule {
            pipeline = pipeline.with_bp_schedule(s);
        }
        if let Some(p) = self.precision {
            pipeline = pipeline.with_bp_precision(p);
        }
        if let Some(plan) = &self.inject {
            plan.apply_config(&mut pipeline.config);
        }
        if self.screen {
            pipeline = pipeline.with_screen(true);
        }
        if let Some(n) = self.max_iters {
            pipeline.config.max_iters = n;
        }
        if let Some(dir) = &self.store {
            let store = store::Store::open(dir).map_err(|e| format!("--store {dir}: {e}"))?;
            pipeline = pipeline.with_store(Arc::new(store));
        }
        Ok(pipeline)
    }
}

/// Rejects leftover `--flags` that no parser consumed (they would
/// otherwise be misread as file paths).
fn reject_unknown_flags(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    match args.iter().find(|a| a.starts_with("--")) {
        Some(flag) => Err(usage_err(format!("unknown flag `{flag}`"))),
        None => Ok(()),
    }
}

/// Maps each diagnostic's `Class.method` context back to the input file
/// that declares the class, attaches it, and re-sorts (reporting order is
/// file-first once files are known).
fn attach_files(
    diags: Vec<lint::Diagnostic>,
    units: &[java_syntax::CompilationUnit],
    files: &[String],
) -> Vec<lint::Diagnostic> {
    let mut diags: Vec<lint::Diagnostic> = diags
        .into_iter()
        .map(|d| {
            let class = d.method.split('.').next().unwrap_or("");
            match units.iter().position(|u| u.type_named(class).is_some()) {
                Some(i) if i < files.len() => {
                    let file = files[i].clone();
                    d.in_file(file)
                }
                _ => d,
            }
        })
        .collect();
    lint::sort_diagnostics(&mut diags);
    diags
}

fn read_sources(paths: &[String]) -> Result<Vec<String>, Box<dyn std::error::Error>> {
    if paths.is_empty() {
        return Err(usage_err("no input files"));
    }
    paths
        .iter()
        .map(|p| std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}").into()))
        .collect()
}

fn run(cmd: &str, rest: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    match cmd {
        "infer" => {
            let (flags, files) = InferFlags::parse(rest)?;
            reject_unknown_flags(&files)?;
            let mut sources = read_sources(&files)?;
            // Fault injection corrupts sources *before* parsing; parsing is
            // lenient under injection so a garbled file costs only itself.
            let pipeline = if let Some(plan) = &flags.inject {
                plan.apply_sources(&mut sources);
                flags.apply(Pipeline::from_sources_lenient(&sources))?
            } else {
                flags.apply(Pipeline::from_sources(&sources)?)?
            };
            for s in &pipeline.skipped_sources {
                let file = files.get(s.index).map_or("<source>", String::as_str);
                eprintln!("warning: skipped {file}: {}", s.error);
            }
            let result = pipeline.infer();
            for (method, spec) in &result.specs {
                if spec.is_empty() {
                    continue;
                }
                let conf = result.confidence.get(method).copied().unwrap_or(1.0);
                println!("{method}:  (confidence {conf:.2})");
                if !spec.requires.is_empty() {
                    println!("    requires: {}", spec.requires);
                }
                if !spec.ensures.is_empty() {
                    println!("    ensures:  {}", spec.ensures);
                }
            }
            if flags.outcomes {
                // The deterministic outcome table: skipped sources first
                // (by input index), then one line per method. The CI fault
                // gate byte-diffs this across thread counts.
                println!("--- outcomes ---");
                for s in &pipeline.skipped_sources {
                    println!("source:{}\tskipped\t{}", s.index, s.error);
                }
                print!("{}", result.outcome_table());
            }
            for (method, outcome) in &result.outcomes {
                if outcome.is_degraded() {
                    eprintln!("warning: {method} degraded: {}", outcome.detail());
                }
            }
            eprintln!(
                "inferred {} specs with {} model solves in {:?} ({} threads, {} BP sweeps, {} message updates)",
                result.annotation_count(),
                result.solves,
                result.elapsed,
                result.threads,
                result.bp_iterations,
                result.message_updates
            );
            if result.speculative_solves > 0 {
                eprintln!(
                    "speculation: {} speculative solves, {} discarded, merge stalled {:?}",
                    result.speculative_solves, result.discarded_solves, result.commit_stall
                );
            }
            if flags.screen {
                eprintln!(
                    "screening pre-pass skipped {} provably-clean methods",
                    result.screened_methods
                );
            }
            if result.failed_count() > 0 || !pipeline.skipped_sources.is_empty() {
                eprintln!(
                    "partial result: {} methods failed, {} sources skipped (specs above cover the healthy remainder)",
                    result.failed_count(),
                    pipeline.skipped_sources.len()
                );
                return Ok(ExitCode::from(3));
            }
            Ok(ExitCode::SUCCESS)
        }
        "check" => {
            let (flags, rest) = InferFlags::parse(rest)?;
            let mut engine = "bitstate".to_string();
            let mut infer = false;
            let mut branch_sensitive = false;
            let mut json = false;
            let mut cross_validate = false;
            let mut files: Vec<String> = Vec::new();
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--engine" => {
                        let e = it
                            .next()
                            .ok_or_else(|| usage_err("--engine needs `bitstate` or `plural`"))?;
                        if e != "bitstate" && e != "plural" {
                            return Err(usage_err(format!("--engine: unknown engine `{e}`")));
                        }
                        engine = e.clone();
                    }
                    "--infer" => infer = true,
                    "--branch-sensitive" => branch_sensitive = true,
                    "--json" => json = true,
                    "--cross-validate" => cross_validate = true,
                    _ => files.push(a.clone()),
                }
            }
            reject_unknown_flags(&files)?;
            let sources = read_sources(&files)?;
            let mut pipeline = flags.apply(Pipeline::from_sources(&sources)?)?;
            pipeline.config.branch_sensitive = branch_sensitive;
            let mut table = SpecTable::from_units(&pipeline.units);
            if infer {
                let result = pipeline.infer();
                eprintln!(
                    "inferred {} specs with {} model solves in {:?}",
                    result.annotation_count(),
                    result.solves,
                    result.elapsed
                );
                table = table.overlay_inferred(&result.specs);
            }
            if cross_validate {
                let report = anek::cross_validate(&pipeline.units, &pipeline.api, &table);
                print!("{}", report.render());
                return Ok(if report.undocumented == 0 {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                });
            }
            if engine == "plural" {
                let result = pipeline.check(&table);
                for w in &result.warnings {
                    println!("{w}");
                }
                eprintln!(
                    "{} warnings across {} methods in {:?}",
                    result.warnings.len(),
                    result.methods_checked,
                    result.elapsed
                );
                return Ok(if result.warnings.is_empty() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                });
            }
            let specs = anek::check::program_specs(&table, &pipeline.units);
            let report = bitstate::check_program(&pipeline.units, &pipeline.api, &specs);
            let diags = attach_files(anek::check::diagnostics(&report), &pipeline.units, &files);
            if json {
                println!("{}", lint::to_json_array(&diags));
            } else {
                for d in &diags {
                    let source =
                        files.iter().position(|f| *f == d.file).map(|i| sources[i].as_str());
                    print!("{}", d.render(source));
                }
            }
            use bitstate::Verdict;
            eprintln!(
                "checked {} methods in {:?}: {} clean, {} need inference, {} in violation ({} findings)",
                report.methods_checked,
                report.elapsed,
                report.count(Verdict::ProvablyClean),
                report.count(Verdict::NeedsInference),
                report.count(Verdict::DefiniteViolation),
                diags.len(),
            );
            Ok(if diags.is_empty() { ExitCode::SUCCESS } else { ExitCode::FAILURE })
        }
        "lint" => {
            let json = rest.iter().any(|a| a == "--json");
            let verify_ir = rest.iter().any(|a| a == "--verify-ir");
            if let Some(bad) =
                rest.iter().find(|a| a.starts_with("--") && *a != "--json" && *a != "--verify-ir")
            {
                return Err(usage_err(format!(
                    "unknown lint flag `{bad}` (expected --json, --verify-ir)"
                )));
            }
            let files: Vec<String> =
                rest.iter().filter(|a| !a.starts_with("--")).cloned().collect();
            let sources = read_sources(&files)?;
            let pipeline = Pipeline::from_sources(&sources)?;
            let opts = lint::LintOptions { verify_ir };
            let diags = attach_files(
                lint::lint_units(&pipeline.units, &pipeline.api, &opts),
                &pipeline.units,
                &files,
            );
            if json {
                println!("{}", lint::to_json_array(&diags));
            } else {
                // Each diagnostic carries its source file; look the text
                // back up for caret snippets.
                for d in &diags {
                    let source =
                        files.iter().position(|f| *f == d.file).map(|i| sources[i].as_str());
                    print!("{}", d.render(source));
                }
            }
            let errors = diags.iter().filter(|d| d.severity == lint::Severity::Error).count();
            eprintln!("{} diagnostics ({errors} errors) across {} files", diags.len(), files.len());
            Ok(if errors == 0 { ExitCode::SUCCESS } else { ExitCode::FAILURE })
        }
        "pipeline" => {
            let (flags, rest) = InferFlags::parse(rest)?;
            let mut out_dir: Option<String> = None;
            let mut verify_ir = false;
            let mut files: Vec<String> = Vec::new();
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                if a == "--out" {
                    out_dir = Some(
                        it.next().ok_or_else(|| usage_err("--out needs a directory"))?.clone(),
                    );
                } else if a == "--verify-ir" {
                    verify_ir = true;
                } else {
                    files.push(a.clone());
                }
            }
            reject_unknown_flags(&files)?;
            let sources = read_sources(&files)?;
            let pipeline =
                flags.apply(Pipeline::from_sources(&sources)?.with_verify_ir(verify_ir))?;
            let report = pipeline.run();
            match &out_dir {
                Some(dir) => {
                    // One annotated file per input, mirroring the input names.
                    std::fs::create_dir_all(dir)?;
                    let (annotated, _) =
                        anek::apply_specs(&pipeline.units, &report.inference.specs);
                    for (unit, input) in annotated.iter().zip(&files) {
                        let name = std::path::Path::new(input)
                            .file_name()
                            .ok_or("input has no file name")?;
                        let path = std::path::Path::new(dir).join(name);
                        std::fs::write(&path, java_syntax::print_unit(unit))?;
                    }
                    eprintln!("wrote {} annotated files to {dir}", files.len());
                }
                None => println!("{}", report.annotated_source),
            }
            eprintln!(
                "warnings: {} before, {} after; {} annotations applied; inference {:?}",
                report.warnings_before.warnings.len(),
                report.warnings_after.warnings.len(),
                report.annotations_applied,
                report.inference.elapsed
            );
            for w in &report.warnings_after.warnings {
                eprintln!("  {w}");
            }
            Ok(ExitCode::SUCCESS)
        }
        "pfg" => {
            let (target, files) = rest
                .split_last()
                .ok_or_else(|| usage_err("usage: anek pfg <file>... <Class.method>"))?;
            // Allow either order: if the last arg looks like a file, the
            // first is the target.
            let (files, target) = if target.ends_with(".java") {
                let (t, f) = rest
                    .split_first()
                    .ok_or_else(|| usage_err("usage: anek pfg <Class.method> <file>..."))?;
                (f.to_vec(), t.clone())
            } else {
                (files.to_vec(), target.clone())
            };
            let (class, method) =
                target.split_once('.').ok_or_else(|| usage_err("target must be Class.method"))?;
            let sources = read_sources(&files)?;
            let pipeline = Pipeline::from_sources(&sources)?;
            let index = ProgramIndex::build(pipeline.units.iter());
            let api = standard_api();
            let id = MethodId::new(class, method);
            for unit in &pipeline.units {
                if let Some(t) = unit.type_named(class) {
                    if let Some(m) = t.method_named(method) {
                        let pfg = Pfg::build(&index, &api, class, m);
                        print!("{}", pfg.to_dot());
                        return Ok(ExitCode::SUCCESS);
                    }
                }
            }
            Err(format!("method {id} not found").into())
        }
        "corpus" => {
            let small = rest.iter().any(|a| a == "--small");
            let dir = rest
                .iter()
                .find(|a| !a.starts_with("--"))
                .ok_or_else(|| usage_err("usage: anek corpus <dir> [--small]"))?;
            let cfg = if small { corpus::PmdConfig::small() } else { corpus::PmdConfig::paper() };
            let corpus = corpus::generate(&cfg);
            let n = corpus.write_to_dir(std::path::Path::new(dir))?;
            eprintln!(
                "wrote {n} classes ({} lines, {} methods, {} next() calls) to {dir}",
                corpus.stats.lines, corpus.stats.methods, corpus.stats.next_calls
            );
            Ok(ExitCode::SUCCESS)
        }
        "serve" => {
            let mut stdio = false;
            let mut socket: Option<String> = None;
            let mut store_dir: Option<String> = None;
            let mut threads: Option<usize> = None;
            let mut opts = ServerOptions::default();
            let mut it = rest.iter();
            let num =
                |flag: &str, value: Option<&String>| -> Result<usize, Box<dyn std::error::Error>> {
                    let v = value.ok_or_else(|| usage_err(format!("{flag} needs a number")))?;
                    v.parse().map_err(|_| usage_err(format!("{flag}: bad number `{v}`")))
                };
            while let Some(a) = it.next() {
                if a == "--stdio" {
                    stdio = true;
                } else if a == "--socket" {
                    socket =
                        Some(it.next().ok_or_else(|| usage_err("--socket needs a path"))?.clone());
                } else if a == "--store" {
                    store_dir = Some(
                        it.next().ok_or_else(|| usage_err("--store needs a directory"))?.clone(),
                    );
                } else if a == "--threads" {
                    threads = Some(num("--threads", it.next())?);
                } else if a == "--workers" {
                    opts.workers = num("--workers", it.next())?.max(1);
                } else if a == "--admission-cap" {
                    opts.policy.reject_depth = num("--admission-cap", it.next())?;
                } else if a == "--screen-depth" {
                    opts.policy.screen_depth = num("--screen-depth", it.next())?;
                } else if a == "--retry-after-ms" {
                    opts.policy.retry_after_ms = num("--retry-after-ms", it.next())? as u64;
                } else if a == "--memory-budget-mb" {
                    opts.memory_budget_bytes = num("--memory-budget-mb", it.next())? * 1024 * 1024;
                } else if a == "--max-request-bytes" {
                    opts.max_request_bytes = num("--max-request-bytes", it.next())?;
                } else {
                    return Err(usage_err(format!("unknown serve argument `{a}`")));
                }
            }
            if stdio == socket.is_some() {
                return Err(usage_err("serve needs exactly one of --stdio or --socket PATH"));
            }
            let mut config = anek_core::InferConfig::default();
            if let Some(t) = threads {
                config.threads = t;
            }
            let store = match &store_dir {
                Some(dir) => Some(Arc::new(
                    store::Store::open(dir).map_err(|e| format!("--store {dir}: {e}"))?,
                )),
                None => None,
            };
            let max_request_bytes = opts.max_request_bytes;
            let server = Server::start(config, store, opts);
            if stdio {
                serve_stdio(server, max_request_bytes)?;
            } else {
                serve_socket(server, socket.as_deref().expect("checked above"), max_request_bytes)?;
            }
            Ok(ExitCode::SUCCESS)
        }
        other => Err(usage_err(format!("unknown command `{other}`"))),
    }
}

/// One line from a bounded reader: the reader never buffers more than the
/// configured maximum, so an oversized (or maliciously endless) request
/// costs a structured error, not memory.
enum BoundedLine {
    /// A complete line within the limit (newline stripped).
    Line(String),
    /// A line longer than the limit; carries the discarded byte count.
    Oversized(usize),
    /// End of stream.
    Eof,
}

/// Reads one `\n`-terminated line, buffering at most `max` bytes. Once the
/// limit is crossed the rest of the line is consumed and discarded, so the
/// stream stays aligned on the next line.
fn read_bounded_line(
    reader: &mut impl std::io::BufRead,
    max: usize,
) -> std::io::Result<BoundedLine> {
    let mut buf: Vec<u8> = Vec::new();
    let mut discarded = 0usize;
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            return Ok(if discarded > 0 {
                BoundedLine::Oversized(discarded)
            } else if buf.is_empty() {
                BoundedLine::Eof
            } else {
                BoundedLine::Line(String::from_utf8_lossy(&buf).into_owned())
            });
        }
        let newline = chunk.iter().position(|&b| b == b'\n');
        let take = newline.unwrap_or(chunk.len());
        if discarded > 0 || buf.len() + take > max {
            // Over the limit: stop buffering, keep counting and skipping.
            discarded += buf.len() + take;
            buf.clear();
            reader.consume(take + usize::from(newline.is_some()));
            if newline.is_some() {
                return Ok(BoundedLine::Oversized(discarded));
            }
        } else {
            buf.extend_from_slice(&chunk[..take]);
            reader.consume(take + usize::from(newline.is_some()));
            if newline.is_some() {
                return Ok(BoundedLine::Line(String::from_utf8_lossy(&buf).into_owned()));
            }
        }
    }
}

/// Pumps one transport connection: reads bounded lines into the client,
/// closing the request stream at EOF.
fn pump_requests(
    mut client: anek::Client,
    mut reader: impl std::io::BufRead,
    max_request_bytes: usize,
) {
    loop {
        match read_bounded_line(&mut reader, max_request_bytes) {
            Ok(BoundedLine::Line(line)) => {
                if line.trim().is_empty() {
                    continue;
                }
                client.send(&line);
            }
            Ok(BoundedLine::Oversized(bytes)) => {
                client.send_oversized(bytes);
            }
            Ok(BoundedLine::Eof) | Err(_) => break,
        }
    }
    client.close();
}

/// Serves line-delimited JSON over stdin/stdout until EOF or `shutdown`.
fn serve_stdio(server: Server, max_request_bytes: usize) -> Result<(), Box<dyn std::error::Error>> {
    let client = server.connect();
    let responses = client.responses();
    server.detach();
    std::thread::spawn(move || pump_requests(client, std::io::stdin().lock(), max_request_bytes));
    let mut out = std::io::stdout().lock();
    while let Some((line, _)) = responses.pop() {
        writeln!(out, "{line}")?;
        out.flush()?;
    }
    Ok(())
}

/// Removes the socket file when the daemon exits cleanly.
#[cfg(unix)]
struct SocketGuard(std::path::PathBuf);

#[cfg(unix)]
impl Drop for SocketGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Serves concurrent clients over a Unix socket until `shutdown`.
#[cfg(unix)]
fn serve_socket(
    server: Server,
    path: &str,
    max_request_bytes: usize,
) -> Result<(), Box<dyn std::error::Error>> {
    use std::os::unix::fs::FileTypeExt;
    // Unlink a stale socket left by a crashed daemon, but refuse to clobber
    // a path that is some other kind of file.
    match std::fs::symlink_metadata(path) {
        Ok(meta) if meta.file_type().is_socket() => {
            let _ = std::fs::remove_file(path);
        }
        Ok(_) => {
            return Err(format!("--socket {path}: path exists and is not a socket").into());
        }
        Err(_) => {}
    }
    let listener = std::os::unix::net::UnixListener::bind(path)
        .map_err(|e| format!("--socket {path}: {e}"))?;
    let _guard = SocketGuard(std::path::PathBuf::from(path));
    listener.set_nonblocking(true)?;
    eprintln!("anek serve: listening on {path}");
    let mut handlers = Vec::new();
    while !server.stopped() {
        match listener.accept() {
            Ok((stream, _)) => {
                let client = server.connect();
                let responses = client.responses();
                let reader = std::io::BufReader::new(stream.try_clone()?);
                std::thread::spawn(move || pump_requests(client, reader, max_request_bytes));
                handlers.push(std::thread::spawn(move || {
                    let mut writer = std::io::BufWriter::new(stream);
                    while let Some((line, _)) = responses.pop() {
                        if writeln!(writer, "{line}").and_then(|()| writer.flush()).is_err() {
                            break;
                        }
                    }
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            Err(e) => return Err(e.into()),
        }
    }
    // The drain is done: hang up every outbox so writers finish flushing.
    server.join();
    for h in handlers {
        let _ = h.join();
    }
    Ok(())
}

#[cfg(not(unix))]
fn serve_socket(
    _server: Server,
    _path: &str,
    _max_request_bytes: usize,
) -> Result<(), Box<dyn std::error::Error>> {
    Err("--socket is only supported on Unix; use --stdio".into())
}
