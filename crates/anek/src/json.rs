//! A minimal JSON value type with a parser and writer — just enough for
//! the `anek serve` line-delimited protocol, with zero dependencies.
//!
//! Objects preserve insertion order (they are association lists, not
//! maps), so a response serializes byte-identically run after run — the
//! property the golden-transcript CI gate checks.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds a number from any integer that fits `f64` exactly.
    pub fn num(n: usize) -> Json {
        Json::Num(n as f64)
    }

    /// Looks up a key when this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// This value as a string slice, when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an array slice, when it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// This value as an `f64`, when it is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                // Integers print without a fractional part so counters look
                // like counters; everything else uses Rust's shortest
                // round-trip float formatting.
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_char(c)?,
        }
    }
    f.write_str("\"")
}

use std::fmt::Write as _;

/// A JSON parse failure, with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset where it went wrong.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document, requiring it to span the whole input.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError { message: message.into(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a following \uXXXX low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input is a &str, so
                    // boundaries are trustworthy).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    if (c as u32) < 0x20 {
                        return Err(self.err("raw control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(digits, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structures() {
        let src = r#"{"id":1,"method":"load_sources","params":{"sources":[{"name":"A.java","text":"class A { }"}],"flag":true,"nil":null,"n":-2.5}}"#;
        let v = parse(src).unwrap();
        assert_eq!(parse(&v.to_string()).unwrap(), v);
        assert_eq!(v.get("method").and_then(Json::as_str), Some("load_sources"));
        assert_eq!(v.get("id").and_then(Json::as_num), Some(1.0));
    }

    #[test]
    fn escapes_survive() {
        let v = Json::str("a\"b\\c\nd\te\u{1}");
        let text = v.to_string();
        assert_eq!(text, r#""a\"b\\c\nd\te\u0001""#);
        assert_eq!(parse(&text).unwrap(), v);
        assert_eq!(parse(r#""\ud83d\ude00""#).unwrap(), Json::str("\u{1F600}"));
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "\"\\q\"", "1 2", "{\"a\" 1}"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn object_order_is_preserved() {
        let v = Json::Obj(vec![("z".into(), Json::num(1)), ("a".into(), Json::num(2))]);
        assert_eq!(v.to_string(), r#"{"z":1,"a":2}"#);
    }
}
