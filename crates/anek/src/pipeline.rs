//! The end-to-end ANEK + PLURAL pipeline (paper Figure 10).
//!
//! Extractor (parse) → constraint generation + probabilistic inference
//! (`anek-core`) → applier (annotate the AST) → PLURAL check. This is the
//! workflow of §2.1: run inference over client code, then let the sound
//! checker validate the result.

use analysis::cfg::Cfg;
use analysis::pfg::Pfg;
use analysis::types::{ProgramIndex, TypeEnv};
use anek_core::{infer_with_store, InferCache, InferConfig, InferResult, MethodModel, ModelCtx};
use java_syntax::{parse, CompilationUnit, ParseError};
use lint::Diagnostic;
use plural::{check, CheckResult, SpecTable};
use spec_lang::{spec_of_method, standard_api, ApiRegistry, MethodSpec};
use std::collections::BTreeMap;
use std::sync::Arc;
use store::Store;

/// A source rejected during lenient parsing
/// ([`Pipeline::from_sources_lenient`]): the pipeline proceeds without it.
#[derive(Debug, Clone)]
pub struct SkippedSource {
    /// Index of the source in the input slice.
    pub index: usize,
    /// Why it failed to parse.
    pub error: ParseError,
}

/// A configured pipeline over one program.
#[derive(Debug, Clone)]
pub struct Pipeline {
    /// Parsed program.
    pub units: Vec<CompilationUnit>,
    /// Annotated library model.
    pub api: ApiRegistry,
    /// Inference configuration.
    pub config: InferConfig,
    /// Run the IR verifier at stage boundaries even in release builds
    /// (debug builds always verify).
    pub verify_ir: bool,
    /// Sources dropped by [`Pipeline::from_sources_lenient`]; empty for the
    /// strict constructors.
    pub skipped_sources: Vec<SkippedSource>,
    /// Persistent artifact store. When attached, [`Pipeline::infer`] runs
    /// through it (memoized solves) and records the run's artifacts into it.
    pub store: Option<Arc<Store>>,
}

/// The complete result of a pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// The inference output.
    pub inference: InferResult,
    /// PLURAL warnings with no annotations at all (Table 2 "Original").
    pub warnings_before: CheckResult,
    /// PLURAL warnings with the inferred annotations applied.
    pub warnings_after: CheckResult,
    /// Number of methods the applier annotated.
    pub annotations_applied: usize,
    /// The annotated program, pretty-printed.
    pub annotated_source: String,
    /// IR-verifier findings from the stage boundaries (`IR001`–`IR003`);
    /// empty when verification is disabled or everything is well-formed.
    pub ir_diagnostics: Vec<Diagnostic>,
    /// Sources the lenient constructor dropped; the report covers only the
    /// parsed remainder.
    pub skipped_sources: Vec<SkippedSource>,
}

impl PipelineReport {
    /// The deterministic per-method outcome table of the inference stage
    /// (see `anek_core::render_outcome_table`).
    pub fn outcome_table(&self) -> String {
        self.inference.outcome_table()
    }

    /// Whether every source parsed and every method's solve ended `Ok`.
    pub fn fully_ok(&self) -> bool {
        self.skipped_sources.is_empty() && self.inference.fully_ok()
    }

    /// Speculative solves the parallel worklist discarded (redone against
    /// fresher summaries); 0 on single-threaded runs.
    pub fn discarded_solves(&self) -> usize {
        self.inference.discarded_solves
    }

    /// Solves the parallel worklist attempted speculatively; 0 on
    /// single-threaded runs. `speculative_solves - discarded_solves` is the
    /// work the merge loop got off the critical path.
    pub fn speculative_solves(&self) -> usize {
        self.inference.speculative_solves
    }

    /// Time the merge thread spent blocked on speculation workers (zero
    /// single-threaded) — the measured cost of commit serialization.
    pub fn commit_stall(&self) -> std::time::Duration {
        self.inference.commit_stall
    }

    /// Methods the bit-vector screening pre-pass proved clean and skipped
    /// (0 unless the pipeline ran with [`Pipeline::with_screen`]).
    pub fn screened_methods(&self) -> usize {
        self.inference.screened_methods
    }
}

impl Pipeline {
    /// Builds a pipeline from already-parsed units with the standard API
    /// model and default configuration.
    pub fn new(units: Vec<CompilationUnit>) -> Pipeline {
        Pipeline {
            units,
            api: standard_api(),
            config: InferConfig::default(),
            verify_ir: false,
            skipped_sources: Vec::new(),
            store: None,
        }
    }

    /// Parses each source string into a unit.
    ///
    /// # Errors
    ///
    /// Returns the first [`ParseError`].
    pub fn from_sources<S: AsRef<str>>(sources: &[S]) -> Result<Pipeline, ParseError> {
        let units = sources.iter().map(|s| parse(s.as_ref())).collect::<Result<Vec<_>, _>>()?;
        Ok(Pipeline::new(units))
    }

    /// Parses each source string, skipping (and recording) the ones that
    /// fail instead of aborting — the degraded-mode counterpart of
    /// [`Pipeline::from_sources`]: a truncated or corrupted file costs only
    /// its own methods, never the whole run.
    pub fn from_sources_lenient<S: AsRef<str>>(sources: &[S]) -> Pipeline {
        let mut units = Vec::new();
        let mut skipped = Vec::new();
        for (index, s) in sources.iter().enumerate() {
            match parse(s.as_ref()) {
                Ok(unit) => units.push(unit),
                Err(error) => skipped.push(SkippedSource { index, error }),
            }
        }
        let mut pipeline = Pipeline::new(units);
        pipeline.skipped_sources = skipped;
        pipeline
    }

    /// Replaces the API model.
    pub fn with_api(mut self, api: ApiRegistry) -> Pipeline {
        self.api = api;
        self
    }

    /// Replaces the inference configuration.
    pub fn with_config(mut self, config: InferConfig) -> Pipeline {
        self.config = config;
        self
    }

    /// Sets the inference worker-thread count (`0` = one per core). Any
    /// value produces byte-identical results; only wall-clock time changes.
    pub fn with_threads(mut self, threads: usize) -> Pipeline {
        self.config.threads = threads;
        self
    }

    /// Selects the BP message schedule used by every model solve.
    pub fn with_bp_schedule(mut self, schedule: factor_graph::BpSchedule) -> Pipeline {
        self.config.bp.schedule = schedule;
        self
    }

    /// Selects the BP message storage precision. `F32` halves message
    /// memory (accumulation stays f64); `F64` (the default) keeps the
    /// historical byte-exact behavior.
    pub fn with_bp_precision(mut self, precision: factor_graph::BpPrecision) -> Pipeline {
        self.config.bp.precision = precision;
        self
    }

    /// Enables the bit-vector screening pre-pass: provably-clean,
    /// call-graph-isolated methods skip BP model construction entirely (see
    /// `anek_core::InferConfig::screen`).
    pub fn with_screen(mut self, screen: bool) -> Pipeline {
        self.config.screen = screen;
        self
    }

    /// Forces stage-boundary IR verification on (release builds skip it by
    /// default; debug builds always verify).
    pub fn with_verify_ir(mut self, verify_ir: bool) -> Pipeline {
        self.verify_ir = verify_ir;
        self
    }

    /// Attaches a persistent artifact store: inference memoizes per-method
    /// solves through it (warm runs are byte-identical to cold ones, see
    /// `anek_core::memo`) and records ASTs, summaries and specs into it.
    pub fn with_store(mut self, store: Arc<Store>) -> Pipeline {
        self.store = Some(store);
        self
    }

    /// Runs the IR verifier over every method's CFG, PFG, and emitted
    /// constraint system — the invariants each pipeline stage hands to the
    /// next. Pure; does not depend on inference having run.
    pub fn verify_ir_diagnostics(&self) -> Vec<Diagnostic> {
        let index = ProgramIndex::build(self.units.iter());
        let states = anek_core::merged_states(&self.units, &self.api);
        let ctx = ModelCtx { index: &index, api: &self.api, states: &states };
        let no_summaries = BTreeMap::new();
        // Verify the organic models: injected faults (NaN tables, padding)
        // deliberately violate IR invariants so the *solver* guards can be
        // exercised — they must not abort the run at the verifier instead.
        let config =
            InferConfig { faults: anek_core::FaultInjection::default(), ..self.config.clone() };
        let mut diags = Vec::new();
        for unit in &self.units {
            for t in &unit.types {
                for m in t.methods() {
                    if m.body.is_none() {
                        continue;
                    }
                    let name = format!("{}.{}", t.name, m.name);
                    let mut env = TypeEnv::for_method(&index, &self.api, &t.name, m);
                    let cfg = Cfg::build(m, &mut env);
                    diags.extend(lint::verify::verify_cfg(&cfg, &name));
                    let pfg = Pfg::build(&index, &self.api, &t.name, m);
                    let own_spec = spec_of_method(m).unwrap_or_else(|_| MethodSpec::default());
                    let model = MethodModel::build(
                        ctx,
                        pfg,
                        &own_spec,
                        m.is_constructor(),
                        &no_summaries,
                        &config,
                    );
                    diags.extend(lint::verify::verify_model(&model));
                }
            }
        }
        lint::sort_diagnostics(&mut diags);
        diags
    }

    /// Runs inference only (through the attached store, when present).
    pub fn infer(&self) -> InferResult {
        let cache = self.store.as_deref().map(|s| s as &dyn InferCache);
        let result = infer_with_store(&self.units, &self.api, &self.config, cache);
        if let Some(store) = &self.store {
            // Recording is best-effort: a full store disk is a cold next
            // run, not a failed analysis.
            let _ = store.record_run(&self.units, &self.api, &self.config, &result);
        }
        result
    }

    /// Runs PLURAL with the given spec table.
    pub fn check(&self, specs: &SpecTable) -> CheckResult {
        check(&self.units, &self.api, specs)
    }

    /// Runs the whole Figure 10 pipeline: check unannotated, infer, apply,
    /// re-check. Debug builds (and release builds with
    /// [`Pipeline::with_verify_ir`]) verify the IRs before inference and
    /// panic on an `IR00x` finding — broken invariants would otherwise
    /// surface as silently-wrong marginals.
    pub fn run(&self) -> PipelineReport {
        let ir_diagnostics = if cfg!(debug_assertions) || self.verify_ir {
            let diags = self.verify_ir_diagnostics();
            assert!(
                diags.is_empty(),
                "IR verification failed:\n{}",
                diags.iter().map(|d| d.render(None)).collect::<String>()
            );
            diags
        } else {
            Vec::new()
        };
        let original_specs = SpecTable::from_units(&self.units);
        let warnings_before = self.check(&original_specs);
        let inference = self.infer();
        let merged = SpecTable::from_units(&self.units).overlay_inferred(&inference.specs);
        let warnings_after = self.check(&merged);
        let (annotated, annotations_applied) =
            crate::apply::apply_specs(&self.units, &inference.specs);
        let annotated_source = crate::apply::render(&annotated);
        PipelineReport {
            inference,
            warnings_before,
            warnings_after,
            annotations_applied,
            annotated_source,
            ir_diagnostics,
            skipped_sources: self.skipped_sources.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_pipeline_reduces_warnings() {
        let pipeline = Pipeline::from_sources(&[corpus::FIGURE3]).expect("figure 3 parses");
        let report = pipeline.run();
        // Unannotated: boundary uses of createColIter warn.
        assert!(!report.warnings_before.warnings.is_empty(), "original program should warn");
        // Inference reduces warnings to just the genuinely-buggy sites.
        assert!(
            report.warnings_after.warnings.len() < report.warnings_before.warnings.len(),
            "before: {:?}\nafter: {:?}",
            report.warnings_before.warnings,
            report.warnings_after.warnings
        );
        assert!(report.annotations_applied > 0);
        assert!(report.annotated_source.contains("@Perm"));
    }

    #[test]
    fn verify_ir_is_clean_on_figure_programs() {
        for src in [corpus::FIGURE3, corpus::figures::FIGURE7, corpus::figures::figure2()] {
            let pipeline = Pipeline::from_sources(&[src]).unwrap().with_verify_ir(true);
            let diags = pipeline.verify_ir_diagnostics();
            assert!(diags.is_empty(), "IR verifier fired on {src:.40}...: {diags:?}");
            // The full run (which asserts internally) must also pass.
            let report = pipeline.run();
            assert!(report.ir_diagnostics.is_empty());
        }
    }

    #[test]
    fn clean_program_stays_clean() {
        let pipeline = Pipeline::from_sources(&[
            "class App { void m(Collection<Integer> c) { Iterator<Integer> it = c.iterator(); while (it.hasNext()) { it.next(); } } }",
        ])
        .unwrap();
        let report = pipeline.run();
        assert!(report.warnings_before.warnings.is_empty());
        assert!(report.warnings_after.warnings.is_empty());
    }
}
