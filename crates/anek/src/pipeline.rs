//! The end-to-end ANEK + PLURAL pipeline (paper Figure 10).
//!
//! Extractor (parse) → constraint generation + probabilistic inference
//! (`anek-core`) → applier (annotate the AST) → PLURAL check. This is the
//! workflow of §2.1: run inference over client code, then let the sound
//! checker validate the result.

use anek_core::{infer, InferConfig, InferResult};
use java_syntax::{parse, CompilationUnit, ParseError};
use plural::{check, CheckResult, SpecTable};
use spec_lang::{standard_api, ApiRegistry};

/// A configured pipeline over one program.
#[derive(Debug, Clone)]
pub struct Pipeline {
    /// Parsed program.
    pub units: Vec<CompilationUnit>,
    /// Annotated library model.
    pub api: ApiRegistry,
    /// Inference configuration.
    pub config: InferConfig,
}

/// The complete result of a pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// The inference output.
    pub inference: InferResult,
    /// PLURAL warnings with no annotations at all (Table 2 "Original").
    pub warnings_before: CheckResult,
    /// PLURAL warnings with the inferred annotations applied.
    pub warnings_after: CheckResult,
    /// Number of methods the applier annotated.
    pub annotations_applied: usize,
    /// The annotated program, pretty-printed.
    pub annotated_source: String,
}

impl Pipeline {
    /// Builds a pipeline from already-parsed units with the standard API
    /// model and default configuration.
    pub fn new(units: Vec<CompilationUnit>) -> Pipeline {
        Pipeline { units, api: standard_api(), config: InferConfig::default() }
    }

    /// Parses each source string into a unit.
    ///
    /// # Errors
    ///
    /// Returns the first [`ParseError`].
    pub fn from_sources<S: AsRef<str>>(sources: &[S]) -> Result<Pipeline, ParseError> {
        let units =
            sources.iter().map(|s| parse(s.as_ref())).collect::<Result<Vec<_>, _>>()?;
        Ok(Pipeline::new(units))
    }

    /// Replaces the API model.
    pub fn with_api(mut self, api: ApiRegistry) -> Pipeline {
        self.api = api;
        self
    }

    /// Replaces the inference configuration.
    pub fn with_config(mut self, config: InferConfig) -> Pipeline {
        self.config = config;
        self
    }

    /// Runs inference only.
    pub fn infer(&self) -> InferResult {
        infer(&self.units, &self.api, &self.config)
    }

    /// Runs PLURAL with the given spec table.
    pub fn check(&self, specs: &SpecTable) -> CheckResult {
        check(&self.units, &self.api, specs)
    }

    /// Runs the whole Figure 10 pipeline: check unannotated, infer, apply,
    /// re-check.
    pub fn run(&self) -> PipelineReport {
        let original_specs = SpecTable::from_units(&self.units);
        let warnings_before = self.check(&original_specs);
        let inference = self.infer();
        let merged = SpecTable::from_units(&self.units).overlay_inferred(&inference.specs);
        let warnings_after = self.check(&merged);
        let (annotated, annotations_applied) =
            crate::apply::apply_specs(&self.units, &inference.specs);
        let annotated_source = crate::apply::render(&annotated);
        PipelineReport {
            inference,
            warnings_before,
            warnings_after,
            annotations_applied,
            annotated_source,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_pipeline_reduces_warnings() {
        let pipeline =
            Pipeline::from_sources(&[corpus::FIGURE3]).expect("figure 3 parses");
        let report = pipeline.run();
        // Unannotated: boundary uses of createColIter warn.
        assert!(
            !report.warnings_before.warnings.is_empty(),
            "original program should warn"
        );
        // Inference reduces warnings to just the genuinely-buggy sites.
        assert!(
            report.warnings_after.warnings.len() < report.warnings_before.warnings.len(),
            "before: {:?}\nafter: {:?}",
            report.warnings_before.warnings,
            report.warnings_after.warnings
        );
        assert!(report.annotations_applied > 0);
        assert!(report.annotated_source.contains("@Perm"));
    }

    #[test]
    fn clean_program_stays_clean() {
        let pipeline = Pipeline::from_sources(&[
            "class App { void m(Collection<Integer> c) { Iterator<Integer> it = c.iterator(); while (it.hasNext()) { it.next(); } } }",
        ])
        .unwrap();
        let report = pipeline.run();
        assert!(report.warnings_before.warnings.is_empty());
        assert!(report.warnings_after.warnings.is_empty());
    }
}
