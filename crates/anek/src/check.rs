//! The `anek check` engine: bit-vector typestate verification of client
//! code against a spec table, with [`lint`]-style diagnostics, plus the
//! differential verdict oracle behind `anek check --cross-validate`.
//!
//! Three independent engines can judge "does this method misuse a
//! protocol?":
//!
//! 1. **bitstate** — the bit-vector abstract interpreter, consuming the
//!    spec table (hand-written or ANEK-inferred);
//! 2. **PLURAL** — the fractional-permission checker, consuming the same
//!    table ([`plural::check`], filtered to wrong-state warnings);
//! 3. **lint** — the deterministic `PROT001` protocol lint, which ignores
//!    the table and computes its own branch-refined summaries from source
//!    annotations alone.
//!
//! The oracle compares all three per method. bitstate and PLURAL read the
//! same specs, so *any* disagreement between them is a bug in one of the
//! two — [`CrossReport::undocumented`] must be zero. The lint is an
//! independent opinion with a documented design difference (its own
//! summary fixpoint, with `@TrueIndicates` branch refinement even when the
//! helper carries no annotation), so consensus-vs-lint rows are reported
//! but classified as documented.

use analysis::types::{MethodId, ProgramIndex};
use bitstate::{ProgramReport, ProgramSpecs};
use java_syntax::ast::CompilationUnit;
use lint::{rules, sort_diagnostics, Diagnostic, Severity};
use plural::{SpecTable, WarningKind};
use spec_lang::ApiRegistry;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Converts a PLURAL spec table into the bitstate engine's program-spec
/// form, resolving each method's return type through the program index.
/// Empty specs are dropped (they constrain nothing).
pub fn program_specs(table: &SpecTable, units: &[CompilationUnit]) -> ProgramSpecs {
    let index = ProgramIndex::build(units.iter());
    table
        .iter()
        .filter(|(_, spec)| !spec.is_empty())
        .map(|(id, spec)| {
            let ret = index.method(id).and_then(|m| m.return_type.clone());
            (id.clone(), (spec.clone(), ret))
        })
        .collect()
}

/// Renders a [`ProgramReport`]'s findings as sorted lint diagnostics:
/// `CHK001` for may-violations, `CHK002` for definite ones. Both are
/// errors — a may-violation is a path the checker could not rule out.
pub fn diagnostics(report: &ProgramReport) -> Vec<Diagnostic> {
    let mut diags: Vec<Diagnostic> = report
        .findings()
        .map(|f| {
            let (rule, verb) = if f.definite {
                (rules::CHECK_DEFINITE_VIOLATION, "always fires")
            } else {
                (rules::CHECK_MAY_VIOLATION, "may fire")
            };
            let observed =
                if f.observed.is_empty() { "no state".to_string() } else { f.observed.join(", ") };
            Diagnostic::new(
                rule,
                Severity::Error,
                format!(
                    "call to {} {verb} with receiver in state {observed} (requires {})",
                    f.callee, f.required
                ),
                f.span,
            )
            .in_method(f.method.to_string())
            .with_note(format!("requires clause: {}", f.clause))
        })
        .collect();
    sort_diagnostics(&mut diags);
    diags
}

/// One method on which the engines did not fully agree.
#[derive(Debug, Clone)]
pub struct CrossRow {
    /// The method in question.
    pub method: MethodId,
    /// Did the bit-vector engine flag it?
    pub bitstate: bool,
    /// Did PLURAL flag it (wrong-state warnings only)?
    pub plural: bool,
    /// Did the `PROT001` lint flag it?
    pub lint: bool,
    /// Whether the disagreement is a documented design difference (as
    /// opposed to a bug in one engine).
    pub documented: bool,
    /// The classification, one line.
    pub why: String,
}

/// The differential oracle's verdict comparison.
#[derive(Debug, Clone, Default)]
pub struct CrossReport {
    /// Methods where at least two engines disagreed, in method order.
    pub rows: Vec<CrossRow>,
    /// Methods with a body that all three engines examined.
    pub methods_compared: usize,
    /// Rows explained by a documented design difference.
    pub documented: usize,
    /// Rows that indicate a bug in one of the engines.
    pub undocumented: usize,
}

impl CrossReport {
    /// Renders the comparison as a deterministic text table plus the
    /// summary line the CI gate greps for.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for row in &self.rows {
            let mark = |b: bool| if b { "flag" } else { "clean" };
            let _ = writeln!(
                out,
                "{}\tbitstate={}\tplural={}\tlint={}\t{}: {}",
                row.method,
                mark(row.bitstate),
                mark(row.plural),
                mark(row.lint),
                if row.documented { "documented" } else { "UNDOCUMENTED" },
                row.why,
            );
        }
        let _ = writeln!(
            out,
            "cross-validate: {} methods compared, {} disagreements ({} documented), undocumented disagreements: {}",
            self.methods_compared,
            self.rows.len(),
            self.documented,
            self.undocumented,
        );
        out
    }
}

/// Runs all three engines over `units` with the same spec table and
/// compares their per-method verdicts.
pub fn cross_validate(
    units: &[CompilationUnit],
    api: &ApiRegistry,
    table: &SpecTable,
) -> CrossReport {
    let specs = program_specs(table, units);
    let bit_report = bitstate::check_program(units, api, &specs);
    let bit_flagged: BTreeSet<MethodId> = bit_report
        .methods
        .iter()
        .filter(|(_, r)| !r.findings.is_empty())
        .map(|(id, _)| id.clone())
        .collect();

    let plural_result = plural::check(units, api, table);
    let plural_flagged = plural_result.methods_with_warnings(WarningKind::WrongState);

    let lint_diags = lint::lint_units(units, api, &lint::LintOptions { verify_ir: false });
    let lint_flagged: BTreeSet<MethodId> = lint_diags
        .iter()
        .filter(|d| d.rule == rules::PROTOCOL_VIOLATION)
        .filter_map(|d| {
            let (class, method) = d.method.split_once('.')?;
            Some(MethodId::new(class, method))
        })
        .collect();

    let mut report =
        CrossReport { methods_compared: bit_report.methods_checked, ..CrossReport::default() };
    let all: BTreeSet<&MethodId> =
        bit_flagged.iter().chain(&plural_flagged).chain(&lint_flagged).collect();
    for id in all {
        let b = bit_flagged.contains(id);
        let p = plural_flagged.contains(id);
        let l = lint_flagged.contains(id);
        if b == p && p == l {
            continue; // unanimous
        }
        let (documented, why) = if b != p {
            (
                false,
                "bitstate and PLURAL consume the same specs but disagree — a bug in one engine"
                    .to_string(),
            )
        } else {
            (
                true,
                "PROT001 ignores the spec table and branch-refines its own summaries \
                 (state-test precision gap)"
                    .to_string(),
            )
        };
        report.rows.push(CrossRow {
            method: id.clone(),
            bitstate: b,
            plural: p,
            lint: l,
            documented,
            why,
        });
    }
    report.documented = report.rows.iter().filter(|r| r.documented).count();
    report.undocumented = report.rows.len() - report.documented;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use java_syntax::parse;
    use spec_lang::standard_api;

    fn units(src: &str) -> Vec<CompilationUnit> {
        vec![parse(src).unwrap()]
    }

    #[test]
    fn diagnostics_use_chk_rules_and_sort() {
        let us = units(
            "class A {\n\
               Object first(Collection<Integer> c) { return c.iterator().next(); }\n\
               void drain(Collection<Integer> c) {\n\
                 Iterator<Integer> it = c.iterator();\n\
                 while (it.hasNext()) { it.next(); }\n\
                 it.next(); } }",
        );
        let report = bitstate::check_program(&us, &standard_api(), &ProgramSpecs::new());
        let diags = diagnostics(&report);
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().any(|d| d.rule == rules::CHECK_MAY_VIOLATION));
        assert!(diags.iter().any(|d| d.rule == rules::CHECK_DEFINITE_VIOLATION));
        assert!(diags.iter().all(|d| d.severity == Severity::Error && d.family() == "CHK"));
        let offsets: Vec<usize> = diags.iter().map(|d| d.span.start.offset).collect();
        assert!(offsets.windows(2).all(|w| w[0] <= w[1]), "sorted by position");
    }

    #[test]
    fn unanimous_program_has_no_rows() {
        let us = units(
            "class A { void drain(Collection<Integer> c) {\n\
               Iterator<Integer> it = c.iterator();\n\
               while (it.hasNext()) { it.next(); } } }",
        );
        let table = SpecTable::from_units(&us);
        let report = cross_validate(&us, &standard_api(), &table);
        assert!(report.rows.is_empty(), "{}", report.render());
        assert_eq!(report.undocumented, 0);
        assert!(report.render().contains("undocumented disagreements: 0"));
    }

    #[test]
    fn unanimous_bug_is_not_a_disagreement() {
        // All three engines flag the unguarded next(): no row.
        let us = units(
            "class A { Object first(Collection<Integer> c) {\n\
               return c.iterator().next(); } }",
        );
        let table = SpecTable::from_units(&us);
        let report = cross_validate(&us, &standard_api(), &table);
        assert!(report.rows.is_empty(), "{}", report.render());
    }

    #[test]
    fn branch_trap_is_a_documented_gap() {
        // `ready()` provably returns HASNEXT, but only via branch reasoning.
        // With an inferred-style ALIVE result spec, bitstate and PLURAL both
        // flag the caller; PROT001 branch-refines ready()'s summary and
        // stays clean. Documented, not a bug.
        let src = "class H { Collection<Integer> items;\n\
                     Iterator<Integer> ready() {\n\
                       Iterator<Integer> it = items.iterator();\n\
                       if (!it.hasNext()) { throw new RuntimeException(\"empty\"); }\n\
                       return it; } }\n\
                   class A { Object head(H h) { return h.ready().next(); } }";
        let us = units(src);
        let inferred = std::iter::once((
            MethodId::new("H", "ready"),
            spec_lang::MethodSpec {
                requires: spec_lang::parse_clause("").unwrap(),
                ensures: spec_lang::parse_clause("unique(result) in ALIVE").unwrap(),
                true_indicates: None,
                false_indicates: None,
            },
        ))
        .collect();
        let table = SpecTable::from_units(&us).overlay_inferred(&inferred);
        let report = cross_validate(&us, &standard_api(), &table);
        assert_eq!(report.undocumented, 0, "{}", report.render());
        assert_eq!(report.documented, 1, "{}", report.render());
        let row = &report.rows[0];
        assert_eq!(row.method, MethodId::new("A", "head"));
        assert!(row.bitstate && row.plural && !row.lint, "{row:?}");
    }
}
