//! # anek
//!
//! The end-to-end facade of the ANEK reproduction (Beckman & Nori,
//! *Probabilistic, Modular and Scalable Inference of Typestate
//! Specifications*, PLDI 2011): parse Java → build Permissions Flow Graphs →
//! infer access-permission specifications probabilistically → apply them as
//! `@Perm` annotations → verify with the PLURAL modular typestate checker.
//!
//! ## Quickstart
//!
//! ```
//! use anek::Pipeline;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let pipeline = Pipeline::from_sources(&[r#"
//!     class App {
//!         void drain(Iterator<Integer> it) {
//!             while (it.hasNext()) { it.next(); }
//!         }
//!     }
//! "#])?;
//! let report = pipeline.run();
//! // drain() gets a precondition for `it`, and the program verifies.
//! assert!(report.annotations_applied >= 1);
//! assert!(report.warnings_after.warnings.is_empty());
//! # Ok(())
//! # }
//! ```
//!
//! The re-exported crates hold the pieces: [`java_syntax`] (front end),
//! [`spec_lang`] (permissions and the annotation language), [`analysis`]
//! (CFGs and PFGs), [`factor_graph`] (sum-product inference), [`anek_core`]
//! (constraint generation and ANEK-INFER), [`plural`] (the checker) and
//! [`corpus`] (benchmark programs).

#![warn(missing_docs)]

pub mod apply;
pub mod check;
pub mod json;
pub mod pipeline;
pub mod serve;

pub use apply::{apply_specs, render};
pub use check::{cross_validate, CrossReport, CrossRow};
pub use pipeline::{Pipeline, PipelineReport, SkippedSource};
pub use serve::{
    Client, Handled, SendStatus, ServeSession, Server, ServerOptions, ShedPolicy, ShedTier,
};

pub use analysis;
pub use anek_core;
pub use bitstate;
pub use corpus;
pub use factor_graph;
pub use java_syntax;
pub use lint;
pub use plural;
pub use spec_lang;
pub use store;
