//! Micro-benchmarks of the pipeline components: lexing/parsing, PFG
//! construction, belief propagation, checking and Gaussian elimination.
//! Runs on the in-tree [`bench::microbench`] harness (no Criterion in the
//! offline build).

use anek::analysis::{Pfg, ProgramIndex};
use anek::factor_graph::{BpOptions, BpSchedule, CompiledGraph, Factor, FactorGraph};
use anek::plural::{check, local_infer_pfg, SpecTable};
use anek::spec_lang::standard_api;
use bench::microbench::Bench;
use std::hint::black_box;

fn bench_parser(b: &mut Bench) {
    let src = corpus::FIGURE3;
    b.bench_function("parse_figure3", || java_syntax::parse(black_box(src)).unwrap());
    let corpus = corpus::generator::generate(&corpus::PmdConfig::small());
    b.bench_function("parse_small_corpus", || {
        java_syntax::parse(black_box(&corpus.source)).unwrap()
    });
}

fn bench_pfg(b: &mut Bench) {
    let unit = java_syntax::parse(corpus::FIGURE3).unwrap();
    let index = ProgramIndex::build([&unit]);
    let api = standard_api();
    let t = unit.type_named("Spreadsheet").unwrap();
    let m = t.method_named("copy").unwrap();
    b.bench_function("pfg_build_copy", || {
        Pfg::build(black_box(&index), black_box(&api), "Spreadsheet", black_box(m))
    });
}

fn bench_bp(b: &mut Bench) {
    // A representative loopy graph: 30-variable cycle with priors.
    let mut g = FactorGraph::new();
    let vars: Vec<_> = (0..30).map(|i| g.add_var(format!("v{i}"))).collect();
    for (i, v) in vars.iter().enumerate() {
        if i % 5 == 0 {
            g.add_factor(Factor::unary(*v, 0.9));
        }
    }
    for i in 0..30 {
        let a = vars[i];
        let b2 = vars[(i + 1) % 30];
        g.add_factor(Factor::soft(vec![a, b2], 0.9, |x| x[0] == x[1]));
    }
    b.bench_function("bp_30var_cycle", || black_box(&g).solve(&BpOptions::default()));
    // The same graph through the flat-arena kernel, amortizing compilation
    // (the incremental-reuse path of the worklist), and under the
    // residual schedule.
    let compiled = CompiledGraph::compile(&g);
    b.bench_function("bp_30var_cycle_precompiled", || {
        black_box(&compiled).solve(&BpOptions::default())
    });
    let residual_opts = BpOptions { schedule: BpSchedule::Residual, ..BpOptions::default() };
    b.bench_function("bp_30var_cycle_residual", || black_box(&compiled).solve(&residual_opts));

    let mut g = FactorGraph::new();
    let vars: Vec<_> = (0..16).map(|i| g.add_var(format!("v{i}"))).collect();
    for w in vars.windows(2) {
        g.add_factor(Factor::soft(vec![w[0], w[1]], 0.8, |x| x[0] == x[1]));
    }
    g.add_factor(Factor::unary(vars[0], 0.95));
    b.bench_function("exact_enumeration_16vars", || black_box(&g).solve_exact());
}

fn bench_checker(b: &mut Bench) {
    let unit = java_syntax::parse(corpus::FIGURE3).unwrap();
    let api = standard_api();
    let units = vec![unit];
    let specs = SpecTable::from_units(&units);
    b.bench_function("plural_check_figure3", || {
        check(black_box(&units), black_box(&api), black_box(&specs))
    });
}

fn bench_gaussian(b: &mut Bench) {
    let program = corpus::table3_program(11, 200);
    let index = ProgramIndex::build([&program.inlined]);
    let api = standard_api();
    let m = program.inlined.type_named("PipelineInlined").unwrap().method_named("run").unwrap();
    let pfg = Pfg::build(&index, &api, "PipelineInlined", m);
    b.bench_function("gaussian_elimination_inlined200", || local_infer_pfg(black_box(&pfg)));
}

fn main() {
    let mut b = Bench::new("components");
    bench_parser(&mut b);
    bench_pfg(&mut b);
    bench_bp(&mut b);
    bench_checker(&mut b);
    bench_gaussian(&mut b);
    b.write_json("BENCH_components.json").expect("write BENCH_components.json");
}
