//! Criterion micro-benchmarks of the pipeline components: lexing/parsing,
//! PFG construction, belief propagation, checking and Gaussian elimination.

use anek::analysis::{Pfg, ProgramIndex};
use anek::factor_graph::{BpOptions, Factor, FactorGraph};
use anek::plural::{check, local_infer_pfg, SpecTable};
use anek::spec_lang::standard_api;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_parser(c: &mut Criterion) {
    let src = anek::corpus::FIGURE3;
    c.bench_function("parse_figure3", |b| {
        b.iter(|| anek::java_syntax::parse(black_box(src)).unwrap())
    });
    let corpus = anek::corpus::generator::generate(&anek::corpus::PmdConfig::small());
    c.bench_function("parse_small_corpus", |b| {
        b.iter(|| anek::java_syntax::parse(black_box(&corpus.source)).unwrap())
    });
}

fn bench_pfg(c: &mut Criterion) {
    let unit = anek::java_syntax::parse(anek::corpus::FIGURE3).unwrap();
    let index = ProgramIndex::build([&unit]);
    let api = standard_api();
    let t = unit.type_named("Spreadsheet").unwrap();
    let m = t.method_named("copy").unwrap();
    c.bench_function("pfg_build_copy", |b| {
        b.iter(|| Pfg::build(black_box(&index), black_box(&api), "Spreadsheet", black_box(m)))
    });
}

fn bench_bp(c: &mut Criterion) {
    // A representative loopy graph: 30-variable cycle with priors.
    let mut g = FactorGraph::new();
    let vars: Vec<_> = (0..30).map(|i| g.add_var(format!("v{i}"))).collect();
    for (i, v) in vars.iter().enumerate() {
        if i % 5 == 0 {
            g.add_factor(Factor::unary(*v, 0.9));
        }
    }
    for i in 0..30 {
        let a = vars[i];
        let b = vars[(i + 1) % 30];
        g.add_factor(Factor::soft(vec![a, b], 0.9, |x| x[0] == x[1]));
    }
    c.bench_function("bp_30var_cycle", |b| {
        b.iter(|| black_box(&g).solve(&BpOptions::default()))
    });
    c.bench_function("exact_enumeration_16vars", |b| {
        let mut g = FactorGraph::new();
        let vars: Vec<_> = (0..16).map(|i| g.add_var(format!("v{i}"))).collect();
        for w in vars.windows(2) {
            g.add_factor(Factor::soft(vec![w[0], w[1]], 0.8, |x| x[0] == x[1]));
        }
        g.add_factor(Factor::unary(vars[0], 0.95));
        b.iter(|| black_box(&g).solve_exact())
    });
}

fn bench_checker(c: &mut Criterion) {
    // (checking is fast; default sampling is fine)
    let unit = anek::java_syntax::parse(anek::corpus::FIGURE3).unwrap();
    let api = standard_api();
    let units = vec![unit];
    let specs = SpecTable::from_units(&units);
    c.bench_function("plural_check_figure3", |b| {
        b.iter(|| check(black_box(&units), black_box(&api), black_box(&specs)))
    });
}

fn bench_gaussian(c: &mut Criterion) {
    let program = anek::corpus::table3_program(11, 200);
    let index = ProgramIndex::build([&program.inlined]);
    let api = standard_api();
    let m = program.inlined.type_named("PipelineInlined").unwrap().method_named("run").unwrap();
    let pfg = Pfg::build(&index, &api, "PipelineInlined", m);
    c.bench_function("gaussian_elimination_inlined200", |b| {
        b.iter(|| local_infer_pfg(black_box(&pfg)))
    });
}

criterion_group!(benches, bench_parser, bench_pfg, bench_bp, bench_checker, bench_gaussian);
criterion_main!(benches);
