//! Benchmarks of the inference itself — the per-method model solve and the
//! whole modular worklist, at two scales. Runs on the in-tree
//! [`bench::microbench`] harness (no Criterion in the offline build).

use anek::anek_core::InferConfig;
use anek::corpus::generator::{generate, PmdConfig};
use anek::Pipeline;
use bench::microbench::Bench;
use std::hint::black_box;

fn bench_infer_figure3(b: &mut Bench) {
    let unit = java_syntax::parse(corpus::FIGURE3).unwrap();
    b.bench_function("figure3", || Pipeline::new(vec![black_box(&unit).clone()]).infer());
}

fn bench_infer_small_corpus(b: &mut Bench) {
    let corpus = generate(&PmdConfig::small());
    b.bench_function("small_corpus_default_iters", || {
        let cfg = InferConfig { max_iters: 2 * corpus.stats.methods, ..InferConfig::default() };
        Pipeline::new(black_box(&corpus.units).clone()).with_config(cfg).infer()
    });
    // The parallel worklist at several thread counts (byte-identical
    // results; only wall-clock changes) and the residual BP schedule.
    for threads in [2usize, 4] {
        b.bench_function(&format!("small_corpus_threads{threads}"), || {
            let cfg = InferConfig {
                max_iters: 2 * corpus.stats.methods,
                threads,
                ..InferConfig::default()
            };
            Pipeline::new(black_box(&corpus.units).clone()).with_config(cfg).infer()
        });
    }
    b.bench_function("small_corpus_residual", || {
        let mut cfg = InferConfig { max_iters: 2 * corpus.stats.methods, ..InferConfig::default() };
        cfg.bp.schedule = factor_graph::BpSchedule::Residual;
        Pipeline::new(black_box(&corpus.units).clone()).with_config(cfg).infer()
    });
}

fn bench_logical_budget(b: &mut Bench) {
    // The logical baseline with a tiny budget (constant work: it DNFs).
    let corpus = generate(&PmdConfig::small());
    let api = spec_lang::standard_api();
    b.bench_function("logical_budget_10k", || {
        anek_core::solve_logical(black_box(&corpus.units), &api, &InferConfig::default(), 10_000)
    });
}

fn main() {
    let mut b = Bench::new("anek_infer");
    bench_infer_figure3(&mut b);
    bench_infer_small_corpus(&mut b);
    bench_logical_budget(&mut b);
    b.write_json("BENCH_micro.json").expect("write BENCH_micro.json");
}
