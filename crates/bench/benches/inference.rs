//! Criterion benchmarks of the inference itself — the per-method model
//! solve and the whole modular worklist, at two scales.

use anek::anek_core::InferConfig;
use anek::corpus::generator::{generate, PmdConfig};
use anek::Pipeline;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_infer_figure3(c: &mut Criterion) {
    let unit = anek::java_syntax::parse(anek::corpus::FIGURE3).unwrap();
    let mut group = c.benchmark_group("anek_infer");
    group.sample_size(10);
    group.bench_function("figure3", |b| {
        b.iter(|| Pipeline::new(vec![black_box(&unit).clone()]).infer())
    });
    group.finish();
}

fn bench_infer_small_corpus(c: &mut Criterion) {
    let corpus = generate(&PmdConfig::small());
    let mut group = c.benchmark_group("anek_infer_small_corpus");
    group.sample_size(10);
    group.bench_function("default_iters", |b| {
        b.iter(|| {
            let cfg =
                InferConfig { max_iters: 2 * corpus.stats.methods, ..InferConfig::default() };
            Pipeline::new(black_box(&corpus.units).clone()).with_config(cfg).infer()
        })
    });
    group.finish();
}

fn bench_logical_budget(c: &mut Criterion) {
    // The logical baseline with a tiny budget (constant work: it DNFs).
    let corpus = generate(&PmdConfig::small());
    let api = anek::spec_lang::standard_api();
    let mut group = c.benchmark_group("logical");
    group.sample_size(20);
    group.bench_function("budget_10k", |b| {
        b.iter(|| {
            anek::anek_core::solve_logical(
                black_box(&corpus.units),
                &api,
                &InferConfig::default(),
                10_000,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_infer_figure3, bench_infer_small_corpus, bench_logical_budget);
criterion_main!(benches);
