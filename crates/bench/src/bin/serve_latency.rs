//! Serve-latency benchmark: cold full inference vs warm daemon queries.
//!
//! Drives an in-process [`ServeSession`] (the same object `anek serve`
//! wraps around a socket) against the PMD-shaped corpus:
//!
//! 1. **cold** — `load_sources` on a fresh store: full parse + solve.
//! 2. **warm query_spec** — repeated spec lookups against the loaded
//!    session; reports p50/p99 over many samples.
//! 3. **warm update_source** — one body-only edit: dirty-cone re-solve
//!    through the warm store.
//!
//! Run: `cargo run --release -p bench --bin serve_latency [-- --small]`
//!
//! Writes `BENCH_serve.json` and fails (exit 1) if the warm `query_spec`
//! p50 is not at least 10x below the cold wall clock — the daemon must
//! answer from state, not by re-running inference.

use anek::anek_core::InferConfig;
use anek::store::Store;
use anek::ServeSession;
use bench::microbench::json_str;
use bench::Scale;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Warm query_spec samples to take.
const SAMPLES: usize = 500;

fn main() {
    let scale = Scale::from_args();
    let corpus = scale.corpus();
    let sources: Vec<String> = corpus.units.iter().map(java_syntax::print_unit).collect();
    let store_dir = std::env::temp_dir().join(format!("anek-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let store = Arc::new(Store::open(&store_dir).expect("open bench store"));
    let mut session = ServeSession::new(InferConfig::default(), Some(store));

    // ---- cold: load + full inference ----
    let load = load_request(&sources);
    let t = Instant::now();
    let loaded = session.handle_line(&load);
    let cold = t.elapsed();
    assert!(loaded.response.contains("\"loaded\""), "load failed: {}", loaded.response);
    println!(
        "cold load_sources ({} classes, {} methods): {:.2} ms",
        corpus.stats.classes,
        corpus.stats.methods,
        cold.as_secs_f64() * 1e3
    );

    // ---- warm query_spec: p50/p99 over a fixed request ----
    let (class, method) = corpus
        .gold
        .keys()
        .next()
        .map(|id| (id.class.clone(), id.method.clone()))
        .expect("corpus has gold methods");
    let query =
        format!(r#"{{"id":2,"method":"query_spec","params":{{"method":"{class}.{method}"}}}}"#);
    let probe = session.handle_line(&query);
    assert!(probe.response.contains("\"requires\""), "query failed: {}", probe.response);
    let mut lat: Vec<Duration> = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let t = Instant::now();
        let h = session.handle_line(&query);
        lat.push(t.elapsed());
        std::hint::black_box(h.response);
    }
    lat.sort();
    let p50 = lat[SAMPLES / 2];
    let p99 = lat[SAMPLES * 99 / 100];
    println!(
        "warm query_spec over {SAMPLES} samples: p50 {:.1} us, p99 {:.1} us",
        p50.as_secs_f64() * 1e6,
        p99.as_secs_f64() * 1e6
    );

    // ---- warm update_source: one body edit, dirty-cone re-solve ----
    let target =
        sources.iter().position(|s| s.contains(".next();")).expect("corpus contains a next() call");
    let edited = sources[target].replacen(".next();", ".next();\nint __bench = 1;", 1);
    let update = format!(
        r#"{{"id":3,"method":"update_source","params":{{"name":{},"text":{}}}}}"#,
        json_str(&source_name(target)),
        json_str(&edited)
    );
    let t = Instant::now();
    let updated = session.handle_line(&update);
    let warm_update = t.elapsed();
    assert!(updated.response.contains("\"dirty\""), "update failed: {}", updated.response);
    println!("warm update_source (one body edit): {:.2} ms", warm_update.as_secs_f64() * 1e3);

    let speedup = cold.as_secs_f64() / p50.as_secs_f64();
    println!("cold / warm-query_spec-p50 speedup: {speedup:.0}x");

    write_bench_json(scale, &corpus.stats, cold, p50, p99, warm_update, speedup)
        .expect("write BENCH_serve.json");
    let _ = std::fs::remove_dir_all(&store_dir);

    if speedup < 10.0 {
        eprintln!("FAIL: warm query_spec p50 must be >=10x below the cold wall clock");
        std::process::exit(1);
    }
}

/// The source name `load_request` assigned to index `i`.
fn source_name(i: usize) -> String {
    format!("Unit{i:03}.java")
}

fn load_request(sources: &[String]) -> String {
    let mut s = String::from(r#"{"id":1,"method":"load_sources","params":{"sources":["#);
    for (i, src) in sources.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            r#"{{"name":{},"text":{}}}"#,
            json_str(&source_name(i)),
            json_str(src)
        ));
    }
    s.push_str("]}}");
    s
}

#[allow(clippy::too_many_arguments)]
fn write_bench_json(
    scale: Scale,
    stats: &corpus::CorpusStats,
    cold: Duration,
    p50: Duration,
    p99: Duration,
    warm_update: Duration,
    speedup: f64,
) -> std::io::Result<()> {
    let s = format!(
        "{{\n  \"bench\": \"serve\",\n  \"scale\": {},\n  \"classes\": {},\n  \"methods\": {},\n  \
         \"cold_load_ms\": {:.3},\n  \"warm_query_spec_p50_us\": {:.3},\n  \
         \"warm_query_spec_p99_us\": {:.3},\n  \"warm_query_samples\": {},\n  \
         \"warm_update_source_ms\": {:.3},\n  \"cold_over_warm_p50\": {:.1}\n}}\n",
        json_str(&format!("{scale:?}").to_lowercase()),
        stats.classes,
        stats.methods,
        cold.as_secs_f64() * 1e3,
        p50.as_secs_f64() * 1e6,
        p99.as_secs_f64() * 1e6,
        SAMPLES,
        warm_update.as_secs_f64() * 1e3,
        speedup
    );
    std::fs::write("BENCH_serve.json", &s)?;
    eprintln!("wrote BENCH_serve.json");
    Ok(())
}
