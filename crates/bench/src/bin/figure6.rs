//! Figure 6 — the Permissions Flow Graph of the `copy` method (Figure 5).
//!
//! Emits Graphviz DOT on stdout; pipe through `dot -Tsvg` to render.
//!
//! Run: `cargo run -p bench --bin figure6`

use anek::analysis::{Pfg, ProgramIndex};
use anek::spec_lang::standard_api;

fn main() {
    let unit = java_syntax::parse(corpus::FIGURE3).expect("figure 3 parses");
    let index = ProgramIndex::build([&unit]);
    let api = standard_api();
    let t = unit.type_named("Spreadsheet").expect("Spreadsheet class");
    let m = t.method_named("copy").expect("copy method");
    let pfg = Pfg::build(&index, &api, "Spreadsheet", m);
    eprintln!(
        "// PFG of Spreadsheet.copy: {} nodes, {} edges ({} splits)",
        pfg.nodes.len(),
        pfg.edges.len(),
        pfg.nodes.iter().filter(|n| pfg.is_split(n.id)).count()
    );
    print!("{}", pfg.to_dot());
}
