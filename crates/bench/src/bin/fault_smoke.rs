//! Fault-mode smoke: inference over the generated corpus with injected
//! faults must complete, isolate the damage, and cost about the same as a
//! clean run.
//!
//! Picks two real methods from a clean run, poisons one with a scripted
//! panic and one with a NaN factor table, re-runs inference, and reports
//! outcome counts plus both wall times. Exits non-zero if a fault escaped
//! its method (a healthy spec changed, or the poisoned method is not the
//! only failure).
//!
//! Run: `cargo run --release -p bench --bin fault_smoke [-- --small]`

use anek::anek_core::{FaultInjection, InferConfig};
use anek::Pipeline;
use bench::{fmt_duration, Scale};
use std::process::ExitCode;

fn main() -> ExitCode {
    let scale = Scale::from_args();
    let corpus = scale.corpus();
    println!("Fault-mode smoke on the {scale:?} corpus ({} methods).\n", corpus.stats.methods);

    let clean = Pipeline::new(corpus.units.clone()).infer();
    println!(
        "clean:   {} specs, {} failed, {} degraded, {}",
        clean.specs.len(),
        clean.failed_count(),
        clean.degraded_count(),
        fmt_duration(clean.elapsed)
    );
    if clean.failed_count() != 0 {
        eprintln!("clean run must have zero failures");
        return ExitCode::FAILURE;
    }

    let mut methods = clean.summaries.keys();
    let (Some(panicked), Some(poisoned)) = (methods.next(), methods.nth(1)) else {
        eprintln!("corpus too small for the smoke");
        return ExitCode::FAILURE;
    };
    let cfg = InferConfig {
        faults: FaultInjection {
            panic_methods: vec![panicked.to_string()],
            nan_methods: vec![poisoned.to_string()],
            ..FaultInjection::default()
        },
        ..InferConfig::default()
    };
    let faulted = Pipeline::new(corpus.units.clone()).with_config(cfg).infer();
    println!(
        "faulted: {} specs, {} failed, {} degraded, {} (panic: {panicked}, nan: {poisoned})",
        faulted.specs.len(),
        faulted.failed_count(),
        faulted.degraded_count(),
        fmt_duration(faulted.elapsed)
    );

    if faulted.failed_count() != 1 || !faulted.outcomes[panicked].is_failed() {
        eprintln!("expected exactly the panicked method to fail:\n{}", faulted.outcome_table());
        return ExitCode::FAILURE;
    }
    // Methods with no dependence on the poisoned pair keep their exact
    // specs; count how many moved (callers/callees of the pair may).
    let moved = clean
        .specs
        .iter()
        .filter(|(id, spec)| {
            *id != panicked && *id != poisoned && faulted.specs.get(id) != Some(spec)
        })
        .count();
    println!(
        "\nblast radius: {moved}/{} other specs changed; inference survived both faults.",
        clean.specs.len()
    );
    ExitCode::SUCCESS
}
