//! Bench regression gate: compares a freshly written `BENCH_infer.json`
//! against a checked-in baseline and fails (exit 1) when the fast paths
//! stopped paying.
//!
//! Checks, on the `threads == 1` rows (single-thread runs are deterministic,
//! so their wall-clock is the least noisy signal available):
//!
//! 1. Residual's `message_updates` must not exceed Sweep's — the residual
//!    schedule's whole point is to converge in fewer updates, and a
//!    scheduling bug (e.g. requeue churn) shows up here before it shows up
//!    in wall-clock.
//! 2. Per (threads=1, schedule) row, `wall_ms` must be within 20% of the
//!    baseline row recorded on the reference machine.
//!
//! Run: `bench_gate <current BENCH_infer.json> <baseline json>` (wired into
//! `ci.sh` right after the `table2 --small` smoke).

use std::process::ExitCode;

/// One parsed run row.
#[derive(Debug)]
struct Run {
    threads: u64,
    schedule: String,
    wall_ms: f64,
    message_updates: u64,
}

/// Extracts the raw token following `"key": ` in `chunk` (up to the next
/// `,` or `}`), without any JSON library: the bench files are written by
/// `table2`'s fixed formatter, so the shape is stable.
fn raw_field<'a>(chunk: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let at = chunk.find(&pat)? + pat.len();
    let rest = chunk[at..].trim_start();
    let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

fn num_field(chunk: &str, key: &str) -> Option<f64> {
    raw_field(chunk, key)?.parse().ok()
}

fn str_field(chunk: &str, key: &str) -> Option<String> {
    Some(raw_field(chunk, key)?.trim_matches('"').to_string())
}

/// Parses every `{"threads": ...}` row of a BENCH_infer.json document.
fn parse_runs(doc: &str, what: &str) -> Result<Vec<Run>, String> {
    let mut runs = Vec::new();
    for chunk in doc.split('{').skip(1) {
        if !chunk.trim_start().starts_with("\"threads\"") {
            continue;
        }
        let run = Run {
            threads: num_field(chunk, "threads").ok_or(format!("{what}: bad threads field"))?
                as u64,
            schedule: str_field(chunk, "schedule").ok_or(format!("{what}: bad schedule field"))?,
            wall_ms: num_field(chunk, "wall_ms").ok_or(format!("{what}: bad wall_ms field"))?,
            message_updates: num_field(chunk, "message_updates")
                .ok_or(format!("{what}: bad message_updates field"))?
                as u64,
        };
        runs.push(run);
    }
    if runs.is_empty() {
        return Err(format!("{what}: no runs found"));
    }
    Ok(runs)
}

fn find<'a>(runs: &'a [Run], threads: u64, schedule: &str) -> Option<&'a Run> {
    runs.iter().find(|r| r.threads == threads && r.schedule == schedule)
}

fn gate(current: &[Run], baseline: &[Run]) -> Result<(), String> {
    let sweep = find(current, 1, "sweep").ok_or("current: missing threads=1 sweep run")?;
    let residual = find(current, 1, "residual").ok_or("current: missing threads=1 residual run")?;

    if residual.message_updates > sweep.message_updates {
        return Err(format!(
            "residual performed MORE message updates than sweep ({} > {}) — \
             the prioritized schedule has stopped paying for itself",
            residual.message_updates, sweep.message_updates
        ));
    }
    println!(
        "updates ok: residual {} <= sweep {}",
        residual.message_updates, sweep.message_updates
    );

    for run in [sweep, residual] {
        let Some(base) = find(baseline, 1, &run.schedule) else {
            return Err(format!("baseline: missing threads=1 {} run", run.schedule));
        };
        let limit = base.wall_ms * 1.2;
        if run.wall_ms > limit {
            return Err(format!(
                "{} wall-clock regressed: {:.0}ms > 120% of baseline {:.0}ms",
                run.schedule, run.wall_ms, base.wall_ms
            ));
        }
        println!(
            "wall ok: {} {:.0}ms within 20% of baseline {:.0}ms",
            run.schedule, run.wall_ms, base.wall_ms
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let (Some(current_path), Some(baseline_path)) = (args.next(), args.next()) else {
        eprintln!("usage: bench_gate <current BENCH_infer.json> <baseline json>");
        return ExitCode::FAILURE;
    };
    let read = |p: &str| std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"));
    let result = (|| {
        let current = parse_runs(&read(&current_path)?, "current")?;
        let baseline = parse_runs(&read(&baseline_path)?, "baseline")?;
        gate(&current, &baseline)
    })();
    match result {
        Ok(()) => {
            println!("bench regression gate ok");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("bench regression gate failed: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"{
  "bench": "infer",
  "scale": "small",
  "runs": [
    {"threads": 1, "schedule": "sweep", "wall_ms": 5000.0, "message_updates": 1611888, "annotations": 47},
    {"threads": 1, "schedule": "residual", "wall_ms": 3500.0, "message_updates": 419176, "annotations": 47}
  ]
}"#;

    #[test]
    fn parses_rows_and_passes_against_itself() {
        let runs = parse_runs(DOC, "t").unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].schedule, "sweep");
        assert_eq!(runs[1].message_updates, 419176);
        gate(&runs, &parse_runs(DOC, "t").unwrap()).unwrap();
    }

    #[test]
    fn fails_when_residual_updates_exceed_sweep() {
        let flipped = DOC.replace("419176", "9999999");
        let runs = parse_runs(&flipped, "t").unwrap();
        let base = parse_runs(DOC, "t").unwrap();
        assert!(gate(&runs, &base).unwrap_err().contains("MORE message updates"));
    }

    #[test]
    fn fails_on_wall_clock_regression() {
        let slow = DOC.replace("3500.0", "9500.0");
        let runs = parse_runs(&slow, "t").unwrap();
        let base = parse_runs(DOC, "t").unwrap();
        assert!(gate(&runs, &base).unwrap_err().contains("regressed"));
    }
}
