//! Ablation: the branch-sensitivity extension (the paper's future work).
//!
//! §4.2 attributes ANEK's fourth PMD warning to its lack of
//! branch-sensitivity: "ANEK … cannot infer the correct specification for a
//! method that is only called in true branches of a conditional." This
//! harness runs the corpus' branch-trap helper — whose returned iterator is
//! provably in `HASNEXT` only through the `hasNext()` test — with the
//! extension off (paper behaviour) and on.
//!
//! Run: `cargo run --release -p bench --bin ablation_branch [-- --small]`

use anek::analysis::MethodId;
use anek::anek_core::InferConfig;
use anek::plural::{check, SpecTable};
use anek::spec_lang::{standard_api, SpecTarget};
use anek::Pipeline;
use bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let corpus = scale.corpus();
    let api = standard_api();
    let trap = MethodId::new("Registry0", "createReadyIter");

    println!("Ablation: branch-sensitivity on the {scale:?} corpus.\n");
    for bs in [false, true] {
        let cfg = InferConfig {
            branch_sensitive: bs,
            max_iters: 3 * corpus.stats.methods,
            ..InferConfig::default()
        };
        let inference = Pipeline::new(corpus.units.clone()).with_config(cfg).infer();
        let spec = &inference.specs[&trap];
        let atom = spec.ensures.for_target(&SpecTarget::Result);
        let table = SpecTable::unannotated(&corpus.units).overlay_inferred(&inference.specs);
        let warnings = check(&corpus.units, &api, &table);
        println!(
            "branch_sensitive = {bs:5} : {trap} ensures {:28}  warnings = {}",
            atom.map(ToString::to_string).unwrap_or_else(|| "(none)".into()),
            warnings.warnings.len()
        );
    }
    println!(
        "\nWith the extension the trap helper's spec gains `in HASNEXT` and the\n\
         fourth warning disappears — ANEK matches the hand-annotated count."
    );
}
