//! Table 2 — the main experiment: annotations, warnings and time for the
//! four configurations.
//!
//! Paper values (PMD):
//!
//! | Method       | Annotations | Warnings | Time Taken |
//! |--------------|-------------|----------|------------|
//! | Original     | 0           | 45       | 0          |
//! | Bierhoff \[4\] | 26          | 3        | 75 min     |
//! | Anek         | 31          | 4        | 3min 47sec |
//! | Anek Logical | N/A         | N/A      | DNF        |
//!
//! Run: `cargo run --release -p bench --bin table2 [-- --small]`
//!
//! Besides the human-readable table, writes `BENCH_infer.json`: wall time,
//! model solves, BP iterations and message updates for the inference at
//! threads {1, 8} under both BP schedules.

use anek::anek_core::{solve_logical, InferConfig, InferResult, LogicalOutcome};
use anek::factor_graph::BpSchedule;
use anek::plural::{check, SpecTable};
use anek::spec_lang::standard_api;
use anek::Pipeline;
use bench::microbench::json_str;
use bench::{fmt_duration, row, Scale};

fn main() {
    let scale = Scale::from_args();
    let corpus = scale.corpus();
    let api = standard_api();
    println!(
        "Table 2. Results on the {:?}-scale corpus ({} classes, {} methods, {} next() calls).\n",
        scale, corpus.stats.classes, corpus.stats.methods, corpus.stats.next_calls
    );

    // ---- Original: no annotations at all ----
    let original = check(&corpus.units, &api, &SpecTable::unannotated(&corpus.units));

    // ---- Gold (plays Bierhoff's hand annotations; 75 min is the paper's
    //      reported manual effort) ----
    let mut gold_table = SpecTable::unannotated(&corpus.units);
    for (id, spec) in &corpus.gold {
        gold_table.insert(id.clone(), spec.clone());
    }
    let gold = check(&corpus.units, &api, &gold_table);

    // ---- Anek: infer with the modular probabilistic algorithm, across
    //      the thread/schedule matrix (sweep @ 1 thread is the paper
    //      configuration and fills the table) ----
    let matrix = [
        (1usize, BpSchedule::Sweep),
        (8, BpSchedule::Sweep),
        (1, BpSchedule::Residual),
        (8, BpSchedule::Residual),
    ];
    let mut runs: Vec<(usize, BpSchedule, InferResult)> = Vec::new();
    for (threads, schedule) in matrix {
        let mut cfg = InferConfig { threads, ..InferConfig::default() };
        cfg.max_iters = 3 * corpus.stats.methods;
        cfg.bp.schedule = schedule;
        let result = Pipeline::new(corpus.units.clone()).with_config(cfg).infer();
        eprintln!(
            "anek infer [threads={threads} schedule={schedule}]: {} in {:?} \
             ({} solves, {} BP iterations, {} message updates, \
             {} speculative / {} discarded, merge stalled {:?})",
            result.annotation_count(),
            result.elapsed,
            result.solves,
            result.bp_iterations,
            result.message_updates,
            result.speculative_solves,
            result.discarded_solves,
            result.commit_stall
        );
        runs.push((threads, schedule, result));
    }
    let inference = runs[0].2.clone();
    let anek_table = SpecTable::unannotated(&corpus.units).overlay_inferred(&inference.specs);
    let anek = check(&corpus.units, &api, &anek_table);
    // Count protocol-relevant annotations: non-empty inferred specs on the
    // iterator-API classes (the registries and utilities the gold set
    // covers) — the paper's 31 were likewise the iterator-related subset of
    // what ANEK produced.
    let protocol_annotations = inference
        .specs
        .iter()
        .filter(|(id, s)| {
            !s.is_empty() && (id.class.starts_with("Registry") || id.class == "IterUtils")
        })
        .count();

    // ---- Anek Logical: hard constraints, whole program, budgeted ----
    let budget: u64 = match scale {
        Scale::Paper => 20_000_000,
        Scale::Small => 200_000,
    };
    let start = std::time::Instant::now();
    let logical = solve_logical(&corpus.units, &api, &InferConfig::default(), budget);
    let logical_elapsed = start.elapsed();
    let (logical_ann, logical_warn, logical_time) = match logical.outcome {
        LogicalOutcome::DidNotFinish => ("N/A".into(), "N/A".into(), "DNF".to_string()),
        LogicalOutcome::Unsatisfiable => {
            ("N/A".into(), "N/A".into(), format!("UNSAT ({})", fmt_duration(logical_elapsed)))
        }
        LogicalOutcome::Satisfiable { .. } => {
            ("?".into(), "?".into(), fmt_duration(logical_elapsed))
        }
    };

    let w = &[14, 12, 9, 14];
    row(&["Method", "Annotations", "Warnings", "Time Taken"], w);
    row(
        &[
            "-".repeat(14).as_str(),
            "-".repeat(12).as_str(),
            "-".repeat(9).as_str(),
            "-".repeat(14).as_str(),
        ],
        w,
    );
    row(&["Original", "0", &original.warnings.len().to_string(), "0"], w);
    row(
        &[
            "Gold (hand)",
            &corpus.gold.len().to_string(),
            &gold.warnings.len().to_string(),
            "75min (paper)",
        ],
        w,
    );
    row(
        &[
            "Anek",
            &protocol_annotations.to_string(),
            &anek.warnings.len().to_string(),
            &fmt_duration(inference.elapsed),
        ],
        w,
    );
    let logical_ann: String = logical_ann;
    let logical_warn: String = logical_warn;
    row(&["Anek Logical", &logical_ann, &logical_warn, &logical_time], w);

    println!(
        "\nLogical mode explored {} steps over {} variables / {} hard constraints;\n\
         peak decision-stack memory {:.2} GB (limit: 2 GB, the paper's machine — \n\
         its logical run likewise \"ran out of memory before a fixed point\").",
        logical.steps,
        logical.variables,
        logical.constraints,
        logical.peak_memory as f64 / 1e9
    );
    println!(
        "Anek performed {} model solves; {} total inferred specs ({} protocol-relevant).",
        inference.solves,
        inference.annotation_count(),
        protocol_annotations
    );
    let extra = anek.warnings.len() as i64 - gold.warnings.len() as i64;
    println!(
        "Warning delta vs hand annotations: {extra:+} (paper: +1, from ANEK's branch-insensitivity)."
    );

    write_bench_json(scale, &corpus.stats, &runs).expect("write BENCH_infer.json");
}

/// Emits the machine-readable inference benchmark record.
fn write_bench_json(
    scale: Scale,
    stats: &corpus::CorpusStats,
    runs: &[(usize, BpSchedule, InferResult)],
) -> std::io::Result<()> {
    let mut s = String::new();
    s.push_str(&format!(
        "{{\n  \"bench\": \"infer\",\n  \"scale\": {},\n  \"classes\": {},\n  \"methods\": {},\n  \"runs\": [",
        json_str(&format!("{scale:?}").to_lowercase()),
        stats.classes,
        stats.methods
    ));
    for (i, (threads, schedule, r)) in runs.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"threads\": {threads}, \"schedule\": {}, \"wall_ms\": {:.3}, \
             \"solves\": {}, \"bp_iterations\": {}, \"message_updates\": {}, \
             \"speculative_solves\": {}, \"discarded_solves\": {}, \
             \"commit_stall_ms\": {:.3}, \"annotations\": {}}}",
            json_str(&schedule.to_string()),
            r.elapsed.as_secs_f64() * 1e3,
            r.solves,
            r.bp_iterations,
            r.message_updates,
            r.speculative_solves,
            r.discarded_solves,
            r.commit_stall.as_secs_f64() * 1e3,
            r.annotation_count()
        ));
    }
    s.push_str("\n  ]\n}\n");
    std::fs::write("BENCH_infer.json", &s)?;
    eprintln!("wrote {} runs to BENCH_infer.json", runs.len());
    Ok(())
}
