//! One-off: dump bit-exact per-method marginals of the Figure 3 models.
//!
//! Regenerate the fixtures with:
//!
//! ```console
//! cargo run --release -p bench --bin golden_dump \
//!     > crates/anek-core/tests/golden/figure3_sweep.txt
//! cargo run --release -p bench --bin golden_dump -- residual \
//!     > crates/anek-core/tests/golden/figure3_residual.txt
//! ```
//!
//! The sweep fixture pins the historical (pre-arena) numerics bit-for-bit;
//! the residual fixture pins the bucketed batch schedule's deterministic
//! commit ordering — same graphs, same bits on every run and machine.

use anek::analysis::{Pfg, ProgramIndex};
use anek::anek_core::{merged_states, InferConfig, MethodModel, ModelCtx};
use anek::factor_graph::BpSchedule;
use anek::spec_lang::{spec_of_method, standard_api};
use std::collections::BTreeMap;

fn main() {
    let schedule = match std::env::args().nth(1).as_deref() {
        Some("residual") => BpSchedule::Residual,
        Some("sweep") | None => BpSchedule::Sweep,
        Some(other) => {
            eprintln!("usage: golden_dump [sweep|residual] (got `{other}`)");
            std::process::exit(2);
        }
    };
    let unit = java_syntax::parse(corpus::FIGURE3).unwrap();
    let index = ProgramIndex::build([&unit]);
    let api = standard_api();
    let states = merged_states(std::slice::from_ref(&unit), &api);
    let ctx = ModelCtx { index: &index, api: &api, states: &states };
    let mut cfg = InferConfig::default();
    cfg.bp.schedule = schedule;
    let empty = BTreeMap::new();
    for t in &unit.types {
        for m in t.methods() {
            if m.body.is_none() {
                continue;
            }
            let pfg = Pfg::build(&index, &api, &t.name, m);
            let spec = spec_of_method(m).unwrap_or_default();
            let model = MethodModel::build(ctx, pfg, &spec, m.is_constructor(), &empty, &cfg);
            let marginals = model.graph.solve(&cfg.bp);
            let map = model.graph.solve_map(&cfg.bp);
            println!("method {}.{} vars {}", t.name, m.name, model.graph.num_vars());
            for (i, (p, q)) in marginals.as_slice().iter().zip(map.as_slice()).enumerate() {
                println!("{i} {:016x} {:016x}", p.to_bits(), q.to_bits());
            }
        }
    }
}
