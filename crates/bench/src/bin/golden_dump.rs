//! One-off: dump bit-exact Sweep marginals of the Figure 3 models.
//!
//! Regenerate the fixture with:
//!
//! ```console
//! cargo run --release -p bench --bin golden_dump \
//!     > crates/anek-core/tests/golden/figure3_sweep.txt
//! ```

use anek::analysis::{Pfg, ProgramIndex};
use anek::anek_core::{merged_states, InferConfig, MethodModel, ModelCtx};
use anek::spec_lang::{spec_of_method, standard_api};
use std::collections::BTreeMap;

fn main() {
    let unit = java_syntax::parse(corpus::FIGURE3).unwrap();
    let index = ProgramIndex::build([&unit]);
    let api = standard_api();
    let states = merged_states(std::slice::from_ref(&unit), &api);
    let ctx = ModelCtx { index: &index, api: &api, states: &states };
    let cfg = InferConfig::default();
    let empty = BTreeMap::new();
    for t in &unit.types {
        for m in t.methods() {
            if m.body.is_none() {
                continue;
            }
            let pfg = Pfg::build(&index, &api, &t.name, m);
            let spec = spec_of_method(m).unwrap_or_default();
            let model = MethodModel::build(ctx, pfg, &spec, m.is_constructor(), &empty, &cfg);
            let marginals = model.graph.solve(&cfg.bp);
            let map = model.graph.solve_map(&cfg.bp);
            println!("method {}.{} vars {}", t.name, m.name, model.graph.num_vars());
            for (i, (p, q)) in marginals.as_slice().iter().zip(map.as_slice()).enumerate() {
                println!("{i} {:016x} {:016x}", p.to_bits(), q.to_bits());
            }
        }
    }
}
