//! Figure 3 + §1 walkthrough — the conflicting-constraint running example.
//!
//! Prints the probabilistic evidence on `createColIter`'s return value and
//! the resolution (ALIVE over HASNEXT, unique via H3).
//!
//! Run: `cargo run --release -p bench --bin figure3`

use anek::analysis::MethodId;
use anek::spec_lang::{PermissionKind, SpecTarget};
use anek::Pipeline;

fn main() {
    let pipeline = Pipeline::from_sources(&[corpus::FIGURE3]).expect("figure 3 parses");
    let report = pipeline.run();
    let id = MethodId::new("Row", "createColIter");
    let summary = &report.inference.summaries[&id];
    let result = summary.result.as_ref().expect("iterator result");

    println!("Figure 3 — evidence on the return value of Row.createColIter()\n");
    println!("permission kinds:");
    for k in PermissionKind::ALL {
        println!("  p({k:9}) = {:.3}", result.kind(k));
    }
    println!("abstract states:");
    for s in ["ALIVE", "HASNEXT", "END"] {
        println!("  p({s:8}) = {:.3}", result.state(s));
    }
    let spec = &report.inference.specs[&id];
    println!(
        "\nextracted: ensures {}",
        spec.ensures.for_target(&SpecTarget::Result).expect("result atom")
    );
    println!("\nPLURAL warnings after inference ({} total):", report.warnings_after.warnings.len());
    for w in &report.warnings_after.warnings {
        println!("  {w}");
    }
}
