//! Ablation: what the heuristic constraints (H1–H5) buy.
//!
//! §1 discusses exactly this on `createColIter`: without H3 the best
//! inferable return permission is `full` (what `next()` needs); with H3 the
//! idiomatic `unique` wins. This harness runs inference on Figure 3 with
//! heuristics enabled and neutralized and prints the inferred result
//! permission of `createColIter` under each.
//!
//! Run: `cargo run --release -p bench --bin ablation_heuristics`

use anek::analysis::MethodId;
use anek::anek_core::{infer, InferConfig};
use anek::spec_lang::{standard_api, SpecTarget};

fn main() {
    // The §1 scenario in its pure form: "should the createColIter method be
    // inferred to return a permission of type full or unique, in the
    // absence of any other constraints?" Here the iterator comes from an
    // *unannotated* program source, so no API spec answers the question --
    // only H3 can.
    let unit = java_syntax::parse(
        r#"class Source {
            Iterator<Integer> raw() {
                return null;
            }
        }
        class Maker {
            Iterator<Integer> createWrapped(Source s) {
                return s.raw();
            }
            void consume(Maker m, Source s) {
                Iterator<Integer> it = m.createWrapped(s);
                while (it.hasNext()) { it.next(); }
            }
        }"#,
    )
    .expect("ablation program parses");
    let api = standard_api();
    let id = MethodId::new("Maker", "createWrapped");

    let with_h = InferConfig::default();
    // Neutralize the heuristics: uniform priors instead of elevated ones.
    let without_h = InferConfig {
        p_constructor_unique: 0.5,
        p_create_unique: 0.5,
        p_setter_readonly: 0.5,
        h_thread_shared: 0.51,
        h_pre_post: 0.51,
        ..InferConfig::default()
    };

    println!("Ablation: heuristic H3 on a create* method with no API evidence.\n");
    for (label, cfg) in [("with heuristics", with_h), ("without heuristics", without_h)] {
        let result = infer(std::slice::from_ref(&unit), &api, &cfg);
        let spec = &result.specs[&id];
        let atom = spec.ensures.for_target(&SpecTarget::Result);
        let summary = &result.summaries[&id];
        let res = summary.result.as_ref().expect("result slot");
        println!("{label}:");
        println!(
            "    ensures result: {}",
            atom.map(ToString::to_string).unwrap_or_else(|| "(nothing above threshold)".into())
        );
        println!(
            "    p(unique)={:.3}  p(full)={:.3}",
            res.kind(spec_lang::PermissionKind::Unique),
            res.kind(spec_lang::PermissionKind::Full),
        );
    }
    println!(
        "\nH3 (create* returns unique) is what turns a merely-satisfying `full`\n\
         into the strongest, idiomatic `unique` — the paper's §1 argument for\n\
         heuristic constraints."
    );
}
