//! `anek check` engine benchmark: the bit-vector typestate interpreter vs
//! the PLURAL fractional-permission checker, plus the end-to-end effect of
//! the `--screen` inference pre-pass.
//!
//! Both engines consume the same front end (parse → `TypeEnv` →
//! event-CFG), so the interesting number is the *steady-state per-method
//! checking cost* with that shared front end factored out: bitstate runs
//! precompiled u64 masks over the CFG, PLURAL joins `BTreeSet<String>`
//! state sets and fraction matrices. The screening claim rides on this
//! ratio — the pre-pass is only free if bitstate is orders of magnitude
//! cheaper than the work it saves.
//!
//! Run: `cargo run --release -p bench --bin check_bench [-- --small]`
//!
//! Writes `BENCH_check.json` (`"bench": "check"`): per-method ns for both
//! engines, the screening hit-rate, and inference wall-clock with and
//! without `--screen` at threads {1, 8}. The binary itself enforces the
//! headline criterion: bitstate must be >= 100x faster per method than
//! PLURAL once the shared front end is subtracted.

use anek::analysis::cfg::Cfg;
use anek::analysis::types::{MethodId, ProgramIndex, TypeEnv};
use anek::anek_core::{InferConfig, InferResult};
use anek::bitstate::{Machine, MethodProgram, Scratch, Verdict};
use anek::plural::SpecTable;
use anek::spec_lang::standard_api;
use anek::Pipeline;
use bench::microbench::json_str;
use bench::Scale;
use std::time::Instant;

fn main() {
    let scale = Scale::from_args();
    let corpus = scale.corpus();
    let api = standard_api();
    let methods = corpus.stats.methods;
    println!(
        "check-engine benchmark on the {:?}-scale corpus ({} classes, {} methods)\n",
        scale, corpus.stats.classes, methods
    );

    // The realistic checking workload: the gold (hand) annotation set.
    let mut table = SpecTable::unannotated(&corpus.units);
    for (id, spec) in &corpus.gold {
        table.insert(id.clone(), spec.clone());
    }

    let reps: u32 = match scale {
        Scale::Paper => 5,
        Scale::Small => 50,
    };

    // ---- Shared front end, measured alone so it can be subtracted ----
    let front = time(reps, || {
        let index = ProgramIndex::build(corpus.units.iter());
        let mut built = 0usize;
        for unit in &corpus.units {
            for (t, m) in unit.methods() {
                if m.body.is_none() {
                    continue;
                }
                let mut env = TypeEnv::for_method(&index, &api, &t.name, m);
                let cfg = Cfg::build(m, &mut env);
                built += cfg.blocks.len().min(1);
            }
        }
        built
    });

    // ---- bitstate: compile method programs once, time the checking ----
    // Compilation resolves callee effects and flattens the CFG to dense
    // instructions; `run` is the steady-state per-method checking cost
    // the screening pre-pass pays (PLURAL has no compile/run split — its
    // per-method cost below *is* its checking cost).
    let index = ProgramIndex::build(corpus.units.iter());
    let specs = anek::check::program_specs(&table, &corpus.units);
    let machine = Machine::compile(&api, &specs);
    let mut programs: Vec<MethodProgram> = Vec::new();
    let mut reports: Vec<(MethodId, Cfg, Vec<String>, bool)> = Vec::new();
    for unit in &corpus.units {
        for (t, m) in unit.methods() {
            if m.body.is_none() {
                continue;
            }
            let mut env = TypeEnv::for_method(&index, &api, &t.name, m);
            let cfg = Cfg::build(m, &mut env);
            let params: Vec<String> = m.params.iter().map(|p| p.name.clone()).collect();
            programs.push(machine.compile_method(&cfg, &params, m.modifiers.is_static));
            reports.push((MethodId::new(&t.name, &m.name), cfg, params, m.modifiers.is_static));
        }
    }
    assert!(programs.iter().all(|p| !p.wide), "corpus methods fit the dense encoding");
    let mut scratch = Scratch::new();
    let bit = time(reps.max(20), || {
        let mut undecided = 0usize;
        for prog in &programs {
            let summary = machine.run(prog, &mut scratch);
            undecided += usize::from(summary.verdict != Verdict::ProvablyClean);
        }
        undecided
    });
    // End-to-end (per-method compile + run), for the honest total.
    let bit_e2e = time(reps, || {
        let mut findings = 0usize;
        for (id, cfg, params, is_static) in &reports {
            findings += machine.check_method(id, cfg, params, *is_static).findings.len();
        }
        findings
    });

    // ---- PLURAL end to end (it has no compile/check split) ----
    let plural_total = time(reps, || plural::check(&corpus.units, &api, &table).warnings.len());

    let checked = programs.len();
    let bit_ns = bit / checked as f64;
    let bit_e2e_ns = bit_e2e / checked as f64;
    let plural_ns = plural_total / checked as f64;
    let front_ns = front / checked as f64;
    let speedup = plural_ns / bit_ns;
    println!("per-method checking cost ({checked} bodied methods, best of {reps} reps):");
    println!("  shared front end (TypeEnv + event CFG)  {front_ns:>12.0} ns/method");
    println!("  bitstate checking (compiled programs)   {bit_ns:>12.0} ns/method");
    println!("  bitstate end to end (compile + check)   {bit_e2e_ns:>12.0} ns/method");
    println!("  plural::check (end to end)              {plural_ns:>12.0} ns/method");
    println!(
        "  speedup: bitstate checking is {speedup:.0}x faster per method than plural::check\n"
    );

    // ---- End-to-end inference with and without the screening pre-pass ----
    let mut infer_runs: Vec<(usize, bool, InferResult)> = Vec::new();
    for threads in [1usize, 8] {
        for screen in [false, true] {
            let mut cfg = InferConfig { threads, screen, ..InferConfig::default() };
            cfg.max_iters = 3 * methods;
            let result = Pipeline::new(corpus.units.clone()).with_config(cfg).infer();
            println!(
                "infer [threads={threads} screen={screen}]: {} solves, {} screened, {:?}",
                result.solves, result.screened_methods, result.elapsed
            );
            infer_runs.push((threads, screen, result));
        }
    }
    let screened =
        infer_runs.iter().find(|(_, screen, _)| *screen).map_or(0, |(_, _, r)| r.screened_methods);
    let rate = screened as f64 / methods as f64;
    println!("\nscreening rate: {screened}/{methods} methods ({:.1}%)", rate * 100.0);

    write_bench_json(
        scale,
        &corpus.stats,
        bit_ns,
        bit_e2e_ns,
        plural_ns,
        front_ns,
        screened,
        &infer_runs,
    )
    .expect("write BENCH_check.json");

    // The headline criterion holds at paper scale, where the corpus has
    // the paper's mix of protocol-free and protocol-heavy methods; the
    // tiny smoke corpus over-represents iterator loops.
    if matches!(scale, Scale::Paper) {
        assert!(
            speedup >= 100.0,
            "bitstate checking must be >= 100x faster per method than plural::check \
             (measured {speedup:.0}x)"
        );
        println!("criterion ok: {speedup:.0}x >= 100x");
    }
}

/// Best-of-`reps` wall time of `f` in nanoseconds (a black-boxed result
/// keeps the work from being optimized away).
fn time<R>(reps: u32, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        let r = f();
        let ns = start.elapsed().as_nanos() as f64;
        std::hint::black_box(r);
        best = best.min(ns);
    }
    best
}

#[allow(clippy::too_many_arguments)]
fn write_bench_json(
    scale: Scale,
    stats: &corpus::CorpusStats,
    bit_ns: f64,
    bit_e2e_ns: f64,
    plural_ns: f64,
    front_ns: f64,
    screened: usize,
    infer_runs: &[(usize, bool, InferResult)],
) -> std::io::Result<()> {
    let mut s = String::new();
    s.push_str(&format!(
        "{{\n  \"bench\": \"check\",\n  \"scale\": {},\n  \"classes\": {},\n  \"methods\": {},\n",
        json_str(&format!("{scale:?}").to_lowercase()),
        stats.classes,
        stats.methods
    ));
    s.push_str(&format!(
        "  \"bitstate_ns_per_method\": {bit_ns:.0},\n  \"bitstate_e2e_ns_per_method\": {bit_e2e_ns:.0},\n  \"plural_ns_per_method\": {plural_ns:.0},\n  \"frontend_ns_per_method\": {front_ns:.0},\n  \"speedup\": {:.1},\n",
        plural_ns / bit_ns
    ));
    s.push_str(&format!(
        "  \"screened_methods\": {screened},\n  \"screening_rate\": {:.4},\n  \"infer_runs\": [",
        screened as f64 / stats.methods as f64
    ));
    for (i, (threads, screen, r)) in infer_runs.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"threads\": {threads}, \"screen\": {screen}, \"wall_ms\": {:.3}, \
             \"solves\": {}, \"screened_methods\": {}}}",
            r.elapsed.as_secs_f64() * 1e3,
            r.solves,
            r.screened_methods
        ));
    }
    s.push_str("\n  ]\n}\n");
    std::fs::write("BENCH_check.json", &s)?;
    eprintln!("wrote BENCH_check.json");
    Ok(())
}
