//! Table 4 — comparison of ANEK's inferred annotations with the hand
//! ("gold") annotations.
//!
//! Paper values (vs Bierhoff's hand specs on PMD):
//!
//! | Description                          | Count |
//! |--------------------------------------|-------|
//! | Same                                 | 14    |
//! | ANEK Added Helpful Spec.             | 6     |
//! | ANEK Added Constraining Spec.        | 1     |
//! | ANEK Removed Spec.                   | 3     |
//! | ANEK Changed Spec., More Restrictive | 6     |
//! | ANEK Changed Spec., Wrong            | 3     |
//!
//! Run: `cargo run --release -p bench --bin table4 [-- --small]`

use anek::anek_core::{compare_specs, DiffTally, SpecDiff};
use anek::spec_lang::MethodSpec;
use anek::Pipeline;
use bench::{row, Scale};

fn main() {
    let scale = Scale::from_args();
    let corpus = scale.corpus();

    let mut pipeline = Pipeline::new(corpus.units.clone());
    pipeline.config.max_iters = 3 * corpus.stats.methods;
    let inference = pipeline.infer();

    let mut tally = DiffTally::new();
    let empty = MethodSpec::default();
    for (id, truth) in &corpus.truth {
        let gold = corpus.gold.get(id).unwrap_or(&empty);
        let inferred = inference.specs.get(id).unwrap_or(&empty);
        if let Some(diff) = compare_specs(gold, inferred, Some(truth)) {
            tally.record(diff);
        }
    }

    println!("Table 4. Comparison of inferred annotations with the gold set ({scale:?} scale).\n");
    let paper = [14usize, 6, 1, 3, 6, 3];
    let w = &[40, 8, 10];
    row(&["Description", "paper", "measured"], w);
    row(&["-".repeat(40).as_str(), "-".repeat(8).as_str(), "-".repeat(10).as_str()], w);
    for (d, p) in SpecDiff::ALL.iter().zip(paper) {
        row(&[d.label(), &p.to_string(), &tally.count(*d).to_string()], w);
    }
    println!(
        "\n{} methods compared ({} gold-annotated, {} with ground truth).",
        tally.total(),
        corpus.gold.len(),
        corpus.truth.len()
    );
    println!(
        "Shape claim: Same + Helpful dominates; Wrong/Removed is a small tail \
         (absolute counts differ with corpus composition)."
    );
}
