//! Table 1 — statistics of the program under inference.
//!
//! Paper values (PMD): 38,483 lines, 463 classes, 3,120 methods, 170 calls
//! to `Iterator.next()`. Our corpus is the PMD stand-in generator at paper
//! scale (see DESIGN.md for the substitution rationale).
//!
//! Run: `cargo run --release -p bench --bin table1 [-- --small]`

use bench::{row, Scale};

fn main() {
    let scale = Scale::from_args();
    let corpus = scale.corpus();
    let s = corpus.stats;

    println!("Table 1. Simple statistics for the corpus ({scale:?} scale).\n");
    let w = &[28, 14, 14];
    row(&["", "paper (PMD)", "measured"], w);
    row(&["-".repeat(28).as_str(), "-".repeat(14).as_str(), "-".repeat(14).as_str()], w);
    let paper: [(&str, &str); 4] = [
        ("Lines of Source", "38,483"),
        ("Number of Classes", "463"),
        ("Number of Methods", "3,120"),
        ("Calls to Iterator.next()", "170"),
    ];
    let measured = [
        s.lines.to_string(),
        s.classes.to_string(),
        s.methods.to_string(),
        s.next_calls.to_string(),
    ];
    for ((label, p), m) in paper.iter().zip(measured.iter()) {
        row(&[label, p, m], w);
    }
    if scale == Scale::Small {
        println!("\n(small scale: paper column is for reference only)");
    }
}
