//! Ablation: modular `ANEK-INFER` vs the whole-program model `Φ_P`
//! (Definition 1).
//!
//! The paper argues the two agree at a fixpoint while modularity buys
//! scalability and incrementality. This harness runs both on the same
//! programs and reports agreement and the size of the monolithic graph.
//!
//! Run: `cargo run --release -p bench --bin ablation_modular [-- --small]`

use anek::anek_core::{infer, infer_global, InferConfig};
use anek::spec_lang::standard_api;
use bench::{fmt_duration, row, Scale};

fn main() {
    let scale = Scale::from_args();
    let cfg = InferConfig::default();
    let api = standard_api();

    // Figure 3 plus a medium slice of the corpus (whole-program BP on the
    // full paper corpus would be a single enormous graph — which is the
    // point of this ablation).
    let fig3 = java_syntax_unit(corpus::FIGURE3);
    let corpus = corpus::generator::generate(&corpus::PmdConfig::small());
    let medium: Vec<_> = corpus.units.iter().take(6).cloned().collect();

    println!("Ablation: modular ANEK-INFER vs whole-program Φ_P ({scale:?}).\n");
    let w = &[12, 10, 10, 12, 12, 10];
    row(&["program", "methods", "agree", "modular", "global", "solves"], w);
    row(
        &[
            "-".repeat(12).as_str(),
            "-".repeat(10).as_str(),
            "-".repeat(10).as_str(),
            "-".repeat(12).as_str(),
            "-".repeat(12).as_str(),
            "-".repeat(10).as_str(),
        ],
        w,
    );

    for (name, units) in [("figure3", vec![fig3]), ("corpus6", medium)] {
        let mut mod_cfg = cfg.clone();
        mod_cfg.max_iters = 6 * units.iter().map(|u| u.methods().count()).sum::<usize>().max(1);
        let modular = infer(&units, &api, &mod_cfg);
        let global = infer_global(&units, &api, &cfg);
        // Agreement: same extracted kind per (method, requires/ensures, target).
        let mut total = 0usize;
        let mut agree = 0usize;
        for (id, mspec) in &modular.specs {
            let gspec = &global.specs[id];
            for (mc, gc) in [(&mspec.requires, &gspec.requires), (&mspec.ensures, &gspec.ensures)] {
                for atom in &mc.atoms {
                    total += 1;
                    if gc.for_target(&atom.target).map(|a| a.kind) == Some(atom.kind) {
                        agree += 1;
                    }
                }
            }
        }
        let n_methods: usize = units.iter().map(|u| u.methods().count()).sum();
        row(
            &[
                name,
                &n_methods.to_string(),
                &format!("{agree}/{total}"),
                &fmt_duration(modular.elapsed),
                &fmt_duration(global.elapsed),
                &modular.solves.to_string(),
            ],
            w,
        );
    }
    println!(
        "\nModular summaries reach the same conclusions as the monolithic solve\n\
         (the paper's fixpoint equivalence), while each modular model stays small\n\
         and re-solvable when one method changes."
    );
}

fn java_syntax_unit(src: &str) -> java_syntax::CompilationUnit {
    java_syntax::parse(src).expect("embedded source parses")
}
