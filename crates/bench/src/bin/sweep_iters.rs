//! The §3.4 trade-off: "Varying the number of iterations allows for a
//! trade-off between specification accuracy and scalability."
//!
//! Sweeps `MaxIters` on the small corpus and reports annotations inferred,
//! exact matches against gold, and wall time per setting.
//!
//! Run: `cargo run --release -p bench --bin sweep_iters [-- --small]`

use anek::anek_core::{compare_specs, InferConfig, SpecDiff};
use anek::spec_lang::MethodSpec;
use anek::Pipeline;
use bench::{fmt_duration, row, Scale};

fn main() {
    let scale = Scale::from_args();
    let corpus = scale.corpus();
    let n = corpus.stats.methods;
    println!("MaxIters sweep on the {scale:?} corpus ({n} methods).\n");
    let w = &[10, 8, 13, 12, 10];
    row(&["MaxIters", "solves", "annotations", "gold-match", "time"], w);
    row(
        &[
            "-".repeat(10).as_str(),
            "-".repeat(8).as_str(),
            "-".repeat(13).as_str(),
            "-".repeat(12).as_str(),
            "-".repeat(10).as_str(),
        ],
        w,
    );

    let empty = MethodSpec::default();
    for factor in [0.25f64, 0.5, 1.0, 2.0, 4.0] {
        let max_iters = ((n as f64 * factor) as usize).max(1);
        let cfg = InferConfig { max_iters, ..InferConfig::default() };
        let inference = Pipeline::new(corpus.units.clone()).with_config(cfg).infer();
        let mut same = 0usize;
        for (id, gold) in &corpus.gold {
            let inferred = inference.specs.get(id).unwrap_or(&empty);
            if compare_specs(gold, inferred, corpus.truth.get(id)) == Some(SpecDiff::Same) {
                same += 1;
            }
        }
        row(
            &[
                &max_iters.to_string(),
                &inference.solves.to_string(),
                &inference.annotation_count().to_string(),
                &format!("{same}/{}", corpus.gold.len()),
                &fmt_duration(inference.elapsed),
            ],
            w,
        );
    }
    println!("\nAccuracy saturates once every method has been (re)analyzed — the paper's");
    println!("approximation argument for stopping before a fixpoint.");
}
