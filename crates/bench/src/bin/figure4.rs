//! Figure 4 — the five permission kinds and the legal-split relation.
//!
//! Run: `cargo run -p bench --bin figure4`

use anek::spec_lang::PermissionKind;
use bench::row;

fn main() {
    println!("Figure 4. The five permission kinds.\n");
    let w = &[11, 12, 14, 14];
    row(&["kind", "this access", "other aliases", "others write"], w);
    row(
        &[
            "-".repeat(11).as_str(),
            "-".repeat(12).as_str(),
            "-".repeat(14).as_str(),
            "-".repeat(14).as_str(),
        ],
        w,
    );
    for k in PermissionKind::ALL {
        row(
            &[
                k.as_str(),
                if k.allows_write() { "read/write" } else { "read-only" },
                if k.allows_other_aliases() { "may exist" } else { "none" },
                if k.allows_other_writers() { "yes" } else { "no" },
            ],
            w,
        );
    }

    println!("\nLegal weakenings (row may split an edge to column):\n");
    let mut header = vec!["".to_string()];
    header.extend(PermissionKind::ALL.iter().map(ToString::to_string));
    let widths = vec![11usize; 6];
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    row(&header_refs, &widths);
    for a in PermissionKind::ALL {
        let mut cols = vec![a.to_string()];
        for b in PermissionKind::ALL {
            cols.push(if a.can_weaken_to(b) { "yes".into() } else { ".".into() });
        }
        let refs: Vec<&str> = cols.iter().map(String::as_str).collect();
        row(&refs, &widths);
    }

    println!("\nExample sound splits of `unique`:");
    for parts in [
        vec![PermissionKind::Full, PermissionKind::Pure],
        vec![PermissionKind::Share, PermissionKind::Share],
        vec![PermissionKind::Immutable, PermissionKind::Immutable, PermissionKind::Immutable],
    ] {
        println!(
            "  unique -> {:?} : {}",
            parts.iter().map(|k| k.as_str()).collect::<Vec<_>>(),
            PermissionKind::Unique.can_split_into(&parts)
        );
    }
    println!(
        "  unique -> [\"full\", \"full\"] : {}",
        PermissionKind::Unique.can_split_into(&[PermissionKind::Full, PermissionKind::Full])
    );
}
