//! Figure 8 — prior distributions derived from an existing specification.
//!
//! For `@Perm(requires = "full(this) in HASNEXT", ...)` on `next()`, the
//! receiver-precondition variables get the priors of the paper's table:
//! B(0.9) for the asserted kind/state and B(0.1) for the alternatives.
//!
//! Run: `cargo run -p bench --bin figure8`

use anek::anek_core::InferConfig;
use anek::spec_lang::{parse_clause, PermissionKind, SpecTarget};

fn main() {
    let cfg = InferConfig::default();
    let clause = parse_clause("full(this) in HASNEXT").expect("figure 8 clause");
    let atom = clause.for_target(&SpecTarget::This).expect("this atom");

    println!("Figure 8. Priors for the receiver precondition of next().\n");
    println!("{:<14} {:<20}", "Random Var.", "Prior Distribution");
    println!("{:-<14} {:-<20}", "", "");
    for k in PermissionKind::ALL {
        let p = if k == atom.kind { cfg.p_spec_high } else { cfg.p_spec_low };
        println!("{:<14} B({p})", format!("X{k}"));
    }
    for s in ["HASNEXT", "END", "ALIVE"] {
        let p = if s == atom.effective_state() { cfg.p_spec_high } else { cfg.p_spec_low };
        println!("{:<14} B({p})", format!("X{s}"));
    }
}
