//! Figure 1 — the iterator protocol as a state machine, reconstructed from
//! the annotated API model (Figure 2's specs): states, method-induced
//! transitions, and dynamic state tests.
//!
//! Run: `cargo run -p bench --bin figure1`

use anek::spec_lang::{standard_api, SpecTarget, ALIVE};

fn main() {
    let api = standard_api();
    for protocol in ["Iterator", "Stream"] {
        let Some(space) = api.states.get(protocol) else { continue };
        println!("== {protocol} protocol ==");
        println!("  states: {}", space.states().join(", "));
        for m in api.iter().filter(|m| m.type_name == protocol) {
            let req = m
                .spec
                .requires
                .for_target(&SpecTarget::This)
                .map(|a| format!("{} in {}", a.kind, a.effective_state()))
                .unwrap_or_else(|| "-".into());
            let ens = m
                .spec
                .ensures
                .for_target(&SpecTarget::This)
                .map(|a| a.effective_state().to_string())
                .unwrap_or_else(|| ALIVE.into());
            println!("  {:10} : requires {req:22} -> {ens}", m.method_name);
            if let Some(t) = &m.spec.true_indicates {
                println!("  {:10}   returns true  => {t}", "");
            }
            if let Some(f) = &m.spec.false_indicates {
                println!("  {:10}   returns false => {f}", "");
            }
        }
        // Constructors/factories producing the protocol type.
        for m in api.iter().filter(|m| m.return_type.as_deref() == Some(protocol)) {
            if let Some(a) = m.spec.ensures.for_target(&SpecTarget::Result) {
                println!(
                    "  {}.{}() creates: {} in {}",
                    m.type_name,
                    m.method_name,
                    a.kind,
                    a.effective_state()
                );
            }
        }
        println!();
    }
}
