//! Serve-load benchmark: a deterministic multi-session overload trace
//! against the concurrent `anek serve` server.
//!
//! Three named sessions share one server and one store. The trace has four
//! phases:
//!
//! 1. **load** — each session loads its own two-unit workspace.
//! 2. **storm** — with the scheduler held, each session stacks six edits to
//!    the same source (five must coalesce), posts one already-expired
//!    `deadline_ms:0` edit (must cancel), and padding mutators push the
//!    queue past the admission cap (the tail must be rejected with
//!    `retry_after_ms`). Releasing the hold drains the burst; deep-queue
//!    dequeues run under the screening shed tier.
//! 3. **settle** — one canonical edit per source brings every session to a
//!    known final state; queries then answer from it.
//! 4. **verify** — a serial, store-less [`ServeSession`] replays each
//!    session's canonical trace; the concurrent server's query responses
//!    must be byte-identical, with zero `failed` outcomes.
//!
//! Because the storm is enqueued while the scheduler is held from a single
//! thread, the coalesced / rejected / cancelled counts are exact constants,
//! not timing-dependent.
//!
//! Run: `cargo run --release -p bench --bin serve_load [-- --small]`
//!
//! Writes `BENCH_serve_load.json`; exits 1 if any invariant fails or the
//! warm query p99 exceeds the bound.

use anek::anek_core::InferConfig;
use anek::json::{self, Json};
use anek::store::Store;
use anek::{Client, SendStatus, ServeSession, Server, ServerOptions, ShedPolicy};
use bench::microbench::json_str;
use bench::Scale;
use std::sync::Arc;
use std::time::{Duration, Instant};

const SESSIONS: usize = 3;
const UNITS_PER_SESSION: usize = 2;
const STACKED_EDITS: usize = 6;
const PADDING_LOADS: usize = 12;
const SCREEN_DEPTH: usize = 4;
const REJECT_DEPTH: usize = 10;
/// Warm queries answer from session state; even a loaded CI box has slack.
const QUERY_P99_BOUND_MS: f64 = 2000.0;

/// One session's client plus its request/response log. Labels let the
/// verify phase find specific responses without positional bookkeeping.
struct Lane {
    name: String,
    client: Client,
    labels: Vec<&'static str>,
    sent_at: Vec<Instant>,
    responses: Vec<(String, Instant)>,
    /// The canonical trace the serial reference replays.
    canonical: Vec<String>,
}

impl Lane {
    fn send(&mut self, label: &'static str, line: &str) -> SendStatus {
        self.labels.push(label);
        self.sent_at.push(Instant::now());
        self.client.send(line)
    }

    /// Blocks until every sent request has its response.
    fn drain(&mut self) {
        while self.responses.len() < self.sent_at.len() {
            let r = self.client.recv().expect("server hung up mid-trace");
            self.responses.push(r);
        }
    }

    fn response(&self, label: &str) -> &str {
        self.labels
            .iter()
            .position(|l| *l == label)
            .map(|i| self.responses[i].0.as_str())
            .unwrap_or_else(|| panic!("no `{label}` response in lane {}", self.name))
    }

    fn latencies(&self) -> impl Iterator<Item = (&'static str, Duration)> + '_ {
        self.labels
            .iter()
            .zip(self.sent_at.iter().zip(self.responses.iter()))
            .map(|(label, (sent, (_, ready)))| (*label, ready.saturating_duration_since(*sent)))
    }
}

fn main() {
    let scale = Scale::from_args();
    let corpus = scale.corpus();
    let printed: Vec<String> = corpus.units.iter().map(java_syntax::print_unit).collect();
    // Prefer units with a `.next();` call so the stacked edits are real
    // semantic edits, not no-ops.
    let mut pool: Vec<String> =
        printed.iter().filter(|s| s.contains(".next();")).cloned().collect();
    if pool.len() < SESSIONS * UNITS_PER_SESSION {
        pool = printed;
    }
    assert!(pool.len() >= SESSIONS * UNITS_PER_SESSION, "corpus too small for the load trace");

    let store_dir = std::env::temp_dir().join(format!("anek-bench-load-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let store = Arc::new(Store::open(&store_dir).expect("open bench store"));
    let policy =
        ShedPolicy { screen_depth: SCREEN_DEPTH, reject_depth: REJECT_DEPTH, retry_after_ms: 25 };
    let server = Server::start(
        InferConfig::default(),
        Some(store),
        ServerOptions { workers: 4, policy, ..ServerOptions::default() },
    );

    let mut lanes: Vec<Lane> = (0..SESSIONS)
        .map(|s| Lane {
            name: format!("s{s}"),
            client: server.connect(),
            labels: Vec::new(),
            sent_at: Vec::new(),
            responses: Vec::new(),
            canonical: Vec::new(),
        })
        .collect();
    let unit = |s: usize, u: usize| pool[s * UNITS_PER_SESSION + u].clone();
    let edit = |s: usize, u: usize, k: usize| {
        unit(s, u).replacen(".next();", &format!(".next(); int __edit_{k} = {k};"), 1)
    };

    // ---- phase 1: load ----
    let t0 = Instant::now();
    for (s, lane) in lanes.iter_mut().enumerate() {
        let line =
            load_line(1, &format!("s{s}"), &[("u0.java", &unit(s, 0)), ("u1.java", &unit(s, 1))]);
        lane.canonical.push(line.clone());
        assert_eq!(lane.send("load", &line), SendStatus::Queued);
    }
    for lane in &mut lanes {
        lane.drain();
        assert!(lane.response("load").contains("\"loaded\":2"), "{}", lane.response("load"));
    }

    // ---- phase 2: storm (held, single-threaded enqueue → exact counts) ----
    server.scheduler().hold(true);
    let mut rejected_sends = 0usize;
    for (s, lane) in lanes.iter_mut().enumerate() {
        for k in 1..=STACKED_EDITS {
            let line = update_line(300 + k, &format!("s{s}"), "u0.java", &edit(s, 0, k), None);
            lane.send("storm-edit", &line);
        }
    }
    for (s, lane) in lanes.iter_mut().enumerate() {
        let line = update_line(350, &format!("s{s}"), "u1.java", &edit(s, 1, 1), Some(0));
        lane.send("storm-deadline", &line);
    }
    for i in 0..PADDING_LOADS {
        let s = i % SESSIONS;
        let line = load_line(
            360 + i,
            &format!("s{s}"),
            &[("u0.java", &unit(s, 0)), ("u1.java", &unit(s, 1))],
        );
        if let SendStatus::Rejected { .. } = lanes[s].send("storm-padding", &line) {
            rejected_sends += 1;
        }
    }
    server.scheduler().hold(false);
    for lane in &mut lanes {
        lane.drain();
    }

    // ---- phase 3: settle to the canonical final state ----
    for (s, lane) in lanes.iter_mut().enumerate() {
        let line = update_line(100, &format!("s{s}"), "u0.java", &edit(s, 0, STACKED_EDITS), None);
        lane.canonical.push(line.clone());
        lane.send("settle-u0", &line);
    }
    for lane in &mut lanes {
        lane.drain();
    }
    for (s, lane) in lanes.iter_mut().enumerate() {
        let line = update_line(101, &format!("s{s}"), "u1.java", &edit(s, 1, 1), None);
        lane.canonical.push(line.clone());
        lane.send("settle-u1", &line);
    }
    for lane in &mut lanes {
        lane.drain();
    }
    for (s, lane) in lanes.iter_mut().enumerate() {
        let line =
            format!(r#"{{"id":200,"method":"query_outcomes","params":{{"session":"s{s}"}}}}"#);
        lane.canonical.push(line.clone());
        lane.send("query-outcomes", &line);
    }
    for lane in &mut lanes {
        lane.drain();
    }
    for (s, lane) in lanes.iter_mut().enumerate() {
        let first = first_method(lane.response("query-outcomes"));
        let line = format!(
            r#"{{"id":201,"method":"query_spec","params":{{"session":"s{s}","method":{}}}}}"#,
            json_str(&first)
        );
        lane.canonical.push(line.clone());
        lane.send("query-spec", &line);
    }
    for lane in &mut lanes {
        lane.drain();
    }
    let wall = t0.elapsed();

    // Snapshot counters before shutdown consumes the server.
    let [_, _, rejected, coalesced, shed_screen, deadline_cancelled, peak_depth] =
        server.scheduler().counters.snapshot();
    let evictions = server.registry().evictions.load(std::sync::atomic::Ordering::Relaxed);

    // ---- phase 4: serial reference replay + byte-identity ----
    let mut byte_identical = true;
    let mut failed_outcomes = 0usize;
    for lane in &lanes {
        let mut serial = ServeSession::new(InferConfig::default(), None);
        let mut serial_queries: Vec<String> = Vec::new();
        for line in &lane.canonical {
            let handled = serial.handle_line(line);
            if line.contains("\"query_outcomes\"") || line.contains("\"query_spec\"") {
                serial_queries.push(handled.response);
            }
        }
        let concurrent = [lane.response("query-outcomes"), lane.response("query-spec")];
        for (serial_line, concurrent_line) in serial_queries.iter().zip(concurrent) {
            if serial_line != concurrent_line {
                byte_identical = false;
                eprintln!(
                    "MISMATCH in {}:\n  serial:     {serial_line}\n  concurrent: {concurrent_line}",
                    lane.name
                );
            }
        }
        failed_outcomes += lane.response("query-outcomes").matches("\"status\":\"failed\"").count();
    }

    // ---- latency distribution ----
    let mut all: Vec<Duration> = lanes.iter().flat_map(|l| l.latencies().map(|(_, d)| d)).collect();
    let mut queries: Vec<Duration> = lanes
        .iter()
        .flat_map(|l| l.latencies().filter(|(label, _)| label.starts_with("query")).map(|(_, d)| d))
        .collect();
    all.sort();
    queries.sort();
    let pct = |v: &[Duration], p: usize| v[(v.len() - 1) * p / 100];
    let requests = all.len();
    let (p50, p99) = (pct(&all, 50), pct(&all, 99));
    let (qp50, qp99) = (pct(&queries, 50), pct(&queries, 99));

    // ---- shutdown: graceful drain ----
    lanes[0].send("shutdown", r#"{"id":900,"method":"shutdown"}"#);
    for lane in &mut lanes {
        lane.drain();
        lane.client.close();
    }
    server.join();
    let peak_rss_kb = peak_rss_kb().unwrap_or(0);

    println!(
        "serve_load: {requests} requests over {SESSIONS} sessions in {:.2} s",
        wall.as_secs_f64()
    );
    println!(
        "  p50 {:.2} ms  p99 {:.2} ms  (queries: p50 {:.1} us  p99 {:.1} us)",
        p50.as_secs_f64() * 1e3,
        p99.as_secs_f64() * 1e3,
        qp50.as_secs_f64() * 1e6,
        qp99.as_secs_f64() * 1e6
    );
    println!(
        "  coalesced {coalesced}  rejected {rejected}  shed_screen {shed_screen}  \
         deadline_cancelled {deadline_cancelled}  peak_depth {peak_depth}  evictions {evictions}"
    );
    println!("  byte_identical {byte_identical}  failed_outcomes {failed_outcomes}  peak RSS {peak_rss_kb} kB");

    write_bench_json(
        scale,
        requests,
        wall,
        [p50, p99, qp50, qp99],
        [coalesced, rejected, shed_screen, deadline_cancelled, peak_depth, evictions],
        byte_identical,
        failed_outcomes,
        peak_rss_kb,
    )
    .expect("write BENCH_serve_load.json");

    // ---- invariants (the CI smoke gate relies on this exit code) ----
    let expected_coalesced = ((STACKED_EDITS - 1) * SESSIONS) as u64;
    let mut failures = Vec::new();
    if !byte_identical {
        failures.push("concurrent query responses drifted from the serial replay".to_string());
    }
    if failed_outcomes != 0 {
        failures.push(format!("{failed_outcomes} load-attributable failed outcomes"));
    }
    if coalesced != expected_coalesced {
        failures.push(format!("coalesced = {coalesced}, expected exactly {expected_coalesced}"));
    }
    if rejected < 1 || rejected != rejected_sends as u64 {
        failures.push(format!("rejected = {rejected} (client saw {rejected_sends})"));
    }
    if deadline_cancelled != SESSIONS as u64 {
        failures.push(format!("deadline_cancelled = {deadline_cancelled}, expected {SESSIONS}"));
    }
    if shed_screen < SESSIONS as u64 {
        failures.push(format!("shed_screen = {shed_screen}, expected >= {SESSIONS}"));
    }
    if qp99.as_secs_f64() * 1e3 > QUERY_P99_BOUND_MS {
        failures.push(format!(
            "query p99 {:.1} ms exceeds the {QUERY_P99_BOUND_MS} ms bound",
            qp99.as_secs_f64() * 1e3
        ));
    }
    for f in &failures {
        eprintln!("FAIL: {f}");
    }
    if !failures.is_empty() {
        std::process::exit(1);
    }
}

fn load_line(id: usize, session: &str, sources: &[(&str, &String)]) -> String {
    let mut s = format!(
        r#"{{"id":{id},"method":"load_sources","params":{{"session":{},"sources":["#,
        json_str(session)
    );
    for (i, (name, text)) in sources.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(r#"{{"name":{},"text":{}}}"#, json_str(name), json_str(text)));
    }
    s.push_str("]}}");
    s
}

fn update_line(
    id: usize,
    session: &str,
    name: &str,
    text: &str,
    deadline_ms: Option<u64>,
) -> String {
    let deadline = deadline_ms.map_or(String::new(), |ms| format!(r#","deadline_ms":{ms}"#));
    format!(
        r#"{{"id":{id},"method":"update_source","params":{{"session":{},"name":{},"text":{}{deadline}}}}}"#,
        json_str(session),
        json_str(name),
        json_str(text)
    )
}

/// The first method name in a `query_outcomes` response.
fn first_method(response: &str) -> String {
    let v = json::parse(response).expect("outcomes response parses");
    v.get("result")
        .and_then(|r| r.get("outcomes"))
        .and_then(Json::as_arr)
        .and_then(|a| a.first())
        .and_then(|o| o.get("method"))
        .and_then(Json::as_str)
        .expect("at least one outcome")
        .to_string()
}

/// Peak resident set size from `/proc/self/status` (Linux).
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
}

#[allow(clippy::too_many_arguments)]
fn write_bench_json(
    scale: Scale,
    requests: usize,
    wall: Duration,
    [p50, p99, qp50, qp99]: [Duration; 4],
    [coalesced, rejected, shed_screen, deadline_cancelled, peak_depth, evictions]: [u64; 6],
    byte_identical: bool,
    failed_outcomes: usize,
    peak_rss_kb: u64,
) -> std::io::Result<()> {
    let s = format!(
        "{{\n  \"bench\": \"serve_load\",\n  \"scale\": {},\n  \"sessions\": {SESSIONS},\n  \
         \"requests\": {requests},\n  \"wall_s\": {:.3},\n  \"p50_ms\": {:.3},\n  \
         \"p99_ms\": {:.3},\n  \"query_p50_us\": {:.3},\n  \"query_p99_us\": {:.3},\n  \
         \"coalesced\": {coalesced},\n  \"rejected\": {rejected},\n  \
         \"shed_screen\": {shed_screen},\n  \"deadline_cancelled\": {deadline_cancelled},\n  \
         \"peak_depth\": {peak_depth},\n  \"evictions\": {evictions},\n  \
         \"byte_identical\": {byte_identical},\n  \"failed_outcomes\": {failed_outcomes},\n  \
         \"peak_rss_kb\": {peak_rss_kb}\n}}\n",
        json_str(&format!("{scale:?}").to_lowercase()),
        wall.as_secs_f64(),
        p50.as_secs_f64() * 1e3,
        p99.as_secs_f64() * 1e3,
        qp50.as_secs_f64() * 1e6,
        qp99.as_secs_f64() * 1e6,
    );
    std::fs::write("BENCH_serve_load.json", &s)?;
    eprintln!("wrote BENCH_serve_load.json");
    Ok(())
}
