//! Table 3 — ANEK vs PLURAL's local fractional inference.
//!
//! Paper values, on a 400-line branchy program (inlined for PLURAL):
//!
//! | Inference Tool         | Time Taken | Warnings |
//! |------------------------|------------|----------|
//! | ANEK                   | 22 sec     | 0        |
//! | Plural Local Inference | 181 sec    | 0        |
//!
//! Run: `cargo run --release -p bench --bin table3 [-- --small]`

use anek::analysis::{Pfg, ProgramIndex};
use anek::corpus::table3_program;
use anek::plural::local_infer_pfg;
use anek::spec_lang::standard_api;
use anek::Pipeline;
use bench::{fmt_duration, row, Scale};
use std::time::Instant;

fn main() {
    let scale = Scale::from_args();
    let target_lines = match scale {
        Scale::Paper => 400,
        Scale::Small => 120,
    };
    let program = table3_program(11, target_lines);
    let n_methods = program.modular.methods().count();
    println!(
        "Table 3. {}-line branchy program: {} short methods (ANEK) vs one inlined method (PLURAL).\n",
        program.modular_source.lines().count(),
        n_methods
    );

    // ANEK on the modular form.
    let mut pipeline = Pipeline::new(vec![program.modular.clone()]);
    pipeline.config.max_iters = 3 * n_methods;
    let start = Instant::now();
    let inference = pipeline.infer();
    let anek_time = start.elapsed();

    // PLURAL local inference on the inlined form. The Gaussian elimination
    // runs over the whole method's fraction variables at once.
    let index = ProgramIndex::build([&program.inlined]);
    let api = standard_api();
    let m = program
        .inlined
        .type_named("PipelineInlined")
        .expect("inlined class")
        .method_named("run")
        .expect("inlined method");
    let start = Instant::now();
    let pfg = Pfg::build(&index, &api, "PipelineInlined", m);
    let local = local_infer_pfg(&pfg);
    let local_time = start.elapsed();

    let w = &[24, 12, 10];
    row(&["Inference Tool", "Time Taken", "Warnings"], w);
    row(&["-".repeat(24).as_str(), "-".repeat(12).as_str(), "-".repeat(10).as_str()], w);
    row(
        &[
            "ANEK",
            &fmt_duration(anek_time),
            if inference.annotation_count() > 0 { "0" } else { "?" },
        ],
        w,
    );
    row(
        &[
            "Plural Local Inference",
            &fmt_duration(local_time),
            if local.satisfiable { "0" } else { "UNSAT" },
        ],
        w,
    );

    println!("\nANEK: {} model solves over {} methods.", inference.solves, n_methods);
    println!(
        "Local inference: {} fraction variables, {} equations, rank {} (exact rational elimination).",
        local.variables, local.equations, local.rank
    );
    let ratio = local_time.as_secs_f64() / anek_time.as_secs_f64().max(1e-9);
    println!("Speed ratio (local/anek): {ratio:.2}x (paper: ~9x in ANEK's favour).");
    println!(
        "NOTE: our exact-rational *sparse* elimination is far faster than PLURAL's\n\
         2009-era implementation, so the absolute ordering does not transfer; the\n\
         scaling argument does — the whole-method system grows superlinearly with\n\
         inlined size while ANEK's per-method models stay constant:"
    );
    println!("\n  inlined size vs local-inference cost:");
    for lines in [200usize, 400, 800, 1600] {
        let p = table3_program(11, lines);
        let index = ProgramIndex::build([&p.inlined]);
        let m = p
            .inlined
            .type_named("PipelineInlined")
            .expect("class")
            .method_named("run")
            .expect("method");
        let pfg = Pfg::build(&index, &api, "PipelineInlined", m);
        let li = local_infer_pfg(&pfg);
        println!(
            "    {:>5} lines: {:>6} vars, {:>6} equations, rank {:>6}, {}",
            lines,
            li.variables,
            li.equations,
            li.rank,
            fmt_duration(li.elapsed)
        );
    }
}
