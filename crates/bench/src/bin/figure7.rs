//! Figure 7 — the PFG of a method with field accesses (dotted receiver
//! links on read/write nodes).
//!
//! Run: `cargo run -p bench --bin figure7`

use anek::analysis::{Pfg, ProgramIndex};
use anek::spec_lang::standard_api;

fn main() {
    let unit = java_syntax::parse(corpus::FIGURE7).expect("figure 7 parses");
    let index = ProgramIndex::build([&unit]);
    let api = standard_api();
    let m = unit.type_named("C").expect("C").method_named("accessFields").expect("method");
    let pfg = Pfg::build(&index, &api, "C", m);
    print!("{}", pfg.to_dot());
}
