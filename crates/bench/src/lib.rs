//! # bench
//!
//! The experiment harness: one binary per table and figure of the paper's
//! evaluation (§4), plus Criterion micro-benchmarks. Run binaries with
//! `cargo run --release -p bench --bin <name> [-- --small]`.
//!
//! | binary       | regenerates                                        |
//! |--------------|----------------------------------------------------|
//! | `table1`     | Table 1 — corpus statistics                        |
//! | `table2`     | Table 2 — Original / Gold / Anek / Anek-Logical    |
//! | `table3`     | Table 3 — ANEK vs PLURAL local inference           |
//! | `table4`     | Table 4 — spec-quality comparison                  |
//! | `figure3`    | §1's conflicting-evidence walkthrough              |
//! | `figure4`    | the five permission kinds and legal splits         |
//! | `figure6`    | DOT of the `copy` method's PFG                     |
//! | `figure7`    | DOT of the field-access PFG                        |
//! | `figure8`    | prior distributions from an existing `@Perm`       |
//! | `sweep_iters`| §3.4's accuracy-vs-iterations trade-off            |
//! | `figure1`    | the iterator/stream protocol state machines        |
//! | `ablation_modular` | modular ANEK-INFER vs whole-program `Φ_P`    |
//! | `ablation_heuristics` | H3 on/off (`full` vs `unique`, §1)        |
//! | `ablation_branch` | the branch-sensitivity future-work extension  |

#![warn(missing_docs)]

use corpus::generator::{generate, PmdConfig, PmdCorpus};

/// Whether a harness binary runs at paper scale or a fast small scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Table 1 shape: 463 classes / 3,120 methods / 170 `next()` calls.
    Paper,
    /// A miniature corpus for quick runs and CI.
    Small,
}

impl Scale {
    /// Parses `--small` from the process arguments (default: paper scale).
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--small") {
            Scale::Small
        } else {
            Scale::Paper
        }
    }

    /// The corpus configuration for this scale.
    pub fn config(self) -> PmdConfig {
        match self {
            Scale::Paper => PmdConfig::paper(),
            Scale::Small => PmdConfig::small(),
        }
    }

    /// Generates the corpus for this scale.
    pub fn corpus(self) -> PmdCorpus {
        generate(&self.config())
    }
}

/// Formats a duration the way the paper does ("3min 47sec" / "22 sec").
pub fn fmt_duration(d: std::time::Duration) -> String {
    let secs = d.as_secs();
    if secs >= 60 {
        format!("{}min {:02}sec", secs / 60, secs % 60)
    } else if secs >= 1 {
        format!("{}.{:01}sec", secs, d.subsec_millis() / 100)
    } else {
        format!("{}ms", d.as_millis())
    }
}

/// Prints a ruled table row.
pub fn row(cols: &[&str], widths: &[usize]) {
    let mut line = String::new();
    for (c, w) in cols.iter().zip(widths) {
        line.push_str(&format!("{c:<w$}  "));
    }
    println!("{}", line.trim_end());
}

pub mod microbench;
