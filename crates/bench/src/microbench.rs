//! A minimal, dependency-free micro-benchmark harness.
//!
//! The offline build cannot pull Criterion, so `cargo bench` runs on this
//! instead: per benchmark it warms up, picks an iteration count targeting a
//! fixed measurement window, takes several samples and reports the median
//! and spread. Deliberately simple — no outlier rejection, no plots — but
//! deterministic in shape and good enough to see order-of-magnitude
//! regressions.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Number of timed samples per benchmark.
const SAMPLES: usize = 11;
/// Target wall-clock time for one sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(150);
/// Warm-up budget before calibration.
const WARMUP: Duration = Duration::from_millis(200);

/// One finished benchmark measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name within the group.
    pub name: String,
    /// Median time per iteration, nanoseconds.
    pub median_ns: u128,
    /// Fastest sample, nanoseconds per iteration.
    pub min_ns: u128,
    /// Slowest sample, nanoseconds per iteration.
    pub max_ns: u128,
    /// Iterations per timed sample (calibrated).
    pub iters_per_sample: u64,
}

/// A named group of benchmarks (mirrors the Criterion API shape we used).
pub struct Bench {
    group: String,
    results: Vec<BenchResult>,
}

impl Bench {
    /// A new benchmark group with the binary/group name.
    pub fn new(group: impl Into<String>) -> Bench {
        let group = group.into();
        println!("== {group} ==");
        Bench { group, results: Vec::new() }
    }

    /// Times `f`, printing median time per iteration.
    pub fn bench_function<R>(&mut self, name: &str, mut f: impl FnMut() -> R) -> &mut Bench {
        // Warm up and calibrate how many iterations fill one sample window.
        let warm_start = Instant::now();
        let mut iters_per_sample = 0u64;
        while warm_start.elapsed() < WARMUP || iters_per_sample == 0 {
            let t = Instant::now();
            black_box(f());
            let one = t.elapsed().max(Duration::from_nanos(1));
            iters_per_sample = (SAMPLE_TARGET.as_nanos() / one.as_nanos()).max(1) as u64;
            if one >= SAMPLE_TARGET {
                break;
            }
        }

        let mut samples: Vec<Duration> = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            samples.push(t.elapsed() / iters_per_sample as u32);
        }
        samples.sort();
        let median = samples[SAMPLES / 2];
        let min = samples[0];
        let max = samples[SAMPLES - 1];
        println!(
            "{}/{name}: median {} (min {}, max {}, {iters_per_sample} iters/sample)",
            self.group,
            fmt(median),
            fmt(min),
            fmt(max),
        );
        self.results.push(BenchResult {
            name: name.to_string(),
            median_ns: median.as_nanos(),
            min_ns: min.as_nanos(),
            max_ns: max.as_nanos(),
            iters_per_sample,
        });
        self
    }

    /// All measurements taken so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Renders the group's results as a machine-readable JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("{{\n  \"group\": {},\n  \"results\": [", json_str(&self.group)));
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"name\": {}, \"median_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \
                 \"iters_per_sample\": {}}}",
                json_str(&r.name),
                r.median_ns,
                r.min_ns,
                r.max_ns,
                r.iters_per_sample
            ));
        }
        s.push_str("\n  ]\n}\n");
        s
    }

    /// Writes [`Bench::to_json`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())?;
        println!("wrote {} results to {path}", self.results.len());
        Ok(())
    }
}

/// Escapes a string as a JSON literal (the offline build has no serde).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn fmt(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.2}us", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_returns_self() {
        let mut b = Bench::new("test");
        let mut hits = 0u64;
        b.bench_function("noop", || hits += 1).bench_function("noop2", || ());
        assert!(hits > 0);
    }
}
