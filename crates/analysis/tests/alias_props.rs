//! Property tests for the must-alias lattice (`analysis::alias`).
//!
//! `AliasMap::join` is the merge operator of both the permission-flow
//! builder and the bit-vector typestate interpreter, so its lattice laws
//! are load-bearing: a non-commutative join would make analysis results
//! depend on CFG edge order, and a join that *invents* must-alias facts
//! would let the checkers prove receiver states from aliases that only
//! hold on one path.

use analysis::alias::{AliasMap, AliasToken, TokenSource};
use analysis::events::Place;
use java_syntax::ast::ExprId;
use prng::{forall, Rng};

const CASES: u32 = 300;

fn place(rng: &mut Rng) -> Place {
    match rng.gen_index(0..6) {
        0 => Place::This,
        1 => Place::Temp(ExprId(rng.gen_index(0..4) as u32)),
        n => Place::Local(format!("v{n}")),
    }
}

/// A random map over a small universe of places and tokens — small on
/// purpose, so collisions (shared tokens, rebinding, disagreement between
/// two maps) happen constantly.
fn alias_map(rng: &mut Rng) -> AliasMap {
    let mut m = AliasMap::new();
    for _ in 0..rng.gen_index(0..8) {
        let p = place(rng);
        let t = AliasToken(rng.gen_index(0..4) as u32);
        m.bind(p, t);
    }
    m
}

#[test]
fn join_is_commutative() {
    forall("join commutative", CASES, |rng| {
        let a = alias_map(rng);
        let b = alias_map(rng);
        assert_eq!(a.join(&b), b.join(&a), "a = {a:?}, b = {b:?}");
    });
}

#[test]
fn join_is_idempotent() {
    forall("join idempotent", CASES, |rng| {
        let a = alias_map(rng);
        assert_eq!(a.join(&a), a);
    });
}

#[test]
fn join_is_associative() {
    forall("join associative", CASES, |rng| {
        let a = alias_map(rng);
        let b = alias_map(rng);
        let c = alias_map(rng);
        assert_eq!(a.join(&b).join(&c), a.join(&b.join(&c)));
    });
}

#[test]
fn join_is_monotone_wrt_must_alias() {
    // The join never invents facts: any must-alias pair that holds after
    // the join held in BOTH inputs (join moves down the lattice).
    forall("join monotone", CASES, |rng| {
        let a = alias_map(rng);
        let b = alias_map(rng);
        let joined = a.join(&b);
        let places: Vec<Place> = joined.iter().map(|(p, _)| p.clone()).collect();
        for p in &places {
            for q in &places {
                if joined.must_alias(p, q) {
                    assert!(
                        a.must_alias(p, q) && b.must_alias(p, q),
                        "join invented {p:?} ~ {q:?}: a = {a:?}, b = {b:?}"
                    );
                }
            }
        }
        // And every binding the join kept agrees with both sides.
        for (p, t) in joined.iter() {
            assert_eq!(a.resolve(p), Some(t));
            assert_eq!(b.resolve(p), Some(t));
        }
    });
}

#[test]
fn copy_establishes_alias_and_remove_breaks_it() {
    forall("copy/remove interaction", CASES, |rng| {
        let mut m = alias_map(rng);
        let mut source = TokenSource::new();
        // Skip tokens the random map may already use.
        for _ in 0..8 {
            source.fresh();
        }
        let src = place(rng);
        let dest = place(rng);
        if dest == src {
            return;
        }
        m.bind(src.clone(), source.fresh());
        m.copy(dest.clone(), &src);
        assert!(m.must_alias(&dest, &src), "copy must establish the alias");

        // Removing one endpoint unlinks exactly that endpoint: the other
        // keeps its token, and the pair no longer must-alias.
        let survivor_token = m.resolve(&src);
        m.remove(&dest);
        assert!(!m.must_alias(&dest, &src));
        assert_eq!(m.resolve(&dest), None);
        assert_eq!(m.resolve(&src), survivor_token, "remove(dest) must not touch src");
    });
}

#[test]
fn copy_from_untracked_always_untracks_dest() {
    forall("copy from untracked", CASES, |rng| {
        let mut m = alias_map(rng);
        let src = place(rng);
        let dest = place(rng);
        m.remove(&src);
        m.copy(dest.clone(), &src);
        assert_eq!(m.resolve(&dest), None, "dest must not keep a stale token");
        assert!(!m.must_alias(&dest, &src));
    });
}

#[test]
fn copy_chain_is_transitive() {
    forall("copy transitive", CASES, |rng| {
        let mut m = alias_map(rng);
        let mut source = TokenSource::new();
        for _ in 0..8 {
            source.fresh();
        }
        let a = Place::Local("chain_a".into());
        let b = Place::Local("chain_b".into());
        let c = Place::Local("chain_c".into());
        m.bind(a.clone(), source.fresh());
        m.copy(b.clone(), &a);
        m.copy(c.clone(), &b);
        assert!(m.must_alias(&a, &c), "b = a; c = b ⇒ c ~ a");
        // Rebinding the middle variable must not disturb the outer pair.
        m.bind(b.clone(), source.fresh());
        assert!(m.must_alias(&a, &c));
        assert!(!m.must_alias(&a, &b));
    });
}
