//! Structural invariants of Permissions Flow Graphs, checked over every
//! method of the generated corpus and the paper figures.

use analysis::pfg::{Pfg, PfgNodeKind};
use analysis::types::ProgramIndex;
use java_syntax::CompilationUnit;
use spec_lang::standard_api;

fn all_pfgs(units: &[CompilationUnit]) -> Vec<Pfg> {
    let index = ProgramIndex::build(units.iter());
    let api = standard_api();
    let mut out = Vec::new();
    for unit in units {
        for t in &unit.types {
            for m in t.methods() {
                if m.body.is_some() {
                    out.push(Pfg::build(&index, &api, &t.name, m));
                }
            }
        }
    }
    out
}

fn check_invariants(pfg: &Pfg) {
    let n = pfg.nodes.len();
    // Edges reference valid nodes; no self-loops.
    for &(a, b) in &pfg.edges {
        assert!(a < n && b < n, "{}: edge ({a},{b}) out of range", pfg.method);
        assert_ne!(a, b, "{}: self loop at {a}", pfg.method);
    }
    // Adjacency is consistent with the edge list.
    let mut degree = 0usize;
    for node in 0..n {
        degree += pfg.outgoing(node).len();
        for &s in pfg.outgoing(node) {
            assert!(pfg.incoming(s).contains(&node), "{}: asymmetric adjacency", pfg.method);
        }
    }
    assert_eq!(degree, pfg.edges.len(), "{}: adjacency/edge mismatch", pfg.method);

    for node in &pfg.nodes {
        match &node.kind {
            // Field writes are sinks (paper §3.1).
            PfgNodeKind::FieldWrite { .. } => {
                assert!(
                    pfg.outgoing(node.id).is_empty(),
                    "{}: field write with outgoing edges",
                    pfg.method
                );
            }
            // Sources have no incoming edges.
            PfgNodeKind::ParamPre { .. }
            | PfgNodeKind::New { .. }
            | PfgNodeKind::CallResult { .. }
            | PfgNodeKind::FieldRead { .. }
            | PfgNodeKind::CallPost { .. } => {
                assert!(
                    pfg.incoming(node.id).is_empty(),
                    "{}: source node {:?} has incoming edges",
                    pfg.method,
                    node.kind
                );
            }
            // Splits have exactly one predecessor and at least one successor.
            PfgNodeKind::Split => {
                assert_eq!(pfg.incoming(node.id).len(), 1, "{}: split fan-in", pfg.method);
                assert!(!pfg.outgoing(node.id).is_empty(), "{}: dead split", pfg.method);
            }
            // Call preconditions are sinks within the caller's graph (their
            // permission flows through the callee).
            PfgNodeKind::CallPre { .. } => {
                assert!(
                    pfg.outgoing(node.id).is_empty(),
                    "{}: call-pre with outgoing edges",
                    pfg.method
                );
            }
            _ => {}
        }
        // Field nodes keep their receiver link inside the graph.
        if let Some(r) = node.receiver_link {
            assert!(r < n, "{}: dangling receiver link", pfg.method);
        }
    }

    // Every parameter has distinct pre/post nodes of the declared type.
    for p in &pfg.params {
        assert_ne!(p.pre, p.post, "{}: param {} pre == post", pfg.method, p.name);
        assert!(matches!(pfg.nodes[p.pre].kind, PfgNodeKind::ParamPre { .. }));
        assert!(matches!(pfg.nodes[p.post].kind, PfgNodeKind::ParamPost { .. }));
    }
}

#[test]
fn corpus_pfgs_satisfy_invariants() {
    let corpus = corpus::generate(&corpus::PmdConfig::small());
    let pfgs = all_pfgs(&corpus.units);
    assert!(pfgs.len() >= 50);
    for pfg in &pfgs {
        check_invariants(pfg);
    }
}

#[test]
fn figure_pfgs_satisfy_invariants() {
    for src in [corpus::FIGURE3, corpus::FIGURE7] {
        let unit = java_syntax::parse(src).unwrap();
        for pfg in all_pfgs(std::slice::from_ref(&unit)) {
            check_invariants(&pfg);
        }
    }
}

#[test]
fn regression_suite_pfgs_satisfy_invariants() {
    for case in corpus::suite() {
        let unit = case.unit();
        for pfg in all_pfgs(std::slice::from_ref(&unit)) {
            check_invariants(&pfg);
        }
    }
}

#[test]
fn table3_pfgs_satisfy_invariants() {
    let p = corpus::table3_program(3, 200);
    for pfg in all_pfgs(&[p.modular, p.inlined]) {
        check_invariants(&pfg);
    }
}
