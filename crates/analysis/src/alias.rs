//! Local must-alias analysis.
//!
//! "A local must-alias analysis helps us track permission (which
//! fundamentally are related to objects) even if those objects are
//! reassigned to other local variables" (paper §3.1). The analysis is a
//! union-find-free must-alias map: every tracked object gets a token, and
//! places (locals, `this`, expression temporaries) map to tokens. Two
//! places must-alias iff they map to the same token.
//!
//! Joins at control-flow merges keep only agreeing bindings — the *must*
//! part: a place bound to different tokens on two paths may alias either,
//! so it is dropped from tracking (conservative for inference; the sound
//! checker re-validates everything downstream).

use crate::events::Place;
use std::collections::BTreeMap;
use std::fmt;

/// An object identity token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AliasToken(pub u32);

impl fmt::Display for AliasToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// Allocates fresh [`AliasToken`]s.
#[derive(Debug, Clone, Default)]
pub struct TokenSource {
    next: u32,
}

impl TokenSource {
    /// A source starting at token 0.
    pub fn new() -> TokenSource {
        TokenSource::default()
    }

    /// A fresh, never-before-seen token.
    pub fn fresh(&mut self) -> AliasToken {
        let t = AliasToken(self.next);
        self.next += 1;
        t
    }
}

/// The must-alias map at one program point.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AliasMap {
    map: BTreeMap<Place, AliasToken>,
}

impl AliasMap {
    /// An empty map.
    pub fn new() -> AliasMap {
        AliasMap::default()
    }

    /// Binds `place` to `token` (a fresh object or an explicit rebind).
    pub fn bind(&mut self, place: Place, token: AliasToken) {
        self.map.insert(place, token);
    }

    /// The token `place` currently refers to.
    pub fn resolve(&self, place: &Place) -> Option<AliasToken> {
        self.map.get(place).copied()
    }

    /// Models `dest = src`: afterwards both places must-alias. If `src` is
    /// untracked, `dest` becomes untracked too.
    pub fn copy(&mut self, dest: Place, src: &Place) {
        match self.map.get(src).copied() {
            Some(t) => {
                self.map.insert(dest, t);
            }
            None => {
                self.map.remove(&dest);
            }
        }
    }

    /// Removes a binding (e.g. a variable going dead).
    pub fn remove(&mut self, place: &Place) {
        self.map.remove(place);
    }

    /// Whether two places certainly refer to the same object.
    pub fn must_alias(&self, a: &Place, b: &Place) -> bool {
        match (self.map.get(a), self.map.get(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// All places currently bound to `token`.
    pub fn places_of(&self, token: AliasToken) -> impl Iterator<Item = &Place> {
        self.map.iter().filter(move |(_, t)| **t == token).map(|(p, _)| p)
    }

    /// Join at a control-flow merge: keeps only bindings both sides agree
    /// on.
    pub fn join(&self, other: &AliasMap) -> AliasMap {
        let mut out = AliasMap::new();
        for (p, t) in &self.map {
            if other.map.get(p) == Some(t) {
                out.map.insert(p.clone(), *t);
            }
        }
        out
    }

    /// Iterates over all bindings.
    pub fn iter(&self) -> impl Iterator<Item = (&Place, AliasToken)> {
        self.map.iter().map(|(p, t)| (p, *t))
    }

    /// Number of tracked places.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use java_syntax::ast::ExprId;

    fn local(n: &str) -> Place {
        Place::Local(n.to_string())
    }

    #[test]
    fn copy_establishes_must_alias() {
        let mut src = TokenSource::new();
        let mut m = AliasMap::new();
        let obj = src.fresh();
        m.bind(local("a"), obj);
        m.copy(local("b"), &local("a"));
        assert!(m.must_alias(&local("a"), &local("b")));
        assert_eq!(m.resolve(&local("b")), Some(obj));
    }

    #[test]
    fn rebinding_breaks_alias() {
        let mut src = TokenSource::new();
        let mut m = AliasMap::new();
        let o1 = src.fresh();
        let o2 = src.fresh();
        m.bind(local("a"), o1);
        m.copy(local("b"), &local("a"));
        m.bind(local("a"), o2); // a = new ...
        assert!(!m.must_alias(&local("a"), &local("b")));
        assert_eq!(m.resolve(&local("b")), Some(o1), "b keeps the old object");
    }

    #[test]
    fn copy_from_untracked_untracks_dest() {
        let mut src = TokenSource::new();
        let mut m = AliasMap::new();
        m.bind(local("b"), src.fresh());
        m.copy(local("b"), &local("mystery"));
        assert_eq!(m.resolve(&local("b")), None);
    }

    #[test]
    fn join_keeps_agreement_only() {
        let mut src = TokenSource::new();
        let o1 = src.fresh();
        let o2 = src.fresh();
        let mut left = AliasMap::new();
        left.bind(local("x"), o1);
        left.bind(local("y"), o1);
        let mut right = AliasMap::new();
        right.bind(local("x"), o1);
        right.bind(local("y"), o2); // reassigned on this path
        let joined = left.join(&right);
        assert_eq!(joined.resolve(&local("x")), Some(o1));
        assert_eq!(joined.resolve(&local("y")), None, "disagreement drops the binding");
        assert_eq!(joined.len(), 1);
    }

    #[test]
    fn join_is_commutative_and_idempotent() {
        let mut src = TokenSource::new();
        let o1 = src.fresh();
        let mut a = AliasMap::new();
        a.bind(local("x"), o1);
        a.bind(Place::This, o1);
        let mut b = AliasMap::new();
        b.bind(local("x"), o1);
        assert_eq!(a.join(&b), b.join(&a));
        assert_eq!(a.join(&a), a);
    }

    #[test]
    fn temporaries_participate() {
        let mut src = TokenSource::new();
        let mut m = AliasMap::new();
        let obj = src.fresh();
        m.bind(Place::Temp(ExprId(7)), obj);
        m.copy(local("it"), &Place::Temp(ExprId(7)));
        assert!(m.must_alias(&local("it"), &Place::Temp(ExprId(7))));
        assert_eq!(m.places_of(obj).count(), 2);
    }

    #[test]
    fn tokens_are_unique() {
        let mut src = TokenSource::new();
        let a = src.fresh();
        let b = src.fresh();
        assert_ne!(a, b);
        assert_eq!(a.to_string(), "o0");
    }
}
